// Validation of the paper's LLC-only assumption (§III-C): "we only consider
// the last level cache during analysis, because it has the largest impact on
// the number of main memory accesses within the cache hierarchy."
//
// For every verification kernel we simulate (a) the LLC alone and (b) a
// two-level hierarchy with a small L1 in front, and compare the main-memory
// traffic per data structure. The L1 absorbs most probes, but the
// memory-side counts should stay close — which is what licenses the
// analytical models to reason about the LLC only.
#include <iostream>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/cachesim/hierarchy.hpp"
#include "dvf/common/math.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/report/table.hpp"

int main() {
  const dvf::CacheConfig llc = dvf::caches::small_verification();
  // A 2 KiB, 2-way L1 with the same line size in front of the 8 KiB LLC.
  const dvf::CacheConfig l1("l1-2KB", 2, 32, 32);

  std::cout << dvf::banner(
      "Hierarchy ablation: does an L1 change main-memory traffic? "
      "(paper's LLC-only assumption)");
  std::cout << "L1: " << l1.describe() << "\nLLC: " << llc.describe()
            << "\n\n";

  dvf::Table table({"kernel", "structure", "mem_acc LLC-only",
                    "mem_acc with-L1", "delta_%", "LLC probes filtered_%"});

  auto suite = dvf::kernels::make_verification_suite();
  for (auto& kernel : suite) {
    dvf::CacheSimulator only_llc(llc);
    kernel->run_traced(only_llc);

    dvf::CacheHierarchy hierarchy({l1, llc});
    kernel->run_traced(hierarchy);

    const dvf::ModelSpec spec = kernel->model_spec();
    for (const auto& ds : spec.structures) {
      const auto id = kernel->registry().find(ds.name);
      if (!id.has_value()) {
        continue;
      }
      const double flat =
          static_cast<double>(only_llc.stats(*id).main_memory_accesses());
      const double layered =
          static_cast<double>(hierarchy.main_memory_accesses(*id));
      const double probes_flat =
          static_cast<double>(only_llc.stats(*id).accesses);
      const double probes_layered =
          static_cast<double>(hierarchy.level_stats(1, *id).accesses);
      table.add_row(
          {kernel->name(), ds.name, dvf::num(flat), dvf::num(layered),
           dvf::num(100.0 * dvf::math::relative_error(layered, flat), 3),
           dvf::num(probes_flat == 0.0
                        ? 0.0
                        : 100.0 * (1.0 - probes_layered / probes_flat),
                    3)});
    }
  }

  std::cout << table;
  std::cout <<
      "\nReading: 'delta' is how much the memory traffic changes when an L1\n"
      "is added (small deltas support the paper's LLC-only modeling);\n"
      "'filtered' is the share of probes the L1 absorbed before the LLC.\n";
  return 0;
}
