// Ablation study of the modeling choices DESIGN.md calls out, judged
// against the trace-driven simulator on the verification workloads:
//
//  1. Random access: the paper's uniform hypergeometric model (Eqs. 5–6)
//     vs the IRM/Che popularity extension (NB tree, MC grid).
//  2. Reuse: Bernoulli set occupancy (Eq. 8) vs contiguous occupancy, and
//     the three interference scenarios (Eqs. 11/12/blend) (CG vectors).
//  3. Template: LRU stack distance vs the paper's literal raw reference
//     distance (MG smoother, FT butterflies).
#include <iostream>
#include <variant>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/math.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/estimate.hpp"
#include "dvf/report/table.hpp"

namespace {

using dvf::kernels::KernelCase;

struct SimReference {
  double misses = 0.0;
};

SimReference simulate(KernelCase& kernel, const dvf::CacheConfig& cache,
                      const std::string& structure) {
  dvf::CacheSimulator sim(cache);
  kernel.run_traced(sim);
  const auto id = kernel.registry().find(structure);
  return {static_cast<double>(sim.stats(*id).misses)};
}

std::string err_cell(double estimate, double reference) {
  return dvf::num(100.0 * dvf::math::relative_error(estimate, reference), 3);
}

}  // namespace

int main() {
  const dvf::CacheConfig small = dvf::caches::small_verification();
  auto suite = dvf::kernels::make_verification_suite();
  const auto find = [&](const char* name) -> KernelCase& {
    for (auto& kernel : suite) {
      if (kernel->name() == name) {
        return *kernel;
      }
    }
    throw std::runtime_error("kernel not found");
  };

  // ---- 1. uniform vs IRM random model -----------------------------------
  std::cout << dvf::banner(
      "Ablation 1: random-access model — paper uniform (Eqs. 5-6) vs "
      "IRM/Che extension");
  {
    dvf::Table table({"kernel", "structure", "sim_misses", "uniform_est",
                      "uniform_err_%", "irm_est", "irm_err_%"});
    for (const char* name : {"NB", "MC"}) {
      KernelCase& kernel = find(name);
      const dvf::ModelSpec spec = kernel.model_spec();
      for (const auto& ds : spec.structures) {
        const auto* random = std::get_if<dvf::RandomSpec>(&ds.patterns.front());
        if (random == nullptr) {
          continue;
        }
        const SimReference ref = simulate(kernel, small, ds.name);
        dvf::RandomSpec uniform = *random;
        uniform.sorted_visit_fractions.clear();
        const double uniform_est = dvf::estimate_random(uniform, small);
        const double irm_est = dvf::estimate_random(*random, small);
        table.add_row({kernel.name(), ds.name, dvf::num(ref.misses),
                       dvf::num(uniform_est), err_cell(uniform_est, ref.misses),
                       dvf::num(irm_est), err_cell(irm_est, ref.misses)});
      }
    }
    std::cout << table;
  }

  // ---- 2. reuse occupancy and scenarios ----------------------------------
  std::cout << dvf::banner(
      "Ablation 2: reuse model — occupancy (Bernoulli Eq. 8 vs contiguous) "
      "x scenario (Eq. 11 LRU / Eq. 12 uniform / blend)");
  {
    KernelCase& cg = find("CG");
    const dvf::ModelSpec spec = cg.model_spec();
    dvf::Table table({"cache", "structure", "sim_misses", "occupancy",
                      "scenario", "estimate", "err_%"});
    for (const auto& cache : {small, dvf::caches::large_verification()}) {
      for (const auto& ds : spec.structures) {
        const auto* reuse = std::get_if<dvf::ReuseSpec>(&ds.patterns.front());
        if (reuse == nullptr) {
          continue;
        }
        const SimReference ref = simulate(cg, cache, ds.name);
        for (const auto occupancy : {dvf::ReuseOccupancy::kBernoulli,
                                     dvf::ReuseOccupancy::kContiguous}) {
          for (const auto scenario : {dvf::ReuseScenario::kLruProtects,
                                      dvf::ReuseScenario::kUniformEviction,
                                      dvf::ReuseScenario::kBlend}) {
            dvf::ReuseSpec variant = *reuse;
            variant.occupancy = occupancy;
            variant.scenario = scenario;
            const double est = dvf::estimate_reuse(variant, cache);
            table.add_row(
                {cache.name(), ds.name, dvf::num(ref.misses),
                 occupancy == dvf::ReuseOccupancy::kBernoulli ? "bernoulli"
                                                              : "contiguous",
                 scenario == dvf::ReuseScenario::kLruProtects      ? "lru"
                 : scenario == dvf::ReuseScenario::kUniformEviction ? "uniform"
                                                                    : "blend",
                 dvf::num(est), err_cell(est, ref.misses)});
          }
        }
      }
    }
    std::cout << table;
  }

  // ---- 3. template distance kind -----------------------------------------
  std::cout << dvf::banner(
      "Ablation 3: template model — LRU stack distance vs raw reference "
      "distance");
  {
    dvf::Table table({"kernel", "structure", "sim_misses", "stack_est",
                      "stack_err_%", "raw_est", "raw_err_%"});
    for (const char* name : {"MG", "FT"}) {
      KernelCase& kernel = find(name);
      const dvf::ModelSpec spec = kernel.model_spec();
      for (const auto& ds : spec.structures) {
        const auto* tmpl = std::get_if<dvf::TemplateSpec>(&ds.patterns.front());
        if (tmpl == nullptr) {
          continue;
        }
        const SimReference ref = simulate(kernel, small, ds.name);
        dvf::TemplateSpec stack = *tmpl;
        stack.distance = dvf::DistanceKind::kStack;
        dvf::TemplateSpec raw = *tmpl;
        raw.distance = dvf::DistanceKind::kRaw;
        const double stack_est = dvf::estimate_template(stack, small);
        const double raw_est = dvf::estimate_template(raw, small);
        table.add_row({kernel.name(), ds.name, dvf::num(ref.misses),
                       dvf::num(stack_est), err_cell(stack_est, ref.misses),
                       dvf::num(raw_est), err_cell(raw_est, ref.misses)});
      }
    }
    std::cout << table;
  }

  return 0;
}
