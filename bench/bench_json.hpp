// Minimal machine-readable benchmark output: each harness appends flat
// {string|number} objects to a records array and writes BENCH_<name>.json
// into the working directory, so perf trajectories can be tracked run over
// run without parsing human-oriented tables.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace dvf::bench {

class JsonRecords {
 public:
  class Record {
   public:
    Record() { out_.precision(12); }
    Record& field(const std::string& key, const std::string& value) {
      add_key(key);
      out_ << '"' << value << '"';
      return *this;
    }
    Record& field(const std::string& key, double value) {
      add_key(key);
      out_ << value;
      return *this;
    }
    Record& field(const std::string& key, std::uint64_t value) {
      add_key(key);
      out_ << value;
      return *this;
    }
    Record& field(const std::string& key, unsigned value) {
      return field(key, static_cast<std::uint64_t>(value));
    }
    [[nodiscard]] std::string str() const { return "{" + out_.str() + "}"; }

   private:
    void add_key(const std::string& key) {
      if (!out_.str().empty()) {
        out_ << ", ";
      }
      out_ << '"' << key << "\": ";
    }
    std::ostringstream out_;
  };

  void add(const Record& record) { records_.push_back(record.str()); }

  /// Attaches an observability metrics object (one line of JSON, as
  /// dvf::obs::render_metrics_json produces) to the output.
  void set_metrics(std::string metrics_json) {
    metrics_json_ = std::move(metrics_json);
  }

  /// Writes {"benchmark": <name>, "records": [...]} to BENCH_<name>.json,
  /// plus a "metrics" block when one was attached.
  void write(const std::string& name) const {
    const std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"" << name << "\",\n  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << "    " << records_[i] << (i + 1 < records_.size() ? "," : "")
          << "\n";
    }
    out << "  ]";
    if (!metrics_json_.empty()) {
      out << ",\n  \"metrics\": " << metrics_json_;
    }
    out << "\n}\n";
    std::cout << "wrote " << path << " (" << records_.size()
              << " record(s))\n";
  }

 private:
  std::vector<std::string> records_;
  std::string metrics_json_;
};

}  // namespace dvf::bench
