// Cache-simulator hot-path throughput harness.
//
// The trace-driven simulator is the cost DVF's analytical models avoid, and
// every validation experiment replays through it — so its accesses/sec is a
// first-class performance number. This harness drives the simulator with
// synthetic reference strings that isolate the hot-path ingredients (the
// power-of-two set-index mask vs the modulo fallback, the per-call access()
// entry vs the batched replay() loop) and emits BENCH_cachesim.json so the
// trajectory is tracked run over run.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/report/table.hpp"

namespace {

constexpr std::uint64_t kAccesses = 4'000'000;
constexpr std::uint32_t kStructures = 8;

std::vector<dvf::MemoryRecord> make_trace(bool random) {
  std::vector<dvf::MemoryRecord> records;
  records.reserve(kAccesses);
  dvf::Xoshiro256 rng(2014);
  std::uint64_t addr = 0;
  for (std::uint64_t i = 0; i < kAccesses; ++i) {
    addr = random ? rng.below(1u << 28) : addr + 8;
    records.push_back({addr, 8,
                       static_cast<dvf::DsId>(i % kStructures),
                       (i & 7) == 0});
  }
  return records;
}

struct Scenario {
  const char* name;
  dvf::CacheConfig cache;
  bool random;
  bool batched;  ///< replay() vs per-record access()
};

double run(const Scenario& scenario,
           const std::vector<dvf::MemoryRecord>& records) {
  dvf::CacheSimulator sim(scenario.cache);
  sim.reserve_structures(kStructures);
  const dvf::kernels::Stopwatch watch;
  if (scenario.batched) {
    sim.replay(records);
  } else {
    for (const dvf::MemoryRecord& r : records) {
      sim.access(r.address, r.size, r.is_write, r.ds);
    }
  }
  sim.flush();
  return watch.seconds();
}

}  // namespace

int main() {
  std::cout << dvf::banner(
      "Cache-simulator hot path: mask vs modulo set indexing, batched "
      "replay vs per-call access");

  // 8192 sets (power of two → mask path) vs 6144 sets (modulo fallback);
  // both 8-way with 64 B lines so per-probe work is comparable.
  const dvf::CacheConfig pow2("pow2-8192set", 8, 8192, 64);
  const dvf::CacheConfig nonpow2("mod-6144set", 8, 6144, 64);

  const std::vector<Scenario> scenarios = {
      {"seq_access_pow2", pow2, false, false},
      {"seq_replay_pow2", pow2, false, true},
      {"seq_replay_modulo", nonpow2, false, true},
      {"rand_access_pow2", pow2, true, false},
      {"rand_replay_pow2", pow2, true, true},
      {"rand_replay_modulo", nonpow2, true, true},
  };

  const auto sequential = make_trace(/*random=*/false);
  const auto random = make_trace(/*random=*/true);

  dvf::bench::JsonRecords json;
  dvf::Table table({"scenario", "cache", "accesses", "wall_s", "Maccesses/s"});
  for (const Scenario& scenario : scenarios) {
    const auto& records = scenario.random ? random : sequential;
    const double seconds = run(scenario, records);
    const double rate = static_cast<double>(kAccesses) / seconds;
    table.add_row({scenario.name, scenario.cache.name(),
                   dvf::num(static_cast<double>(kAccesses)),
                   dvf::num(seconds, 3), dvf::num(rate / 1e6, 2)});
    json.add(dvf::bench::JsonRecords::Record{}
                 .field("scenario", std::string(scenario.name))
                 .field("cache", scenario.cache.name())
                 .field("accesses", kAccesses)
                 .field("wall_s", seconds)
                 .field("accesses_per_s", rate));
  }

  // The same hot path with the observability layer recording, so the cost
  // of the enabled path is tracked next to the disabled numbers above
  // (which pin the ≤2% disabled-path budget; see bench/obs_overhead.cpp).
  dvf::obs::set_enabled(true);
  {
    const Scenario observed = {"rand_replay_pow2_obs", pow2, true, true};
    const double seconds = run(observed, random);
    const double rate = static_cast<double>(kAccesses) / seconds;
    table.add_row({observed.name, observed.cache.name(),
                   dvf::num(static_cast<double>(kAccesses)),
                   dvf::num(seconds, 3), dvf::num(rate / 1e6, 2)});
    json.add(dvf::bench::JsonRecords::Record{}
                 .field("scenario", std::string(observed.name))
                 .field("cache", observed.cache.name())
                 .field("accesses", kAccesses)
                 .field("wall_s", seconds)
                 .field("accesses_per_s", rate));
  }
  dvf::obs::set_enabled(false);
  json.set_metrics(dvf::obs::render_metrics_json(dvf::obs::snapshot_metrics()));

  std::cout << table << "\n";
  json.write("cachesim");
  return 0;
}
