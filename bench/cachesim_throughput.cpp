// Cache-simulator hot-path throughput harness.
//
// The trace-driven simulator is the cost DVF's analytical models avoid, and
// every validation experiment replays through it — so its accesses/sec is a
// first-class performance number. This harness drives the simulator with
// synthetic reference strings that isolate the hot-path ingredients (the
// power-of-two set-index mask vs the modulo fallback, the per-call access()
// entry vs the batched replay() loop, set-sharded parallel replay at 1-8
// threads, the PLRU/RRIP policy scans) and measures the trace wire formats
// (v1 flat vs v2 delta+run, plus chunked streaming replay). It emits
// BENCH_cachesim.json so the trajectory is tracked run over run.
//
// Set DVF_BENCH_QUICK=1 for a 10x-smaller corpus (CI smoke); every record
// carries hardware_threads so sharded numbers are read against the cores
// that were actually available.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/cachesim/replacement.hpp"
#include "dvf/cachesim/sharded_replay.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/report/table.hpp"
#include "dvf/trace/trace_io.hpp"
#include "dvf/trace/trace_reader.hpp"

namespace {

constexpr std::uint32_t kStructures = 8;

std::uint64_t access_count() {
  const char* quick = std::getenv("DVF_BENCH_QUICK");
  const bool is_quick = quick != nullptr && *quick != '\0' && *quick != '0';
  return is_quick ? 400'000 : 4'000'000;
}

std::vector<dvf::MemoryRecord> make_trace(std::uint64_t accesses,
                                          bool random) {
  std::vector<dvf::MemoryRecord> records;
  records.reserve(accesses);
  dvf::Xoshiro256 rng(2014);
  std::uint64_t addr = 0;
  for (std::uint64_t i = 0; i < accesses; ++i) {
    addr = random ? rng.below(1u << 28) : addr + 8;
    records.push_back({addr, 8,
                       static_cast<dvf::DsId>(i % kStructures),
                       (i & 7) == 0});
  }
  return records;
}

std::vector<dvf::DataStructureInfo> bench_structures() {
  std::vector<dvf::DataStructureInfo> structures;
  for (std::uint32_t i = 0; i < kStructures; ++i) {
    structures.push_back({"ds" + std::to_string(i),
                          std::uint64_t{i} << 32, 1u << 28, 8});
  }
  return structures;
}

struct Scenario {
  const char* name;
  dvf::CacheConfig cache;
  bool random;
  bool batched;  ///< replay() vs per-record access()
  unsigned threads = 1;
  dvf::ReplacementPolicy policy = dvf::ReplacementPolicy::kLru;
};

double run(const Scenario& scenario,
           const std::vector<dvf::MemoryRecord>& records) {
  if (scenario.threads > 1) {
    dvf::ShardedReplayer sim(scenario.cache, scenario.threads,
                             scenario.policy);
    sim.reserve_structures(kStructures);
    const dvf::kernels::Stopwatch watch;
    sim.replay(records);
    sim.flush();
    return watch.seconds();
  }
  dvf::CacheSimulator sim(scenario.cache, scenario.policy);
  sim.reserve_structures(kStructures);
  const dvf::kernels::Stopwatch watch;
  if (scenario.batched) {
    sim.replay(records);
  } else {
    for (const dvf::MemoryRecord& r : records) {
      sim.access(r.address, r.size, r.is_write, r.ds);
    }
  }
  sim.flush();
  return watch.seconds();
}

}  // namespace

int main() {
  std::cout << dvf::banner(
      "Cache-simulator hot path: mask vs modulo set indexing, batched "
      "replay vs per-call access, sharded replay, trace formats");

  const std::uint64_t accesses = access_count();
  const std::uint64_t hardware_threads =
      std::max(1u, std::thread::hardware_concurrency());

  // 8192 sets (power of two → mask path) vs 6144 sets (modulo fallback);
  // both 8-way with 64 B lines so per-probe work is comparable.
  const dvf::CacheConfig pow2("pow2-8192set", 8, 8192, 64);
  const dvf::CacheConfig nonpow2("mod-6144set", 8, 6144, 64);

  const std::vector<Scenario> scenarios = {
      {"seq_access_pow2", pow2, false, false},
      {"seq_replay_pow2", pow2, false, true},
      {"seq_replay_modulo", nonpow2, false, true},
      {"rand_access_pow2", pow2, true, false},
      {"rand_replay_pow2", pow2, true, true},
      {"rand_replay_modulo", nonpow2, true, true},
      // Policy scans on the single-stream hot path: PLRU reads one bit
      // vector, RRIP may loop over ages — both priced against true LRU.
      {"rand_replay_plru", pow2, true, true, 1,
       dvf::ReplacementPolicy::kPlru},
      {"rand_replay_rrip", pow2, true, true, 1,
       dvf::ReplacementPolicy::kRrip},
      // Set-sharded replay: every worker scans the full span and keeps the
      // sets it owns, so speedup needs real cores (see docs/performance.md
      // "When sharding loses").
      {"seq_sharded_2t", pow2, false, true, 2},
      {"seq_sharded_4t", pow2, false, true, 4},
      {"seq_sharded_8t", pow2, false, true, 8},
      {"rand_sharded_2t", pow2, true, true, 2},
      {"rand_sharded_4t", pow2, true, true, 4},
      {"rand_sharded_8t", pow2, true, true, 8},
  };

  const auto sequential = make_trace(accesses, /*random=*/false);
  const auto random = make_trace(accesses, /*random=*/true);

  dvf::bench::JsonRecords json;
  dvf::Table table(
      {"scenario", "cache", "thr", "policy", "wall_s", "Maccesses/s"});
  const auto add_record = [&](const Scenario& scenario, double seconds) {
    const double rate = static_cast<double>(accesses) / seconds;
    table.add_row({scenario.name, scenario.cache.name(),
                   dvf::num(static_cast<double>(scenario.threads)),
                   dvf::policy_name(scenario.policy),
                   dvf::num(seconds, 3), dvf::num(rate / 1e6, 2)});
    json.add(dvf::bench::JsonRecords::Record{}
                 .field("scenario", std::string(scenario.name))
                 .field("cache", scenario.cache.name())
                 .field("accesses", accesses)
                 .field("threads", scenario.threads)
                 .field("policy",
                        std::string(
                            dvf::policy_name(scenario.policy)))
                 .field("hardware_threads", hardware_threads)
                 .field("wall_s", seconds)
                 .field("accesses_per_s", rate));
  };
  for (const Scenario& scenario : scenarios) {
    const auto& records = scenario.random ? random : sequential;
    add_record(scenario, run(scenario, records));
  }

  // The same hot path with the observability layer recording, so the cost
  // of the enabled path is tracked next to the disabled numbers above
  // (which pin the ≤2% disabled-path budget; see bench/obs_overhead.cpp).
  dvf::obs::set_enabled(true);
  {
    const Scenario observed = {"rand_replay_pow2_obs", pow2, true, true};
    add_record(observed, run(observed, random));
  }
  dvf::obs::set_enabled(false);

  // Trace wire formats: v1 flat native records against v2 delta+run LE
  // chunks, on the corpora above. The sequential corpus is v2's best case
  // (constant stride collapses to runs); the random corpus its worst
  // (every delta is a fresh ~28-bit zigzag varint).
  const auto structures = bench_structures();
  for (const bool is_random : {false, true}) {
    const auto& records = is_random ? random : sequential;
    const char* corpus = is_random ? "rand" : "seq";
    std::ostringstream v1;
    std::ostringstream v2;
    dvf::write_trace(v1, structures, records, dvf::TraceFormat::kV1);
    dvf::write_trace(v2, structures, records, dvf::TraceFormat::kV2);
    const std::uint64_t v1_bytes = v1.str().size();
    const std::uint64_t v2_bytes = v2.str().size();
    const double ratio = static_cast<double>(v1_bytes) /
                         static_cast<double>(v2_bytes);
    table.add_row({std::string("trace_size_") + corpus, "v1 vs v2", "-", "-",
                   "-", dvf::num(ratio, 2) + "x smaller"});
    json.add(dvf::bench::JsonRecords::Record{}
                 .field("scenario", std::string("trace_size_") + corpus)
                 .field("records", accesses)
                 .field("v1_bytes", v1_bytes)
                 .field("v2_bytes", v2_bytes)
                 .field("v1_over_v2", ratio));

    // Streamed v2 replay: decode chunk-by-chunk straight into the sharded
    // replayer, the `dvfc replay` path. Priced against the in-memory replay
    // numbers above to expose the decode cost.
    std::istringstream stream(v2.str());
    dvf::TraceReader reader(stream);
    dvf::ShardedReplayer sim(pow2, 1);
    sim.reserve_structures(kStructures);
    const dvf::kernels::Stopwatch watch;
    sim.replay_stream(reader);
    sim.flush();
    const double seconds = watch.seconds();
    const double rate = static_cast<double>(accesses) / seconds;
    const std::string name = std::string("v2_stream_replay_") + corpus;
    table.add_row({name, pow2.name(), "1", "lru", dvf::num(seconds, 3),
                   dvf::num(rate / 1e6, 2)});
    json.add(dvf::bench::JsonRecords::Record{}
                 .field("scenario", name)
                 .field("cache", pow2.name())
                 .field("accesses", accesses)
                 .field("threads", 1u)
                 .field("policy", std::string("lru"))
                 .field("hardware_threads", hardware_threads)
                 .field("wall_s", seconds)
                 .field("accesses_per_s", rate));
  }

  json.set_metrics(dvf::obs::render_metrics_json(dvf::obs::snapshot_metrics()));

  std::cout << table << "\n";
  json.write("cachesim");
  return 0;
}
