// Fault-injection campaign vs DVF — the comparison the paper argues for.
//
// §VI positions DVF against statistical fault injection: injection gives
// ground-truth corruption probabilities but "a large number of fault
// injections must be performed", while DVF is analytical and instant. This
// harness runs both on the verification kernels: hundreds of random bit
// flips per data structure (random site, random time) vs the structures'
// DVFs, plus the Spearman rank correlation between the two orderings and
// the wall-clock cost of each methodology.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/kernels/injection_campaign.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/parallel/thread_pool.hpp"
#include "dvf/report/table.hpp"

namespace {

bool identical(const std::vector<dvf::kernels::StructureInjectionStats>& a,
               const std::vector<dvf::kernels::StructureInjectionStats>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].structure != b[i].structure || a[i].trials != b[i].trials ||
        a[i].injected != b[i].injected || a[i].masked != b[i].masked ||
        a[i].sdc != b[i].sdc || a[i].due_exception != b[i].due_exception ||
        a[i].due_hang != b[i].due_hang ||
        a[i].due_invalid != b[i].due_invalid ||
        a[i].corrupted != b[i].corrupted ||
        a[i].early_stopped != b[i].early_stopped) {
      return false;
    }
  }
  return true;
}

/// Resilience-machinery overhead: the same campaign with the fault-
/// tolerance features individually enabled, against a bare baseline
/// (no hang budget, no journal). Classification itself is free — the
/// taxonomy falls out of state the trial already has — so the measurable
/// costs are the budget check in the recorder hot path and the journal
/// write per trial.
void overhead_study(dvf::bench::JsonRecords& json) {
  std::cout << dvf::banner(
      "Resilience overhead: hang budget + journaling vs bare campaign");

  auto suite = dvf::kernels::make_verification_suite();
  dvf::Table table(
      {"kernel", "mode", "trials", "wall_s", "trials/s", "overhead_%"});
  for (auto& kernel : suite) {
    if (kernel->name() != "VM" && kernel->name() != "FT") {
      continue;
    }
    dvf::kernels::CampaignConfig base;
    base.trials_per_structure = 400;
    (void)dvf::kernels::run_injection_campaign(*kernel, base);  // warm-up

    const std::string journal_path =
        "BENCH_campaign_overhead_" + kernel->name() + ".journal";
    struct Mode {
      const char* name;
      double hang_factor;
      bool journal;
    };
    const Mode modes[] = {{"bare", 0.0, false},
                          {"budget", 8.0, false},
                          {"budget+journal", 8.0, true}};
    double bare_seconds = 0.0;
    for (const Mode& mode : modes) {
      dvf::kernels::CampaignConfig config = base;
      config.hang_factor = mode.hang_factor;
      config.journal_path = mode.journal ? journal_path : "";

      const dvf::kernels::Stopwatch watch;
      const auto stats = dvf::kernels::run_injection_campaign(*kernel, config);
      const double seconds = watch.seconds();
      if (mode.hang_factor == 0.0 && !mode.journal) {
        bare_seconds = seconds;
      }

      std::uint64_t trials = 0;
      std::uint64_t sdc = 0;
      std::uint64_t due = 0;
      for (const auto& s : stats) {
        trials += s.trials;
        sdc += s.sdc;
        due += s.due_exception + s.due_hang + s.due_invalid;
      }
      const double overhead = 100.0 * (seconds / bare_seconds - 1.0);
      table.add_row({kernel->name(), mode.name,
                     dvf::num(static_cast<double>(trials)),
                     dvf::num(seconds, 3),
                     dvf::num(static_cast<double>(trials) / seconds, 1),
                     dvf::num(overhead, 1)});
      json.add(dvf::bench::JsonRecords::Record{}
                   .field("study", "overhead")
                   .field("kernel", kernel->name())
                   .field("mode", mode.name)
                   .field("trials", trials)
                   .field("sdc", sdc)
                   .field("due", due)
                   .field("wall_s", seconds)
                   .field("overhead_pct", overhead));
      if (mode.journal) {
        std::remove(journal_path.c_str());
      }
    }
  }
  std::cout << table << "\n";
}

/// Thread-scaling study: the same campaign at 1..N threads, verifying the
/// engine's bit-identical determinism claim while measuring throughput.
void scaling_study(dvf::bench::JsonRecords& json) {
  std::cout << dvf::banner(
      "Campaign thread scaling (trials/sec; results must be bit-identical)");

  const unsigned hw = dvf::parallel::default_thread_count();
  std::vector<unsigned> thread_counts = {1};
  for (unsigned t = 2; t <= std::max(4u, hw); t *= 2) {
    thread_counts.push_back(t);
  }
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
  }

  dvf::Table table({"kernel", "threads", "trials", "wall_s", "trials/s",
                    "speedup", "identical"});
  auto suite = dvf::kernels::make_verification_suite();
  for (auto& kernel : suite) {
    // FT and VM re-run in milliseconds, giving the scaling study enough
    // trials to matter without dominating the harness.
    if (kernel->name() != "VM" && kernel->name() != "FT") {
      continue;
    }
    dvf::kernels::CampaignConfig config;
    config.trials_per_structure = 400;

    // Untimed warm-up so the serial baseline does not absorb one-off costs
    // (page faults, allocator growth, instruction-cache fill) that would
    // inflate every later speedup figure.
    (void)dvf::kernels::run_injection_campaign(*kernel, config);

    std::vector<dvf::kernels::StructureInjectionStats> reference;
    double serial_seconds = 0.0;
    for (const unsigned threads : thread_counts) {
      config.threads = threads;
      const dvf::kernels::Stopwatch watch;
      const auto stats = dvf::kernels::run_injection_campaign(*kernel, config);
      const double seconds = watch.seconds();

      std::uint64_t trials = 0;
      for (const auto& s : stats) {
        trials += s.trials;
      }
      const bool same = threads == 1 || identical(stats, reference);
      if (threads == 1) {
        reference = stats;
        serial_seconds = seconds;
      }
      const double rate = static_cast<double>(trials) / seconds;
      table.add_row({kernel->name(), std::to_string(threads),
                     dvf::num(static_cast<double>(trials)),
                     dvf::num(seconds, 3), dvf::num(rate, 1),
                     dvf::num(serial_seconds / seconds, 2),
                     same ? "yes" : "NO"});
      json.add(dvf::bench::JsonRecords::Record{}
                   .field("kernel", kernel->name())
                   .field("threads", threads)
                   .field("trials", trials)
                   .field("wall_s", seconds)
                   .field("trials_per_s", rate)
                   .field("speedup_vs_serial", serial_seconds / seconds)
                   .field("bit_identical", same ? "yes" : "no"));
      if (!same) {
        std::cerr << "FATAL: campaign results diverged at " << threads
                  << " threads\n";
        std::exit(1);
      }
    }
  }
  std::cout << table << "\n";
}

}  // namespace

int main() {
  // Record the whole harness, so BENCH_campaign.json carries the outcome
  // counters and journal-flush timings next to the wall-clock records.
  dvf::obs::set_enabled(true);
  dvf::bench::JsonRecords json;
  scaling_study(json);
  overhead_study(json);
  std::cout << dvf::banner(
      "Fault injection vs DVF: does the analytical metric rank structures "
      "like ground-truth corruption rates?");

  const dvf::DvfCalculator calc(
      dvf::Machine::with_cache(dvf::caches::small_verification()));

  dvf::Table table({"kernel", "structure", "trials", "corrupted|inj_%",
                    "sdc", "due", "risk (rate*S_d)", "DVF", "DVF_rank",
                    "risk_rank"});
  dvf::Table summary({"kernel", "corr(DVF, rate)", "corr(DVF, risk)",
                      "injection_cost_s", "dvf_cost_s"});

  auto suite = dvf::kernels::make_verification_suite();
  for (auto& kernel : suite) {
    // The campaign re-runs the kernel trials*structures times; keep the
    // expensive kernels affordable.
    dvf::kernels::CampaignConfig config;
    config.trials_per_structure =
        (kernel->name() == "CG" || kernel->name() == "MG") ? 40 : 200;

    const dvf::kernels::Stopwatch injection_watch;
    const auto stats = dvf::kernels::run_injection_campaign(*kernel, config);
    const double injection_seconds = injection_watch.seconds();

    const dvf::kernels::Stopwatch dvf_watch;
    const double seconds = kernel->run_timed();
    dvf::ModelSpec spec = kernel->model_spec();
    spec.exec_time_seconds = seconds;
    const dvf::ApplicationDvf app = calc.for_model(spec);
    const double dvf_seconds = dvf_watch.seconds();

    // Paired series: the raw per-flip corruption PROBABILITY (sensitivity),
    // and the incidence-weighted corruption RISK rate * S_d — faults strike
    // in proportion to footprint, which is the quantity DVF's N_error term
    // encodes. The risk series is the apples-to-apples ground truth. Both
    // use the rate CONDITIONED on the fault landing — the unconditional
    // corrupted/trials rate is diluted by trials whose trigger fired after
    // the structure's last use, which would handicap late-read structures
    // in the ranking for no physical reason.
    std::vector<double> corruption;
    std::vector<double> risk;
    std::vector<double> dvfs;
    for (const auto& s : stats) {
      corruption.push_back(s.corruption_rate_injected());
      const auto* result = app.find(s.structure);
      dvfs.push_back(result != nullptr ? result->dvf : 0.0);
      const double size =
          result != nullptr ? result->size_bytes : 0.0;
      risk.push_back(s.corruption_rate_injected() * size);
    }
    const auto rank_of = [](const std::vector<double>& xs, std::size_t i) {
      std::size_t rank = 1;
      for (std::size_t j = 0; j < xs.size(); ++j) {
        if (xs[j] > xs[i]) {
          ++rank;
        }
      }
      return rank;
    };
    for (std::size_t i = 0; i < stats.size(); ++i) {
      const auto& s = stats[i];
      table.add_row({kernel->name(), s.structure,
                     dvf::num(static_cast<double>(s.trials)),
                     dvf::num(100.0 * s.corruption_rate_injected(), 3),
                     dvf::num(static_cast<double>(s.sdc)),
                     dvf::num(static_cast<double>(
                         s.due_exception + s.due_hang + s.due_invalid)),
                     dvf::num(risk[i]), dvf::num(dvfs[i]),
                     std::to_string(rank_of(dvfs, i)),
                     std::to_string(rank_of(risk, i))});
    }
    summary.add_row({kernel->name(),
                     dvf::num(dvf::kernels::rank_correlation(corruption, dvfs),
                              3),
                     dvf::num(dvf::kernels::rank_correlation(risk, dvfs), 3),
                     dvf::num(injection_seconds, 3),
                     dvf::num(dvf_seconds, 3)});
  }

  std::cout << table << "\n" << summary;
  std::cout <<
      "\nReading: corr(DVF, risk) compares DVF against the incidence-\n"
      "weighted ground truth (corruption rate x footprint — faults strike\n"
      "big structures more often); corr(DVF, rate) against the raw per-flip\n"
      "sensitivity, which DVF does NOT claim to measure (small, always-live\n"
      "structures are the most sensitive per flip but rarely hit). The cost\n"
      "columns show the paper's speed argument: the analytical evaluation\n"
      "vs hundreds of full re-runs per structure.\n";
  json.set_metrics(dvf::obs::render_metrics_json(dvf::obs::snapshot_metrics()));
  json.write("campaign");
  return 0;
}
