// Cache-resident DVF — the paper's stated generalization (§I/§II "ongoing
// work involves additional hardware components"), exercised over the
// profiling suite: per structure, the DVF of its cache-resident slice
// (SRAM FIT, resident footprint, cache references) next to its main-memory
// DVF, showing why the paper starts from DRAM.
#include <iostream>

#include "dvf/dvf/cache_vulnerability.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/report/table.hpp"

int main() {
  std::cout << dvf::banner(
      "Extension: cache-resident DVF vs main-memory DVF (profiling suite, "
      "8MB cache, SRAM FIT = 10/Mbit vs DRAM FIT = 5000/Mbit)");

  const dvf::Machine machine =
      dvf::Machine::with_cache(dvf::caches::profiling_8mb());
  const dvf::DvfCalculator memory_calc(machine);
  const dvf::CacheVulnerabilityCalculator cache_calc(machine);

  dvf::Table table({"kernel", "structure", "resident_bytes", "cache_refs",
                    "cache DVF", "memory DVF", "cache/memory"});

  auto suite = dvf::kernels::make_profiling_suite();
  for (auto& kernel : suite) {
    const double seconds = kernel->run_timed();
    dvf::ModelSpec spec = kernel->model_spec();
    spec.exec_time_seconds = seconds;

    const auto cache_side = cache_calc.for_model(spec);
    const auto memory_side = memory_calc.for_model(spec);
    for (std::size_t i = 0; i < cache_side.size(); ++i) {
      const double mem_dvf = memory_side.structures[i].dvf;
      table.add_row(
          {kernel->name(), cache_side[i].name,
           dvf::num(cache_side[i].resident_bytes),
           dvf::num(cache_side[i].cache_references),
           dvf::num(cache_side[i].dvf), dvf::num(mem_dvf),
           dvf::num(mem_dvf == 0.0 ? 0.0 : cache_side[i].dvf / mem_dvf, 3)});
    }
  }

  std::cout << table;
  dvf::maybe_export_csv("extension_cache_dvf", table);
  std::cout <<
      "\nReading: cache references exceed memory accesses by orders of\n"
      "magnitude, but only the resident slice is exposed and SRAM's FIT is\n"
      "~500x lower — the net ratio shows which structures would justify\n"
      "cache-side protection (e.g. parity on hot ways) before DRAM ECC.\n";
  return 0;
}
