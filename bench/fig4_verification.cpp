// Figure 4 (a–f): verification of the CGPMAC estimates of main-memory
// accesses against the trace-driven LRU cache simulator, on the small and
// large verification caches (Table IV) and the Table V input sizes.
//
// Output: per kernel, per data structure, per cache — simulated misses,
// simulated misses+writebacks, the analytical estimate, and the relative
// error against the miss count (the paper reports <= 15%).
#include <iostream>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/math.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/estimate.hpp"
#include "dvf/report/table.hpp"

namespace {

void verify_on(dvf::kernels::KernelCase& kernel, const dvf::CacheConfig& cache,
               dvf::Table& table) {
  dvf::CacheSimulator sim(cache);
  kernel.run_traced(sim);
  const dvf::ModelSpec spec = kernel.model_spec();

  for (const dvf::DataStructureSpec& ds : spec.structures) {
    const auto id = kernel.registry().find(ds.name);
    if (!id.has_value()) {
      continue;
    }
    const dvf::CacheStats stats = sim.stats(*id);
    const double estimate = dvf::estimate_accesses(
        std::span<const dvf::PatternSpec>(ds.patterns), cache);
    const double err = dvf::math::relative_error(
        estimate, static_cast<double>(stats.misses));
    table.add_row({kernel.name(), ds.name, cache.name(),
                   dvf::num(static_cast<double>(stats.misses)),
                   dvf::num(static_cast<double>(stats.main_memory_accesses())),
                   dvf::num(estimate), dvf::num(100.0 * err, 3)});
  }
}

}  // namespace

int main() {
  std::cout << dvf::banner(
      "Figure 4: model verification — estimated vs simulated main-memory "
      "accesses");
  std::cout << "Inputs: Table V; caches: Table IV (verification rows)\n";
  std::cout << "  " << dvf::caches::small_verification().describe() << "\n";
  std::cout << "  " << dvf::caches::large_verification().describe() << "\n\n";

  dvf::Table table({"kernel", "structure", "cache", "sim_misses",
                    "sim_misses+wb", "model_estimate", "rel_err_%"});

  for (const auto& cache : {dvf::caches::small_verification(),
                            dvf::caches::large_verification()}) {
    auto suite = dvf::kernels::make_verification_suite();
    for (auto& kernel : suite) {
      verify_on(*kernel, cache, table);
    }
  }

  std::cout << table;
  dvf::maybe_export_csv("fig4_verification", table);
  std::cout << "\nPaper reference: estimation error within 15% in all cases "
               "(Fig. 4).\n";
  return 0;
}
