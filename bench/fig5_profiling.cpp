// Figure 5 (a–f): DVF profiling of the six kernels — per data structure and
// per application (DVF_a), across the four profiling cache configurations of
// Table IV, with the Table VI input sizes.
//
// Execution times T are measured on this host (the paper measured its own
// testbed); absolute DVF values therefore differ from the paper's, but the
// orderings and sensitivities — VM's A >> B, C; CG >> FT; MC >> NB; FT's
// jump below its working-set threshold — are the reproduced observations.
#include <iostream>

#include "dvf/dvf/calculator.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/report/table.hpp"

int main() {
  std::cout << dvf::banner(
      "Figure 5: DVF profiling (Table VI inputs, Table IV profiling caches, "
      "FIT = 5000/Mbit)");

  const std::vector<dvf::CacheConfig> caches = dvf::caches::all_profiling();
  std::vector<std::string> headers = {"kernel", "structure", "S_d (bytes)",
                                      "T (s)"};
  for (const auto& c : caches) {
    headers.push_back("DVF @" + c.name());
  }
  dvf::Table table(headers);

  auto suite = dvf::kernels::make_profiling_suite();
  for (auto& kernel : suite) {
    const double seconds = kernel->run_timed();
    dvf::ModelSpec spec = kernel->model_spec();
    spec.exec_time_seconds = seconds;

    // Evaluate against every cache; collect per-structure rows plus the
    // application total (Eq. 2).
    std::vector<dvf::ApplicationDvf> results;
    results.reserve(caches.size());
    for (const auto& cache : caches) {
      const dvf::DvfCalculator calc(dvf::Machine::with_cache(cache));
      results.push_back(calc.for_model(spec));
    }

    for (std::size_t s = 0; s < spec.structures.size(); ++s) {
      std::vector<std::string> row = {
          kernel->name(), spec.structures[s].name,
          dvf::num(static_cast<double>(spec.structures[s].size_bytes)),
          dvf::num(seconds, 3)};
      for (const auto& app : results) {
        row.push_back(dvf::num(app.structures[s].dvf));
      }
      table.add_row(std::move(row));
    }
    std::vector<std::string> total_row = {kernel->name(), "(DVF_a)", "", ""};
    for (const auto& app : results) {
      total_row.push_back(dvf::num(app.total));
    }
    table.add_row(std::move(total_row));
  }

  std::cout << table;
  dvf::maybe_export_csv("fig5_profiling", table);
  std::cout <<
      "\nPaper observations to compare against (Fig. 5):\n"
      "  (a) VM: A (larger stride) has clearly larger DVF than B and C.\n"
      "  (b,e) CG's DVF is orders of magnitude above FT's (bigger working\n"
      "        set and much longer runtime despite fewer accesses).\n"
      "  (c,f) MC's DVF is far above NB's (larger working set, more\n"
      "        iterations).\n"
      "  (e) FT jumps sharply once the cache is smaller than its working\n"
      "      set; streaming and random structures change gradually.\n";
  return 0;
}
