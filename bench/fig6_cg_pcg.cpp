// Figure 6: the algorithm-optimization use case (§V-A) — DVF of CG vs
// Jacobi-preconditioned PCG as the problem size grows, on the largest
// Table IV cache.
//
// Expected shape (paper): PCG is slightly MORE vulnerable at small n (same
// runtime, bigger working set), and LESS vulnerable at large n (the
// preconditioner's convergence advantage outweighs the extra footprint).
#include <iostream>

#include "dvf/dvf/calculator.hpp"
#include "dvf/kernels/cg.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/report/table.hpp"

namespace {

struct RunResult {
  double seconds = 0.0;
  std::uint64_t iterations = 0;
  double dvf = 0.0;
};

RunResult run_variant(std::uint64_t n, bool preconditioned,
                      const dvf::DvfCalculator& calc) {
  dvf::kernels::ConjugateGradient::Config config;
  config.n = n;
  config.preconditioned = preconditioned;
  dvf::kernels::ConjugateGradient solver(config);

  dvf::NullRecorder null;
  const dvf::kernels::Stopwatch watch;
  solver.run(null);
  RunResult result;
  result.seconds = watch.seconds();
  result.iterations = solver.iterations_run();

  dvf::ModelSpec spec = solver.model_spec();
  spec.exec_time_seconds = result.seconds;
  result.dvf = calc.for_model(spec).total;
  return result;
}

}  // namespace

int main() {
  std::cout << dvf::banner(
      "Figure 6: CG vs PCG — DVF as a function of problem size (use case "
      "V-A)");
  const dvf::DvfCalculator calc(
      dvf::Machine::with_cache(dvf::caches::profiling_8mb()));
  std::cout << "Cache: " << calc.machine().llc.describe()
            << ", FIT = " << calc.machine().memory.fit() << "/Mbit\n\n";

  dvf::Table table({"n", "CG iters", "CG T (s)", "CG DVF", "PCG iters",
                    "PCG T (s)", "PCG DVF", "PCG/CG DVF ratio"});

  for (std::uint64_t n = 100; n <= 800; n += 100) {
    const RunResult cg = run_variant(n, false, calc);
    const RunResult pcg = run_variant(n, true, calc);
    table.add_row({dvf::num(static_cast<double>(n)),
                   dvf::num(static_cast<double>(cg.iterations)),
                   dvf::num(cg.seconds, 3), dvf::num(cg.dvf),
                   dvf::num(static_cast<double>(pcg.iterations)),
                   dvf::num(pcg.seconds, 3), dvf::num(pcg.dvf),
                   dvf::num(pcg.dvf / cg.dvf, 3)});
  }

  std::cout << table;
  dvf::maybe_export_csv("fig6_cg_pcg", table);
  std::cout <<
      "\nPaper observation (Fig. 6): the ratio starts above 1 (PCG slightly\n"
      "worse: bigger working set, no runtime advantage yet) and falls below\n"
      "1 as n grows (preconditioning's time savings dominate).\n";
  return 0;
}
