// Figure 7: the hardware-protection use case (§V-B) — DVF of the VM kernel
// under SECDED and Chipkill ECC as a function of the performance budget
// spent on protection (Table VII FIT rates).
#include <iostream>

#include "dvf/dvf/ecc.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/report/table.hpp"

int main() {
  std::cout << dvf::banner(
      "Figure 7: impact of ECC on DVF vs performance degradation (use case "
      "V-B)");
  std::cout << "Table VII FIT rates: no-ECC 5000, SECDED 1300, Chipkill 0.02 "
               "(failures/1e9h/Mbit)\n\n";

  dvf::kernels::VectorMultiply::Config config;
  config.iterations = 100000;
  dvf::kernels::VectorMultiply vm(config);
  dvf::NullRecorder null;
  const dvf::kernels::Stopwatch watch;
  vm.run(null);
  const double seconds = watch.seconds();

  dvf::ModelSpec spec = vm.model_spec();
  spec.exec_time_seconds = seconds;

  const dvf::Machine machine =
      dvf::Machine::with_cache(dvf::caches::profiling_8mb());
  const dvf::EccTradeoffExplorer explorer(machine, spec);

  dvf::Table table({"degradation_%", "coverage", "DVF secded", "DVF chipkill"});
  dvf::EccSweepConfig secded;
  secded.scheme = dvf::EccScheme::kSecDed;
  dvf::EccSweepConfig chipkill;
  chipkill.scheme = dvf::EccScheme::kChipkill;

  const auto secded_points = explorer.sweep(secded);
  const auto chipkill_points = explorer.sweep(chipkill);
  for (std::size_t i = 0; i < secded_points.size(); ++i) {
    table.add_row({dvf::num(100.0 * secded_points[i].degradation, 3),
                   dvf::num(secded_points[i].coverage, 3),
                   dvf::num(secded_points[i].dvf),
                   dvf::num(chipkill_points[i].dvf)});
  }
  std::cout << table;
  dvf::maybe_export_csv("fig7_ecc", table);

  std::cout << "\nMinimum-DVF degradation: secded "
            << dvf::num(100.0 * dvf::EccTradeoffExplorer::optimal_degradation(
                                    secded_points))
            << "%, chipkill "
            << dvf::num(100.0 * dvf::EccTradeoffExplorer::optimal_degradation(
                                    chipkill_points))
            << "%\n";
  std::cout <<
      "Paper observations (Fig. 7): ECC lowers DVF; the minimum sits near\n"
      "5% degradation (full coverage reached), after which longer exposure\n"
      "raises vulnerability again; Chipkill dominates SECDED.\n";
  return 0;
}
