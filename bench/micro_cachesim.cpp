// Microbenchmarks of the verification substrate: trace-driven LRU cache
// simulation throughput (the cost the analytical models avoid) and the
// kernels' instrumented vs bare runtime.
#include <benchmark/benchmark.h>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/kernels/fft.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/machine/cache_config.hpp"

namespace {

void BM_CacheSimSequential(benchmark::State& state) {
  dvf::CacheSimulator sim(dvf::caches::profiling_8mb());
  std::uint64_t addr = 0;
  for (auto _ : state) {
    sim.on_load(0, addr, 8);
    addr += 8;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheSimSequential);

void BM_CacheSimRandom(benchmark::State& state) {
  dvf::CacheSimulator sim(dvf::caches::profiling_8mb());
  dvf::Xoshiro256 rng(99);
  for (auto _ : state) {
    sim.on_load(0, rng.below(1u << 28), 8);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheSimRandom);

void BM_VmBare(benchmark::State& state) {
  dvf::kernels::VectorMultiply::Config config;
  config.iterations = 100000;
  dvf::kernels::VectorMultiply vm(config);
  dvf::NullRecorder null;
  for (auto _ : state) {
    vm.reset();
    vm.run(null);
  }
}
BENCHMARK(BM_VmBare)->Unit(benchmark::kMillisecond);

void BM_VmSimulated(benchmark::State& state) {
  dvf::kernels::VectorMultiply::Config config;
  config.iterations = 100000;
  dvf::kernels::VectorMultiply vm(config);
  dvf::CacheSimulator sim(dvf::caches::profiling_8mb());
  for (auto _ : state) {
    vm.reset();
    vm.run(sim);
  }
}
BENCHMARK(BM_VmSimulated)->Unit(benchmark::kMillisecond);

void BM_FftBare(benchmark::State& state) {
  dvf::kernels::Fft1D::Config config;
  config.n = 2048;
  dvf::kernels::Fft1D fft(config);
  dvf::NullRecorder null;
  for (auto _ : state) {
    fft.reset();
    fft.run(null);
  }
}
BENCHMARK(BM_FftBare)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
