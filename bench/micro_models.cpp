// Microbenchmarks of the analytical model evaluators — the paper's speed
// claim is that DVF evaluation costs seconds rather than the hours of
// fault-injection campaigns; these show each pattern estimate is micro- to
// millisecond-scale.
#include <benchmark/benchmark.h>

#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/estimate.hpp"

namespace {

const dvf::CacheConfig& cache() {
  static const dvf::CacheConfig c = dvf::caches::profiling_8mb();
  return c;
}

void BM_Streaming(benchmark::State& state) {
  dvf::StreamingSpec spec;
  spec.element_bytes = 8;
  spec.element_count = static_cast<std::uint64_t>(state.range(0));
  spec.stride_elements = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dvf::estimate_streaming(spec, cache()));
  }
}
BENCHMARK(BM_Streaming)->Arg(1000)->Arg(1000000)->Arg(100000000);

void BM_RandomUniform(benchmark::State& state) {
  dvf::RandomSpec spec;
  spec.element_count = static_cast<std::uint64_t>(state.range(0));
  spec.element_bytes = 32;
  spec.visits_per_iteration = 200;
  spec.iterations = 100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dvf::estimate_random(spec, cache()));
  }
}
BENCHMARK(BM_RandomUniform)->Arg(100000)->Arg(1000000)->Arg(10000000);

void BM_RandomIrm(benchmark::State& state) {
  dvf::RandomSpec spec;
  spec.element_count = static_cast<std::uint64_t>(state.range(0));
  spec.element_bytes = 32;
  spec.visits_per_iteration = 200;
  spec.iterations = 100000;
  spec.sorted_visit_fractions.resize(spec.element_count);
  for (std::size_t i = 0; i < spec.sorted_visit_fractions.size(); ++i) {
    spec.sorted_visit_fractions[i] = 1.0 / static_cast<double>(i + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dvf::estimate_random(spec, cache()));
  }
}
BENCHMARK(BM_RandomIrm)->Arg(100000)->Arg(1000000);

void BM_TemplateStackDistance(benchmark::State& state) {
  // A stencil-like template: 5 references per point over a 3-D grid edge.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  dvf::TemplateSpec spec;
  spec.element_bytes = 8;
  for (std::uint64_t i = 1; i + 1 < n; ++i) {
    for (std::uint64_t j = 1; j + 1 < n; ++j) {
      for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t center = (i * n + j) * n + k;
        spec.element_indices.push_back(center - n);
        spec.element_indices.push_back(center + n);
        spec.element_indices.push_back(center - n * n);
        spec.element_indices.push_back(center + n * n);
        spec.element_indices.push_back(center);
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dvf::estimate_template(spec, cache()));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                spec.element_indices.size()));
}
BENCHMARK(BM_TemplateStackDistance)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Reuse(benchmark::State& state) {
  dvf::ReuseSpec spec;
  spec.self_bytes = static_cast<std::uint64_t>(state.range(0));
  spec.other_bytes = spec.self_bytes * 3;
  spec.reuse_rounds = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dvf::estimate_reuse(spec, cache()));
  }
}
BENCHMARK(BM_Reuse)->Arg(64 * 1024)->Arg(16 * 1024 * 1024);

}  // namespace

BENCHMARK_MAIN();
