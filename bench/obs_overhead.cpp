// Observability-layer overhead harness.
//
// The obs layer promises (docs/observability.md) that when disabled it costs
// one relaxed atomic load per hook — so instrumenting the cache simulator's
// replay() must not move BENCH_cachesim throughput by more than 2%. This
// harness pins that contract from both ends:
//   - replay_off / replay_on: the instrumented hot path with the layer
//     disabled vs recording, as end-to-end accesses/sec.
//   - hook micro-costs: ns per disabled hook branch, per counter add, per
//     histogram record and per span open+close, so a regression is
//     attributable to the exact primitive that got slower.
// Writes BENCH_obs_overhead.json, metrics block included.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/failpoint.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/report/table.hpp"

namespace {

constexpr std::uint64_t kAccesses = 2'000'000;
constexpr std::uint64_t kHookOps = 20'000'000;
constexpr std::uint64_t kSpanOps = 2'000'000;
constexpr int kReps = 3;

std::vector<dvf::MemoryRecord> make_trace() {
  std::vector<dvf::MemoryRecord> records;
  records.reserve(kAccesses);
  dvf::Xoshiro256 rng(2014);
  for (std::uint64_t i = 0; i < kAccesses; ++i) {
    records.push_back({rng.below(1u << 28), 8,
                       static_cast<dvf::DsId>(i % 8), (i & 7) == 0});
  }
  return records;
}

/// Best-of-kReps replay throughput in accesses/sec.
double replay_rate(const std::vector<dvf::MemoryRecord>& records) {
  const dvf::CacheConfig cache("pow2-8192set", 8, 8192, 64);
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    dvf::CacheSimulator sim(cache);
    sim.reserve_structures(8);
    const dvf::kernels::Stopwatch watch;
    sim.replay(records);
    const double rate = static_cast<double>(kAccesses) / watch.seconds();
    best = std::max(best, rate);
  }
  return best;
}

}  // namespace

int main() {
  std::cout << dvf::banner(
      "Observability overhead: disabled-path branch cost on the replay hot "
      "path, plus per-primitive recording costs");

  const auto records = make_trace();

  dvf::obs::set_enabled(false);
  const double rate_off = replay_rate(records);
  dvf::obs::set_enabled(true);
  const double rate_on = replay_rate(records);
  const double overhead_pct = 100.0 * (rate_off - rate_on) / rate_off;

  // Primitive micro-costs while recording. The disabled branch is measured
  // with the layer off; the volatile sink keeps the loop from folding.
  dvf::obs::set_enabled(false);
  volatile bool sink = false;
  dvf::kernels::Stopwatch branch_watch;
  for (std::uint64_t i = 0; i < kHookOps; ++i) {
    sink = dvf::obs::enabled();
  }
  const double branch_ns =
      branch_watch.seconds() * 1e9 / static_cast<double>(kHookOps);
  (void)sink;

  dvf::obs::set_enabled(true);
  const dvf::obs::Counter counter = dvf::obs::counter("bench.counter_cost");
  dvf::kernels::Stopwatch counter_watch;
  for (std::uint64_t i = 0; i < kHookOps; ++i) {
    counter.add();
  }
  const double counter_ns =
      counter_watch.seconds() * 1e9 / static_cast<double>(kHookOps);

  const dvf::obs::Histogram hist = dvf::obs::histogram("bench.hist_cost");
  dvf::kernels::Stopwatch hist_watch;
  for (std::uint64_t i = 0; i < kHookOps; ++i) {
    hist.record(i);
  }
  const double hist_ns =
      hist_watch.seconds() * 1e9 / static_cast<double>(kHookOps);

  dvf::kernels::Stopwatch span_watch;
  for (std::uint64_t i = 0; i < kSpanOps; ++i) {
    const dvf::obs::ScopedSpan span("bench.span_cost");
  }
  const double span_ns =
      span_watch.seconds() * 1e9 / static_cast<double>(kSpanOps);
  dvf::obs::set_enabled(false);

  // The failpoint subsystem makes the same disabled-path promise as obs:
  // one relaxed atomic load per DVF_FAILPOINT site when no schedule is
  // configured (docs/resilience.md "Environment-fault injection").
  dvf::failpoint::clear();
  volatile bool fp_sink = false;
  dvf::kernels::Stopwatch failpoint_watch;
  for (std::uint64_t i = 0; i < kHookOps; ++i) {
    fp_sink = static_cast<bool>(DVF_FAILPOINT("test.bench_cost"));
  }
  const double failpoint_ns =
      failpoint_watch.seconds() * 1e9 / static_cast<double>(kHookOps);
  (void)fp_sink;

  dvf::Table table({"measure", "value"});
  table.add_row({"replay off (Macc/s)", dvf::num(rate_off / 1e6, 2)});
  table.add_row({"replay on (Macc/s)", dvf::num(rate_on / 1e6, 2)});
  table.add_row({"enabled overhead (%)", dvf::num(overhead_pct, 2)});
  table.add_row({"disabled branch (ns)", dvf::num(branch_ns, 2)});
  table.add_row({"counter add (ns)", dvf::num(counter_ns, 2)});
  table.add_row({"histogram record (ns)", dvf::num(hist_ns, 2)});
  table.add_row({"span open+close (ns)", dvf::num(span_ns, 2)});
  table.add_row({"failpoint disabled (ns)", dvf::num(failpoint_ns, 2)});
  std::cout << table << "\n";

  dvf::bench::JsonRecords json;
  json.add(dvf::bench::JsonRecords::Record{}
               .field("scenario", std::string("replay_off"))
               .field("accesses", kAccesses)
               .field("accesses_per_s", rate_off));
  json.add(dvf::bench::JsonRecords::Record{}
               .field("scenario", std::string("replay_on"))
               .field("accesses", kAccesses)
               .field("accesses_per_s", rate_on)
               .field("enabled_overhead_pct", overhead_pct));
  json.add(dvf::bench::JsonRecords::Record{}
               .field("scenario", std::string("primitives"))
               .field("disabled_branch_ns", branch_ns)
               .field("counter_add_ns", counter_ns)
               .field("histogram_record_ns", hist_ns)
               .field("span_ns", span_ns)
               .field("failpoint_disabled_ns", failpoint_ns));
  json.set_metrics(dvf::obs::render_metrics_json(dvf::obs::snapshot_metrics()));
  json.write("obs_overhead");
  return 0;
}
