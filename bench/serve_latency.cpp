// Serve-path latency harness.
//
// The `dvfc serve` daemon exists to amortize the DSL front end across
// repeat traffic, so the number this harness pins is the cold-compile vs
// cache-hit latency split (same request, miss path runs lex/parse/analyze,
// hit path skips them), plus the admission-control behavior the robustness
// contract promises: offered load at 2x queue capacity sheds with typed
// `overloaded` responses instead of queueing unboundedly.
//
//   - cold_compile: N distinct sources (a varied param literal defeats the
//     source-fingerprint cache) through one Engine; per-request latency.
//   - cache_hit:    the same source N times; first request warms, the rest
//     are hits.
//   - shed_2x:      a real Server on a Unix socket, one worker pinned on a
//     slow evaluation, then a burst of 2x queue_capacity frames; counts
//     overloaded responses against total offered.
//
// Writes BENCH_serve.json (schema-checked by scripts/check_bench_json.py).
// Set DVF_BENCH_QUICK=1 for a smaller request count (CI smoke).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/report/table.hpp"
#include "dvf/serve/engine.hpp"
#include "dvf/serve/json.hpp"
#include "dvf/serve/server.hpp"

namespace {

using dvf::serve::Engine;
using dvf::serve::json_escape_string;

std::string model_source(unsigned variant) {
  return "param n = " + std::to_string(256 + variant) +
         ";\n"
         "model \"bench\" {\n"
         "  time 0.5;\n"
         "  data A { elements n; element_size 8; }\n"
         "  pattern A stream { stride 1; repeat 4; }\n"
         "  data B { elements 2 * n; element_size 4; }\n"
         "  pattern B random { visits n; iterations 4; }\n"
         "}\n";
}

std::string eval_frame(std::uint64_t id, const std::string& source) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"eval\",\"source\":" + json_escape_string(source) + "}";
}

struct LatencyStats {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

LatencyStats summarize(std::vector<double>& samples_us) {
  LatencyStats stats;
  if (samples_us.empty()) {
    return stats;
  }
  double sum = 0.0;
  for (const double v : samples_us) {
    sum += v;
  }
  stats.mean_us = sum / static_cast<double>(samples_us.size());
  std::sort(samples_us.begin(), samples_us.end());
  stats.p50_us = samples_us[samples_us.size() / 2];
  stats.p99_us = samples_us[samples_us.size() * 99 / 100];
  return stats;
}

/// Runs `n` frames through the engine, one timed handle_line each. The
/// frame factory receives the request index.
template <typename FrameFn>
LatencyStats timed_requests(Engine& engine, std::uint64_t n,
                            FrameFn&& frame_of) {
  std::vector<double> samples_us;
  samples_us.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string frame = frame_of(i);
    const dvf::kernels::Stopwatch watch;
    const std::string response = engine.handle_line(frame);
    samples_us.push_back(watch.seconds() * 1e6);
    if (response.find("\"ok\":true") == std::string::npos) {
      std::cerr << "serve_latency: request failed: " << response << "\n";
      std::exit(1);
    }
  }
  return samples_us.empty() ? LatencyStats{} : summarize(samples_us);
}

/// Connects to the bench server's socket; exits on failure (the bench just
/// started it, so failure is a harness bug, not a measurement).
int connect_to(const std::string& path) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("serve_latency: socket");
    std::exit(1);
  }
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

/// Reads whole lines from `fd` until `want` lines arrived, EOF, or the
/// deadline passes — counting by line rather than waiting for EOF keeps
/// the harness independent of when the server closes the connection.
std::vector<std::string> read_lines(int fd, std::size_t want,
                                    double deadline_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(deadline_s));
  std::string buffer;
  std::vector<std::string> lines;
  char chunk[4096];
  while (lines.size() < want &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = read(fd, chunk, sizeof chunk);
    if (n == 0) {
      break;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t begin = 0;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      if (buffer[i] == '\n') {
        lines.push_back(buffer.substr(begin, i - begin));
        begin = i + 1;
      }
    }
    buffer.erase(0, begin);
  }
  return lines;
}

struct ShedOutcome {
  std::uint64_t offered = 0;
  std::uint64_t answered = 0;
  std::uint64_t shed = 0;
};

/// Floods a one-worker server with 2x queue_capacity eval frames while the
/// worker is pinned on a slow evaluation, then counts the typed
/// `overloaded` responses. Every offered frame must be answered.
ShedOutcome measure_shed(const std::string& socket_path) {
  dvf::serve::ServerConfig config;
  config.socket_path = socket_path;
  config.workers = 1;
  config.queue_capacity = 8;
  config.drain_grace_s = 30.0;
  // A template replay slow enough (~ms) that the burst outruns the worker.
  config.engine.max_expansion = std::uint64_t{1} << 20;
  dvf::serve::Server server(config);
  std::thread runner([&server] {
    if (server.run() != 0) {
      std::cerr << "serve_latency: server failed to start\n";
    }
  });

  int fd = -1;
  for (int i = 0; i < 2000 && (fd = connect_to(socket_path)) < 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (fd < 0) {
    std::cerr << "serve_latency: could not reach " << socket_path << "\n";
    std::exit(1);
  }

  const std::string slow =
      "model \"slow\" {\n"
      "  time 1;\n"
      "  data T { elements 262144; element_size 8; }\n"
      "  pattern T template { start (0); step 1; count 262144; repeat 4; }\n"
      "}\n";
  ShedOutcome outcome;
  std::string burst;
  const std::uint64_t frames = 2 * config.queue_capacity + 2;
  for (std::uint64_t i = 0; i < frames; ++i) {
    burst += eval_frame(i, slow);
    burst += "\n";
    ++outcome.offered;
  }
  std::size_t written = 0;
  while (written < burst.size()) {
    const ssize_t n =
        write(fd, burst.data() + written, burst.size() - written);
    if (n <= 0) {
      std::cerr << "serve_latency: burst write failed\n";
      std::exit(1);
    }
    written += static_cast<std::size_t>(n);
  }
  shutdown(fd, SHUT_WR);
  const std::vector<std::string> responses =
      read_lines(fd, outcome.offered, /*deadline_s=*/120.0);
  close(fd);
  for (const std::string& line : responses) {
    ++outcome.answered;
    if (line.find("\"kind\":\"overloaded\"") != std::string::npos) {
      ++outcome.shed;
    }
  }

  server.request_stop();
  runner.join();
  unlink(socket_path.c_str());
  return outcome;
}

}  // namespace

int main() {
  std::cout << dvf::banner(
      "dvfc serve latency: cold-compile vs compiled-model-cache hit, and "
      "load shedding at 2x queue capacity");

  const bool quick = std::getenv("DVF_BENCH_QUICK") != nullptr;
  const std::uint64_t requests = quick ? 50 : 400;

  dvf::obs::set_enabled(true);

  Engine engine;
  // Cold: every source distinct, so every request runs lex/parse/analyze.
  const LatencyStats cold = timed_requests(engine, requests, [](auto i) {
    return eval_frame(i, model_source(static_cast<unsigned>(i)));
  });
  // Hit: one warming request, then the same bytes over and over. The
  // variant only has to be distinct from every cold source (so the warming
  // request is a genuine miss); it must stay the same size so the hit/miss
  // split isolates the front end, not the evaluation.
  const std::string warm_source =
      model_source(static_cast<unsigned>(requests) + 1);
  (void)engine.handle_line(eval_frame(0, warm_source));
  const LatencyStats hit = timed_requests(engine, requests, [&](auto i) {
    return eval_frame(i + 1, warm_source);
  });

  const std::string socket_path =
      "/tmp/dvf_serve_bench_" + std::to_string(getpid()) + ".sock";
  const ShedOutcome shed = measure_shed(socket_path);
  const double shed_rate = shed.offered == 0
                               ? 0.0
                               : static_cast<double>(shed.shed) /
                                     static_cast<double>(shed.offered);

  dvf::Table table({"scenario", "mean (us)", "p50 (us)", "p99 (us)"});
  table.add_row({"cold compile", dvf::num(cold.mean_us, 1),
                 dvf::num(cold.p50_us, 1), dvf::num(cold.p99_us, 1)});
  table.add_row({"cache hit", dvf::num(hit.mean_us, 1),
                 dvf::num(hit.p50_us, 1), dvf::num(hit.p99_us, 1)});
  table.add_row(
      {"shed @2x", dvf::num(static_cast<double>(shed.shed), 0) + "/" +
                       dvf::num(static_cast<double>(shed.offered), 0),
       "-", "-"});
  std::cout << table << "\n";

  dvf::bench::JsonRecords json;
  json.add(dvf::bench::JsonRecords::Record{}
               .field("scenario", std::string("cold_compile"))
               .field("requests", requests)
               .field("mean_us", cold.mean_us)
               .field("p50_us", cold.p50_us)
               .field("p99_us", cold.p99_us));
  json.add(dvf::bench::JsonRecords::Record{}
               .field("scenario", std::string("cache_hit"))
               .field("requests", requests)
               .field("mean_us", hit.mean_us)
               .field("p50_us", hit.p50_us)
               .field("p99_us", hit.p99_us)
               .field("cache_hits", engine.cache().hits()));
  json.add(dvf::bench::JsonRecords::Record{}
               .field("scenario", std::string("shed_2x"))
               .field("offered", shed.offered)
               .field("answered", shed.answered)
               .field("shed", shed.shed)
               .field("shed_rate", shed_rate));
  json.set_metrics(
      dvf::obs::render_metrics_json(dvf::obs::snapshot_metrics()));
  json.write("serve");
  return 0;
}
