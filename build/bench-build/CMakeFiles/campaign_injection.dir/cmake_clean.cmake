file(REMOVE_RECURSE
  "../bench/campaign_injection"
  "../bench/campaign_injection.pdb"
  "CMakeFiles/campaign_injection.dir/campaign_injection.cpp.o"
  "CMakeFiles/campaign_injection.dir/campaign_injection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
