# Empty compiler generated dependencies file for campaign_injection.
# This may be replaced when dependencies are built.
