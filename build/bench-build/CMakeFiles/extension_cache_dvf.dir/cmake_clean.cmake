file(REMOVE_RECURSE
  "../bench/extension_cache_dvf"
  "../bench/extension_cache_dvf.pdb"
  "CMakeFiles/extension_cache_dvf.dir/extension_cache_dvf.cpp.o"
  "CMakeFiles/extension_cache_dvf.dir/extension_cache_dvf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_cache_dvf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
