# Empty compiler generated dependencies file for extension_cache_dvf.
# This may be replaced when dependencies are built.
