file(REMOVE_RECURSE
  "../bench/fig4_verification"
  "../bench/fig4_verification.pdb"
  "CMakeFiles/fig4_verification.dir/fig4_verification.cpp.o"
  "CMakeFiles/fig4_verification.dir/fig4_verification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
