# Empty compiler generated dependencies file for fig4_verification.
# This may be replaced when dependencies are built.
