file(REMOVE_RECURSE
  "../bench/fig5_profiling"
  "../bench/fig5_profiling.pdb"
  "CMakeFiles/fig5_profiling.dir/fig5_profiling.cpp.o"
  "CMakeFiles/fig5_profiling.dir/fig5_profiling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
