# Empty compiler generated dependencies file for fig5_profiling.
# This may be replaced when dependencies are built.
