file(REMOVE_RECURSE
  "../bench/fig6_cg_pcg"
  "../bench/fig6_cg_pcg.pdb"
  "CMakeFiles/fig6_cg_pcg.dir/fig6_cg_pcg.cpp.o"
  "CMakeFiles/fig6_cg_pcg.dir/fig6_cg_pcg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cg_pcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
