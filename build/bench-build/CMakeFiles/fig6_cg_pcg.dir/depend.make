# Empty dependencies file for fig6_cg_pcg.
# This may be replaced when dependencies are built.
