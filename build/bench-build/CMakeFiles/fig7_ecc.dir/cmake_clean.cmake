file(REMOVE_RECURSE
  "../bench/fig7_ecc"
  "../bench/fig7_ecc.pdb"
  "CMakeFiles/fig7_ecc.dir/fig7_ecc.cpp.o"
  "CMakeFiles/fig7_ecc.dir/fig7_ecc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
