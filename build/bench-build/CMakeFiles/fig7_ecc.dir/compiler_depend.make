# Empty compiler generated dependencies file for fig7_ecc.
# This may be replaced when dependencies are built.
