file(REMOVE_RECURSE
  "../bench/micro_cachesim"
  "../bench/micro_cachesim.pdb"
  "CMakeFiles/micro_cachesim.dir/micro_cachesim.cpp.o"
  "CMakeFiles/micro_cachesim.dir/micro_cachesim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
