# Empty compiler generated dependencies file for kernel_study.
# This may be replaced when dependencies are built.
