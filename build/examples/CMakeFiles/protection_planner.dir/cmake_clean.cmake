file(REMOVE_RECURSE
  "CMakeFiles/protection_planner.dir/protection_planner.cpp.o"
  "CMakeFiles/protection_planner.dir/protection_planner.cpp.o.d"
  "protection_planner"
  "protection_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protection_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
