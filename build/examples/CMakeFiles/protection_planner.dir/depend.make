# Empty dependencies file for protection_planner.
# This may be replaced when dependencies are built.
