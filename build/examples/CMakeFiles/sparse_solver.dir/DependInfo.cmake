
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sparse_solver.cpp" "examples/CMakeFiles/sparse_solver.dir/sparse_solver.cpp.o" "gcc" "examples/CMakeFiles/sparse_solver.dir/sparse_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/dvf_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/dvf_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/dvf_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/dvf/CMakeFiles/dvf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dvf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/dvf_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dvf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/dvf_report.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dvf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
