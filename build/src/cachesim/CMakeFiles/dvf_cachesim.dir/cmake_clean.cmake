file(REMOVE_RECURSE
  "CMakeFiles/dvf_cachesim.dir/cache_simulator.cpp.o"
  "CMakeFiles/dvf_cachesim.dir/cache_simulator.cpp.o.d"
  "CMakeFiles/dvf_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/dvf_cachesim.dir/hierarchy.cpp.o.d"
  "libdvf_cachesim.a"
  "libdvf_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvf_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
