file(REMOVE_RECURSE
  "libdvf_cachesim.a"
)
