# Empty compiler generated dependencies file for dvf_cachesim.
# This may be replaced when dependencies are built.
