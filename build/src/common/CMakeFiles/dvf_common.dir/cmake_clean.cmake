file(REMOVE_RECURSE
  "CMakeFiles/dvf_common.dir/math.cpp.o"
  "CMakeFiles/dvf_common.dir/math.cpp.o.d"
  "CMakeFiles/dvf_common.dir/string_util.cpp.o"
  "CMakeFiles/dvf_common.dir/string_util.cpp.o.d"
  "libdvf_common.a"
  "libdvf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
