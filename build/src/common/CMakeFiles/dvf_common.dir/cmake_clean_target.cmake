file(REMOVE_RECURSE
  "libdvf_common.a"
)
