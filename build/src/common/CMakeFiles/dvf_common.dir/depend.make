# Empty dependencies file for dvf_common.
# This may be replaced when dependencies are built.
