
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/analyzer.cpp" "src/dsl/CMakeFiles/dvf_dsl.dir/analyzer.cpp.o" "gcc" "src/dsl/CMakeFiles/dvf_dsl.dir/analyzer.cpp.o.d"
  "/root/repo/src/dsl/lexer.cpp" "src/dsl/CMakeFiles/dvf_dsl.dir/lexer.cpp.o" "gcc" "src/dsl/CMakeFiles/dvf_dsl.dir/lexer.cpp.o.d"
  "/root/repo/src/dsl/parser.cpp" "src/dsl/CMakeFiles/dvf_dsl.dir/parser.cpp.o" "gcc" "src/dsl/CMakeFiles/dvf_dsl.dir/parser.cpp.o.d"
  "/root/repo/src/dsl/printer.cpp" "src/dsl/CMakeFiles/dvf_dsl.dir/printer.cpp.o" "gcc" "src/dsl/CMakeFiles/dvf_dsl.dir/printer.cpp.o.d"
  "/root/repo/src/dsl/template_expander.cpp" "src/dsl/CMakeFiles/dvf_dsl.dir/template_expander.cpp.o" "gcc" "src/dsl/CMakeFiles/dvf_dsl.dir/template_expander.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dvf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dvf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/dvf_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/dvf/CMakeFiles/dvf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dvf_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
