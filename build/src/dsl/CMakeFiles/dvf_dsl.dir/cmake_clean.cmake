file(REMOVE_RECURSE
  "CMakeFiles/dvf_dsl.dir/analyzer.cpp.o"
  "CMakeFiles/dvf_dsl.dir/analyzer.cpp.o.d"
  "CMakeFiles/dvf_dsl.dir/lexer.cpp.o"
  "CMakeFiles/dvf_dsl.dir/lexer.cpp.o.d"
  "CMakeFiles/dvf_dsl.dir/parser.cpp.o"
  "CMakeFiles/dvf_dsl.dir/parser.cpp.o.d"
  "CMakeFiles/dvf_dsl.dir/printer.cpp.o"
  "CMakeFiles/dvf_dsl.dir/printer.cpp.o.d"
  "CMakeFiles/dvf_dsl.dir/template_expander.cpp.o"
  "CMakeFiles/dvf_dsl.dir/template_expander.cpp.o.d"
  "libdvf_dsl.a"
  "libdvf_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvf_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
