file(REMOVE_RECURSE
  "libdvf_dsl.a"
)
