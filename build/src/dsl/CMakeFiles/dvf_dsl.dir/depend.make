# Empty dependencies file for dvf_dsl.
# This may be replaced when dependencies are built.
