
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvf/cache_vulnerability.cpp" "src/dvf/CMakeFiles/dvf_core.dir/cache_vulnerability.cpp.o" "gcc" "src/dvf/CMakeFiles/dvf_core.dir/cache_vulnerability.cpp.o.d"
  "/root/repo/src/dvf/calculator.cpp" "src/dvf/CMakeFiles/dvf_core.dir/calculator.cpp.o" "gcc" "src/dvf/CMakeFiles/dvf_core.dir/calculator.cpp.o.d"
  "/root/repo/src/dvf/ecc.cpp" "src/dvf/CMakeFiles/dvf_core.dir/ecc.cpp.o" "gcc" "src/dvf/CMakeFiles/dvf_core.dir/ecc.cpp.o.d"
  "/root/repo/src/dvf/inference.cpp" "src/dvf/CMakeFiles/dvf_core.dir/inference.cpp.o" "gcc" "src/dvf/CMakeFiles/dvf_core.dir/inference.cpp.o.d"
  "/root/repo/src/dvf/protection.cpp" "src/dvf/CMakeFiles/dvf_core.dir/protection.cpp.o" "gcc" "src/dvf/CMakeFiles/dvf_core.dir/protection.cpp.o.d"
  "/root/repo/src/dvf/weighted.cpp" "src/dvf/CMakeFiles/dvf_core.dir/weighted.cpp.o" "gcc" "src/dvf/CMakeFiles/dvf_core.dir/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dvf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dvf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/dvf_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dvf_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
