file(REMOVE_RECURSE
  "CMakeFiles/dvf_core.dir/cache_vulnerability.cpp.o"
  "CMakeFiles/dvf_core.dir/cache_vulnerability.cpp.o.d"
  "CMakeFiles/dvf_core.dir/calculator.cpp.o"
  "CMakeFiles/dvf_core.dir/calculator.cpp.o.d"
  "CMakeFiles/dvf_core.dir/ecc.cpp.o"
  "CMakeFiles/dvf_core.dir/ecc.cpp.o.d"
  "CMakeFiles/dvf_core.dir/inference.cpp.o"
  "CMakeFiles/dvf_core.dir/inference.cpp.o.d"
  "CMakeFiles/dvf_core.dir/protection.cpp.o"
  "CMakeFiles/dvf_core.dir/protection.cpp.o.d"
  "CMakeFiles/dvf_core.dir/weighted.cpp.o"
  "CMakeFiles/dvf_core.dir/weighted.cpp.o.d"
  "libdvf_core.a"
  "libdvf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
