file(REMOVE_RECURSE
  "libdvf_core.a"
)
