# Empty compiler generated dependencies file for dvf_core.
# This may be replaced when dependencies are built.
