
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cg.cpp" "src/kernels/CMakeFiles/dvf_kernels.dir/cg.cpp.o" "gcc" "src/kernels/CMakeFiles/dvf_kernels.dir/cg.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/kernels/CMakeFiles/dvf_kernels.dir/fft.cpp.o" "gcc" "src/kernels/CMakeFiles/dvf_kernels.dir/fft.cpp.o.d"
  "/root/repo/src/kernels/injection_campaign.cpp" "src/kernels/CMakeFiles/dvf_kernels.dir/injection_campaign.cpp.o" "gcc" "src/kernels/CMakeFiles/dvf_kernels.dir/injection_campaign.cpp.o.d"
  "/root/repo/src/kernels/montecarlo.cpp" "src/kernels/CMakeFiles/dvf_kernels.dir/montecarlo.cpp.o" "gcc" "src/kernels/CMakeFiles/dvf_kernels.dir/montecarlo.cpp.o.d"
  "/root/repo/src/kernels/multigrid.cpp" "src/kernels/CMakeFiles/dvf_kernels.dir/multigrid.cpp.o" "gcc" "src/kernels/CMakeFiles/dvf_kernels.dir/multigrid.cpp.o.d"
  "/root/repo/src/kernels/nbody.cpp" "src/kernels/CMakeFiles/dvf_kernels.dir/nbody.cpp.o" "gcc" "src/kernels/CMakeFiles/dvf_kernels.dir/nbody.cpp.o.d"
  "/root/repo/src/kernels/sparse_cg.cpp" "src/kernels/CMakeFiles/dvf_kernels.dir/sparse_cg.cpp.o" "gcc" "src/kernels/CMakeFiles/dvf_kernels.dir/sparse_cg.cpp.o.d"
  "/root/repo/src/kernels/suite.cpp" "src/kernels/CMakeFiles/dvf_kernels.dir/suite.cpp.o" "gcc" "src/kernels/CMakeFiles/dvf_kernels.dir/suite.cpp.o.d"
  "/root/repo/src/kernels/vm.cpp" "src/kernels/CMakeFiles/dvf_kernels.dir/vm.cpp.o" "gcc" "src/kernels/CMakeFiles/dvf_kernels.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dvf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dvf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dvf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/dvf_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/dvf_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/dvf/CMakeFiles/dvf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
