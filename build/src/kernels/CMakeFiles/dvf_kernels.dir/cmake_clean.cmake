file(REMOVE_RECURSE
  "CMakeFiles/dvf_kernels.dir/cg.cpp.o"
  "CMakeFiles/dvf_kernels.dir/cg.cpp.o.d"
  "CMakeFiles/dvf_kernels.dir/fft.cpp.o"
  "CMakeFiles/dvf_kernels.dir/fft.cpp.o.d"
  "CMakeFiles/dvf_kernels.dir/injection_campaign.cpp.o"
  "CMakeFiles/dvf_kernels.dir/injection_campaign.cpp.o.d"
  "CMakeFiles/dvf_kernels.dir/montecarlo.cpp.o"
  "CMakeFiles/dvf_kernels.dir/montecarlo.cpp.o.d"
  "CMakeFiles/dvf_kernels.dir/multigrid.cpp.o"
  "CMakeFiles/dvf_kernels.dir/multigrid.cpp.o.d"
  "CMakeFiles/dvf_kernels.dir/nbody.cpp.o"
  "CMakeFiles/dvf_kernels.dir/nbody.cpp.o.d"
  "CMakeFiles/dvf_kernels.dir/sparse_cg.cpp.o"
  "CMakeFiles/dvf_kernels.dir/sparse_cg.cpp.o.d"
  "CMakeFiles/dvf_kernels.dir/suite.cpp.o"
  "CMakeFiles/dvf_kernels.dir/suite.cpp.o.d"
  "CMakeFiles/dvf_kernels.dir/vm.cpp.o"
  "CMakeFiles/dvf_kernels.dir/vm.cpp.o.d"
  "libdvf_kernels.a"
  "libdvf_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvf_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
