file(REMOVE_RECURSE
  "libdvf_kernels.a"
)
