# Empty compiler generated dependencies file for dvf_kernels.
# This may be replaced when dependencies are built.
