
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cache_config.cpp" "src/machine/CMakeFiles/dvf_machine.dir/cache_config.cpp.o" "gcc" "src/machine/CMakeFiles/dvf_machine.dir/cache_config.cpp.o.d"
  "/root/repo/src/machine/memory_model.cpp" "src/machine/CMakeFiles/dvf_machine.dir/memory_model.cpp.o" "gcc" "src/machine/CMakeFiles/dvf_machine.dir/memory_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dvf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
