file(REMOVE_RECURSE
  "CMakeFiles/dvf_machine.dir/cache_config.cpp.o"
  "CMakeFiles/dvf_machine.dir/cache_config.cpp.o.d"
  "CMakeFiles/dvf_machine.dir/memory_model.cpp.o"
  "CMakeFiles/dvf_machine.dir/memory_model.cpp.o.d"
  "libdvf_machine.a"
  "libdvf_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvf_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
