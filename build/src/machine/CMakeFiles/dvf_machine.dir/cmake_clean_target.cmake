file(REMOVE_RECURSE
  "libdvf_machine.a"
)
