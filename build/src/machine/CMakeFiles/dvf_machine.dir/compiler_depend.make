# Empty compiler generated dependencies file for dvf_machine.
# This may be replaced when dependencies are built.
