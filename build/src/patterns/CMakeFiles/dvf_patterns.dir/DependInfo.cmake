
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/patterns/estimate.cpp" "src/patterns/CMakeFiles/dvf_patterns.dir/estimate.cpp.o" "gcc" "src/patterns/CMakeFiles/dvf_patterns.dir/estimate.cpp.o.d"
  "/root/repo/src/patterns/random.cpp" "src/patterns/CMakeFiles/dvf_patterns.dir/random.cpp.o" "gcc" "src/patterns/CMakeFiles/dvf_patterns.dir/random.cpp.o.d"
  "/root/repo/src/patterns/reuse.cpp" "src/patterns/CMakeFiles/dvf_patterns.dir/reuse.cpp.o" "gcc" "src/patterns/CMakeFiles/dvf_patterns.dir/reuse.cpp.o.d"
  "/root/repo/src/patterns/streaming.cpp" "src/patterns/CMakeFiles/dvf_patterns.dir/streaming.cpp.o" "gcc" "src/patterns/CMakeFiles/dvf_patterns.dir/streaming.cpp.o.d"
  "/root/repo/src/patterns/template_access.cpp" "src/patterns/CMakeFiles/dvf_patterns.dir/template_access.cpp.o" "gcc" "src/patterns/CMakeFiles/dvf_patterns.dir/template_access.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dvf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dvf_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
