file(REMOVE_RECURSE
  "CMakeFiles/dvf_patterns.dir/estimate.cpp.o"
  "CMakeFiles/dvf_patterns.dir/estimate.cpp.o.d"
  "CMakeFiles/dvf_patterns.dir/random.cpp.o"
  "CMakeFiles/dvf_patterns.dir/random.cpp.o.d"
  "CMakeFiles/dvf_patterns.dir/reuse.cpp.o"
  "CMakeFiles/dvf_patterns.dir/reuse.cpp.o.d"
  "CMakeFiles/dvf_patterns.dir/streaming.cpp.o"
  "CMakeFiles/dvf_patterns.dir/streaming.cpp.o.d"
  "CMakeFiles/dvf_patterns.dir/template_access.cpp.o"
  "CMakeFiles/dvf_patterns.dir/template_access.cpp.o.d"
  "libdvf_patterns.a"
  "libdvf_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvf_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
