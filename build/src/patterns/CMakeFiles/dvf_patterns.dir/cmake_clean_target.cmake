file(REMOVE_RECURSE
  "libdvf_patterns.a"
)
