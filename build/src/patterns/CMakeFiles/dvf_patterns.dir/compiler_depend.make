# Empty compiler generated dependencies file for dvf_patterns.
# This may be replaced when dependencies are built.
