file(REMOVE_RECURSE
  "CMakeFiles/dvf_report.dir/table.cpp.o"
  "CMakeFiles/dvf_report.dir/table.cpp.o.d"
  "libdvf_report.a"
  "libdvf_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvf_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
