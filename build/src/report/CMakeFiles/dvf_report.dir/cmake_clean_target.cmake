file(REMOVE_RECURSE
  "libdvf_report.a"
)
