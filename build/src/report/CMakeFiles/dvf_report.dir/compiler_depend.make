# Empty compiler generated dependencies file for dvf_report.
# This may be replaced when dependencies are built.
