# Empty dependencies file for dvf_report.
# This may be replaced when dependencies are built.
