file(REMOVE_RECURSE
  "CMakeFiles/dvf_trace.dir/registry.cpp.o"
  "CMakeFiles/dvf_trace.dir/registry.cpp.o.d"
  "CMakeFiles/dvf_trace.dir/trace_io.cpp.o"
  "CMakeFiles/dvf_trace.dir/trace_io.cpp.o.d"
  "libdvf_trace.a"
  "libdvf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
