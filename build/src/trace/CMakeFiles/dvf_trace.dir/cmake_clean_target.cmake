file(REMOVE_RECURSE
  "libdvf_trace.a"
)
