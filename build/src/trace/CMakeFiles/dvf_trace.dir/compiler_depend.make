# Empty compiler generated dependencies file for dvf_trace.
# This may be replaced when dependencies are built.
