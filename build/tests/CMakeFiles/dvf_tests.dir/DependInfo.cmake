
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_simulator.cpp" "tests/CMakeFiles/dvf_tests.dir/test_cache_simulator.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_cache_simulator.cpp.o.d"
  "/root/repo/tests/test_cache_vulnerability.cpp" "tests/CMakeFiles/dvf_tests.dir/test_cache_vulnerability.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_cache_vulnerability.cpp.o.d"
  "/root/repo/tests/test_calculator.cpp" "tests/CMakeFiles/dvf_tests.dir/test_calculator.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_calculator.cpp.o.d"
  "/root/repo/tests/test_coverage_gaps.cpp" "tests/CMakeFiles/dvf_tests.dir/test_coverage_gaps.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_coverage_gaps.cpp.o.d"
  "/root/repo/tests/test_dsl_analyzer.cpp" "tests/CMakeFiles/dvf_tests.dir/test_dsl_analyzer.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_dsl_analyzer.cpp.o.d"
  "/root/repo/tests/test_dsl_lexer.cpp" "tests/CMakeFiles/dvf_tests.dir/test_dsl_lexer.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_dsl_lexer.cpp.o.d"
  "/root/repo/tests/test_dsl_parser.cpp" "tests/CMakeFiles/dvf_tests.dir/test_dsl_parser.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_dsl_parser.cpp.o.d"
  "/root/repo/tests/test_dsl_printer.cpp" "tests/CMakeFiles/dvf_tests.dir/test_dsl_printer.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_dsl_printer.cpp.o.d"
  "/root/repo/tests/test_dsl_templates.cpp" "tests/CMakeFiles/dvf_tests.dir/test_dsl_templates.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_dsl_templates.cpp.o.d"
  "/root/repo/tests/test_ecc.cpp" "tests/CMakeFiles/dvf_tests.dir/test_ecc.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_ecc.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/dvf_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_fault_injection.cpp" "tests/CMakeFiles/dvf_tests.dir/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_fault_injection.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/dvf_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_inference.cpp" "tests/CMakeFiles/dvf_tests.dir/test_inference.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_inference.cpp.o.d"
  "/root/repo/tests/test_integration_dvf.cpp" "tests/CMakeFiles/dvf_tests.dir/test_integration_dvf.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_integration_dvf.cpp.o.d"
  "/root/repo/tests/test_integration_verification.cpp" "tests/CMakeFiles/dvf_tests.dir/test_integration_verification.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_integration_verification.cpp.o.d"
  "/root/repo/tests/test_kernels_cg.cpp" "tests/CMakeFiles/dvf_tests.dir/test_kernels_cg.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_kernels_cg.cpp.o.d"
  "/root/repo/tests/test_kernels_fft.cpp" "tests/CMakeFiles/dvf_tests.dir/test_kernels_fft.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_kernels_fft.cpp.o.d"
  "/root/repo/tests/test_kernels_montecarlo.cpp" "tests/CMakeFiles/dvf_tests.dir/test_kernels_montecarlo.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_kernels_montecarlo.cpp.o.d"
  "/root/repo/tests/test_kernels_multigrid.cpp" "tests/CMakeFiles/dvf_tests.dir/test_kernels_multigrid.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_kernels_multigrid.cpp.o.d"
  "/root/repo/tests/test_kernels_nbody.cpp" "tests/CMakeFiles/dvf_tests.dir/test_kernels_nbody.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_kernels_nbody.cpp.o.d"
  "/root/repo/tests/test_kernels_sparse_cg.cpp" "tests/CMakeFiles/dvf_tests.dir/test_kernels_sparse_cg.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_kernels_sparse_cg.cpp.o.d"
  "/root/repo/tests/test_kernels_suite.cpp" "tests/CMakeFiles/dvf_tests.dir/test_kernels_suite.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_kernels_suite.cpp.o.d"
  "/root/repo/tests/test_kernels_vm.cpp" "tests/CMakeFiles/dvf_tests.dir/test_kernels_vm.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_kernels_vm.cpp.o.d"
  "/root/repo/tests/test_math.cpp" "tests/CMakeFiles/dvf_tests.dir/test_math.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_math.cpp.o.d"
  "/root/repo/tests/test_memory_model.cpp" "tests/CMakeFiles/dvf_tests.dir/test_memory_model.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_memory_model.cpp.o.d"
  "/root/repo/tests/test_model_vs_sim.cpp" "tests/CMakeFiles/dvf_tests.dir/test_model_vs_sim.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_model_vs_sim.cpp.o.d"
  "/root/repo/tests/test_protection.cpp" "tests/CMakeFiles/dvf_tests.dir/test_protection.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_protection.cpp.o.d"
  "/root/repo/tests/test_random_pattern.cpp" "tests/CMakeFiles/dvf_tests.dir/test_random_pattern.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_random_pattern.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/dvf_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_reuse_pattern.cpp" "tests/CMakeFiles/dvf_tests.dir/test_reuse_pattern.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_reuse_pattern.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/dvf_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_streaming.cpp" "tests/CMakeFiles/dvf_tests.dir/test_streaming.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_streaming.cpp.o.d"
  "/root/repo/tests/test_string_util.cpp" "tests/CMakeFiles/dvf_tests.dir/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_string_util.cpp.o.d"
  "/root/repo/tests/test_template_pattern.cpp" "tests/CMakeFiles/dvf_tests.dir/test_template_pattern.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_template_pattern.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/dvf_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/dvf_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/dvf_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_weighted.cpp" "tests/CMakeFiles/dvf_tests.dir/test_weighted.cpp.o" "gcc" "tests/CMakeFiles/dvf_tests.dir/test_weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/dvf_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/dvf_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/dvf_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/dvf/CMakeFiles/dvf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dvf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/dvf_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dvf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/dvf_report.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dvf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
