# Empty dependencies file for dvf_tests.
# This may be replaced when dependencies are built.
