file(REMOVE_RECURSE
  "CMakeFiles/dvfc.dir/dvfc.cpp.o"
  "CMakeFiles/dvfc.dir/dvfc.cpp.o.d"
  "dvfc"
  "dvfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
