# Empty dependencies file for dvfc.
# This may be replaced when dependencies are built.
