// custom_model: compile Aspen-extended model files and evaluate every model
// against every machine they declare.
//
//   build/examples/custom_model [model.aspen ...]
//
// With no arguments it loads the bundled example programs from models/
// (looked up relative to the current directory and the repo root).
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <vector>

#include "dvf/common/error.hpp"
#include "dvf/dsl/analyzer.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/report/table.hpp"

namespace {

std::vector<std::string> default_model_files() {
  const std::vector<std::string> roots = {"models", "../models",
                                          "../../models"};
  for (const auto& root : roots) {
    if (std::filesystem::is_directory(root)) {
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(root)) {
        if (entry.path().extension() == ".aspen") {
          files.push_back(entry.path().string());
        }
      }
      std::sort(files.begin(), files.end());
      return files;
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    files.emplace_back(argv[i]);
  }
  if (files.empty()) {
    files = default_model_files();
  }
  if (files.empty()) {
    std::cerr << "usage: custom_model <model.aspen> [...]\n"
                 "(no bundled models/ directory found)\n";
    return 1;
  }

  for (const auto& file : files) {
    std::cout << dvf::banner("model file: " + file);
    try {
      const dvf::dsl::CompiledProgram program = dvf::dsl::compile_file(file);
      for (const dvf::ModelSpec& model : program.models) {
        for (const dvf::Machine& machine : program.machines) {
          const dvf::DvfCalculator calc(machine);
          const dvf::ApplicationDvf app = calc.for_model(model);
          dvf::Table table({"structure", "S_d (bytes)", "N_ha", "N_error",
                            "DVF"});
          for (const auto& s : app.structures) {
            table.add_row({s.name, dvf::num(s.size_bytes), dvf::num(s.n_ha),
                           dvf::num(s.n_error), dvf::num(s.dvf)});
          }
          table.add_row({"(application)", "", "", "", dvf::num(app.total)});
          std::cout << "model '" << model.name << "' on machine '"
                    << machine.name << "' (T = " << *model.exec_time_seconds
                    << " s):\n"
                    << table << "\n";
        }
      }
    } catch (const dvf::Error& err) {
      std::cerr << "error in " << file << ": " << err.what() << "\n";
      return 1;
    }
  }
  return 0;
}
