// ecc_explorer: interactive version of the §V-B study — pick one of the six
// kernels, measure it, and explore the protection/performance trade-off.
//
//   build/examples/ecc_explorer [kernel] [max_degradation_%]
//
// kernel: VM | CG | NB | MG | FT | MC (default VM).
#include <iostream>
#include <string>

#include "dvf/dvf/ecc.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/report/table.hpp"

int main(int argc, char** argv) {
  const std::string wanted = argc > 1 ? argv[1] : "VM";
  const double max_degradation =
      argc > 2 ? std::stod(argv[2]) / 100.0 : 0.30;

  auto suite = dvf::kernels::make_extended_suite();
  dvf::kernels::KernelCase* kernel = nullptr;
  for (auto& candidate : suite) {
    if (candidate->name() == wanted) {
      kernel = candidate.get();
    }
  }
  if (kernel == nullptr) {
    std::cerr << "unknown kernel '" << wanted
              << "' (expected VM|CG|NB|MG|FT|MC|CGS)\n";
    return 1;
  }

  const double seconds = kernel->run_timed();
  dvf::ModelSpec spec = kernel->model_spec();
  spec.exec_time_seconds = seconds;

  const dvf::Machine machine =
      dvf::Machine::with_cache(dvf::caches::profiling_8mb());
  const dvf::EccTradeoffExplorer explorer(machine, spec);

  std::cout << dvf::banner("ECC trade-off for " + kernel->name() + " (" +
                           kernel->method_class() + ")");
  std::cout << "T = " << dvf::num(seconds, 3) << " s, machine "
            << machine.llc.describe() << "\n\n";

  dvf::Table table({"degradation_%", "scheme", "effective FIT", "DVF_a"});
  for (const auto scheme :
       {dvf::EccScheme::kSecDed, dvf::EccScheme::kChipkill}) {
    dvf::EccSweepConfig config;
    config.scheme = scheme;
    config.max_degradation = max_degradation;
    config.step = max_degradation / 15.0;
    const auto points = explorer.sweep(config);
    for (const auto& pt : points) {
      table.add_row({dvf::num(100.0 * pt.degradation, 3),
                     dvf::to_string(scheme), dvf::num(pt.effective_fit),
                     dvf::num(pt.dvf)});
    }
    std::cout << "optimal degradation for " << dvf::to_string(scheme) << ": "
              << dvf::num(100.0 *
                          dvf::EccTradeoffExplorer::optimal_degradation(points))
              << "%\n";
  }
  std::cout << "\n" << table;
  return 0;
}
