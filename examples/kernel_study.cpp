// kernel_study: the full methodology on one kernel, end to end —
// (1) run the instrumented kernel and count its raw references,
// (2) replay them through the LLC simulator (the verification reference),
// (3) evaluate the kernel's analytical self-description (CGPMAC),
// (4) compute per-structure DVF from the measured runtime.
//
//   build/examples/kernel_study [kernel]     (default NB)
#include <iostream>
#include <string>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/math.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/patterns/estimate.hpp"
#include "dvf/report/table.hpp"

int main(int argc, char** argv) {
  const std::string wanted = argc > 1 ? argv[1] : "NB";
  auto suite = dvf::kernels::make_extended_suite();
  dvf::kernels::KernelCase* kernel = nullptr;
  for (auto& candidate : suite) {
    if (candidate->name() == wanted) {
      kernel = candidate.get();
    }
  }
  if (kernel == nullptr) {
    std::cerr << "unknown kernel '" << wanted
              << "' (expected VM|CG|NB|MG|FT|MC|CGS)\n";
    return 1;
  }

  const dvf::CacheConfig cache = dvf::caches::small_verification();

  // (1) raw reference counts.
  dvf::CountingRecorder counts;
  kernel->run_counting(counts);

  // (2) simulate the LLC.
  dvf::CacheSimulator sim(cache);
  kernel->run_traced(sim);

  // (3) + (4): analytical model and DVF.
  const double seconds = kernel->run_timed();
  dvf::ModelSpec spec = kernel->model_spec();
  spec.exec_time_seconds = seconds;
  const dvf::DvfCalculator calc(dvf::Machine::with_cache(cache));
  const dvf::ApplicationDvf app = calc.for_model(spec);

  std::cout << dvf::banner("kernel study: " + kernel->name() + " (" +
                           kernel->method_class() + ")");
  std::cout << "cache " << cache.describe() << ", T = " << dvf::num(seconds, 3)
            << " s\n\n";

  dvf::Table table({"structure", "references", "sim_misses", "model_N_ha",
                    "rel_err_%", "DVF"});
  for (const auto& ds : spec.structures) {
    const auto id = kernel->registry().find(ds.name);
    if (!id.has_value()) {
      continue;
    }
    const auto sim_stats = sim.stats(*id);
    const double estimate = dvf::estimate_accesses(
        std::span<const dvf::PatternSpec>(ds.patterns), cache);
    const auto* result = app.find(ds.name);
    table.add_row(
        {ds.name, dvf::num(static_cast<double>(counts.counts(*id).total())),
         dvf::num(static_cast<double>(sim_stats.misses)), dvf::num(estimate),
         dvf::num(100.0 * dvf::math::relative_error(
                              estimate, static_cast<double>(sim_stats.misses)),
                  3),
         dvf::num(result != nullptr ? result->dvf : 0.0)});
  }
  std::cout << table << "\napplication DVF_a = " << dvf::num(app.total)
            << "\n";
  return 0;
}
