// protection_planner: the decision DVF was built for (paper §I) — given
// per-structure vulnerabilities and a menu of protection mechanisms, which
// structures should be protected, with what, under a performance budget?
//
//   build/examples/protection_planner [kernel] [budget_%] [dvf_target]
//
// kernel: VM | CG | NB | MG | FT | MC (default MC — two structures with
// very different vulnerabilities, so selectivity matters).
#include <cstdlib>
#include <iostream>
#include <string>

#include "dvf/dvf/protection.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/report/table.hpp"

namespace {

void print_plan(const char* title, const dvf::ProtectionPlan& plan) {
  std::cout << dvf::banner(title);
  dvf::Table table({"structure", "mechanism", "DVF"});
  for (const auto& choice : plan.choices) {
    table.add_row({choice.structure, choice.mechanism,
                   dvf::num(choice.structure_dvf)});
  }
  std::cout << table;
  std::cout << "total DVF " << dvf::num(plan.total_dvf) << " ("
            << dvf::num(100.0 * plan.improvement(), 3)
            << "% of unprotected), slowdown "
            << dvf::num(100.0 * plan.time_overhead, 3) << "%\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string wanted = argc > 1 ? argv[1] : "MC";
  const double budget = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.04;

  auto suite = dvf::kernels::make_extended_suite();
  dvf::kernels::KernelCase* kernel = nullptr;
  for (auto& candidate : suite) {
    if (candidate->name() == wanted) {
      kernel = candidate.get();
    }
  }
  if (kernel == nullptr) {
    std::cerr << "unknown kernel '" << wanted
              << "' (expected VM|CG|NB|MG|FT|MC|CGS)\n";
    return 1;
  }

  const double seconds = kernel->run_timed();
  dvf::ModelSpec spec = kernel->model_spec();
  spec.exec_time_seconds = seconds;

  const dvf::ProtectionPlanner planner(
      dvf::Machine::with_cache(dvf::caches::profiling_8mb()), spec,
      {dvf::ProtectionMechanism::none(), dvf::ProtectionMechanism::secded(),
       dvf::ProtectionMechanism::chipkill(),
       dvf::ProtectionMechanism::software_tmr()});

  std::cout << "Selective protection study for " << kernel->name() << " ("
            << kernel->method_class() << "), T = " << dvf::num(seconds, 3)
            << " s\n";

  print_plan("No protection (baseline)",
             planner.evaluate(std::vector<std::size_t>(
                 spec.structures.size(), 0)));

  const dvf::ProtectionPlan best = planner.optimize(budget);
  print_plan(("Best plan within a " + dvf::num(100.0 * budget, 3) +
              "% slowdown budget")
                 .c_str(),
             best);

  if (argc > 3) {
    const double target = std::atof(argv[3]);
    const auto cheapest = planner.cheapest_meeting_target(target);
    if (cheapest.has_value()) {
      print_plan("Cheapest plan meeting the DVF target", *cheapest);
    } else {
      std::cout << "\nNo assignment reaches DVF <= " << target << ".\n";
    }
  }
  return 0;
}
