// Quickstart: compute the Data Vulnerability Factor of a small application
// model, by hand, in ~40 lines of API.
//
//   build/examples/quickstart
//
// The model is the paper's vector-multiply example (Algorithm 1): three
// streaming arrays, one with a larger stride. We ask two questions the
// paper's methodology is built for: which structure is most vulnerable, and
// how much does ECC help?
#include <iostream>

#include "dvf/dvf/calculator.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/report/table.hpp"

int main() {
  // 1. Describe the application: data structures + access patterns.
  dvf::ModelSpec model;
  model.name = "vector-multiply";
  model.exec_time_seconds = 0.002;  // measured or modeled T

  const auto streaming_array = [](const char* name, std::uint64_t elements,
                                  std::uint64_t stride) {
    dvf::DataStructureSpec ds;
    ds.name = name;
    ds.size_bytes = elements * sizeof(double);
    dvf::StreamingSpec s;
    s.element_bytes = sizeof(double);
    s.element_count = elements;
    s.stride_elements = stride;
    ds.patterns.emplace_back(s);
    return ds;
  };
  model.structures.push_back(streaming_array("A", 400000, 4));
  model.structures.push_back(streaming_array("B", 100000, 1));
  model.structures.push_back(streaming_array("C", 100000, 1));

  // 2. Describe the machine: an LLC plus a memory failure model.
  const dvf::Machine plain = dvf::Machine::with_cache(dvf::caches::profiling_1mb());
  const dvf::Machine protected_machine(
      "with-chipkill", dvf::caches::profiling_1mb(),
      dvf::MemoryModel::with_ecc(dvf::EccScheme::kChipkill));

  // 3. Evaluate Eq. 1 / Eq. 2.
  dvf::Table table({"structure", "N_ha", "DVF (no ECC)", "DVF (chipkill)"});
  const dvf::ApplicationDvf base = dvf::DvfCalculator(plain).for_model(model);
  const dvf::ApplicationDvf ecc =
      dvf::DvfCalculator(protected_machine).for_model(model);
  for (std::size_t i = 0; i < base.structures.size(); ++i) {
    table.add_row({base.structures[i].name, dvf::num(base.structures[i].n_ha),
                   dvf::num(base.structures[i].dvf),
                   dvf::num(ecc.structures[i].dvf)});
  }
  table.add_row({"(application)", "", dvf::num(base.total),
                 dvf::num(ecc.total)});

  std::cout << "DVF quickstart — " << model.name << " on "
            << plain.llc.describe() << "\n\n"
            << table
            << "\nA's larger stride gives it the largest footprint and the "
               "most memory traffic,\nso it is the structure to protect "
               "first; chipkill cuts DVF by the FIT ratio.\n";
  return 0;
}
