// sparse_solver: the DVF methodology on a CSR sparse CG solver — the
// kernel family the paper's Table II actually cites for CG (NPB CG is
// sparse). Shows what the dense examples cannot: the indirect gather of
// the search direction p through the column indices, modeled as random
// access with a profiled column-popularity histogram.
//
//   build/examples/sparse_solver [n] [offdiag_per_row]
#include <cstdlib>
#include <iostream>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/math.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/kernels/sparse_cg.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/patterns/estimate.hpp"
#include "dvf/report/table.hpp"

int main(int argc, char** argv) {
  dvf::kernels::SparseConjugateGradient::Config config;
  config.n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  config.offdiag_per_row =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  config.max_iterations = 30;

  dvf::kernels::SparseConjugateGradient solver(config);
  std::cout << "CSR sparse CG: n = " << config.n
            << ", nnz = " << solver.nonzeros() << "\n";

  // Solve (timed) and self-describe.
  dvf::NullRecorder null;
  const dvf::kernels::Stopwatch watch;
  solver.run(null);
  const double seconds = watch.seconds();
  std::cout << "solved in " << solver.iterations_run() << " iterations, "
            << dvf::num(seconds, 3) << " s, solution error "
            << dvf::num(solver.solution_error(), 3) << "\n\n";

  dvf::ModelSpec spec = solver.model_spec();
  spec.exec_time_seconds = seconds;

  // Verify the model against the simulator, then report DVF.
  const dvf::CacheConfig cache = dvf::caches::small_verification();
  dvf::CacheSimulator sim(cache);
  solver.reset();
  solver.run(sim);
  sim.flush();

  const dvf::DvfCalculator calc(dvf::Machine::with_cache(cache));
  const dvf::ApplicationDvf app = calc.for_model(spec);

  dvf::Table table({"structure", "pattern", "sim_misses", "model_N_ha",
                    "rel_err_%", "DVF"});
  for (const auto& ds : spec.structures) {
    const auto id = *solver.registry().find(ds.name);
    const double simulated = static_cast<double>(sim.stats(id).misses);
    const double estimate = dvf::estimate_accesses(
        std::span<const dvf::PatternSpec>(ds.patterns), cache);
    std::string kinds;
    for (const auto& pattern : ds.patterns) {
      if (!kinds.empty()) {
        kinds += '+';
      }
      kinds += dvf::pattern_letter(pattern);
    }
    const auto* result = app.find(ds.name);
    table.add_row({ds.name, kinds, dvf::num(simulated), dvf::num(estimate),
                   dvf::num(100.0 * dvf::math::relative_error(estimate,
                                                              simulated),
                            3),
                   dvf::num(result != nullptr ? result->dvf : 0.0)});
  }
  std::cout << table << "\napplication DVF_a = " << dvf::num(app.total)
            << "\n\nThe CSR value/index arrays stream (like the paper's "
               "dense A), while p's\ngather rides the column-popularity "
               "histogram: hub columns stay cached,\ncold columns miss — "
               "the IRM extension at work.\n";
  return 0;
}
