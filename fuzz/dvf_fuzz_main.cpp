// dvf_fuzz — deterministic fuzz + differential-oracle harness driver.
//
//   dvf_fuzz [--target roundtrip|eval|oracle|trace|analyze|serve_proto|
//             chaos|all] [--cases N]
//            [--seed S]
//            [--max-seconds T] [--corpus DIR] [--verbose]
//
// Exit 0 when every executed case passed, 1 when any finding was recorded,
// 2 on bad usage. Runs are pure functions of (--seed, --cases): a CI
// failure replays locally from the printed configuration alone.
#include <charconv>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "dvf/fuzz/fuzzer.hpp"

namespace {

int usage() {
  std::cerr <<
      "usage: dvf_fuzz [options]\n"
      "  --target roundtrip|eval|oracle|trace|analyze|serve_proto|chaos|all\n"
      "                                        harness to run (default all)\n"
      "  --cases N                             generated cases per target\n"
      "                                        (default 1000)\n"
      "  --seed S                              master seed (default 1)\n"
      "  --max-seconds T                       wall-clock box per target\n"
      "                                        (default 0 = unbounded)\n"
      "  --corpus DIR                          directory of *.aspen seed\n"
      "                                        inputs for the roundtrip\n"
      "                                        target\n"
      "  --verbose                             narrate findings as they\n"
      "                                        occur\n";
  return 2;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && end == text.data() + text.size();
}

bool parse_double(const std::string& text, double& out) {
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && end == text.data() + text.size() && out >= 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  dvf::fuzz::FuzzOptions options;
  std::string target = "all";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--target") {
      const char* v = value();
      if (v == nullptr) return usage();
      target = v;
      if (target != "roundtrip" && target != "eval" && target != "oracle" &&
          target != "trace" && target != "analyze" &&
          target != "serve_proto" && target != "chaos" && target != "all") {
        std::cerr << "dvf_fuzz: unknown target '" << target << "'\n";
        return usage();
      }
    } else if (arg == "--cases") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, options.cases)) return usage();
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, options.seed)) return usage();
    } else if (arg == "--max-seconds") {
      const char* v = value();
      if (v == nullptr || !parse_double(v, options.max_seconds)) return usage();
    } else if (arg == "--corpus") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.corpus_dir = v;
    } else {
      std::cerr << "dvf_fuzz: unknown option '" << arg << "'\n";
      return usage();
    }
  }

  dvf::fuzz::FuzzReport report;
  const auto run = [&](const char* name, auto&& harness) {
    const dvf::fuzz::FuzzReport partial = harness(options);
    std::cout << "dvf_fuzz " << name << ": " << partial.cases_run
              << " case(s), " << partial.findings.size() << " finding(s)"
              << " (seed " << options.seed << ")\n";
    report.merge(partial);
  };
  if (target == "roundtrip" || target == "all") {
    run("roundtrip", dvf::fuzz::fuzz_roundtrip);
  }
  if (target == "eval" || target == "all") {
    run("eval", dvf::fuzz::fuzz_eval);
  }
  if (target == "oracle" || target == "all") {
    run("oracle", dvf::fuzz::fuzz_oracle);
  }
  if (target == "trace" || target == "all") {
    run("trace", dvf::fuzz::fuzz_trace);
  }
  if (target == "analyze" || target == "all") {
    run("analyze", dvf::fuzz::fuzz_analyze);
  }
  if (target == "serve_proto" || target == "all") {
    run("serve_proto", dvf::fuzz::fuzz_serve_proto);
  }
  if (target == "chaos" || target == "all") {
    run("chaos", dvf::fuzz::fuzz_chaos);
  }

  if (!report.ok()) {
    const std::size_t shown = std::min<std::size_t>(report.findings.size(), 25);
    for (std::size_t i = 0; i < shown; ++i) {
      std::cerr << "finding " << (i + 1) << ": " << report.findings[i] << "\n";
    }
    if (shown < report.findings.size()) {
      std::cerr << "... and " << (report.findings.size() - shown)
                << " more finding(s)\n";
    }
    return 1;
  }
  return 0;
}
