#include "dvf/fuzz/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dvf/analysis/bounds.hpp"
#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/budget.hpp"
#include "dvf/common/error.hpp"
#include "dvf/common/failpoint.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/result.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/dsl/analysis.hpp"
#include "dvf/dsl/analyzer.hpp"
#include "dvf/dsl/diagnostics.hpp"
#include "dvf/dsl/parser.hpp"
#include "dvf/dsl/printer.hpp"
#include "dvf/dsl/template_expander.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/kernels/injection_campaign.hpp"
#include "dvf/kernels/campaign_journal.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/patterns/estimate.hpp"
#include "dvf/patterns/random.hpp"
#include "dvf/patterns/reuse.hpp"
#include "dvf/patterns/streaming.hpp"
#include "dvf/patterns/template_access.hpp"
#include "dvf/patterns/tiled.hpp"
#include "dvf/serve/engine.hpp"
#include "dvf/serve/json.hpp"
#include "dvf/serve/protocol.hpp"
#include "dvf/trace/trace_io.hpp"

namespace dvf::fuzz {
namespace {

// ---- shared plumbing ------------------------------------------------------

/// Wall-clock box for one target run (0 = unbounded).
class TimeBox {
 public:
  explicit TimeBox(double seconds) {
    if (seconds > 0.0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
      armed_ = true;
    }
  }
  [[nodiscard]] bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= deadline_;
  }

 private:
  std::chrono::steady_clock::time_point deadline_{};
  bool armed_ = false;
};

void record(FuzzReport& report, const FuzzOptions& options,
            std::string finding) {
  if (options.verbose) {
    std::cerr << "fuzz finding: " << finding << "\n";
  }
  report.findings.push_back(std::move(finding));
}

std::vector<std::string> load_corpus(const std::string& dir) {
  std::vector<std::string> sources;
  if (dir.empty()) {
    return sources;
  }
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".aspen") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic corpus order
  for (const auto& path : paths) {
    std::ifstream in(path);
    std::ostringstream contents;
    contents << in.rdbuf();
    sources.push_back(std::move(contents).str());
  }
  return sources;
}

/// Per-case guardrails: tight enough that a runaway evaluation turns into a
/// classified resource_limit / deadline_exceeded error within milliseconds
/// instead of stalling the harness.
EvalLimits case_limits() {
  EvalLimits limits;
  limits.max_references = std::uint64_t{1} << 20;
  limits.max_expansion = std::uint64_t{1} << 18;
  limits.wall_seconds = 0.25;
  return limits;
}

CacheConfig cache8k() { return {"c8k", 4, 64, 32}; }

CacheConfig random_cache(Xoshiro256& rng) {
  static constexpr std::uint32_t kAssoc[] = {1, 2, 4, 8, 16};
  static constexpr std::uint32_t kSets[] = {1, 16, 64, 256, 1024};
  static constexpr std::uint32_t kLines[] = {16, 32, 64, 128};
  return {"fuzz", kAssoc[rng.below(5)], kSets[rng.below(5)],
          kLines[rng.below(4)]};
}

// ---- roundtrip target -----------------------------------------------------

std::string random_number_literal(Xoshiro256& rng) {
  switch (rng.below(9)) {
    case 0: return std::to_string(rng.below(10));
    case 1: return std::to_string(rng.below(std::uint64_t{1} << 20));
    case 2: return "4611686018427387904";  // 2^62
    case 3: return "1e999";                // overflows: DVF-E018 path
    case 4: return "1.5e-3";
    case 5: return std::to_string(1 + rng.below(64)) + "KB";
    case 6: return "0";
    case 7: return std::to_string(rng.below(8)) + "." +
                   std::to_string(rng.below(100));
    default: return std::to_string(1 + rng.below(4096));
  }
}

std::string random_name(Xoshiro256& rng) {
  static const char* const kNames[] = {"A", "B",    "C",   "grid", "tree",
                                       "n", "elem", "tmp", "x1",   "share"};
  return kNames[rng.below(10)];
}

std::string random_expr(Xoshiro256& rng, int depth) {
  if (depth <= 0 || rng.below(2) == 0) {
    return rng.below(4) == 0 ? random_name(rng) : random_number_literal(rng);
  }
  static const char kOps[] = {'+', '-', '*', '/', '%', '^'};
  std::string expr = random_expr(rng, depth - 1);
  expr += ' ';
  expr += kOps[rng.below(6)];
  expr += ' ';
  expr += random_expr(rng, depth - 1);
  return rng.below(3) == 0 ? "(" + expr + ")" : expr;
}

void append_pattern(std::string& out, const std::string& data,
                    Xoshiro256& rng) {
  static const char* const kKinds[] = {"stream", "random", "template",
                                       "reuse",  "tiled",  "stream", "banana"};
  const std::string kind = kKinds[rng.below(7)];
  out += "  pattern " + data + " " + kind + " { ";
  if (kind == "stream") {
    out += "stride " + random_expr(rng, 1) + "; ";
    if (rng.below(2) == 0) out += "repeat " + random_number_literal(rng) + "; ";
  } else if (kind == "random") {
    out += "visits " + random_expr(rng, 1) + "; ";
    out += "iterations " + random_number_literal(rng) + "; ";
    if (rng.below(2) == 0) out += "ratio 0." + std::to_string(rng.below(10)) + "; ";
  } else if (kind == "template") {
    out += "start (" + random_number_literal(rng);
    for (std::uint64_t i = rng.below(3); i > 0; --i) {
      out += ", " + random_number_literal(rng);
    }
    out += "); step " + random_number_literal(rng) + "; ";
    out += "count " + random_number_literal(rng) + "; ";
  } else if (kind == "reuse") {
    out += "rounds " + random_number_literal(rng) + "; ";
    if (rng.below(2) == 0) {
      out += "other_bytes " + random_number_literal(rng) + "; ";
    }
  } else if (kind == "tiled") {
    out += "tile (" + random_number_literal(rng) + ", " +
           random_number_literal(rng) + "); ";
    out += "rows " + random_expr(rng, 1) + "; ";
    if (rng.below(2) == 0) out += "cols " + random_number_literal(rng) + "; ";
    if (rng.below(2) == 0) out += "passes " + random_number_literal(rng) + "; ";
    if (rng.below(3) == 0) {
      out += "intra_reuse " + random_number_literal(rng) + "; ";
    }
    if (rng.below(3) == 0) {
      out += "ratio 0." + std::to_string(rng.below(10)) + "; ";
    }
  } else {
    out += random_name(rng) + " " + random_number_literal(rng) + "; ";
  }
  out += "}\n";
}

std::string generate_program(Xoshiro256& rng) {
  std::string out;
  for (std::uint64_t i = rng.below(4); i > 0; --i) {
    out += "param " + random_name(rng) + " = " + random_expr(rng, 2) + ";\n";
  }
  for (std::uint64_t i = rng.below(3); i > 0; --i) {
    out += "machine \"m" + std::to_string(i) + "\" {\n";
    out += "  cache { associativity " + random_number_literal(rng) +
           "; sets " + random_number_literal(rng) + "; line " +
           random_number_literal(rng) + "; }\n";
    if (rng.below(3) == 0) {
      out += "  memory { ecc \"chipkill\"; }\n";
    } else {
      out += "  memory { fit " + random_expr(rng, 1) + "; }\n";
    }
    out += "}\n";
  }
  for (std::uint64_t i = 1 + rng.below(2); i > 0; --i) {
    out += "model \"M" + std::to_string(i) + "\" {\n";
    if (rng.below(4) != 0) {
      out += "  time " + random_number_literal(rng) + ";\n";
    }
    for (std::uint64_t d = 1 + rng.below(3); d > 0; --d) {
      const std::string data = random_name(rng);
      out += "  data " + data + " { elements " + random_expr(rng, 1) +
             "; element_size " + random_number_literal(rng) + "; }\n";
      append_pattern(out, data, rng);
    }
    out += "}\n";
  }
  return out;
}

std::string mutate(std::string source, Xoshiro256& rng) {
  static const char kAlphabet[] =
      "{}();=,*/+-%^\"0123456789e.KMGB \nparmodeltis";
  const std::uint64_t edits = 1 + rng.below(8);
  for (std::uint64_t i = 0; i < edits && !source.empty(); ++i) {
    const std::size_t at = rng.below(source.size());
    switch (rng.below(5)) {
      case 0:  // flip a byte
        source[at] = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
        break;
      case 1:  // insert a byte
        source.insert(at, 1, kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
        break;
      case 2: {  // delete a short span
        const std::size_t len =
            std::min<std::size_t>(1 + rng.below(16), source.size() - at);
        source.erase(at, len);
        break;
      }
      case 3: {  // duplicate a short span
        const std::size_t len =
            std::min<std::size_t>(1 + rng.below(16), source.size() - at);
        source.insert(at, source.substr(at, len));
        break;
      }
      default:  // truncate
        source.resize(at);
        break;
    }
  }
  return source;
}

/// Evaluates every machine × model combination of a compiled program under
/// the per-case guardrails: the analytical pipeline must produce either a
/// finite DVF or a classified error, never an exception or silent NaN.
void check_compiled_totality(const dsl::CompiledProgram& compiled,
                             const std::string& label, FuzzReport& report,
                             const FuzzOptions& options) {
  for (const auto& machine : compiled.machines) {
    EvalBudget budget(case_limits());
    DvfCalculator calc(machine);
    calc.set_budget(&budget);
    for (const auto& model : compiled.models) {
      const Result<ApplicationDvf> result = calc.try_for_model(model);
      if (result.ok() && !std::isfinite(result.value().total)) {
        record(report, options,
               label + ": model '" + model.name + "' on machine '" +
                   machine.name + "' produced unclassified non-finite DVF");
      }
      budget.reset();
    }
  }
}

void check_roundtrip(const std::string& source, const std::string& label,
                     FuzzReport& report, const FuzzOptions& options) {
  dsl::Program ast;
  try {
    ast = dsl::parse(source);
  } catch (const ParseError& err) {
    // Classified rejection; the position must still make sense.
    if (err.line() < 1 || err.column() < 1 || err.length() < 1) {
      record(report, options,
             label + ": ParseError with invalid span " +
                 std::to_string(err.line()) + ":" +
                 std::to_string(err.column()) + ":" +
                 std::to_string(err.length()) + " (" + err.what() + ")");
    }
    return;
  } catch (const std::exception& err) {
    record(report, options,
           label + ": parse threw non-ParseError: " + err.what());
    return;
  }

  std::string once;
  std::string twice;
  try {
    once = dsl::print(ast);
    twice = dsl::print(dsl::parse(once));
  } catch (const std::exception& err) {
    record(report, options,
           label + ": canonical print does not re-parse: " + err.what());
    return;
  }
  if (once != twice) {
    record(report, options, label + ": printer fixpoint violated");
    return;
  }

  try {
    dsl::DiagnosticEngine diags;
    const dsl::CompiledProgram compiled = dsl::analyze(ast, diags);
    check_compiled_totality(compiled, label, report, options);
  } catch (const std::exception& err) {
    record(report, options,
           label + ": diagnostic analyze threw: " + err.what());
  }
}

// ---- eval target ----------------------------------------------------------

double adversarial_double(Xoshiro256& rng) {
  switch (rng.below(12)) {
    case 0: return 0.0;
    case 1: return -1.0;
    case 2: return 1.0;
    case 3: return std::numeric_limits<double>::quiet_NaN();
    case 4: return std::numeric_limits<double>::infinity();
    case 5: return -std::numeric_limits<double>::infinity();
    case 6: return 1e308;
    case 7: return 1e-308;
    case 8: return 4.6e18;  // ~2^62
    case 9: return -0.0;
    case 10: return rng.uniform() * 1000.0;
    default: return rng.uniform();
  }
}

std::uint64_t adversarial_u64(Xoshiro256& rng) {
  switch (rng.below(9)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return 2;
    case 3: return rng.below(1024);
    case 4: return std::uint64_t{1} << 20;
    case 5: return std::uint64_t{1} << 40;
    case 6: return std::uint64_t{1} << 62;
    case 7: return ~std::uint64_t{0};
    default: return rng.below(std::uint64_t{1} << 30);
  }
}

std::uint32_t adversarial_u32(Xoshiro256& rng) {
  switch (rng.below(6)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return 8;
    case 3: return 32;
    case 4: return static_cast<std::uint32_t>(rng.below(4096));
    default: return ~std::uint32_t{0};
  }
}

PatternSpec adversarial_spec(Xoshiro256& rng) {
  switch (rng.below(5)) {
    case 0: {
      StreamingSpec s;
      s.element_bytes = adversarial_u32(rng);
      s.element_count = adversarial_u64(rng);
      s.stride_elements = adversarial_u64(rng);
      return s;
    }
    case 1: {
      RandomSpec s;
      s.element_count = adversarial_u64(rng);
      s.element_bytes = adversarial_u32(rng);
      s.visits_per_iteration = adversarial_double(rng);
      s.iterations = adversarial_u64(rng);
      s.cache_ratio = adversarial_double(rng);
      if (rng.below(3) == 0) {
        for (std::uint64_t i = rng.below(8); i > 0; --i) {
          s.sorted_visit_fractions.push_back(adversarial_double(rng));
        }
      }
      return s;
    }
    case 2: {
      TemplateSpec s;
      s.element_bytes = adversarial_u32(rng);
      s.repetitions = adversarial_u64(rng);
      s.cache_ratio = adversarial_double(rng);
      s.distance = rng.below(2) == 0 ? DistanceKind::kStack : DistanceKind::kRaw;
      for (std::uint64_t i = rng.below(64); i > 0; --i) {
        s.element_indices.push_back(adversarial_u64(rng));
      }
      return s;
    }
    case 3: {
      TiledSpec s;
      s.element_bytes = adversarial_u32(rng);
      s.rows = adversarial_u64(rng);
      s.cols = adversarial_u64(rng);
      s.tile_rows = adversarial_u64(rng);
      s.tile_cols = adversarial_u64(rng);
      s.intra_reuse = adversarial_u64(rng);
      s.passes = adversarial_u64(rng);
      s.cache_ratio = adversarial_double(rng);
      return s;
    }
    default: {
      ReuseSpec s;
      s.self_bytes = adversarial_u64(rng);
      s.other_bytes = adversarial_u64(rng);
      s.reuse_rounds = adversarial_u64(rng);
      s.scenario = static_cast<ReuseScenario>(rng.below(3));
      s.occupancy = rng.below(2) == 0 ? ReuseOccupancy::kBernoulli
                                      : ReuseOccupancy::kContiguous;
      return s;
    }
  }
}

/// A Result is well-formed when ok with a finite non-negative value, or an
/// error with a non-empty classified message.
template <typename Check>
void expect_total(const std::string& label, FuzzReport& report,
                  const FuzzOptions& options, Check&& check) {
  try {
    check();
  } catch (const std::exception& err) {
    record(report, options,
           label + ": total evaluator threw: " + std::string(err.what()));
  } catch (...) {
    record(report, options, label + ": total evaluator threw a non-exception");
  }
}

void check_eval_case(std::uint64_t index, Xoshiro256& rng, FuzzReport& report,
                     const FuzzOptions& options) {
  const std::string label = "[eval case " + std::to_string(index) + "]";
  const CacheConfig cache = random_cache(rng);
  EvalBudget budget(case_limits());

  switch (rng.below(3)) {
    case 0: {  // pattern evaluators
      const PatternSpec spec = adversarial_spec(rng);
      expect_total(label, report, options, [&] {
        const Result<double> result =
            try_estimate_accesses(spec, cache, &budget);
        if (result.ok()) {
          if (!std::isfinite(*result) || *result < 0.0) {
            std::ostringstream out;
            out << label << ": pattern '" << pattern_letter(spec)
                << "' estimate " << *result
                << " is unclassified non-finite/negative on "
                << cache.describe();
            record(report, options, out.str());
          }
        } else if (result.error().message.empty()) {
          record(report, options, label + ": classified error with no message");
        }
      });
      break;
    }
    case 1: {  // template-expansion guardrails
      std::vector<std::int64_t> start;
      for (std::uint64_t i = rng.below(6); i > 0; --i) {
        switch (rng.below(5)) {
          case 0: start.push_back(std::numeric_limits<std::int64_t>::min()); break;
          case 1: start.push_back(std::numeric_limits<std::int64_t>::max()); break;
          case 2: start.push_back(-static_cast<std::int64_t>(rng.below(100))); break;
          default: start.push_back(static_cast<std::int64_t>(rng.below(10000)));
        }
      }
      const std::int64_t step =
          rng.below(4) == 0 ? std::numeric_limits<std::int64_t>::max()
                            : static_cast<std::int64_t>(rng.below(100)) - 50;
      const std::uint64_t count = adversarial_u64(rng);
      expect_total(label, report, options, [&] {
        const auto result = dsl::try_expand_progression(
            std::span<const std::int64_t>(start), step, count, &budget);
        if (result.ok() &&
            result.value().size() > case_limits().max_expansion) {
          record(report, options, label + ": expansion exceeded its budget");
        }
      });
      break;
    }
    default: {  // full Eq. 1 pipeline with adversarial time and size
      DataStructureSpec ds;
      ds.name = "fuzz";
      ds.size_bytes = adversarial_u64(rng);
      ds.patterns.push_back(adversarial_spec(rng));
      const double time = adversarial_double(rng);
      expect_total(label, report, options, [&] {
        DvfCalculator calc(Machine::with_cache(cache));
        calc.set_budget(&budget);
        const Result<StructureDvf> result = calc.try_for_structure(ds, time);
        if (result.ok() && !std::isfinite(result.value().dvf)) {
          record(report, options,
                 label + ": structure DVF is unclassified non-finite");
        }
      });
      break;
    }
  }
}

// ---- differential oracle --------------------------------------------------

void oracle_finding(FuzzReport& report, const FuzzOptions& options,
                    const std::string& label, const char* pattern,
                    double predicted, double simulated, double tolerance) {
  std::ostringstream out;
  out.precision(12);
  out << label << ": " << pattern << " analytical estimate " << predicted
      << " vs simulated " << simulated << " exceeds tolerance " << tolerance;
  record(report, options, out.str());
}

void check_oracle_streaming(const std::string& label, Xoshiro256& rng,
                            FuzzReport& report, const FuzzOptions& options) {
  // The deterministic regimes of Eqs. 3-4: a contiguous traversal of
  // line-sized-or-larger elements, or a stride that stays within a cache
  // line, both predict exactly ceil(D/CL) compulsory misses. (The strided
  // E < CL < S regime is an expectation over random line alignment and has
  // no single simulated ground truth.) Counts are stride-aligned so the
  // traversal covers the whole footprint.
  StreamingSpec spec;
  if (rng.below(4) == 0) {
    spec.element_bytes = rng.below(2) == 0 ? 32 : 64;
    spec.stride_elements = 1;
    spec.element_count = 16 + rng.below(2048);
  } else {
    static constexpr std::uint32_t kBytes[] = {4, 8, 16};
    spec.element_bytes = kBytes[rng.below(3)];
    // Keep the stride strictly inside a 32-byte line (Eq. 4's case 3), and
    // end the traversal exactly at the footprint's last element so every
    // line of D is genuinely touched.
    const std::uint64_t max_stride = 31 / spec.element_bytes;
    spec.stride_elements = 1 + rng.below(max_stride);
    spec.element_count = spec.stride_elements * (16 + rng.below(2048)) + 1;
  }

  const CacheConfig cache = cache8k();
  CacheSimulator sim(cache);
  for (std::uint64_t e = 0; e < spec.element_count;
       e += spec.stride_elements) {
    sim.on_load(0, e * spec.element_bytes, spec.element_bytes);
  }
  const double predicted = try_estimate_streaming(spec, cache).value_or_throw();
  const double simulated = static_cast<double>(sim.stats(0).misses);
  if (math::relative_error(predicted, simulated) >
      kStreamingOracleTolerance + 1e-12) {
    oracle_finding(report, options, label, "streaming", predicted, simulated,
                   kStreamingOracleTolerance);
  }
}

void check_oracle_random(const std::string& label, Xoshiro256& rng,
                         FuzzReport& report, const FuzzOptions& options) {
  RandomSpec spec;
  spec.element_count = 200 + rng.below(1800);
  spec.element_bytes = rng.below(2) == 0 ? 16 : 32;
  const std::uint64_t visits =
      4 + rng.below(std::min<std::uint64_t>(36, spec.element_count / 8));
  spec.visits_per_iteration = static_cast<double>(visits);
  spec.iterations = 100 + rng.below(400);

  const CacheConfig cache = cache8k();
  CacheSimulator sim(cache);
  for (std::uint64_t e = 0; e < spec.element_count; ++e) {
    sim.on_load(0, e * spec.element_bytes, spec.element_bytes);
  }
  std::vector<std::uint64_t> picks(visits);
  for (std::uint64_t it = 0; it < spec.iterations; ++it) {
    for (std::uint64_t v = 0; v < visits; ++v) {
      std::uint64_t e;
      bool fresh;
      do {
        e = rng.below(spec.element_count);
        fresh = true;
        for (std::uint64_t w = 0; w < v; ++w) {
          fresh = fresh && picks[w] != e;
        }
      } while (!fresh);
      picks[v] = e;
      sim.on_load(0, e * spec.element_bytes, spec.element_bytes);
    }
  }
  const double predicted = try_estimate_random(spec, cache).value_or_throw();
  const double simulated = static_cast<double>(sim.stats(0).misses);
  if (math::relative_error(predicted, simulated) > kRandomOracleTolerance) {
    oracle_finding(report, options, label, "random", predicted, simulated,
                   kRandomOracleTolerance);
  }
}

void check_oracle_template(const std::string& label, Xoshiro256& rng,
                           FuzzReport& report, const FuzzOptions& options) {
  // Three regimes the stack-distance model covers on the 256-block
  // validation cache: repeated scans with stack distances clearly below or
  // above capacity (predicted exactly), arbitrary segment scans inside a
  // fitting working set (all hits after the compulsory load), and the
  // paper-style stencil sweep whose distances straddle the boundary (the
  // ±15% band). Distances *at* the capacity boundary depend on the exact
  // set mapping and are not a single-valued ground truth.
  TemplateSpec spec;
  switch (rng.below(3)) {
    case 0: {  // repeated full scan, away from the capacity boundary
      spec.element_bytes = 32;
      spec.repetitions = 1 + rng.below(5);
      const std::uint64_t blocks =
          rng.below(2) == 0 ? 16 + rng.below(180) : 320 + rng.below(2048);
      for (std::uint64_t i = 0; i < blocks; ++i) {
        spec.element_indices.push_back(i);
      }
      break;
    }
    case 1: {  // random segment scans inside a fitting working set
      spec.element_bytes = 32;
      spec.repetitions = 1 + rng.below(3);
      const std::uint64_t working_set = 16 + rng.below(112);  // <= 128 blocks
      for (std::uint64_t s = 1 + rng.below(6); s > 0; --s) {
        const std::uint64_t base = rng.below(working_set);
        const std::uint64_t length = 1 + rng.below(working_set - base);
        for (std::uint64_t i = 0; i < length; ++i) {
          spec.element_indices.push_back(base + i);
        }
      }
      break;
    }
    default: {  // 5-point stencil over a grid exceeding the cache
      spec.element_bytes = 8;
      spec.repetitions = 1 + rng.below(4);
      const std::uint64_t n = 48 + 16 * rng.below(4);  // 48..96
      for (std::uint64_t i = 1; i + 1 < n; ++i) {
        for (std::uint64_t j = 1; j + 1 < n; ++j) {
          const std::uint64_t center = i * n + j;
          spec.element_indices.push_back(center - 1);
          spec.element_indices.push_back(center + 1);
          spec.element_indices.push_back(center - n);
          spec.element_indices.push_back(center + n);
          spec.element_indices.push_back(center);
        }
      }
      break;
    }
  }

  const CacheConfig cache = cache8k();
  CacheSimulator sim(cache);
  for (std::uint64_t rep = 0; rep < spec.repetitions; ++rep) {
    for (const std::uint64_t idx : spec.element_indices) {
      sim.on_load(0, idx * spec.element_bytes, spec.element_bytes);
    }
  }
  const double predicted = try_estimate_template(spec, cache).value_or_throw();
  const double simulated = static_cast<double>(sim.stats(0).misses);
  if (math::relative_error(predicted, simulated) > kTemplateOracleTolerance) {
    oracle_finding(report, options, label, "template", predicted, simulated,
                   kTemplateOracleTolerance);
  }
}

void check_oracle_reuse(const std::string& label, Xoshiro256& rng,
                        FuzzReport& report, const FuzzOptions& options) {
  // The interference regimes Eqs. 8-15 are validated in (the Fig. 4 band):
  // everything fits together, the interferer flushes the target every
  // round, or the target alone exceeds the cache. Partial interference
  // near the capacity boundary deviates beyond the band and is excluded
  // (docs/resilience.md documents the oracle's regimes).
  ReuseSpec spec;
  switch (rng.below(3)) {
    case 0:  // both fit: one compulsory load
      spec.self_bytes = 8 * (32 + rng.below(352));    // 256 B – 3 KiB
      spec.other_bytes = 8 * rng.below(128);          // <= 1 KiB
      break;
    case 1:  // interferer flushes the target every round
      spec.self_bytes = 8 * (128 + rng.below(896));   // 1 – 8 KiB
      spec.other_bytes = 65536 + 8 * rng.below(24576);  // 64 – 256 KiB
      break;
    default:  // the target alone far exceeds the cache
      // At 4-6x the cache the LRU scan pathology (a cyclic scan keeps zero
      // survivors) puts the survivor model's error just past the band;
      // from 8x up the compulsory traffic dominates and the band holds.
      spec.self_bytes = 65536 + 8 * rng.below(4096);  // 64 – 96 KiB
      spec.other_bytes = rng.below(2) == 0 ? 0 : 65536 + 8 * rng.below(8192);
      break;
  }
  spec.reuse_rounds = 1 + rng.below(10);
  spec.occupancy = ReuseOccupancy::kContiguous;

  const CacheConfig cache = cache8k();
  CacheSimulator sim(cache);
  const auto traverse = [&](DsId ds, std::uint64_t base, std::uint64_t bytes) {
    for (std::uint64_t offset = 0; offset < bytes; offset += 8) {
      sim.on_load(ds, base + offset, 8);
    }
  };
  traverse(0, 0, spec.self_bytes);
  for (std::uint64_t round = 0; round < spec.reuse_rounds; ++round) {
    if (spec.other_bytes > 0) {
      traverse(1, std::uint64_t{1} << 26, spec.other_bytes);
    }
    traverse(0, 0, spec.self_bytes);
  }
  const double predicted = try_estimate_reuse(spec, cache).value_or_throw();
  const double simulated = static_cast<double>(sim.stats(0).misses);
  if (math::relative_error(predicted, simulated) > kReuseOracleTolerance) {
    oracle_finding(report, options,
                   label + " self=" + std::to_string(spec.self_bytes) +
                       " other=" + std::to_string(spec.other_bytes) +
                       " rounds=" + std::to_string(spec.reuse_rounds),
                   "reuse", predicted, simulated, kReuseOracleTolerance);
  }
}

void check_oracle_tiled(const std::string& label, Xoshiro256& rng,
                        FuzzReport& report, const FuzzOptions& options) {
  // The three closed-form regimes of the tiled model, each kept away from
  // the capacity boundary (docs/resilience.md "Differential oracle"):
  // the whole matrix fits (compulsory misses only), a small tile sweeping
  // a matrix several times the cache (each pass re-streams the footprint,
  // intra-tile re-reads hit), and a single tile that itself exceeds the
  // cache (the LRU cyclic-scan pathology: every sweep misses fully). Tile
  // widths are line-aligned (tc * 8 a multiple of the 32-byte line) and
  // column counts stay below 256 so row strides never alias whole sets.
  TiledSpec spec;
  spec.element_bytes = 8;
  std::uint64_t tiles_r = 1;
  std::uint64_t tiles_c = 1;
  switch (rng.below(3)) {
    case 0: {  // matrix fits in half the 8 KiB cache
      spec.tile_rows = 1 + rng.below(4);          // 1..4
      spec.tile_cols = 4 * (1 + rng.below(3));    // 4, 8, 12
      tiles_r = 1 + rng.below(3);
      tiles_c = 1 + rng.below(2);
      spec.passes = 1 + rng.below(2);
      spec.intra_reuse = rng.below(3);
      break;
    }
    case 1: {  // cache-fitting tile, matrix >= 4x the cache
      spec.tile_rows = 2 + rng.below(7);          // 2..8
      spec.tile_cols = 4 * (1 + rng.below(4));    // 4..16
      tiles_c = 4 + rng.below(8);                 // cols 16..176 (< 256)
      const std::uint64_t cols = spec.tile_cols * tiles_c;
      const std::uint64_t min_rows = 4096 / cols + 1;  // footprint > 32 KiB
      tiles_r = min_rows / spec.tile_rows + 1 + rng.below(3);
      spec.passes = 1 + rng.below(2);
      spec.intra_reuse = rng.below(3);
      break;
    }
    default: {  // one whole-matrix tile >= 2x the cache
      spec.tile_rows = 32 + rng.below(33);          // 32..64
      spec.tile_cols = 4 * (16 + rng.below(16));    // 64..124 (< 256)
      spec.passes = 1 + rng.below(2);
      spec.intra_reuse = rng.below(3);
      break;
    }
  }
  spec.rows = spec.tile_rows * tiles_r;
  spec.cols = spec.tile_cols * tiles_c;

  const CacheConfig cache = cache8k();
  CacheSimulator sim(cache);
  for (std::uint64_t pass = 0; pass < spec.passes; ++pass) {
    for (std::uint64_t bi = 0; bi < tiles_r; ++bi) {
      for (std::uint64_t bj = 0; bj < tiles_c; ++bj) {
        for (std::uint64_t sweep = 0; sweep <= spec.intra_reuse; ++sweep) {
          for (std::uint64_t r = 0; r < spec.tile_rows; ++r) {
            const std::uint64_t row = bi * spec.tile_rows + r;
            for (std::uint64_t c = 0; c < spec.tile_cols; ++c) {
              const std::uint64_t col = bj * spec.tile_cols + c;
              sim.on_load(0, (row * spec.cols + col) * 8, 8);
            }
          }
        }
      }
    }
  }
  const double predicted = try_estimate_tiled(spec, cache).value_or_throw();
  const double simulated = static_cast<double>(sim.stats(0).misses);
  if (math::relative_error(predicted, simulated) > kTiledOracleTolerance) {
    oracle_finding(report, options,
                   label + " rows=" + std::to_string(spec.rows) +
                       " cols=" + std::to_string(spec.cols) + " tile=" +
                       std::to_string(spec.tile_rows) + "x" +
                       std::to_string(spec.tile_cols) +
                       " passes=" + std::to_string(spec.passes) +
                       " intra=" + std::to_string(spec.intra_reuse),
                   "tiled", predicted, simulated, kTiledOracleTolerance);
  }
}

// ---- analyze target -------------------------------------------------------

/// An interval the analysis may legitimately report: a finite non-negative
/// lower bound, no NaN endpoint, and lo <= hi (hi = +inf is "unbounded").
bool interval_well_formed(const analysis::Interval& iv) {
  return std::isfinite(iv.lo) && iv.lo >= 0.0 && !std::isnan(iv.hi) &&
         iv.hi >= iv.lo;
}

void check_report_intervals(const analysis::AnalysisReport& bounds,
                            const std::string& label, FuzzReport& report,
                            const FuzzOptions& options) {
  const auto bad = [&](const std::string& what, const analysis::Interval& iv) {
    std::ostringstream out;
    out.precision(17);
    out << label << ": " << what << " interval [" << iv.lo << ", " << iv.hi
        << "] is malformed";
    record(report, options, out.str());
  };
  for (const analysis::ModelBounds& model : bounds.models) {
    if (!interval_well_formed(model.dvf)) {
      bad("model '" + model.name + "' DVF", model.dvf);
    }
    for (const auto& pm : model.per_machine) {
      if (!interval_well_formed(pm.dvf)) {
        bad("model '" + model.name + "' per-machine DVF", pm.dvf);
      }
    }
    for (const analysis::StructureBounds& ds : model.structures) {
      if (!interval_well_formed(ds.n_ha) || !interval_well_formed(ds.dvf)) {
        bad("structure '" + ds.name + "' hull", ds.n_ha);
      }
      for (const auto& pm : ds.per_machine) {
        if (!interval_well_formed(pm.n_ha) || !interval_well_formed(pm.dvf)) {
          bad("structure '" + ds.name + "' per-machine", pm.n_ha);
        }
      }
    }
  }
}

/// Differential soundness: wherever the evaluator succeeds, its value must
/// lie inside the analysis interval, and a structure the analysis claims
/// provably rejects must never evaluate successfully (provable rejection is
/// a for-every-budget statement).
void check_analysis_soundness(const dsl::CompiledProgram& program,
                              const analysis::AnalysisReport& bounds,
                              const std::string& label, FuzzReport& report,
                              const FuzzOptions& options) {
  for (std::size_t m = 0; m < program.machines.size(); ++m) {
    const Machine& machine = program.machines[m];
    EvalBudget budget(case_limits());
    for (const ModelSpec& model : program.models) {
      const analysis::ModelBounds* mb = bounds.find_model(model.name);
      if (mb == nullptr) {
        record(report, options,
               label + ": compiled model '" + model.name +
                   "' missing from the analysis report");
        continue;
      }
      for (const DataStructureSpec& ds : model.structures) {
        const analysis::StructureBounds* sb = nullptr;
        for (const analysis::StructureBounds& cand : mb->structures) {
          if (cand.name == ds.name) {
            sb = &cand;
          }
        }
        if (sb == nullptr || m >= sb->per_machine.size()) {
          record(report, options,
                 label + ": structure '" + ds.name +
                     "' missing from the analysis report");
          continue;
        }
        budget.reset();
        const Result<double> n_ha = try_estimate_accesses(
            std::span<const PatternSpec>(ds.patterns), machine.llc, &budget);
        if (!n_ha.ok()) {
          continue;  // budget- or domain-classified; nothing to contain
        }
        if (sb->per_machine[m].eval_rejects) {
          record(report, options,
                 label + ": analysis claims '" + ds.name + "' on machine '" +
                     machine.name +
                     "' provably rejects, but the evaluator succeeded");
          continue;
        }
        if (std::isfinite(*n_ha) && !sb->per_machine[m].n_ha.contains(*n_ha)) {
          std::ostringstream out;
          out.precision(17);
          out << label << ": N_ha " << *n_ha << " of '" << ds.name
              << "' on machine '" << machine.name << "' escapes bound ["
              << sb->per_machine[m].n_ha.lo << ", "
              << sb->per_machine[m].n_ha.hi << "]";
          record(report, options, out.str());
        }
      }
      if (model.exec_time_seconds.has_value() &&
          m < mb->per_machine.size()) {
        budget.reset();
        DvfCalculator calc(machine);
        calc.set_budget(&budget);
        const Result<ApplicationDvf> result = calc.try_for_model(model);
        if (result.ok() && std::isfinite(result.value().total) &&
            !mb->per_machine[m].dvf.contains(result.value().total)) {
          std::ostringstream out;
          out.precision(17);
          out << label << ": application DVF " << result.value().total
              << " of model '" << model.name << "' on machine '"
              << machine.name << "' escapes bound ["
              << mb->per_machine[m].dvf.lo << ", " << mb->per_machine[m].dvf.hi
              << "]";
          record(report, options, out.str());
        }
      }
    }
  }
}

void check_analyze_case(const std::string& source, const std::string& label,
                        FuzzReport& report, const FuzzOptions& options) {
  dsl::SemanticAnalysis first;
  try {
    first = dsl::analyze_models(source);
  } catch (const std::exception& err) {
    record(report, options,
           label + ": analyze_models threw: " + std::string(err.what()));
    return;
  } catch (...) {
    record(report, options, label + ": analyze_models threw a non-exception");
    return;
  }
  if (!first.report.has_value()) {
    return;  // unparseable: rejected through diagnostics, nothing to bound
  }
  const analysis::AnalysisReport& bounds = *first.report;
  check_report_intervals(bounds, label, report, options);

  try {
    // Hash determinism: a re-run and a threaded run must agree bit-for-bit.
    const dsl::SemanticAnalysis second = dsl::analyze_models(source);
    if (!second.report.has_value() ||
        second.report->canonical_hash != bounds.canonical_hash) {
      record(report, options, label + ": canonical hash differs across runs");
    }
    analysis::AnalysisOptions threaded;
    threaded.threads = 2;
    const analysis::AnalysisReport parallel = analysis::analyze(
        first.program.machines, first.program.models, threaded);
    if (parallel.canonical_hash != bounds.canonical_hash) {
      record(report, options,
             label + ": canonical hash differs with --threads 2");
    }
  } catch (const std::exception& err) {
    record(report, options,
           label + ": deterministic re-analysis threw: " +
               std::string(err.what()));
  }

  check_analysis_soundness(first.program, bounds, label, report, options);
}

// ---- trace target ---------------------------------------------------------

/// Random structure table: short names, arbitrary extents. Built directly
/// (not via DataStructureRegistry) so the fuzzer can exercise degenerate
/// element sizes the registry would reject.
std::vector<DataStructureInfo> random_structures(Xoshiro256& rng) {
  const std::size_t count = rng.below(5);
  std::vector<DataStructureInfo> structures;
  structures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DataStructureInfo info;
    info.name = "s" + std::to_string(i) + std::string(rng.below(8), 'x');
    info.base_address = rng();
    info.size_bytes = rng.below(std::uint64_t{1} << 30);
    info.element_bytes = static_cast<std::uint32_t>(rng.below(64));
    structures.push_back(std::move(info));
  }
  return structures;
}

/// Adversarial record streams: random 64-bit jumps (including wraparound
/// near ~0), run-friendly constant strides, negative deltas, zero sizes,
/// unattributed records.
std::vector<MemoryRecord> random_trace_records(Xoshiro256& rng,
                                               std::size_t n_structures) {
  const std::uint64_t count = rng.below(600);
  std::vector<MemoryRecord> records;
  records.reserve(static_cast<std::size_t>(count));
  std::uint64_t addr = rng();
  std::uint32_t size = 8;
  for (std::uint64_t i = 0; i < count; ++i) {
    switch (rng.below(5)) {
      case 0: addr = rng(); break;                    // arbitrary jump
      case 1: addr += size; break;                    // run-friendly stride
      case 2: addr -= 16; break;                      // negative delta
      case 3: addr += rng.below(1u << 12); break;
      default: break;                                 // repeat (delta 0)
    }
    if (rng.below(4) == 0) {
      static constexpr std::uint32_t kSizes[] = {0, 1, 2, 4, 8, 64, 4096};
      size = kSizes[rng.below(7)];
    }
    const DsId ds = n_structures > 0 && rng.below(4) != 0
                        ? static_cast<DsId>(rng.below(n_structures))
                        : kNoDs;
    records.push_back({addr, size, ds, rng.below(2) == 0});
  }
  return records;
}

std::string serialize_trace(const std::vector<DataStructureInfo>& structures,
                            const std::vector<MemoryRecord>& records,
                            TraceFormat format) {
  std::stringstream stream;
  write_trace(stream, std::span<const DataStructureInfo>(structures),
              std::span<const MemoryRecord>(records), format);
  return stream.str();
}

/// records → bytes → records must be the identity, re-encoding must be a
/// byte fixpoint, and both formats must decode to the same stream.
void check_trace_roundtrip(const std::string& label, Xoshiro256& rng,
                           FuzzReport& report, const FuzzOptions& options) {
  const auto structures = random_structures(rng);
  const auto records = random_trace_records(rng, structures.size());
  for (const TraceFormat format : {TraceFormat::kV2, TraceFormat::kV1}) {
    const char* fmt = format == TraceFormat::kV2 ? "v2" : "v1";
    const std::string bytes = serialize_trace(structures, records, format);
    std::stringstream in(bytes);
    const TraceFile decoded = read_trace(in);
    if (decoded.records != records) {
      record(report, options,
             label + ": " + fmt + " decode is not the encoded stream");
      return;
    }
    if (decoded.structures.size() != structures.size()) {
      record(report, options,
             label + ": " + fmt + " structure table changed size");
      return;
    }
    const std::string again =
        serialize_trace(decoded.structures, decoded.records, format);
    if (again != bytes) {
      record(report, options,
             label + ": " + fmt + " re-encode is not a byte fixpoint");
      return;
    }
  }
}

/// Decode totality: a mutated or truncated byte stream must either decode
/// or raise a classified dvf::Error — never crash, loop, or throw anything
/// else (a bad_alloc here would mean a header field drove an unbounded
/// allocation).
void check_trace_totality(const std::string& label, std::string bytes,
                          Xoshiro256& rng, FuzzReport& report,
                          const FuzzOptions& options) {
  if (!bytes.empty()) {
    if (rng.below(3) == 0) {
      bytes.resize(rng.below(bytes.size()));  // truncate
    }
    const std::uint64_t flips = 1 + rng.below(8);
    for (std::uint64_t f = 0; f < flips && !bytes.empty(); ++f) {
      bytes[rng.below(bytes.size())] ^= static_cast<char>(1 + rng.below(255));
    }
  }
  try {
    std::stringstream in(bytes);
    const TraceFile decoded = read_trace(in);
    (void)decoded;
  } catch (const Error&) {
    // Classified rejection: exactly the contract.
  } catch (const std::exception& err) {
    record(report, options,
           label + ": mutated trace threw non-dvf error: " + err.what());
  }
}

std::vector<std::string> load_trace_corpus(const std::string& dir) {
  std::vector<std::string> traces;
  if (dir.empty()) {
    return traces;
  }
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".dvft") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic corpus order
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    traces.push_back(std::move(contents).str());
  }
  return traces;
}

// ---- serve_proto target ---------------------------------------------------

/// Corpus frames: every line of every *.ndjson file in the corpus dir.
std::vector<std::string> load_ndjson_corpus(const std::string& dir) {
  std::vector<std::string> lines;
  if (dir.empty()) {
    return lines;
  }
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".ndjson") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic corpus order
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) {
      lines.push_back(line);
    }
  }
  return lines;
}

/// Tight engine guardrails, the serve analog of case_limits(): a hostile
/// frame degrades into a typed error within milliseconds.
serve::EngineConfig serve_case_config() {
  serve::EngineConfig config;
  config.cache_capacity = 8;
  config.max_request_bytes = 4096;
  config.default_deadline_s = 0.25;
  config.max_deadline_s = 0.25;
  config.max_references = std::uint64_t{1} << 20;
  config.max_expansion = std::uint64_t{1} << 18;
  config.span_drop_interval = 64;
  return config;
}

/// A structurally valid request frame around random content — the happy
/// paths the mutator then corrupts.
std::string random_request_frame(Xoshiro256& rng) {
  std::string out = "{";
  switch (rng.below(4)) {
    case 0: out += "\"id\":" + std::to_string(rng.below(1000)) + ","; break;
    case 1:
      out += "\"id\":\"req-" + std::to_string(rng.below(1000)) + "\",";
      break;
    case 2: out += "\"id\":null,"; break;
    default: break;  // no id
  }
  switch (rng.below(8)) {
    case 0: out += "\"op\":\"ping\""; break;
    case 1: out += "\"op\":\"metrics\""; break;
    case 2: out += "\"op\":\"restart\""; break;  // unknown op: bad_request
    case 3:  // hash-only eval; almost always unknown_hash
      out += "\"op\":\"eval\",\"hash\":\"" + serve::hash_hex(rng()) + "\"";
      break;
    default: {
      out += "\"op\":\"eval\",\"source\":" +
             serve::json_escape_string(generate_program(rng));
      if (rng.below(3) == 0) {
        out += ",\"deadline_s\":0.05";
      }
      if (rng.below(4) == 0) {
        out += ",\"exec_time_s\":" + std::to_string(rng.below(100)) + ".5";
      }
      if (rng.below(4) == 0) {
        out += ",\"model\":\"M1\"";
      }
      if (rng.below(4) == 0) {
        out += ",\"machine\":\"m1\"";
      }
      break;
    }
  }
  out += "}";
  return out;
}

bool known_wire_error_kind(const std::string& kind) {
  static const char* const kKinds[] = {
      serve::wire::kParseError,
      serve::wire::kBadRequest,
      serve::wire::kTooLarge,
      serve::wire::kModelError,
      serve::wire::kUnknownHash,
      serve::wire::kOverloaded,
      to_string(ErrorKind::kDomainError),
      to_string(ErrorKind::kOverflow),
      to_string(ErrorKind::kNonFinite),
      to_string(ErrorKind::kResourceLimit),
      to_string(ErrorKind::kDeadlineExceeded),
  };
  for (const char* known : kKinds) {
    if (kind == known) {
      return true;
    }
  }
  return false;
}

/// One frame through the engine: never throws, and the response is a JSON
/// object with boolean "ok", an "id", and on failure a known typed error
/// kind. `internal` counts as a finding — no input should reach the
/// engine's catch-all.
void check_serve_case(serve::Engine& engine, const std::string& input,
                      const std::string& label, FuzzReport& report,
                      const FuzzOptions& options) {
  std::string response;
  try {
    response = engine.handle_line(input);
  } catch (const std::exception& err) {
    record(report, options, label + ": handle_line threw: " + err.what());
    return;
  } catch (...) {
    record(report, options, label + ": handle_line threw a non-exception");
    return;
  }
  const bool blank =
      input.find_first_not_of(" \t\r\n") == std::string::npos;
  if (blank) {
    if (!response.empty()) {
      record(report, options, label + ": blank frame produced a response");
    }
    return;
  }
  if (response.empty()) {
    record(report, options, label + ": non-blank frame got no response");
    return;
  }
  const serve::JsonParsed parsed = serve::parse_json(response);
  if (!parsed.ok || !parsed.value.is_object()) {
    record(report, options,
           label + ": response is not a JSON object: " + response);
    return;
  }
  if (parsed.value.find("id") == nullptr) {
    record(report, options, label + ": response lacks 'id': " + response);
  }
  const serve::JsonValue* ok = parsed.value.find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    record(report, options,
           label + ": response lacks boolean 'ok': " + response);
    return;
  }
  if (ok->boolean) {
    return;
  }
  const serve::JsonValue* error = parsed.value.find("error");
  const serve::JsonValue* kind =
      error != nullptr ? error->find("kind") : nullptr;
  if (kind == nullptr || !kind->is_string()) {
    record(report, options,
           label + ": error response lacks 'error.kind': " + response);
    return;
  }
  if (kind->string == serve::wire::kInternal) {
    record(report, options,
           label + ": input reached the internal catch-all: " + response);
    return;
  }
  if (!known_wire_error_kind(kind->string)) {
    record(report, options,
           label + ": unknown error kind '" + kind->string + "'");
  }
}

std::string hostile_frame(Xoshiro256& rng) {
  switch (rng.below(6)) {
    case 0: {  // nesting bomb: must hit the depth cap, not the stack guard
      const std::size_t depth = 65 + rng.below(1000);
      std::string out(depth, '[');
      if (rng.below(2) == 0) {
        out.append(depth, ']');  // balanced and hostile
      }
      return out;
    }
    case 1: {  // oversized frame: too_large without parsing
      return std::string(4097 + rng.below(4096), 'x');
    }
    case 2: {  // raw bytes, including NUL and high bits
      std::string out;
      const std::size_t len = rng.below(64);
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<char>(rng.below(256)));
      }
      return out;
    }
    case 3:  // truncated valid request
      {
        std::string frame = random_request_frame(rng);
        frame.resize(rng.below(frame.size() + 1));
        return frame;
      }
    case 4:  // valid JSON, wrong shape
      return rng.below(2) == 0 ? "[1,2,3]" : "\"just a string\"";
    default:  // whitespace soup
      return std::string(rng.below(8), ' ') + "\t\r";
  }
}

}  // namespace

void FuzzReport::merge(FuzzReport other) {
  cases_run += other.cases_run;
  findings.insert(findings.end(),
                  std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
}

FuzzReport fuzz_roundtrip(const FuzzOptions& options) {
  FuzzReport report;
  const TimeBox box(options.max_seconds);
  Xoshiro256 rng(options.seed);

  std::vector<std::string> bases = load_corpus(options.corpus_dir);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    check_roundtrip(bases[i], "[roundtrip corpus " + std::to_string(i) + "]",
                    report, options);
  }

  for (std::uint64_t c = 0; c < options.cases && !box.expired(); ++c) {
    std::string source;
    if (!bases.empty() && rng.below(2) == 0) {
      source = mutate(bases[rng.below(bases.size())], rng);
    } else {
      source = generate_program(rng);
      if (rng.below(2) == 0) {
        source = mutate(std::move(source), rng);
      }
    }
    check_roundtrip(source, "[roundtrip case " + std::to_string(c) + "]",
                    report, options);
    if (bases.size() < 64 && rng.below(8) == 0) {
      bases.push_back(std::move(source));  // feed interesting inputs back in
    }
    ++report.cases_run;
  }
  return report;
}

FuzzReport fuzz_eval(const FuzzOptions& options) {
  FuzzReport report;
  const TimeBox box(options.max_seconds);
  Xoshiro256 rng(options.seed ^ 0x9E3779B97F4A7C15ULL);
  for (std::uint64_t c = 0; c < options.cases && !box.expired(); ++c) {
    check_eval_case(c, rng, report, options);
    ++report.cases_run;
  }
  return report;
}

FuzzReport fuzz_oracle(const FuzzOptions& options) {
  FuzzReport report;
  const TimeBox box(options.max_seconds);
  Xoshiro256 rng(options.seed ^ 0xD1B54A32D192ED03ULL);
  for (std::uint64_t c = 0; c < options.cases && !box.expired(); ++c) {
    const std::string label = "[oracle case " + std::to_string(c) + "]";
    try {
      switch (rng.below(5)) {
        case 0: check_oracle_streaming(label, rng, report, options); break;
        case 1: check_oracle_random(label, rng, report, options); break;
        case 2: check_oracle_template(label, rng, report, options); break;
        case 3: check_oracle_tiled(label, rng, report, options); break;
        default: check_oracle_reuse(label, rng, report, options); break;
      }
    } catch (const std::exception& err) {
      record(report, options,
             label + ": oracle evaluation threw: " + err.what());
    }
    ++report.cases_run;
  }
  return report;
}

FuzzReport fuzz_analyze(const FuzzOptions& options) {
  FuzzReport report;
  const TimeBox box(options.max_seconds);
  Xoshiro256 rng(options.seed ^ 0x8BB84B93962EACC9ULL);

  std::vector<std::string> bases = load_corpus(options.corpus_dir);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    check_analyze_case(bases[i], "[analyze corpus " + std::to_string(i) + "]",
                       report, options);
  }

  for (std::uint64_t c = 0; c < options.cases && !box.expired(); ++c) {
    std::string source;
    if (!bases.empty() && rng.below(2) == 0) {
      source = mutate(bases[rng.below(bases.size())], rng);
    } else {
      source = generate_program(rng);
      if (rng.below(3) == 0) {
        source = mutate(std::move(source), rng);
      }
    }
    check_analyze_case(source, "[analyze case " + std::to_string(c) + "]",
                       report, options);
    if (bases.size() < 64 && rng.below(8) == 0) {
      bases.push_back(std::move(source));
    }
    ++report.cases_run;
  }
  return report;
}

FuzzReport fuzz_serve_proto(const FuzzOptions& options) {
  FuzzReport report;
  const TimeBox box(options.max_seconds);
  Xoshiro256 rng(options.seed ^ 0xE7037ED1A0B428DBULL);

  // One engine across the whole run, like a real daemon: cache state and
  // counters carry over between frames, so a frame corrupted by an earlier
  // one would surface here.
  serve::Engine engine(serve_case_config());

  std::vector<std::string> bases = load_ndjson_corpus(options.corpus_dir);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    check_serve_case(engine, bases[i],
                     "[serve_proto corpus " + std::to_string(i) + "]", report,
                     options);
  }

  for (std::uint64_t c = 0; c < options.cases && !box.expired(); ++c) {
    const std::string label = "[serve_proto case " + std::to_string(c) + "]";
    std::string frame;
    switch (rng.below(4)) {
      case 0:
        frame = !bases.empty() && rng.below(2) == 0
                    ? mutate(bases[rng.below(bases.size())], rng)
                    : mutate(random_request_frame(rng), rng);
        break;
      case 1: frame = hostile_frame(rng); break;
      default: frame = random_request_frame(rng); break;
    }
    check_serve_case(engine, frame, label, report, options);
    if (bases.size() < 64 && rng.below(8) == 0) {
      bases.push_back(std::move(frame));
    }
    ++report.cases_run;
  }
  return report;
}

FuzzReport fuzz_trace(const FuzzOptions& options) {
  FuzzReport report;
  const TimeBox box(options.max_seconds);
  Xoshiro256 rng(options.seed ^ 0xA0761D6478BD642FULL);

  // Corpus seeds (tests/fuzz_corpus/*.dvft): decode totality on the pristine
  // bytes, then again mutated.
  const std::vector<std::string> corpus = load_trace_corpus(options.corpus_dir);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::string label = "[trace corpus " + std::to_string(i) + "]";
    check_trace_totality(label, corpus[i], rng, report, options);
  }

  for (std::uint64_t c = 0; c < options.cases && !box.expired(); ++c) {
    const std::string label = "[trace case " + std::to_string(c) + "]";
    try {
      check_trace_roundtrip(label, rng, report, options);
      // Totality over a fresh stream (mutated in place), plus occasionally
      // over a mutated corpus seed.
      const auto structures = random_structures(rng);
      const auto records = random_trace_records(rng, structures.size());
      const TraceFormat format =
          rng.below(2) == 0 ? TraceFormat::kV2 : TraceFormat::kV1;
      std::string bytes = serialize_trace(structures, records, format);
      if (!corpus.empty() && rng.below(4) == 0) {
        bytes = corpus[rng.below(corpus.size())];
      }
      check_trace_totality(label, std::move(bytes), rng, report, options);
    } catch (const std::exception& err) {
      record(report, options,
             label + ": well-formed trace path threw: " + err.what());
    }
    ++report.cases_run;
  }
  return report;
}

namespace {

// --- chaos target ----------------------------------------------------------

/// A random trigger suffix for a schedule entry: Nth-hit, every-Kth,
/// seeded-probability, or always. The probability seed is derived from the
/// case index so every case draws a distinct but replayable pattern.
std::string chaos_trigger(Xoshiro256& rng, std::uint64_t case_index) {
  switch (rng.below(4)) {
    case 0: return "@" + std::to_string(1 + rng.below(30));
    case 1: return "/" + std::to_string(1 + rng.below(8));
    case 2:
      return "%0." + std::to_string(1 + rng.below(9)) + ":" +
             std::to_string(case_index + 1);
    default: return "";  // fire on every hit
  }
}

std::string chaos_path(const FuzzOptions& options, std::uint64_t case_index,
                       const char* suffix) {
  return (std::filesystem::temp_directory_path() /
          ("dvf_fuzz_chaos_" + std::to_string(options.seed) + "_" +
           std::to_string(case_index) + suffix))
      .string();
}

kernels::KernelCaseAdapter<kernels::VectorMultiply> chaos_vm() {
  return kernels::KernelCaseAdapter<kernels::VectorMultiply>(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 120});
}

std::string stats_mismatch(
    const std::vector<kernels::StructureInjectionStats>& got,
    const std::vector<kernels::StructureInjectionStats>& want) {
  if (got.size() != want.size()) {
    return "structure count " + std::to_string(got.size()) + " != " +
           std::to_string(want.size());
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto& a = got[i];
    const auto& b = want[i];
    if (a.structure != b.structure || a.trials != b.trials ||
        a.injected != b.injected || a.masked != b.masked || a.sdc != b.sdc ||
        a.due_exception != b.due_exception || a.due_hang != b.due_hang ||
        a.due_invalid != b.due_invalid || a.corrupted != b.corrupted ||
        a.early_stopped != b.early_stopped) {
      return "structure '" + a.structure + "' diverged (trials " +
             std::to_string(a.trials) + "/" + std::to_string(b.trials) +
             ", sdc " + std::to_string(a.sdc) + "/" + std::to_string(b.sdc) +
             ")";
    }
  }
  return "";
}

/// Campaign under a randomized journal/pool fault schedule: the run must
/// complete with statistics bit-identical to the fault-free reference
/// (journaling degrades, results never change), and whatever journal
/// survived — absent, torn, partial or complete — must resume to the same
/// reference after the simulated kill.
void check_chaos_campaign(
    std::uint64_t case_index, Xoshiro256& rng,
    const std::vector<kernels::StructureInjectionStats>& reference,
    const kernels::CampaignConfig& base, const std::string& label,
    FuzzReport& report, const FuzzOptions& options) {
  std::string spec;
  const auto add = [&spec](const std::string& entry) {
    if (!spec.empty()) {
      spec += ";";
    }
    spec += entry;
  };
  if (rng.below(2) == 0) {
    add(std::string("campaign.journal.write=") +
        (rng.below(2) == 0 ? "error(28)" : "short") +
        chaos_trigger(rng, case_index));
  }
  if (rng.below(4) == 0) {
    add("campaign.journal.open=error(13)" + chaos_trigger(rng, case_index));
  }
  if (rng.below(4) == 0) {
    add("campaign.journal.truncate=error(28)" +
        chaos_trigger(rng, case_index));
  }
  if (rng.below(4) == 0) {
    add("pool.spawn=error(11)" + chaos_trigger(rng, case_index));
  }
  const Result<void> configured = failpoint::configure(spec);
  if (!configured.ok()) {
    record(report, options,
           label + ": generated spec '" + spec + "' rejected: " +
               configured.error().describe());
    return;
  }

  const std::string path = chaos_path(options, case_index, ".journal");
  kernels::CampaignConfig config = base;
  config.threads = 1 + static_cast<unsigned>(rng.below(4));
  config.journal_path = path;
  config.resume = false;

  std::vector<kernels::StructureInjectionStats> stats;
  try {
    auto kernel = chaos_vm();
    stats = kernels::run_injection_campaign(kernel, config);
  } catch (const std::exception& err) {
    record(report, options,
           label + ": campaign under schedule '" + spec + "' threw: " +
               err.what());
    failpoint::clear();
    std::remove(path.c_str());
    return;
  }
  std::string mismatch = stats_mismatch(stats, reference);
  if (!mismatch.empty()) {
    record(report, options,
           label + ": schedule '" + spec + "' changed campaign results: " +
               mismatch);
  }
  failpoint::clear();

  // Kill/resume: a journal the faults prevented from ever existing is the
  // one legitimate reason not to resume; anything readable must resume
  // bit-identically and leave a complete journal behind.
  try {
    (void)kernels::read_campaign_journal(path);
  } catch (const Error&) {
    std::remove(path.c_str());
    return;
  }
  config.resume = true;
  try {
    auto kernel = chaos_vm();
    const auto resumed = kernels::run_injection_campaign(kernel, config);
    mismatch = stats_mismatch(resumed, reference);
    if (!mismatch.empty()) {
      record(report, options,
             label + ": resume after schedule '" + spec +
                 "' diverged: " + mismatch);
    }
  } catch (const std::exception& err) {
    record(report, options,
           label + ": resume after schedule '" + spec + "' threw: " +
               err.what());
  }
  std::remove(path.c_str());
}

/// Serve request storm under allocation-failure schedules: every frame gets
/// exactly one well-formed typed response (check_serve_case) and the
/// request counters stay conserved (requests == ok + error).
void check_chaos_serve(std::uint64_t case_index, Xoshiro256& rng,
                       const std::string& label, FuzzReport& report,
                       const FuzzOptions& options) {
  const std::string spec =
      "eval.alloc=badalloc" + chaos_trigger(rng, case_index);
  const Result<void> configured = failpoint::configure(spec);
  if (!configured.ok()) {
    record(report, options,
           label + ": generated spec '" + spec + "' rejected: " +
               configured.error().describe());
    return;
  }
  serve::Engine engine(serve_case_config());
  const std::uint64_t storm = 8 + rng.below(9);
  for (std::uint64_t i = 0; i < storm; ++i) {
    check_serve_case(engine, random_request_frame(rng),
                     label + "[frame " + std::to_string(i) + "]", report,
                     options);
  }
  if (engine.requests_handled() != storm) {
    record(report, options,
           label + ": " + std::to_string(storm) + " frames but " +
               std::to_string(engine.requests_handled()) +
               " requests counted");
  }
  if (engine.responses_ok() + engine.responses_error() !=
      engine.requests_handled()) {
    record(report, options,
           label + ": counters not conserved (ok " +
               std::to_string(engine.responses_ok()) + " + error " +
               std::to_string(engine.responses_error()) + " != requests " +
               std::to_string(engine.requests_handled()) + ")");
  }
}

/// Trace artifact writes under write/rename fault schedules: the file under
/// the final name is always a complete, readable trace — the old one when
/// the write failed (with a typed dvf::Error), the new one when it
/// succeeded; never a torn prefix.
void check_chaos_trace(std::uint64_t case_index, Xoshiro256& rng,
                       const std::string& label, FuzzReport& report,
                       const FuzzOptions& options) {
  static std::int64_t buffer[16] = {};
  DataStructureRegistry registry;
  const DsId id = registry.register_structure("A", buffer, sizeof(buffer),
                                              sizeof(buffer[0]));
  const std::uint64_t baseline_count = 4 + rng.below(12);
  std::vector<MemoryRecord> records;
  for (std::uint64_t i = 0; i < baseline_count; ++i) {
    records.push_back({i * 8, 8, id, false});
  }
  const std::string path = chaos_path(options, case_index, ".dvft");
  try {
    write_trace_file(path, registry, records);
  } catch (const std::exception& err) {
    record(report, options,
           label + ": fault-free baseline write threw: " + err.what());
    return;
  }

  const std::string spec =
      (rng.below(2) == 0 ? "trace.write=throw" : "io.write_file=error(28)") +
      chaos_trigger(rng, case_index);
  const Result<void> configured = failpoint::configure(spec);
  if (!configured.ok()) {
    record(report, options,
           label + ": generated spec '" + spec + "' rejected: " +
               configured.error().describe());
    std::remove(path.c_str());
    return;
  }
  records.push_back({baseline_count * 8, 8, id, true});
  bool failed = false;
  try {
    write_trace_file(path, registry, records);
  } catch (const Error&) {
    failed = true;  // typed failure: the only acceptable way to not write
  } catch (const std::exception& err) {
    record(report, options,
           label + ": write under schedule '" + spec +
               "' threw an untyped exception: " + err.what());
    failed = true;
  }
  failpoint::clear();

  try {
    const TraceFile readback = read_trace_file(path);
    const std::uint64_t expected =
        failed ? baseline_count : baseline_count + 1;
    if (readback.records.size() != expected) {
      record(report, options,
             label + ": artifact under schedule '" + spec + "' holds " +
                 std::to_string(readback.records.size()) +
                 " records, expected " + std::to_string(expected));
    }
  } catch (const std::exception& err) {
    record(report, options,
           label + ": artifact under schedule '" + spec +
               "' is not readable (torn?): " + err.what());
  }
  std::remove(path.c_str());
}

}  // namespace

FuzzReport fuzz_chaos(const FuzzOptions& options) {
  FuzzReport report;
  const TimeBox box(options.max_seconds);
  Xoshiro256 rng(options.seed ^ 0x94D049BB133111EBULL);
  failpoint::clear();  // a leftover schedule would poison determinism

  // Fault-free reference statistics, computed once: every campaign case
  // must reproduce these exactly, whatever the environment does.
  kernels::CampaignConfig base;
  base.trials_per_structure = 6;
  auto reference_kernel = chaos_vm();
  const auto reference =
      kernels::run_injection_campaign(reference_kernel, base);

  for (std::uint64_t c = 0; c < options.cases && !box.expired(); ++c) {
    const std::string label = "[chaos case " + std::to_string(c) + "]";
    switch (c % 3) {
      case 0:
        check_chaos_campaign(c, rng, reference, base, label, report, options);
        break;
      case 1: check_chaos_serve(c, rng, label, report, options); break;
      default: check_chaos_trace(c, rng, label, report, options); break;
    }
    failpoint::clear();
    ++report.cases_run;
  }
  return report;
}

}  // namespace dvf::fuzz
