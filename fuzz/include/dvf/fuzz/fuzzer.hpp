// Deterministic, dependency-free fuzz harness for the DVF front end and
// evaluation core (docs/architecture.md "guardrail & fuzz layer").
//
// Four targets, each a pure function of (seed, case count):
//
//   roundtrip — random + mutated DSL sources through parse/print/analyze.
//               A source must either be rejected with a positioned
//               ParseError / diagnostics, or parse, print canonically and
//               reach the printer's fixpoint (print ∘ parse is idempotent).
//               Any other exception, or a fixpoint violation, is a finding.
//
//   eval      — adversarial pattern specs (zeros, 2^62 counts, NaN/Inf
//               parameters, huge strides) through the total try_* evaluator
//               APIs under a bounded EvalBudget. An evaluator must return
//               either a finite non-negative estimate or a classified
//               EvalError; an exception, crash, hang (budget-bounded) or an
//               unclassified non-finite value is a finding.
//
//   oracle    — differential testing: sensible random specs evaluated
//               analytically and replayed on the LRU CacheSimulator; the
//               two must agree within the documented per-pattern tolerance
//               (docs/resilience.md "Error taxonomy & totality").
//
//   trace     — trace wire formats (v1 native, v2 little-endian chunked):
//               encode/decode fixpoint on adversarial record streams, and
//               decode totality on mutated/truncated bytes.
//
//   analyze   — the semantic analysis (dvfc analyze) on random + mutated
//               sources: must never throw on any parseable model, never
//               report NaN/invalid interval bounds, hash deterministically
//               (across re-runs and thread counts), and every interval must
//               contain the value the evaluator actually computes.
//
//   chaos     — randomized-but-seeded environment-fault schedules (the
//               failpoint subsystem: journal writes, thread spawn, serve
//               allocation, artifact writes) over campaigns with
//               kill/resume, serve request storms and trace artifacts; the
//               standing invariants — no crash, campaign statistics
//               bit-identical to the fault-free reference, resume exact,
//               one typed response per request, counters conserved — must
//               hold under every schedule.
//
// The harness uses the library's own xoshiro256** so runs are reproducible
// across platforms; a failing case can be replayed from its seed alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dvf::fuzz {

/// One harness configuration, shared by all targets.
struct FuzzOptions {
  std::uint64_t cases = 1000;  ///< generated cases per target
  std::uint64_t seed = 1;      ///< master seed (cases derive from it)
  double max_seconds = 0.0;    ///< wall-clock box per target (0 = none)
  std::string corpus_dir;      ///< optional dir of *.aspen seed inputs
  bool verbose = false;        ///< narrate findings to stderr as they occur
};

/// Outcome of one target run. `cases_run` counts generated cases actually
/// executed (the time box may stop a run early); corpus seeds are extra.
struct FuzzReport {
  std::uint64_t cases_run = 0;
  std::vector<std::string> findings;

  [[nodiscard]] bool ok() const noexcept { return findings.empty(); }
  void merge(FuzzReport other);
};

/// DSL parse → print → parse fixpoint checking over generated and mutated
/// sources plus every corpus file.
[[nodiscard]] FuzzReport fuzz_roundtrip(const FuzzOptions& options);

/// Totality checking of the try_* evaluators on adversarial specs.
[[nodiscard]] FuzzReport fuzz_eval(const FuzzOptions& options);

/// Differential oracle: analytical N_ha against CacheSimulator replay.
[[nodiscard]] FuzzReport fuzz_oracle(const FuzzOptions& options);

/// Trace wire-format fuzzing: records → bytes → records fixpoint for both
/// format versions, plus decode totality (a mutated or truncated stream
/// must decode or raise dvf::Error, never crash or allocate unboundedly).
/// Corpus seeds are *.dvft files in the corpus directory.
[[nodiscard]] FuzzReport fuzz_trace(const FuzzOptions& options);

/// Serve wire-protocol totality: every NDJSON frame — corpus lines,
/// generated requests, byte-mutated, truncated, deeply nested, oversized —
/// driven through serve::Engine::handle_line must yield a well-formed JSON
/// response with a boolean "ok" and, on failure, a *known* typed error
/// kind; `internal` (the catch-all) counts as a finding, as does any
/// exception, crash or hang (tight per-request budgets bound every case).
/// Corpus seeds are *.ndjson files (one frame per line) in the corpus
/// directory.
[[nodiscard]] FuzzReport fuzz_serve_proto(const FuzzOptions& options);

/// Semantic-analysis totality and soundness: analyze_models must not throw,
/// every reported interval must be valid (finite non-negative lower bound,
/// no NaN, lo <= hi), the canonical hash must be identical across re-runs
/// and thread counts, and whenever the evaluator succeeds on a (structure,
/// machine) its value must lie inside the reported interval. Corpus seeds
/// are *.aspen files in the corpus directory.
[[nodiscard]] FuzzReport fuzz_analyze(const FuzzOptions& options);

/// Environment-fault chaos: deterministic failpoint schedules (derived from
/// the seed) fired into the journal, thread-pool, serve and artifact-write
/// paths while campaigns (with kill/resume), serve storms and trace writes
/// run on top. Asserts the hardening invariants documented in
/// docs/resilience.md "Environment-fault injection"; any crash, statistic
/// drift, torn artifact or unconserved counter is a finding. Clears the
/// failpoint table before and after every case.
[[nodiscard]] FuzzReport fuzz_chaos(const FuzzOptions& options);

/// Documented differential tolerances (relative error bounds) asserted by
/// fuzz_oracle. Streaming single-pass traversals are predicted block-exactly;
/// the stochastic models carry the paper's ±15% validation band, and the
/// tiled family's three closed-form regimes stay inside the same band
/// (docs/resilience.md documents each oracle's regimes).
inline constexpr double kStreamingOracleTolerance = 0.0;
inline constexpr double kRandomOracleTolerance = 0.15;
inline constexpr double kTemplateOracleTolerance = 0.15;
inline constexpr double kReuseOracleTolerance = 0.15;
inline constexpr double kTiledOracleTolerance = 0.15;

}  // namespace dvf::fuzz
