#!/usr/bin/env python3
"""Schema check for `dvfc analyze --json` output (CI analysis-smoke job).

    dvfc analyze models/*.aspen --json | check_analyze_json.py
    check_analyze_json.py report.json [report2.json ...]

Validates the shape documented in docs/analysis.md:

  - top level is an array with one object per analyzed file;
  - every object carries ``file``, a 16-hex-digit ``0x``-prefixed
    ``canonical_hash`` string, a boolean ``clean``, a ``machines`` name
    array, a ``models`` array and a ``diagnostics`` array;
  - every interval object is ``{"lo": num, "hi": num|null, "exact": bool}``
    with ``lo`` finite, non-negative, and ``lo <= hi`` when bounded
    (``null`` encodes an unbounded upper endpoint, never NaN);
  - ``exact`` implies the interval is a point;
  - every structure carries the five verdict booleans;
  - ``clean`` agrees with the diagnostics array;
  - diagnostics carry the lint JSON shape (file/line/column/severity/code).

With ``--same-hash`` the checker additionally asserts that all inputs
report identical per-file hashes — CI feeds it two independent runs (one
with ``--threads 1``, one with ``--threads 4``) to pin hash determinism.
"""

import json
import math
import re
import sys

HASH_RE = re.compile(r"^0x[0-9a-f]{16}$")


def fail(message: str) -> None:
    sys.exit(f"check_analyze_json: FAIL: {message}")


def require(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_interval(doc, where: str) -> None:
    require(isinstance(doc, dict), f"{where}: interval must be an object")
    require(set(doc) == {"lo", "hi", "exact"},
            f"{where}: interval keys must be lo/hi/exact, got {sorted(doc)}")
    lo, hi, exact = doc["lo"], doc["hi"], doc["exact"]
    require(is_number(lo) and math.isfinite(lo) and lo >= 0,
            f"{where}.lo: must be a finite non-negative number")
    require(hi is None or is_number(hi),
            f"{where}.hi: must be a number or null")
    if is_number(hi):
        require(math.isfinite(hi) and hi >= lo,
                f"{where}: needs finite hi >= lo (got lo={lo}, hi={hi})")
    require(isinstance(exact, bool), f"{where}.exact: must be a boolean")
    if exact:
        require(hi == lo, f"{where}: exact interval must be a point")


def check_structure(doc, where: str) -> None:
    require(isinstance(doc.get("name"), str) and doc["name"],
            f"{where}: missing string 'name'")
    require(is_number(doc.get("size_bytes")) and doc["size_bytes"] >= 0,
            f"{where}: missing non-negative 'size_bytes'")
    check_interval(doc.get("n_ha"), f"{where}.n_ha")
    check_interval(doc.get("dvf"), f"{where}.dvf")
    for key in ("exact", "dead", "exceeds_all_shares", "rejects_everywhere",
                "monotone_in_capacity"):
        require(isinstance(doc.get(key), bool),
                f"{where}: missing boolean '{key}'")
    if doc["dead"]:
        require(doc["n_ha"] == {"lo": 0, "hi": 0, "exact": True},
                f"{where}: dead structure must report N_ha exactly 0")


def check_report(doc, where: str) -> dict:
    require(isinstance(doc, dict), f"{where}: must be an object")
    require(isinstance(doc.get("file"), str) and doc["file"],
            f"{where}: missing string 'file'")
    where = f"{where} ({doc['file']})"
    require(isinstance(doc.get("clean"), bool),
            f"{where}: missing boolean 'clean'")
    diagnostics = doc.get("diagnostics")
    require(isinstance(diagnostics, list),
            f"{where}: 'diagnostics' must be an array")
    require(doc["clean"] == (not diagnostics),
            f"{where}: 'clean' disagrees with the diagnostics array")
    for index, diag in enumerate(diagnostics):
        dwhere = f"{where}.diagnostics[{index}]"
        require(isinstance(diag, dict), f"{dwhere}: must be an object")
        for key in ("file", "severity", "code", "message"):
            require(isinstance(diag.get(key), str) and diag[key],
                    f"{dwhere}: missing string '{key}'")
        for key in ("line", "column"):
            require(is_number(diag.get(key)) and diag[key] >= 1,
                    f"{dwhere}: missing positive '{key}'")

    # A file that failed to parse has diagnostics but no report payload.
    if "canonical_hash" not in doc:
        require(not doc["clean"], f"{where}: reportless object must be dirty")
        return {"file": doc["file"], "hash": None}

    require(isinstance(doc["canonical_hash"], str)
            and HASH_RE.match(doc["canonical_hash"]),
            f"{where}: 'canonical_hash' must be 0x + 16 lowercase hex digits")
    machines = doc.get("machines")
    require(isinstance(machines, list)
            and all(isinstance(m, str) and m for m in machines),
            f"{where}: 'machines' must be an array of names")
    models = doc.get("models")
    require(isinstance(models, list), f"{where}: 'models' must be an array")
    for mindex, model in enumerate(models):
        mwhere = f"{where}.models[{mindex}]"
        require(isinstance(model, dict), f"{mwhere}: must be an object")
        require(isinstance(model.get("name"), str) and model["name"],
                f"{mwhere}: missing string 'name'")
        check_interval(model.get("dvf"), f"{mwhere}.dvf")
        structures = model.get("structures")
        require(isinstance(structures, list),
                f"{mwhere}: 'structures' must be an array")
        for sindex, structure in enumerate(structures):
            check_structure(structure, f"{mwhere}.structures[{sindex}]")
    return {"file": doc["file"], "hash": doc["canonical_hash"]}


def load(path: str):
    try:
        if path == "-":
            return json.load(sys.stdin), "<stdin>"
        with open(path, encoding="utf-8") as handle:
            return json.load(handle), path
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")


def main() -> None:
    args = sys.argv[1:]
    same_hash = "--same-hash" in args
    args = [a for a in args if a != "--same-hash"] or ["-"]

    runs = []
    for path in args:
        doc, label = load(path)
        require(isinstance(doc, list) and doc,
                f"{label}: top level must be a non-empty array")
        entries = [check_report(entry, f"{label}[{i}]")
                   for i, entry in enumerate(doc)]
        runs.append((label, entries))
        print(f"check_analyze_json: OK: {label} ({len(entries)} file(s))")

    if same_hash and len(runs) > 1:
        base_label, base = runs[0]
        base_hashes = {e["file"]: e["hash"] for e in base}
        for label, entries in runs[1:]:
            hashes = {e["file"]: e["hash"] for e in entries}
            require(hashes == base_hashes,
                    f"hash mismatch between {base_label} and {label}: "
                    f"{base_hashes} vs {hashes}")
        print(f"check_analyze_json: OK: canonical hashes identical across "
              f"{len(runs)} run(s)")


if __name__ == "__main__":
    main()
