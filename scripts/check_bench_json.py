#!/usr/bin/env python3
"""Schema check for BENCH_*.json files (wired into the CI bench-smoke job).

    check_bench_json.py BENCH_cachesim.json [BENCH_other.json ...]

Validates that each file is the shape bench/bench_json.hpp writes and that
downstream trajectory tooling can rely on:

  - a JSON object with a string ``benchmark`` name and a non-empty
    ``records`` array of flat objects (string/number values only);
  - every timed record carries positive ``wall_s`` and ``accesses_per_s``;
  - records sharing a scenario name do not appear twice (a duplicate means
    the harness double-reported);
  - for the cachesim harness specifically: the sharded scenarios carry
    ``threads``/``policy``/``hardware_threads``, and the trace-size records
    carry consistent ``v1_bytes``/``v2_bytes``/``v1_over_v2``;
  - for the serve harness: cold_compile/cache_hit/shed_2x scenarios are all
    present, latency records carry positive ``requests``/``mean_us``, the
    cache-hit record proves the cache actually served hits, and the shed
    record's counts are internally consistent (every offered frame
    answered, shed_rate == shed / offered).
"""

import json
import sys


def fail(message: str) -> None:
    sys.exit(f"check_bench_json: FAIL: {message}")


def require(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def check_file(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")

    require(isinstance(doc, dict), f"{path}: top level must be an object")
    require(isinstance(doc.get("benchmark"), str) and doc["benchmark"],
            f"{path}: missing string 'benchmark'")
    records = doc.get("records")
    require(isinstance(records, list) and records,
            f"{path}: 'records' must be a non-empty array")

    seen_scenarios = set()
    for index, record in enumerate(records):
        where = f"{path}: records[{index}]"
        require(isinstance(record, dict), f"{where}: must be an object")
        for key, value in record.items():
            require(isinstance(key, str) and key, f"{where}: bad key")
            require(isinstance(value, (str, int, float))
                    and not isinstance(value, bool),
                    f"{where}.{key}: values must be strings or numbers")

        scenario = record.get("scenario")
        require(isinstance(scenario, str) and scenario,
                f"{where}: missing string 'scenario'")
        require(scenario not in seen_scenarios,
                f"{where}: duplicate scenario '{scenario}'")
        seen_scenarios.add(scenario)

        if "wall_s" in record:
            require(record["wall_s"] > 0, f"{where}: wall_s must be > 0")
            require(record.get("accesses_per_s", 0) > 0,
                    f"{where}: timed records need accesses_per_s > 0")

        if doc["benchmark"] == "serve":
            if scenario in ("cold_compile", "cache_hit"):
                require(record.get("requests", 0) > 0,
                        f"{where}: latency records need requests > 0")
                require(record.get("mean_us", 0) > 0,
                        f"{where}: latency records need mean_us > 0")
            if scenario == "cache_hit":
                require(record.get("cache_hits", 0) >= record["requests"],
                        f"{where}: cache_hits must cover every hit request")
            if scenario == "shed_2x":
                for key in ("offered", "answered", "shed", "shed_rate"):
                    require(key in record, f"{where}: shed_2x needs '{key}'")
                require(record["answered"] == record["offered"],
                        f"{where}: every offered frame must be answered")
                require(0 <= record["shed"] <= record["offered"],
                        f"{where}: shed out of range")
                expected_rate = (record["shed"] / record["offered"]
                                 if record["offered"] else 0.0)
                require(abs(record["shed_rate"] - expected_rate) < 1e-6,
                        f"{where}: shed_rate inconsistent with counts")

        if doc["benchmark"] == "cachesim":
            if "sharded" in scenario:
                for key in ("threads", "policy", "hardware_threads"):
                    require(key in record, f"{where}: sharded needs '{key}'")
                require(record["threads"] >= 2,
                        f"{where}: sharded threads must be >= 2")
            if scenario.startswith("trace_size_"):
                for key in ("v1_bytes", "v2_bytes", "v1_over_v2"):
                    require(record.get(key, 0) > 0,
                            f"{where}: trace size needs positive '{key}'")
                ratio = record["v1_bytes"] / record["v2_bytes"]
                require(abs(ratio - record["v1_over_v2"]) < 0.01,
                        f"{where}: v1_over_v2 inconsistent with byte counts")

    if doc["benchmark"] == "serve":
        for scenario in ("cold_compile", "cache_hit", "shed_2x"):
            require(scenario in seen_scenarios,
                    f"{path}: serve bench missing scenario '{scenario}'")

    if "metrics" in doc:
        require(isinstance(doc["metrics"], dict),
                f"{path}: 'metrics' must be an object")
    return len(records)


def main() -> None:
    if len(sys.argv) < 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    for path in sys.argv[1:]:
        count = check_file(path)
        print(f"check_bench_json: OK: {path} ({count} record(s))")


if __name__ == "__main__":
    main()
