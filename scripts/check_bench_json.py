#!/usr/bin/env python3
"""Schema check for BENCH_*.json files (wired into the CI bench-smoke job).

    check_bench_json.py BENCH_cachesim.json [BENCH_other.json ...]

Validates that each file is the shape bench/bench_json.hpp writes and that
downstream trajectory tooling can rely on:

  - a JSON object with a string ``benchmark`` name and a non-empty
    ``records`` array of flat objects (string/number values only);
  - every timed record carries positive ``wall_s`` and ``accesses_per_s``;
  - records sharing a scenario name do not appear twice (a duplicate means
    the harness double-reported);
  - for the cachesim harness specifically: the sharded scenarios carry
    ``threads``/``policy``/``hardware_threads``, and the trace-size records
    carry consistent ``v1_bytes``/``v2_bytes``/``v1_over_v2``.
"""

import json
import sys


def fail(message: str) -> None:
    sys.exit(f"check_bench_json: FAIL: {message}")


def require(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def check_file(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")

    require(isinstance(doc, dict), f"{path}: top level must be an object")
    require(isinstance(doc.get("benchmark"), str) and doc["benchmark"],
            f"{path}: missing string 'benchmark'")
    records = doc.get("records")
    require(isinstance(records, list) and records,
            f"{path}: 'records' must be a non-empty array")

    seen_scenarios = set()
    for index, record in enumerate(records):
        where = f"{path}: records[{index}]"
        require(isinstance(record, dict), f"{where}: must be an object")
        for key, value in record.items():
            require(isinstance(key, str) and key, f"{where}: bad key")
            require(isinstance(value, (str, int, float))
                    and not isinstance(value, bool),
                    f"{where}.{key}: values must be strings or numbers")

        scenario = record.get("scenario")
        require(isinstance(scenario, str) and scenario,
                f"{where}: missing string 'scenario'")
        require(scenario not in seen_scenarios,
                f"{where}: duplicate scenario '{scenario}'")
        seen_scenarios.add(scenario)

        if "wall_s" in record:
            require(record["wall_s"] > 0, f"{where}: wall_s must be > 0")
            require(record.get("accesses_per_s", 0) > 0,
                    f"{where}: timed records need accesses_per_s > 0")

        if doc["benchmark"] == "cachesim":
            if "sharded" in scenario:
                for key in ("threads", "policy", "hardware_threads"):
                    require(key in record, f"{where}: sharded needs '{key}'")
                require(record["threads"] >= 2,
                        f"{where}: sharded threads must be >= 2")
            if scenario.startswith("trace_size_"):
                for key in ("v1_bytes", "v2_bytes", "v1_over_v2"):
                    require(record.get(key, 0) > 0,
                            f"{where}: trace size needs positive '{key}'")
                ratio = record["v1_bytes"] / record["v2_bytes"]
                require(abs(ratio - record["v1_over_v2"]) < 0.01,
                        f"{where}: v1_over_v2 inconsistent with byte counts")

    if "metrics" in doc:
        require(isinstance(doc["metrics"], dict),
                f"{path}: 'metrics' must be an object")
    return len(records)


def main() -> None:
    if len(sys.argv) < 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    for path in sys.argv[1:]:
        count = check_file(path)
        print(f"check_bench_json: OK: {path} ({count} record(s))")


if __name__ == "__main__":
    main()
