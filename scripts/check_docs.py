#!/usr/bin/env python3
"""Documentation consistency checker (wired into CI).

Three passes:

1. **Links** — every relative markdown link ``[text](target)`` in every
   tracked ``*.md`` file must point at a file (or directory) that
   exists, anchors stripped. Absolute URLs (``http(s):``, ``mailto:``)
   and pure in-page anchors are skipped, as are links inside fenced
   code blocks.

2. **dvfc flags** — every ``--flag`` token that appears after the word
   ``dvfc`` inside inline code or a fenced code block must be reported by
   ``dvfc help`` (the usage text; flag set passed via --dvfc). Docs
   drifting ahead of (or behind) the CLI fail the build.

3. **README doc index** — the README's "Documentation" section must link
   every tracked ``docs/*.md`` file and must not link a ``docs/`` path
   that does not exist: a new doc nobody indexed, or a stale entry for a
   deleted one, fails the build.

Usage:
    scripts/check_docs.py [--dvfc PATH_TO_DVFC] [FILES...]

With no FILES, checks every .md file known to git. Exits nonzero on any
broken link or undocumented flag, listing file:line for each.
"""

import argparse
import pathlib
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--([A-Za-z][A-Za-z0-9-]*)")
# Inline code spans; fenced blocks are tracked line-wise below.
CODE_SPAN_RE = re.compile(r"`([^`]+)`")


def git_markdown_files(root: pathlib.Path) -> list[pathlib.Path]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root, capture_output=True, text=True, check=True)
    return [root / line for line in out.stdout.splitlines() if line]


def dvfc_reported_flags(dvfc: pathlib.Path) -> set[str]:
    """Flags the CLI itself reports: everything in `dvfc help` usage text."""
    out = subprocess.run([str(dvfc), "help"], capture_output=True, text=True)
    usage = out.stdout + out.stderr
    if "usage:" not in usage:
        sys.exit(f"check_docs: {dvfc} help did not print a usage text")
    return set(FLAG_RE.findall(usage))


def check_file(path: pathlib.Path, root: pathlib.Path,
               known_flags: set[str] | None) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        stripped = line.lstrip()
        if stripped.startswith("```") or stripped.startswith("~~~"):
            in_fence = not in_fence
            continue

        # Pass 1: relative links (outside fenced code only).
        if not in_fence:
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                    continue
                if target.startswith("#"):  # in-page anchor
                    continue
                resolved = (path.parent / target.split("#")[0]).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{path.relative_to(root)}:{lineno}: broken link: "
                        f"{target}")

        # Pass 2: dvfc flags in code (fenced lines and inline spans).
        if known_flags is None:
            continue
        snippets = [line] if in_fence else CODE_SPAN_RE.findall(line)
        # Table rows: flags live in a different cell than the `dvfc cmd`
        # span, so widen to the whole line when any span mentions dvfc.
        if not in_fence and any("dvfc" in s for s in snippets):
            snippets = [" ".join(snippets)]
        for snippet in snippets:
            before, sep, after = snippet.partition("dvfc")
            if not sep:
                continue
            for flag in FLAG_RE.findall(after):
                if flag not in known_flags:
                    errors.append(
                        f"{path.relative_to(root)}:{lineno}: flag --{flag} "
                        f"is not reported by `dvfc help`")
    return errors


def check_readme_doc_index(root: pathlib.Path) -> list[str]:
    """Pass 3: README's Documentation section vs the docs/ files on disk."""
    readme = root / "README.md"
    if not readme.exists():
        return ["README.md: missing (cannot check the doc index)"]
    on_disk = {
        f"docs/{p.name}"
        for p in git_markdown_files(root)
        if p.parent == root / "docs"
    }
    listed: set[str] = set()
    in_section = False
    section_line = None
    for lineno, line in enumerate(
            readme.read_text(encoding="utf-8").splitlines(), start=1):
        if line.startswith("#"):
            in_section = line.lstrip("#").strip() == "Documentation"
            if in_section:
                section_line = lineno
            continue
        if not in_section:
            continue
        for target in LINK_RE.findall(line):
            clean = target.split("#")[0]
            if clean.startswith("docs/") and clean.endswith(".md"):
                listed.add(clean)
    if section_line is None:
        return ["README.md: no 'Documentation' section found"]
    errors = []
    for missing in sorted(on_disk - listed):
        errors.append(
            f"README.md:{section_line}: Documentation section does not "
            f"list {missing}")
    for stale in sorted(listed - on_disk):
        errors.append(
            f"README.md:{section_line}: Documentation section links "
            f"{stale}, which is not a tracked docs/ file")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dvfc", type=pathlib.Path, default=None,
                        help="dvfc binary for the flag check; omitting it "
                             "skips that pass")
    parser.add_argument("files", nargs="*", type=pathlib.Path)
    args = parser.parse_args()

    root = pathlib.Path(
        subprocess.run(["git", "rev-parse", "--show-toplevel"],
                       capture_output=True, text=True,
                       check=True).stdout.strip())
    files = ([f.resolve() for f in args.files] if args.files
             else git_markdown_files(root))
    known_flags = (dvfc_reported_flags(args.dvfc)
                   if args.dvfc is not None else None)

    errors = []
    for path in files:
        errors.extend(check_file(path, root, known_flags))
    errors.extend(check_readme_doc_index(root))
    for error in errors:
        print(error, file=sys.stderr)
    checked = ("links+flags" if known_flags is not None else "links") + \
        "+doc-index"
    print(f"check_docs: {len(files)} file(s), {checked}: "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} error(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
