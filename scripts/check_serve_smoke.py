#!/usr/bin/env python3
"""End-to-end smoke test for `dvfc serve` (wired into the CI serve-smoke job).

    check_serve_smoke.py PATH_TO_DVFC

Starts a real daemon on a Unix socket and drives the robustness contract
documented in docs/serve.md:

  1. a valid eval is answered ok with cache "miss" and a canonical hash;
  2. the identical source is answered bit-identically with cache "hit",
     and the metrics op reports a positive cache-hit counter;
  3. a hash-only request (reusing the miss response's hash) is served from
     the cache without resending the source; an unknown hash is the typed
     `unknown_hash` error;
  4. malformed, oversized and impossible-deadline frames get typed errors
     (parse_error / too_large / deadline_exceeded), never a crash;
  5. a mid-request disconnect (half a frame, then close) leaves the daemon
     healthy for the next connection;
  6. SIGTERM drains gracefully: exit code 0;
  7. a daemon launched with --failpoints sheds the scheduled evaluation
     with a typed resource_limit error, keeps serving afterwards, and the
     metrics op exports the failpoint hit counters
     (failpoint.<name>.hits / .fired).

Every response must parse as one JSON object of the documented shape.
The same script runs against sanitizer builds; it asserts nothing about
latency, only about behavior.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

ERROR_KINDS = {
    "parse_error", "bad_request", "too_large", "model_error",
    "unknown_hash", "overloaded", "internal", "domain_error", "overflow",
    "non_finite", "resource_limit", "deadline_exceeded", "io_error",
}

SOURCE = ('model "smoke" { time 1; '
          'data A { elements 64; element_size 8; } '
          'pattern A stream { stride 1; repeat 2; } }')

# Big enough that evaluation crosses a deadline checkpoint; an impossible
# request deadline must come back as the typed deadline_exceeded error.
SLOW_SOURCE = ('model "slow" { time 1; '
               'data T { elements 262144; element_size 8; } '
               'pattern T template { start (0); step 1; count 262144; '
               'repeat 4; } }')


def fail(message: str) -> None:
    sys.exit(f"check_serve_smoke: FAIL: {message}")


def require(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def connect(path: str, deadline_s: float = 10.0) -> socket.socket:
    end = time.monotonic() + deadline_s
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= end:
                fail(f"daemon never answered on {path}")
            time.sleep(0.05)


def read_line(sock: socket.socket, deadline_s: float = 30.0) -> str:
    sock.settimeout(deadline_s)
    buffer = b""
    while b"\n" not in buffer:
        try:
            chunk = sock.recv(4096)
        except socket.timeout:
            fail("timed out waiting for a response line")
        require(bool(chunk), "connection closed before a full response")
        buffer += chunk
    return buffer.split(b"\n", 1)[0].decode("utf-8")


def check_shape(line: str) -> dict:
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as error:
        fail(f"response is not JSON ({error}): {line[:200]}")
    require(isinstance(doc, dict), f"response not an object: {line[:200]}")
    require("id" in doc and "ok" in doc, f"response missing id/ok: {line[:200]}")
    if doc["ok"]:
        require(doc.get("op") in ("ping", "eval", "metrics"),
                f"ok response has bad op: {line[:200]}")
    else:
        error = doc.get("error")
        require(isinstance(error, dict), f"error response lacks error object: {line[:200]}")
        require(error.get("kind") in ERROR_KINDS,
                f"unknown error kind {error.get('kind')!r}: {line[:200]}")
        require(isinstance(error.get("message"), str) and error["message"],
                f"error response lacks a message: {line[:200]}")
    return doc


def roundtrip(sock: socket.socket, frame: str) -> dict:
    sock.sendall(frame.encode("utf-8") + b"\n")
    return check_shape(read_line(sock))


def check_failpoint_daemon(dvfc: str) -> None:
    """Phase 7: --failpoints scheduling and the hit-counter metrics schema.

    A daemon armed with `eval.alloc=badalloc@1` must shed exactly the first
    evaluation as the typed resource_limit error, serve the second normally,
    and export `failpoint.eval.alloc.hits` / `.fired` counters through the
    metrics op.
    """
    path = f"/tmp/dvf_serve_smoke_fp_{os.getpid()}.sock"
    proc = subprocess.Popen(
        [dvfc, "serve", "--socket", path, "--workers", "1",
         "--failpoints", "eval.alloc=badalloc@1"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    try:
        sock = connect(path)

        shed = roundtrip(sock, json.dumps(
            {"id": 20, "op": "eval", "source": SOURCE}))
        require(not shed["ok"]
                and shed["error"]["kind"] == "resource_limit",
                f"scheduled eval.alloc fault should shed with "
                f"resource_limit: {shed}")

        served = roundtrip(sock, json.dumps(
            {"id": 21, "op": "eval", "source": SOURCE}))
        require(served["ok"] and served.get("hash", "").startswith("0x"),
                f"daemon should recover after the scheduled fault: {served}")

        metrics = roundtrip(sock, json.dumps({"id": 22, "op": "metrics"}))
        require(metrics["ok"], f"metrics op failed under failpoints: {metrics}")
        counters = metrics.get("metrics", {}).get("counters", {})
        require(isinstance(counters, dict),
                f"metrics response lacks a counters object: {metrics}")
        hits = counters.get("failpoint.eval.alloc.hits")
        fired = counters.get("failpoint.eval.alloc.fired")
        require(isinstance(hits, int) and hits >= 2,
                f"failpoint.eval.alloc.hits should count both evals: "
                f"{counters}")
        require(fired == 1,
                f"failpoint.eval.alloc.fired should be exactly 1 (@1 "
                f"trigger): {counters}")
        require(all(isinstance(v, int) and v >= 0
                    for k, v in counters.items()
                    if k.startswith("failpoint.")),
                f"failpoint counters must be non-negative integers: "
                f"{counters}")
        print(f"check_serve_smoke: ok: failpoint counters exported "
              f"(hits={hits}, fired={fired})")
        sock.close()

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("failpoint daemon did not exit within 30s of SIGTERM")
        stderr = proc.stderr.read().decode("utf-8", "replace")
        require(code == 0,
                f"failpoint daemon drain exited {code}, want 0; "
                f"stderr:\n{stderr}")
        print("check_serve_smoke: ok: failpoint daemon drained cleanly")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        try:
            os.unlink(path)
        except OSError:
            pass


def main() -> None:
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    dvfc = sys.argv[1]
    path = f"/tmp/dvf_serve_smoke_{os.getpid()}.sock"
    proc = subprocess.Popen(
        [dvfc, "serve", "--socket", path, "--workers", "2",
         "--max-request-bytes", str(64 * 1024)],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    try:
        sock = connect(path)

        # 1. Valid eval: a miss that compiles and evaluates the model.
        miss = roundtrip(sock, json.dumps(
            {"id": 1, "op": "eval", "source": SOURCE}))
        require(miss["ok"] and miss["id"] == 1, f"eval failed: {miss}")
        require(miss.get("cache") == "miss", f"first eval should miss: {miss}")
        model_hash = miss.get("hash", "")
        require(model_hash.startswith("0x"), f"eval lacks canonical hash: {miss}")
        results = miss.get("results")
        require(isinstance(results, list) and results
                and results[0].get("structures"),
                f"eval lacks per-structure results: {miss}")
        print("check_serve_smoke: ok: eval miss with hash and results")

        # 2. Identical source: a hit, bit-identical numbers.
        hit = roundtrip(sock, json.dumps(
            {"id": 2, "op": "eval", "source": SOURCE}))
        require(hit["ok"] and hit.get("cache") == "hit",
                f"duplicate source should hit the cache: {hit}")
        require(hit.get("hash") == model_hash, f"hash changed on hit: {hit}")
        require(hit.get("results") == results,
                "hit results differ from miss results")
        print("check_serve_smoke: ok: duplicate source hits, bit-identical")

        # 3. Hash-only requests reuse the compiled model; unknown hashes are
        # the typed unknown_hash error.
        by_hash = roundtrip(sock, json.dumps(
            {"id": 3, "op": "eval", "hash": model_hash}))
        require(by_hash["ok"] and by_hash.get("cache") == "hit",
                f"hash-only request should hit: {by_hash}")
        require(by_hash.get("results") == results,
                "hash-only results differ from source results")
        unknown = roundtrip(sock, json.dumps(
            {"id": 4, "op": "eval", "hash": "0xdeadbeefdeadbeef"}))
        require(not unknown["ok"]
                and unknown["error"]["kind"] == "unknown_hash",
                f"bogus hash should be unknown_hash: {unknown}")
        print("check_serve_smoke: ok: hash-only eval and unknown_hash")

        # 4a. Malformed frame: typed parse_error, daemon stays up.
        garbage = roundtrip(sock, "this is not json")
        require(not garbage["ok"]
                and garbage["error"]["kind"] == "parse_error",
                f"garbage should be parse_error: {garbage}")

        # 4b. Oversized frame: typed too_large from the reader.
        big = roundtrip(sock, json.dumps(
            {"id": 5, "op": "eval", "source": "x" * (80 * 1024)}))
        require(not big["ok"] and big["error"]["kind"] == "too_large",
                f"oversized frame should be too_large: {big}")

        # 4c. Impossible per-request deadline: typed deadline_exceeded.
        late = roundtrip(sock, json.dumps(
            {"id": 6, "op": "eval", "source": SLOW_SOURCE,
             "deadline_s": 1e-6}))
        require(not late["ok"]
                and late["error"]["kind"] == "deadline_exceeded",
                f"impossible deadline should be deadline_exceeded: {late}")
        print("check_serve_smoke: ok: typed errors for malformed/oversized/"
              "late frames")

        # Metrics op: the duplicate traffic above must show up as hits.
        metrics = roundtrip(sock, json.dumps({"id": 7, "op": "metrics"}))
        require(metrics["ok"] and metrics.get("op") == "metrics",
                f"metrics op failed: {metrics}")
        cache = metrics.get("serve", {}).get("cache", {})
        require(cache.get("hits", 0) > 0,
                f"cache-hit counter not positive after duplicates: {metrics}")
        print(f"check_serve_smoke: ok: metrics report "
              f"{cache['hits']} cache hit(s)")
        sock.close()

        # 5. Mid-request disconnect: half a frame, then vanish. The daemon
        # must shrug and answer the next connection.
        half = connect(path)
        half.sendall(b'{"id":99,"op":"eval","sou')
        half.close()
        again = connect(path)
        pong = roundtrip(again, json.dumps({"id": 8, "op": "ping"}))
        require(pong["ok"] and pong.get("op") == "ping",
                f"daemon unhealthy after disconnect: {pong}")
        again.close()
        print("check_serve_smoke: ok: healthy after mid-request disconnect")

        # 6. Graceful drain: SIGTERM -> exit 0.
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit within 30s of SIGTERM")
        stderr = proc.stderr.read().decode("utf-8", "replace")
        require(code == 0,
                f"SIGTERM drain exited {code}, want 0; stderr:\n{stderr}")
        print("check_serve_smoke: ok: SIGTERM drain exited 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        try:
            os.unlink(path)
        except OSError:
            pass

    # 7. Fault-injection schema: a second, short-lived daemon under a
    # scheduled allocation fault.
    check_failpoint_daemon(dvfc)
    print("check_serve_smoke: OK: all serve smoke checks passed")


if __name__ == "__main__":
    main()
