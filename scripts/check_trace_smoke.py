#!/usr/bin/env python3
"""Acceptance smoke for the observability layer (wired into CI).

    check_trace_smoke.py TRACE.json METRICS.json CAMPAIGN.json

Validates that
  - TRACE.json is a Chrome trace-event file loadable by
    chrome://tracing / Perfetto: a JSON object whose ``traceEvents``
    entries each satisfy the event schema (``ph``/``pid``/``tid``,
    ``X`` events with ``ts``/``dur`` and span ``args``, ``M`` metadata
    with names, ``C`` counters with values), and the span tree is
    consistent (every non-root parent id exists, child depth = parent
    depth + 1);
  - METRICS.json (the ``--metrics=json`` stderr line) parses and its
    ``campaign.*`` outcome counters equal the taxonomy counts of the
    campaign's own ``--json`` report in CAMPAIGN.json, per class.
"""

import json
import sys


def fail(message: str) -> None:
    sys.exit(f"check_trace_smoke: FAIL: {message}")


def require(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        trace = json.load(handle)
    require(isinstance(trace, dict), "trace root must be a JSON object")
    events = trace.get("traceEvents")
    require(isinstance(events, list) and events, "traceEvents must be a "
            "non-empty array")

    spans = {}
    for event in events:
        require(isinstance(event, dict), "every event must be an object")
        for key in ("ph", "pid", "tid", "name"):
            require(key in event, f"event missing '{key}': {event}")
        ph = event["ph"]
        require(ph in {"X", "M", "C"}, f"unexpected event phase: {ph}")
        if ph == "X":
            for key in ("ts", "dur", "args"):
                require(key in event, f"X event missing '{key}': {event}")
            require(event["dur"] >= 0, "negative span duration")
            args = event["args"]
            for key in ("id", "parent", "depth"):
                require(key in args, f"span args missing '{key}': {event}")
            spans[args["id"]] = args
        elif ph == "M":
            require(event["name"] in {"process_name", "thread_name"},
                    f"unknown metadata record: {event['name']}")
            require("name" in event.get("args", {}),
                    "metadata without args.name")
        else:  # C
            require("value" in event.get("args", {}),
                    "counter event without args.value")

    require(spans, "trace contains no spans")
    for args in spans.values():
        if args["parent"] == 0:
            require(args["depth"] == 1, "root span must have depth 1")
        else:
            parent = spans.get(args["parent"])
            require(parent is not None,
                    f"span {args['id']} has unknown parent {args['parent']}")
            require(args["depth"] == parent["depth"] + 1,
                    f"span {args['id']} depth {args['depth']} != parent "
                    f"depth {parent['depth']} + 1")
    names = {event["name"] for event in events if event["ph"] == "X"}
    require("campaign.run" in names, "campaign.run span missing from trace")


def check_metrics(metrics_path: str, campaign_path: str) -> None:
    with open(metrics_path, encoding="utf-8") as handle:
        # stderr may carry other diagnostics; the metrics object is the
        # last non-empty line.
        lines = [line for line in handle.read().splitlines() if line.strip()]
    require(bool(lines), "metrics stderr is empty")
    metrics = json.loads(lines[-1])
    counters = metrics.get("counters")
    require(isinstance(counters, dict), "metrics.counters missing")

    with open(campaign_path, encoding="utf-8") as handle:
        report = json.load(handle)
    require(isinstance(report, list) and report, "campaign report is empty")

    for key in ("trials", "injected", "masked", "sdc", "due_exception",
                "due_hang", "due_invalid"):
        reported = sum(entry[key] for entry in report)
        counted = counters.get(f"campaign.{key}")
        require(counted == reported,
                f"campaign.{key}: metrics counter {counted} != taxonomy "
                f"total {reported}")


def main() -> None:
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    check_trace(sys.argv[1])
    check_metrics(sys.argv[2], sys.argv[3])
    print("check_trace_smoke: OK")


if __name__ == "__main__":
    main()
