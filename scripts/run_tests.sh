#!/usr/bin/env bash
# Tier-1 test run plus the ThreadSanitizer pass over the parallel engine.
#
#   scripts/run_tests.sh            # full: tier-1 + TSan parallel tests
#   SKIP_TSAN=1 scripts/run_tests.sh  # tier-1 only
#
# Every flavor's exit status is checked explicitly — never only via the
# shell's -e — so a failure propagates as this script's exit code AND
# names the flavor that failed. (A bare `set -e` is not enough: it is
# disabled inside `if`/`&&`/`||` contexts, which is exactly how callers
# tend to wrap this script.)
set -uo pipefail
cd "$(dirname "$0")/.."

# Runs one step of a named flavor; on failure, reports the flavor and
# propagates the step's exit status.
step() {
  local flavor=$1
  shift
  if ! "$@"; then
    local status=$?
    echo "run_tests.sh: FAILED in flavor '${flavor}' (exit ${status}): $*" >&2
    exit "${status}"
  fi
}

# Tier-1: the seed contract (ROADMAP.md).
step tier-1 cmake -B build -S .
step tier-1 cmake --build build -j "$(nproc)"
step tier-1 ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "SKIP_TSAN=1: skipping the ThreadSanitizer pass"
  exit 0
fi

# ThreadSanitizer pass: rebuild the test binary under -fsanitize=thread and
# run every Parallel* suite plus the campaign-resilience and observability
# suites (journal writer, adaptive stopper, per-slot kernel clones, sharded
# metrics), so races in the pool, the campaign engine, the obs registry or
# the parallel calculator fail loudly.
# Benches/examples are skipped — the test binary exercises all parallel
# code paths.
step tsan cmake -B build-tsan -S . \
  -DDVF_SANITIZE=thread \
  -DDVF_BUILD_BENCH=OFF \
  -DDVF_BUILD_EXAMPLES=OFF
step tsan cmake --build build-tsan -j "$(nproc)" --target dvf_tests
step tsan ./build-tsan/tests/dvf_tests \
  --gtest_filter='Parallel*:Campaign*:TrialClassification*:Obs*'
echo "ThreadSanitizer pass: OK"
echo "run_tests.sh: all flavors passed"
