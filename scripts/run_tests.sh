#!/usr/bin/env bash
# Tier-1 test run plus the ThreadSanitizer pass over the parallel engine.
#
#   scripts/run_tests.sh            # full: tier-1 + TSan parallel tests
#   SKIP_TSAN=1 scripts/run_tests.sh  # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

# Tier-1: the seed contract (ROADMAP.md).
cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "SKIP_TSAN=1: skipping the ThreadSanitizer pass"
  exit 0
fi

# ThreadSanitizer pass: rebuild the test binary under -fsanitize=thread and
# run every Parallel* suite plus the campaign-resilience suites (journal
# writer, adaptive stopper, per-slot kernel clones), so races in the pool,
# the campaign engine or the parallel calculator fail loudly.
# Benches/examples are skipped — the test binary exercises all parallel
# code paths.
cmake -B build-tsan -S . \
  -DDVF_SANITIZE=thread \
  -DDVF_BUILD_BENCH=OFF \
  -DDVF_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j "$(nproc)" --target dvf_tests
./build-tsan/tests/dvf_tests --gtest_filter='Parallel*:Campaign*:TrialClassification*'
echo "ThreadSanitizer pass: OK"
