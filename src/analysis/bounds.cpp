#include "dvf/analysis/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <variant>

#include "dvf/common/budget.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/units.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/parallel/parallel_for.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kU64Max = ~std::uint64_t{0};

// Cost ceilings under which the closed forms are provably cheap enough to
// run outright (yielding point intervals). Above them the transfer
// functions fall back to coarse — but still sound — interval arithmetic.
constexpr std::uint64_t kExactRandomTerms = std::uint64_t{1} << 20;
constexpr std::size_t kExactIrmEntries = std::size_t{1} << 16;
constexpr std::uint64_t kExactTemplateRefs = std::uint64_t{1} << 20;
constexpr std::uint32_t kExactReuseAssoc = 128;
/// Reference strings longer than this skip the exact distinct-block count
/// (an O(n log n) range union) and use a cheap lower bound instead.
constexpr std::size_t kTemplateSortCap = std::size_t{1} << 21;

/// Budget for the analysis' own estimator runs: generous finite caps, no
/// deadline. Success under it implies the evaluator computes the same value
/// under any budget that does not cut the run short.
EvalLimits quiet_limits() {
  EvalLimits limits;
  limits.max_references = std::uint64_t{1} << 26;
  limits.max_expansion = std::uint64_t{1} << 25;
  limits.wall_seconds = 0.0;
  return limits;
}

/// Saturating double → u64 for reporting fields (never UB on huge values).
std::uint64_t to_u64_clamped(double v) noexcept {
  if (!(v > 0.0)) {
    return 0;
  }
  if (v >= 9.2e18) {  // below 2^63: cast always defined
    return kU64Max;
  }
  return static_cast<std::uint64_t>(v);
}

void mark_reject(PatternFacts& facts, ErrorKind kind) {
  facts.provably_rejects = true;
  facts.reject_kind = kind;
  facts.n_ha = Interval::top();
  facts.exact = false;
}

/// Runs the evaluator's own estimator under the quiet budget. On success
/// the returned value is what any successful evaluation computes
/// (estimators are deterministic; budgets only select error-vs-ok), so the
/// interval tightens to an exact point.
bool refine_with_estimator(PatternFacts& facts, const PatternSpec& spec,
                           const CacheConfig& cache) {
  EvalBudget quiet(quiet_limits());
  const Result<double> r = try_estimate_accesses(spec, cache, &quiet);
  if (!r.ok() || !std::isfinite(*r)) {
    return false;
  }
  facts.n_ha = Interval::point(*r);
  facts.exact = true;
  return true;
}

// ---- streaming (Eqs. 3-4) ------------------------------------------------
//
// The closed form is O(1), so the transfer function simply runs it: every
// failure of try_estimate_streaming under a deadline-free budget is a
// budget-independent precondition (domain/overflow), hence a provable
// rejection.
PatternFacts bounds_streaming(const StreamingSpec& spec,
                              const CacheConfig& cache) {
  PatternFacts facts;
  facts.capacity_blocks = cache.total_blocks();

  EvalBudget quiet(quiet_limits());
  const Result<double> r =
      try_estimate_accesses(PatternSpec{spec}, cache, &quiet);
  if (!r.ok()) {
    mark_reject(facts, r.error().kind);
    return facts;
  }
  facts.n_ha = Interval::point(*r);
  facts.exact = true;
  if (spec.element_bytes > 0 &&
      spec.element_count <= kU64Max / spec.element_bytes) {
    facts.working_set_blocks =
        math::ceil_div(spec.footprint_bytes(), cache.line_bytes());
  }
  return facts;
}

// ---- random (Eqs. 5-7) ---------------------------------------------------
//
// Coarse interval: the estimator returns
//   footprint_blocks + min(B_elm, B_out) * iterations
// with B_elm >= 0 (up to Kahan slack) and min(B_elm, B_out) <= B_out exactly
// in floating point. IEEE rounding is monotone, so re-evaluating the same
// expression with B_out in place of the min yields an upper endpoint that
// dominates every possible evaluator result; footprint_blocks (widened
// down a hair for the Kahan slack) is the lower endpoint.
PatternFacts bounds_random(const RandomSpec& spec, const CacheConfig& cache,
                           bool refine_exact) {
  PatternFacts facts;

  // The estimator's budget-independent preconditions, replicated.
  if (spec.element_count == 0 || spec.element_bytes == 0 ||
      !(spec.cache_ratio > 0.0 && spec.cache_ratio <= 1.0)) {
    mark_reject(facts, ErrorKind::kDomainError);
    return facts;
  }
  if (!std::isfinite(spec.visits_per_iteration)) {
    mark_reject(facts, ErrorKind::kNonFinite);
    return facts;
  }
  if (spec.visits_per_iteration < 0.0) {
    mark_reject(facts, ErrorKind::kDomainError);
    return facts;
  }

  // These expressions mirror the estimator verbatim so point results and
  // the B_out-based upper endpoint are bit-identical to what it computes.
  const double e = spec.element_bytes;
  const double n = static_cast<double>(spec.element_count);
  const double cl = cache.line_bytes();
  const double footprint = e * n;
  const double cache_share =
      static_cast<double>(cache.capacity_bytes()) * spec.cache_ratio;
  const double footprint_blocks = std::ceil(footprint / cl);

  facts.working_set_blocks = to_u64_clamped(footprint_blocks);
  facts.capacity_blocks =
      to_u64_clamped(static_cast<double>(cache.total_blocks()) *
                     spec.cache_ratio);
  facts.zero_steady_work =
      spec.iterations == 0 || (spec.visits_per_iteration == 0.0 &&
                               spec.sorted_visit_fractions.empty());

  if (footprint <= cache_share) {
    facts.n_ha = Interval::point(footprint_blocks);
    facts.exact = true;
    return facts;
  }
  facts.exceeds_share = true;

  // The estimator validates the reload path (case 2) only after the
  // footprint-fits early return, so these checks must not fire above.
  for (const double f : spec.sorted_visit_fractions) {
    if (!std::isfinite(f)) {
      mark_reject(facts, ErrorKind::kNonFinite);
      return facts;
    }
    if (f < 0.0 || f > 1.0) {
      mark_reject(facts, ErrorKind::kDomainError);
      return facts;
    }
  }
  if (spec.sorted_visit_fractions.empty() &&
      spec.element_count >
          static_cast<std::uint64_t>(math::kMaxCombinatoricPopulation)) {
    mark_reject(facts, ErrorKind::kOverflow);
    return facts;
  }

  // Guard the estimator's share/e cast before replicating it.
  const double cached_elements_d = cache_share / e;
  const std::uint64_t m = to_u64_clamped(cached_elements_d);

  if (facts.zero_steady_work ||
      (spec.sorted_visit_fractions.empty() &&
       std::min<std::uint64_t>(m, spec.element_count) ==
           spec.element_count)) {
    // iterations = 0, k = 0, or every element cached: the reload term is
    // exactly zero and the estimator returns footprint_blocks.
    facts.n_ha = Interval::point(footprint_blocks);
    facts.exact = true;
    return facts;
  }

  if (refine_exact && cached_elements_d < 9.2e18) {
    bool cheap = false;
    if (!spec.sorted_visit_fractions.empty()) {
      cheap = spec.sorted_visit_fractions.size() <= kExactIrmEntries;
    } else {
      const std::uint64_t m_clamped =
          std::min<std::uint64_t>(m, spec.element_count);
      const double k_clamped =
          std::min(spec.visits_per_iteration,
                   static_cast<double>(math::kMaxCombinatoricPopulation));
      const double x_max = std::min(
          static_cast<double>(spec.element_count - m_clamped), k_clamped);
      cheap = x_max <= static_cast<double>(kExactRandomTerms);
    }
    if (cheap && refine_with_estimator(facts, spec, cache)) {
      return facts;
    }
  }

  // Coarse interval, exact-in-FP as argued above.
  const double resident_blocks =
      static_cast<double>(cache.total_blocks()) * spec.cache_ratio;
  const double b_out = std::max(0.0, footprint / cl - resident_blocks);
  const double hi =
      footprint_blocks + b_out * static_cast<double>(spec.iterations);
  facts.n_ha = Interval::bounds(footprint_blocks, std::isfinite(hi) ? hi : kInf)
                   .widened(1e-12, 1e-9);
  return facts;
}

// ---- template ------------------------------------------------------------
//
// The estimator counts integer misses over the materialized block string:
// every distinct block's first touch misses, and no replay can miss more
// than the string length times the repetitions. Both endpoints are integer
// facts about that counter, so u64 → double casts (monotone) carry the
// containment without widening.
PatternFacts bounds_template(const TemplateSpec& spec,
                             const CacheConfig& cache, bool refine_exact) {
  PatternFacts facts;
  facts.zero_steady_work =
      spec.element_indices.empty() || spec.repetitions == 0;

  if (spec.element_indices.empty() || spec.element_bytes == 0 ||
      !(spec.cache_ratio > 0.0 && spec.cache_ratio <= 1.0) ||
      spec.repetitions < 1) {
    mark_reject(facts, ErrorKind::kDomainError);
    return facts;
  }
  const std::uint64_t e = spec.element_bytes;
  const std::uint64_t max_index = (kU64Max - (e - 1)) / e;
  for (const std::uint64_t idx : spec.element_indices) {
    if (idx > max_index) {
      mark_reject(facts, ErrorKind::kOverflow);
      return facts;
    }
  }

  const std::uint64_t cl = cache.line_bytes();
  // Per-reference block ranges: element idx covers [first, last].
  std::uint64_t string_len = 0;  // length of the materialized block string
  std::uint64_t max_range = 0;   // widest single reference, a distinct lower bound
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  const bool exact_distinct = spec.element_indices.size() <= kTemplateSortCap;
  if (exact_distinct) {
    ranges.reserve(spec.element_indices.size());
  }
  for (const std::uint64_t idx : spec.element_indices) {
    const std::uint64_t first = idx * e / cl;
    const std::uint64_t last = (idx * e + e - 1) / cl;
    const std::uint64_t len = last - first + 1;
    string_len = math::saturating_add(string_len, len);
    max_range = std::max(max_range, len);
    if (exact_distinct) {
      ranges.emplace_back(first, last);
    }
  }

  std::uint64_t distinct_lo = max_range;  // sound lower bound always
  bool distinct_is_exact = false;
  if (exact_distinct) {
    std::sort(ranges.begin(), ranges.end());
    std::uint64_t distinct = 0;
    std::uint64_t end = 0;  // one past the highest block merged so far
    bool any = false;
    for (const auto& [first, last] : ranges) {
      if (!any || first >= end) {
        distinct += last - first + 1;
        any = true;
      } else if (last >= end) {
        distinct += last - (end - 1);
      }
      end = std::max(end, last + 1);
    }
    distinct_lo = distinct;
    distinct_is_exact = true;
  }

  const auto capacity_blocks = static_cast<std::uint64_t>(
      static_cast<double>(cache.total_blocks()) * spec.cache_ratio);
  const std::uint64_t total_refs =
      math::saturating_mul(string_len, spec.repetitions);
  const bool refs_saturated = total_refs == kU64Max;

  facts.working_set_blocks = distinct_lo;
  facts.capacity_blocks = capacity_blocks;
  facts.exceeds_share = distinct_lo > capacity_blocks;

  if (capacity_blocks == 0 && !refs_saturated) {
    // Stack mode: every distance >= 0 >= capacity. Raw mode: every gap > 0.
    // Either way all positions miss.
    facts.n_ha = Interval::point(static_cast<double>(total_refs));
    facts.exact = true;
    return facts;
  }
  if (distinct_is_exact) {
    const bool all_reuses_hit =
        spec.distance == DistanceKind::kStack
            ? distinct_lo <= capacity_blocks
            : !refs_saturated && total_refs - 1 <= capacity_blocks;
    if (all_reuses_hit) {
      // No reuse distance can reach the capacity: only first touches miss.
      facts.n_ha = Interval::point(static_cast<double>(distinct_lo));
      facts.exact = true;
      return facts;
    }
  }

  if (refine_exact && total_refs <= kExactTemplateRefs &&
      refine_with_estimator(facts, spec, cache)) {
    return facts;
  }

  facts.n_ha = Interval::bounds(
      static_cast<double>(distinct_lo),
      refs_saturated ? kInf : static_cast<double>(total_refs));
  return facts;
}

// ---- reuse (Eqs. 8-15) ---------------------------------------------------
//
// The estimator returns F_a + (F_a - resident) * rounds with
// resident = min(NS * E[occupancy], F_a) <= F_a exactly, so the refetch
// term is non-negative in floating point and F_a is an exact lower bound.
// The upper endpoint assumes zero survivors; a small widening absorbs the
// (bounded-negative) Kahan slack of the occupancy expectation.
PatternFacts bounds_reuse(const ReuseSpec& spec, const CacheConfig& cache,
                          bool refine_exact) {
  PatternFacts facts;
  facts.zero_steady_work = spec.reuse_rounds == 0;

  if (spec.self_bytes == 0) {
    mark_reject(facts, ErrorKind::kDomainError);
    return facts;
  }
  const std::uint64_t cl = cache.line_bytes();
  const std::uint64_t fa = math::ceil_div(spec.self_bytes, cl);
  const std::uint64_t fb = math::ceil_div(spec.other_bytes, cl);
  if (fa > kU64Max - fb) {
    mark_reject(facts, ErrorKind::kOverflow);
    return facts;
  }
  if (spec.occupancy == ReuseOccupancy::kBernoulli &&
      fa + fb > static_cast<std::uint64_t>(math::kMaxCombinatoricPopulation)) {
    mark_reject(facts, ErrorKind::kOverflow);
    return facts;
  }

  facts.working_set_blocks = fa;
  facts.capacity_blocks = cache.total_blocks();
  facts.exceeds_share = fa > cache.total_blocks();

  const double fa_d = static_cast<double>(fa);
  if (spec.reuse_rounds == 0) {
    facts.n_ha = Interval::point(fa_d);
    facts.exact = true;
    return facts;
  }

  if (refine_exact && cache.associativity() <= kExactReuseAssoc &&
      refine_with_estimator(facts, spec, cache)) {
    return facts;
  }

  const double hi =
      fa_d + fa_d * static_cast<double>(spec.reuse_rounds);
  facts.n_ha = Interval::bounds(fa_d, std::isfinite(hi) ? hi : kInf)
                   .widened(1e-9, 1e-9);
  return facts;
}

// ---- tiled ---------------------------------------------------------------
//
// Like streaming, the closed form is O(1) (its only budget use is the
// deadline check and a single reference charge), so the transfer function
// runs it outright: success is a point, failure under the quiet budget is a
// budget-independent precondition, hence a provable rejection.
PatternFacts bounds_tiled(const TiledSpec& spec, const CacheConfig& cache) {
  PatternFacts facts;

  EvalBudget quiet(quiet_limits());
  const Result<double> r =
      try_estimate_accesses(PatternSpec{spec}, cache, &quiet);
  if (!r.ok()) {
    mark_reject(facts, r.error().kind);
    return facts;
  }
  facts.n_ha = Interval::point(*r);
  facts.exact = true;

  // The steady-state working set is one tile (clamped to the matrix edge,
  // as the evaluator clamps); the share is the structure's cache_ratio
  // slice. exceeds_share mirrors the evaluator's case-3 test: not even one
  // tile fits, so every intra-tile re-read misses.
  const std::uint64_t tr = std::min(spec.tile_rows, spec.rows);
  const std::uint64_t tc = std::min(spec.tile_cols, spec.cols);
  const std::uint64_t e = spec.element_bytes;
  facts.capacity_blocks = to_u64_clamped(
      static_cast<double>(cache.total_blocks()) * spec.cache_ratio);
  if (tc <= kU64Max / e) {
    const std::uint64_t seg_lines = math::ceil_div(tc * e, cache.line_bytes());
    facts.working_set_blocks = tr <= kU64Max / seg_lines ? tr * seg_lines
                                                         : kU64Max;
    if (tr <= kU64Max / (tc * e)) {
      const double share =
          static_cast<double>(cache.capacity_bytes()) * spec.cache_ratio;
      facts.exceeds_share = static_cast<double>(tr * tc * e) > share;
    }
  }
  return facts;
}

PatternFacts facts_for(const PatternSpec& spec, const CacheConfig& cache,
                       bool refine_exact) {
  return std::visit(
      [&cache, refine_exact](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, StreamingSpec>) {
          return bounds_streaming(s, cache);
        } else if constexpr (std::is_same_v<T, RandomSpec>) {
          return bounds_random(s, cache, refine_exact);
        } else if constexpr (std::is_same_v<T, TemplateSpec>) {
          return bounds_template(s, cache, refine_exact);
        } else if constexpr (std::is_same_v<T, TiledSpec>) {
          return bounds_tiled(s, cache);
        } else {
          return bounds_reuse(s, cache, refine_exact);
        }
      },
      spec);
}

/// Kahan-sums interval endpoints phase-wise, mirroring the evaluator's
/// composition. When every summand is an exact point the sum reproduces the
/// evaluator's double bit-for-bit (same values, same order, same
/// algorithm); otherwise the endpoints are widened for summation slack.
Interval sum_intervals(const std::vector<Interval>& parts, bool all_exact) {
  math::KahanSum lo;
  math::KahanSum hi;
  bool hi_inf = false;
  for (const Interval& part : parts) {
    lo.add(part.lo);
    if (std::isinf(part.hi)) {
      hi_inf = true;
    } else {
      hi.add(part.hi);
    }
  }
  Interval sum =
      Interval::bounds(lo.value(), hi_inf ? kInf : hi.value());
  if (!all_exact) {
    sum = sum.widened(1e-11, 1e-12);
  }
  return sum;
}

/// Bounds for one structure across the whole machine matrix.
StructureBounds structure_bounds(const DataStructureSpec& ds,
                                 std::span<const Machine> machines,
                                 const std::optional<double>& exec_time,
                                 bool refine_exact) {
  StructureBounds out;
  out.name = ds.name;
  out.size_bytes = ds.size_bytes;
  out.dead = ds.patterns.empty();
  out.per_machine.resize(machines.size());

  // exceeds-everywhere is a per-phase verdict: one phase whose working set
  // overflows its share on every configured machine.
  std::vector<bool> phase_exceeds_everywhere(ds.patterns.size(),
                                             !machines.empty());
  const bool time_bad =
      exec_time && (!std::isfinite(*exec_time) || *exec_time < 0.0);

  for (std::size_t mi = 0; mi < machines.size(); ++mi) {
    const Machine& machine = machines[mi];
    StructureBounds::PerMachine& per = out.per_machine[mi];

    std::vector<Interval> parts;
    parts.reserve(ds.patterns.size());
    bool all_exact = true;
    for (std::size_t pi = 0; pi < ds.patterns.size(); ++pi) {
      const PatternFacts facts =
          facts_for(ds.patterns[pi], machine.llc, refine_exact);
      parts.push_back(facts.n_ha);
      all_exact = all_exact && facts.exact;
      if (facts.provably_rejects && !per.eval_rejects) {
        per.eval_rejects = true;
        per.reject_kind = facts.reject_kind;
      }
      if (!facts.exceeds_share) {
        phase_exceeds_everywhere[pi] = false;
      }
    }
    if (ds.size_bytes == 0 && !per.eval_rejects) {
      per.eval_rejects = true;  // evaluator requires S_d > 0, any budget
      per.reject_kind = ErrorKind::kDomainError;
    }
    if (time_bad && !per.eval_rejects) {
      per.eval_rejects = true;
      per.reject_kind = ErrorKind::kDomainError;
    }

    per.n_ha = sum_intervals(parts, all_exact);
    per.exact = all_exact && per.n_ha.is_point();
    if (all_exact && !std::isfinite(per.n_ha.hi)) {
      // The exact composed sum is infinite: the evaluator's
      // finite_or_error rejects it deterministically.
      per.eval_rejects = true;
      per.reject_kind = ErrorKind::kNonFinite;
      per.n_ha = Interval::top();
      per.exact = false;
    }

    if (exec_time && !time_bad) {
      // Mirrors eval_structure: N_error = expected_errors(FIT, T, S_d).
      const double n_error =
          expected_errors(machine.memory.fit(), *exec_time,
                          static_cast<double>(ds.size_bytes));
      per.dvf = per.n_ha.scaled(n_error);
    } else {
      per.dvf = Interval::top();
    }
  }

  // Hulls across machines (top when there is no machine to bound against).
  if (!machines.empty()) {
    out.n_ha = out.per_machine.front().n_ha;
    out.dvf = out.per_machine.front().dvf;
    for (std::size_t mi = 1; mi < machines.size(); ++mi) {
      out.n_ha = Interval::hull(out.n_ha, out.per_machine[mi].n_ha);
      out.dvf = Interval::hull(out.dvf, out.per_machine[mi].dvf);
    }
  }
  if (out.dead) {
    out.n_ha = Interval::point(0.0);
    out.dvf = exec_time && !time_bad ? Interval::point(0.0) : out.dvf;
  }

  out.exceeds_all_shares =
      !machines.empty() &&
      std::any_of(phase_exceeds_everywhere.begin(),
                  phase_exceeds_everywhere.end(), [](bool b) { return b; });
  out.rejects_everywhere =
      !machines.empty() &&
      std::all_of(out.per_machine.begin(), out.per_machine.end(),
                  [](const StructureBounds::PerMachine& p) {
                    return p.eval_rejects;
                  });

  // Monotonicity verdict: among machines with equal line size, a larger
  // capacity must not raise the N_ha upper bound. (Changing the line size
  // rescales the footprint itself, so those pairs are incomparable.)
  for (std::size_t i = 0; i < machines.size() && out.monotone_in_capacity;
       ++i) {
    for (std::size_t j = 0; j < machines.size(); ++j) {
      if (machines[i].llc.line_bytes() != machines[j].llc.line_bytes() ||
          machines[i].llc.capacity_bytes() >=
              machines[j].llc.capacity_bytes()) {
        continue;
      }
      const double small_cap_hi = out.per_machine[i].n_ha.hi;
      const double large_cap_hi = out.per_machine[j].n_ha.hi;
      if (large_cap_hi > small_cap_hi * (1.0 + 1e-9) + 1e-9) {
        out.monotone_in_capacity = false;
        break;
      }
    }
  }
  return out;
}

}  // namespace

bool zero_steady_work(const PatternSpec& spec) noexcept {
  return std::visit(
      [](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, StreamingSpec>) {
          return false;
        } else if constexpr (std::is_same_v<T, RandomSpec>) {
          return s.iterations == 0 ||
                 (s.visits_per_iteration == 0.0 &&
                  s.sorted_visit_fractions.empty());
        } else if constexpr (std::is_same_v<T, TemplateSpec>) {
          return s.element_indices.empty() || s.repetitions == 0;
        } else if constexpr (std::is_same_v<T, TiledSpec>) {
          return false;  // passes >= 1 is a precondition; a sweep is work
        } else {
          return s.reuse_rounds == 0;
        }
      },
      spec);
}

PatternFacts pattern_bounds(const PatternSpec& spec, const CacheConfig& cache,
                            bool refine_exact) {
  return facts_for(spec, cache, refine_exact);
}

const ModelBounds* AnalysisReport::find_model(const std::string& name) const {
  for (const ModelBounds& model : models) {
    if (model.name == name) {
      return &model;
    }
  }
  return nullptr;
}

AnalysisReport analyze(std::span<const Machine> machines,
                       std::span<const ModelSpec> models,
                       const AnalysisOptions& options) {
  const obs::ScopedSpan span("analysis.run");
  obs::counter("analysis.models").add(models.size());

  AnalysisReport report;
  report.machines.reserve(machines.size());
  for (const Machine& machine : machines) {
    report.machines.push_back(machine.name);
  }
  report.canonical_hash = canonical_hash(machines, models);

  // Flatten the (model, structure) space for the deterministic fan-out:
  // every task writes only its own slot, so results are identical for any
  // thread count.
  struct Task {
    std::size_t model;
    std::size_t structure;
  };
  std::vector<Task> tasks;
  report.models.reserve(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    ModelBounds bounds;
    bounds.name = models[i].name;
    bounds.exec_time_seconds = models[i].exec_time_seconds;
    bounds.structures.resize(models[i].structures.size());
    report.models.push_back(std::move(bounds));
    for (std::size_t s = 0; s < models[i].structures.size(); ++s) {
      tasks.push_back({i, s});
    }
  }
  obs::counter("analysis.structures").add(tasks.size());

  const auto run_task = [&](std::uint64_t t) {
    const Task& task = tasks[static_cast<std::size_t>(t)];
    const ModelSpec& model = models[task.model];
    report.models[task.model].structures[task.structure] = structure_bounds(
        model.structures[task.structure], machines, model.exec_time_seconds,
        options.refine_exact);
  };
  constexpr std::size_t kParallelThreshold = 16;
  if (options.threads != 1 && tasks.size() >= kParallelThreshold) {
    parallel::ThreadPool pool(options.threads);
    parallel::parallel_for(pool, tasks.size(), run_task);
  } else {
    for (std::uint64_t t = 0; t < tasks.size(); ++t) {
      run_task(t);
    }
  }

  // Model totals: interval Eq. 2 per machine, mirroring the evaluator's
  // structure-order Kahan sum.
  for (ModelBounds& model : report.models) {
    model.per_machine.resize(machines.size());
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
      std::vector<Interval> parts;
      parts.reserve(model.structures.size());
      bool all_exact = true;
      bool rejects = false;
      for (const StructureBounds& s : model.structures) {
        parts.push_back(s.per_machine[mi].dvf);
        all_exact = all_exact && s.per_machine[mi].dvf.is_point();
        rejects = rejects || s.per_machine[mi].eval_rejects;
      }
      model.per_machine[mi].dvf = sum_intervals(parts, all_exact);
      model.per_machine[mi].eval_rejects = rejects;
    }
    if (!machines.empty()) {
      model.dvf = model.per_machine.front().dvf;
      for (std::size_t mi = 1; mi < machines.size(); ++mi) {
        model.dvf = Interval::hull(model.dvf, model.per_machine[mi].dvf);
      }
    } else if (model.structures.empty()) {
      model.dvf = Interval::point(0.0);
    }
  }
  return report;
}

}  // namespace dvf::analysis
