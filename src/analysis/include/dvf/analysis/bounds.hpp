// Sound transfer functions and the bounds driver.
//
// pattern_bounds() maps one access-pattern spec × one cache geometry to a
// PatternFacts record: an interval containing every value the evaluator's
// try_estimate_accesses can return for that (spec, cache), plus the
// dataflow facts the lint rules and DVF-A3xx diagnostics consume. The
// interval is a *point* whenever the closed form is provably cheap — the
// transfer function then runs the evaluator's own estimator (deterministic,
// budget-independent on success), so containment is exact. Otherwise a
// coarse interval is derived from facts that hold in floating point, not
// just over the reals (see docs/analysis.md for the soundness argument per
// family).
//
// analyze() drives the transfer functions over the IR bottom-up (patterns →
// structures → models), composing with interval sums widened for the
// evaluator's Kahan summation, and derives per-structure verdicts:
// deadness, share-overflow on every machine, provable evaluator rejection,
// and monotonicity of the N_ha upper bound in cache capacity.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dvf/analysis/interval.hpp"
#include "dvf/analysis/ir.hpp"
#include "dvf/common/result.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/machine.hpp"

namespace dvf::analysis {

/// What the analysis can prove about one pattern phase on one cache.
struct PatternFacts {
  /// Sound bounds on try_estimate_accesses(spec, cache) when it succeeds.
  Interval n_ha = Interval::top();
  /// The interval is a point obtained from the closed form itself.
  bool exact = false;
  /// The evaluator rejects this spec on this cache for *every* budget
  /// (a domain/overflow precondition fails). Budget- or deadline-dependent
  /// failures never set this.
  bool provably_rejects = false;
  ErrorKind reject_kind = ErrorKind::kDomainError;
  /// Distinct cache lines the pattern touches (0 when unknown/overflowed).
  std::uint64_t working_set_blocks = 0;
  /// Cache lines available to the pattern (its share of the cache).
  std::uint64_t capacity_blocks = 0;
  /// The working set provably exceeds that share: steady-state reuse misses.
  bool exceeds_share = false;
  /// The declaration requests zero repeated work (iterations/visits/rounds/
  /// repetitions of zero, or an empty reference string).
  bool zero_steady_work = false;
};

/// Transfer function: facts for one phase on one cache. Total — never
/// throws, never returns NaN endpoints. `refine_exact` additionally runs
/// the evaluator's estimator when its cost is provably small, tightening
/// the interval to a point; pass false for fact-only (lint) queries.
[[nodiscard]] PatternFacts pattern_bounds(const PatternSpec& spec,
                                          const CacheConfig& cache,
                                          bool refine_exact = true);

/// Machine-independent part of the zero-steady-work fact.
[[nodiscard]] bool zero_steady_work(const PatternSpec& spec) noexcept;

/// Per-structure result of the bounds driver.
struct StructureBounds {
  std::string name;
  std::uint64_t size_bytes = 0;

  struct PerMachine {
    Interval n_ha;  ///< contains the evaluator's N_ha on this machine
    Interval dvf;   ///< contains the evaluator's DVF_d (top when T unknown)
    bool exact = false;          ///< every phase bound is a point
    bool eval_rejects = false;   ///< some phase provably rejects here
    ErrorKind reject_kind = ErrorKind::kDomainError;
  };
  /// Parallel to AnalysisReport::machines (input order).
  std::vector<PerMachine> per_machine;

  Interval n_ha = Interval::top();  ///< hull across machines
  Interval dvf = Interval::top();   ///< hull across machines

  /// No phases at all: N_ha = 0, DVF contribution exactly 0.
  bool dead = false;
  /// Some phase's working set exceeds its cache share on every machine.
  bool exceeds_all_shares = false;
  /// The N_ha upper bound never increases with capacity across machines of
  /// equal line size (trivially true with < 2 comparable machines).
  bool monotone_in_capacity = true;
  /// Some phase provably rejects on every machine.
  bool rejects_everywhere = false;
};

struct ModelBounds {
  std::string name;
  std::optional<double> exec_time_seconds;
  std::vector<StructureBounds> structures;

  struct PerMachine {
    Interval dvf;  ///< contains the evaluator's total DVF_a (Eq. 2)
    bool eval_rejects = false;
  };
  std::vector<PerMachine> per_machine;
  Interval dvf = Interval::top();  ///< hull across machines
};

struct AnalysisOptions {
  /// Worker threads for the per-structure fan-out (0 = DVF_THREADS env or
  /// hardware, 1 = serial). Results are identical for every setting.
  unsigned threads = 1;
  /// Run cheap closed forms for point intervals (see pattern_bounds).
  bool refine_exact = true;
};

struct AnalysisReport {
  std::vector<std::string> machines;  ///< names, input order
  std::vector<ModelBounds> models;    ///< input order
  std::uint64_t canonical_hash = 0;

  [[nodiscard]] const ModelBounds* find_model(const std::string& name) const;
};

/// The bounds driver. Total: any (machines, models) pair yields a report
/// with valid intervals; specs the evaluator would reject come back flagged,
/// not thrown. With no machines every bound is top() but the deadness
/// verdicts and the canonical hash still compute.
[[nodiscard]] AnalysisReport analyze(std::span<const Machine> machines,
                                     std::span<const ModelSpec> models,
                                     const AnalysisOptions& options = {});

}  // namespace dvf::analysis
