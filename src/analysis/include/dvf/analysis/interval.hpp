// The abstract domain of the static analyzer: closed intervals over the
// non-negative extended reals, [lo, hi] with 0 <= lo <= hi <= +inf.
//
// Every quantity the analysis bounds (N_ha, N_error, DVF) is a non-negative
// real, so the domain bakes the sign in: constructors clamp below at zero
// and arithmetic never produces NaN. `top()` = [0, +inf) is the "no
// information" element; a point interval is an exact value.
//
// Soundness convention: an interval produced by a transfer function must
// CONTAIN the double the evaluator computes (not the mathematical real) for
// every input on which the evaluator succeeds. Where an endpoint is derived
// by re-running the evaluator's own expression the containment is exact;
// where it is derived analytically, widened() absorbs the floating-point
// slack (Kahan-vs-plain summation, rounding of monotone expressions).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace dvf::analysis {

struct Interval {
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();

  /// [0, +inf): no information beyond non-negativity.
  [[nodiscard]] static constexpr Interval top() noexcept { return {}; }

  /// Exact value (clamped into the domain; NaN collapses to top()).
  [[nodiscard]] static Interval point(double v) noexcept {
    if (std::isnan(v)) {
      return top();
    }
    const double c = std::max(v, 0.0);
    return {c, c};
  }

  [[nodiscard]] static Interval bounds(double lo_in, double hi_in) noexcept {
    if (std::isnan(lo_in) || std::isnan(hi_in)) {
      return top();
    }
    Interval r{std::max(lo_in, 0.0), std::max(hi_in, 0.0)};
    if (r.lo > r.hi) {  // inconsistent endpoints: give up, stay sound
      return top();
    }
    return r;
  }

  /// Domain invariant: no NaN, ordered, non-negative, finite lower end.
  [[nodiscard]] bool valid() const noexcept {
    return !std::isnan(lo) && !std::isnan(hi) && lo >= 0.0 && lo <= hi &&
           std::isfinite(lo);
  }

  [[nodiscard]] bool is_point() const noexcept { return lo == hi; }

  [[nodiscard]] bool contains(double v) const noexcept {
    return !std::isnan(v) && v >= lo && v <= hi;
  }

  [[nodiscard]] bool contains(const Interval& other) const noexcept {
    return lo <= other.lo && other.hi <= hi;
  }

  /// Outward widening by a relative and an absolute margin — the
  /// floating-point slack allowance. Keeps the domain invariant.
  [[nodiscard]] Interval widened(double rel, double abs) const noexcept {
    Interval r;
    r.lo = std::max(0.0, lo - std::abs(lo) * rel - abs);
    r.hi = std::isinf(hi) ? hi : hi + std::abs(hi) * rel + abs;
    return r;
  }

  /// Least upper bound (interval union hull).
  [[nodiscard]] static Interval hull(const Interval& a,
                                     const Interval& b) noexcept {
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
  }

  /// Greatest lower bound. Both inputs must be sound for the same value;
  /// an empty intersection signals that assumption broke, so fall back to
  /// the hull rather than fabricate an empty (unsound) interval.
  [[nodiscard]] static Interval intersect(const Interval& a,
                                          const Interval& b) noexcept {
    Interval r{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
    return r.lo <= r.hi ? r : hull(a, b);
  }

  /// Interval sum. 0-preserving and inf-absorbing; never NaN because both
  /// endpoints are non-negative.
  [[nodiscard]] Interval operator+(const Interval& other) const noexcept {
    return {lo + other.lo, hi + other.hi};
  }

  /// Scale by a non-negative factor (N_error, iteration counts). Uses the
  /// convention 0 * inf = 0: a zero factor provably zeroes the product.
  [[nodiscard]] Interval scaled(double factor) const noexcept {
    if (std::isnan(factor) || factor < 0.0) {
      return top();
    }
    if (factor == 0.0) {
      return point(0.0);
    }
    const double new_hi = std::isinf(hi) ? hi : hi * factor;
    return bounds(lo * factor, new_hi);
  }
};

}  // namespace dvf::analysis
