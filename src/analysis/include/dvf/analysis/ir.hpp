// The analysis IR: a typed, value-numbered view of a compiled program
// (machines + model specs), plus canonicalization and a stable content hash.
//
// Lowering from the DSL has already constant-folded every expression, so the
// IR holds plain numbers. Each distinct pattern spec becomes one PatternNode
// and structures reference patterns by id — identical phases share a node
// (value numbering), which is what makes the canonical form small and the
// hash insensitive to how a phase list was spelled.
//
// canonicalize() rewrites the IR into the canonical form the content hash is
// defined over:
//   - machines, models and structures sort by name (declaration order is
//     semantically irrelevant);
//   - each structure's phase list sorts by the phases' canonical encoding
//     (N_ha is a sum over phases, so composition is commutative up to
//     floating-point summation order — the analysis intervals absorb that
//     reordering slack, see interval.hpp);
//   - structures with no phases are stripped (their N_ha is provably zero,
//     so they contribute DVF exactly 0; see docs/analysis.md for why the
//     hash identifies models up to this DVF-equivalence);
//   - doubles are encoded by IEEE-754 bit pattern with -0.0 normalized to
//     +0.0 and every NaN collapsed to one quiet pattern.
//
// content_hash() is 64-bit FNV-1a over a tagged byte encoding of the
// canonical form. It is deterministic across runs, platforms of equal
// endian-normalized encoding (the encoder writes little-endian bytes),
// thread counts (hashing is single-pass and the canonical order is total),
// and declaration orderings. It is the cache key a serve-mode compiled-model
// cache and sweep memoization can use.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/patterns/specs.hpp"

namespace dvf::analysis {

/// Machine binding: the evaluation-relevant content of a dvf::Machine.
struct MachineNode {
  std::string name;
  std::uint32_t associativity = 0;
  std::uint32_t num_sets = 0;
  std::uint32_t line_bytes = 0;
  double fit = 0.0;  ///< resolved FIT rate (ECC schemes fold to their rate)
};

/// One access-pattern phase. Leaf node; shared by value numbering.
struct PatternNode {
  PatternSpec spec;
  /// FNV-1a of the node's canonical encoding; doubles as the sort key for
  /// phase lists and the value-numbering key.
  std::uint64_t key = 0;
};

using PatternId = std::uint32_t;

struct StructureNode {
  std::string name;
  std::uint64_t size_bytes = 0;
  std::vector<PatternId> phases;
};

struct ModelNode {
  std::string name;
  std::optional<double> exec_time_seconds;
  std::vector<StructureNode> structures;
};

struct ProgramIr {
  std::vector<MachineNode> machines;
  std::vector<PatternNode> patterns;  ///< value-numbered pool
  std::vector<ModelNode> models;
};

/// Structural equality of two pattern specs (field-wise, bit-exact doubles
/// up to -0.0/NaN normalization). Used to confirm value-numbering matches.
[[nodiscard]] bool spec_equal(const PatternSpec& a,
                              const PatternSpec& b) noexcept;

/// Builds the IR from a compiled program, preserving declaration order.
/// Identical pattern specs are value-numbered into one PatternNode.
[[nodiscard]] ProgramIr build_ir(std::span<const Machine> machines,
                                 std::span<const ModelSpec> models);

/// Rewrites `ir` into the canonical form described above. Idempotent.
void canonicalize(ProgramIr& ir);

/// 64-bit FNV-1a over the tagged canonical encoding. Call on a
/// canonicalized IR; hashing a non-canonical IR is deterministic too but
/// then declaration order leaks into the hash.
[[nodiscard]] std::uint64_t content_hash(const ProgramIr& ir);

/// Convenience: build, canonicalize, hash.
[[nodiscard]] std::uint64_t canonical_hash(std::span<const Machine> machines,
                                           std::span<const ModelSpec> models);

}  // namespace dvf::analysis
