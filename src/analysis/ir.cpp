#include "dvf/analysis/ir.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace dvf::analysis {

namespace {

/// Streaming 64-bit FNV-1a. Multi-byte values are fed little-endian so the
/// hash is identical on every host.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  void byte(std::uint8_t b) noexcept {
    state_ = (state_ ^ b) * kPrime;
  }
  void u32(std::uint32_t v) noexcept {
    for (int i = 0; i < 4; ++i) {
      byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) noexcept { u64(canonical_bits(v)); }
  void str(const std::string& s) noexcept {
    u64(s.size());
    for (const char c : s) {
      byte(static_cast<std::uint8_t>(c));
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

  /// -0.0 normalizes to +0.0 and every NaN to one quiet pattern, so
  /// semantically equal specs hash equal.
  static std::uint64_t canonical_bits(double v) noexcept {
    if (std::isnan(v)) {
      return 0x7ff8000000000000ULL;
    }
    if (v == 0.0) {
      return 0;
    }
    return std::bit_cast<std::uint64_t>(v);
  }

 private:
  std::uint64_t state_ = kOffset;
};

// Family tags of the pattern encoding. Stable: changing them changes every
// hash, which invalidates any persisted cache keyed on it.
enum : std::uint8_t {
  kTagStream = 1,
  kTagRandom = 2,
  kTagTemplate = 3,
  kTagReuse = 4,
  kTagTiled = 5,
};

void encode_spec(Fnv1a& h, const StreamingSpec& s) {
  h.byte(kTagStream);
  h.u32(s.element_bytes);
  h.u64(s.element_count);
  h.u64(s.stride_elements);
}

void encode_spec(Fnv1a& h, const RandomSpec& s) {
  h.byte(kTagRandom);
  h.u64(s.element_count);
  h.u32(s.element_bytes);
  h.f64(s.visits_per_iteration);
  h.u64(s.iterations);
  h.f64(s.cache_ratio);
  h.u64(s.sorted_visit_fractions.size());
  for (const double f : s.sorted_visit_fractions) {
    h.f64(f);
  }
}

void encode_spec(Fnv1a& h, const TemplateSpec& s) {
  h.byte(kTagTemplate);
  h.u32(s.element_bytes);
  h.u64(s.repetitions);
  h.f64(s.cache_ratio);
  h.byte(static_cast<std::uint8_t>(s.distance));
  h.u64(s.element_indices.size());
  for (const std::uint64_t idx : s.element_indices) {
    h.u64(idx);
  }
}

void encode_spec(Fnv1a& h, const ReuseSpec& s) {
  h.byte(kTagReuse);
  h.u64(s.self_bytes);
  h.u64(s.other_bytes);
  h.u64(s.reuse_rounds);
  h.byte(static_cast<std::uint8_t>(s.scenario));
  h.byte(static_cast<std::uint8_t>(s.occupancy));
}

void encode_spec(Fnv1a& h, const TiledSpec& s) {
  h.byte(kTagTiled);
  h.u32(s.element_bytes);
  h.u64(s.rows);
  h.u64(s.cols);
  h.u64(s.tile_rows);
  h.u64(s.tile_cols);
  h.u64(s.intra_reuse);
  h.u64(s.passes);
  h.f64(s.cache_ratio);
}

std::uint64_t spec_key(const PatternSpec& spec) {
  Fnv1a h;
  std::visit([&h](const auto& s) { encode_spec(h, s); }, spec);
  return h.value();
}

bool f64_equal(double a, double b) noexcept {
  return Fnv1a::canonical_bits(a) == Fnv1a::canonical_bits(b);
}

}  // namespace

bool spec_equal(const PatternSpec& a, const PatternSpec& b) noexcept {
  if (a.index() != b.index()) {
    return false;
  }
  if (const auto* sa = std::get_if<StreamingSpec>(&a)) {
    const auto& sb = std::get<StreamingSpec>(b);
    return sa->element_bytes == sb.element_bytes &&
           sa->element_count == sb.element_count &&
           sa->stride_elements == sb.stride_elements;
  }
  if (const auto* ra = std::get_if<RandomSpec>(&a)) {
    const auto& rb = std::get<RandomSpec>(b);
    if (ra->element_count != rb.element_count ||
        ra->element_bytes != rb.element_bytes ||
        !f64_equal(ra->visits_per_iteration, rb.visits_per_iteration) ||
        ra->iterations != rb.iterations ||
        !f64_equal(ra->cache_ratio, rb.cache_ratio) ||
        ra->sorted_visit_fractions.size() !=
            rb.sorted_visit_fractions.size()) {
      return false;
    }
    for (std::size_t i = 0; i < ra->sorted_visit_fractions.size(); ++i) {
      if (!f64_equal(ra->sorted_visit_fractions[i],
                     rb.sorted_visit_fractions[i])) {
        return false;
      }
    }
    return true;
  }
  if (const auto* ta = std::get_if<TemplateSpec>(&a)) {
    const auto& tb = std::get<TemplateSpec>(b);
    return ta->element_bytes == tb.element_bytes &&
           ta->element_indices == tb.element_indices &&
           ta->repetitions == tb.repetitions &&
           f64_equal(ta->cache_ratio, tb.cache_ratio) &&
           ta->distance == tb.distance;
  }
  if (const auto* ba = std::get_if<TiledSpec>(&a)) {
    const auto& bb = std::get<TiledSpec>(b);
    return ba->element_bytes == bb.element_bytes && ba->rows == bb.rows &&
           ba->cols == bb.cols && ba->tile_rows == bb.tile_rows &&
           ba->tile_cols == bb.tile_cols &&
           ba->intra_reuse == bb.intra_reuse && ba->passes == bb.passes &&
           f64_equal(ba->cache_ratio, bb.cache_ratio);
  }
  const auto& ua = std::get<ReuseSpec>(a);
  const auto& ub = std::get<ReuseSpec>(b);
  return ua.self_bytes == ub.self_bytes && ua.other_bytes == ub.other_bytes &&
         ua.reuse_rounds == ub.reuse_rounds && ua.scenario == ub.scenario &&
         ua.occupancy == ub.occupancy;
}

ProgramIr build_ir(std::span<const Machine> machines,
                   std::span<const ModelSpec> models) {
  ProgramIr ir;
  ir.machines.reserve(machines.size());
  for (const Machine& m : machines) {
    ir.machines.push_back({m.name, m.llc.associativity(), m.llc.num_sets(),
                           m.llc.line_bytes(), m.memory.fit()});
  }

  // Value numbering: one PatternNode per distinct spec. Keyed on the
  // canonical encoding hash; a key collision between unequal specs falls
  // back to a fresh node, so hashing never merges distinct behaviour.
  const auto intern = [&ir](const PatternSpec& spec) -> PatternId {
    const std::uint64_t key = spec_key(spec);
    for (std::size_t i = 0; i < ir.patterns.size(); ++i) {
      if (ir.patterns[i].key == key && spec_equal(ir.patterns[i].spec, spec)) {
        return static_cast<PatternId>(i);
      }
    }
    ir.patterns.push_back({spec, key});
    return static_cast<PatternId>(ir.patterns.size() - 1);
  };

  ir.models.reserve(models.size());
  for (const ModelSpec& model : models) {
    ModelNode node;
    node.name = model.name;
    node.exec_time_seconds = model.exec_time_seconds;
    node.structures.reserve(model.structures.size());
    for (const DataStructureSpec& ds : model.structures) {
      StructureNode s;
      s.name = ds.name;
      s.size_bytes = ds.size_bytes;
      s.phases.reserve(ds.patterns.size());
      for (const PatternSpec& spec : ds.patterns) {
        s.phases.push_back(intern(spec));
      }
      node.structures.push_back(std::move(s));
    }
    ir.models.push_back(std::move(node));
  }
  return ir;
}

void canonicalize(ProgramIr& ir) {
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(ir.machines.begin(), ir.machines.end(), by_name);
  std::sort(ir.models.begin(), ir.models.end(), by_name);
  for (ModelNode& model : ir.models) {
    // Dead structures (no phases) evaluate to N_ha = 0 and DVF = 0 exactly;
    // stripping them is DVF-preserving.
    std::erase_if(model.structures,
                  [](const StructureNode& s) { return s.phases.empty(); });
    std::sort(model.structures.begin(), model.structures.end(), by_name);
    for (StructureNode& s : model.structures) {
      // Phase composition is a commutative sum, so the list sorts by the
      // phases' canonical keys (ties broken by id for determinism).
      std::sort(s.phases.begin(), s.phases.end(),
                [&ir](PatternId a, PatternId b) {
                  const std::uint64_t ka = ir.patterns[a].key;
                  const std::uint64_t kb = ir.patterns[b].key;
                  return ka != kb ? ka < kb : a < b;
                });
    }
  }
}

std::uint64_t content_hash(const ProgramIr& ir) {
  Fnv1a h;
  h.str("dvf-ir-v1");
  h.u64(ir.machines.size());
  for (const MachineNode& m : ir.machines) {
    h.str(m.name);
    h.u32(m.associativity);
    h.u32(m.num_sets);
    h.u32(m.line_bytes);
    h.f64(m.fit);
  }
  h.u64(ir.models.size());
  for (const ModelNode& model : ir.models) {
    h.str(model.name);
    h.byte(model.exec_time_seconds.has_value() ? 1 : 0);
    if (model.exec_time_seconds) {
      h.f64(*model.exec_time_seconds);
    }
    h.u64(model.structures.size());
    for (const StructureNode& s : model.structures) {
      h.str(s.name);
      h.u64(s.size_bytes);
      h.u64(s.phases.size());
      // Phases hash by content (their canonical encoding), not by pool id:
      // the pool's numbering depends on declaration order, the content
      // does not.
      for (const PatternId id : s.phases) {
        std::visit([&h](const auto& spec) { encode_spec(h, spec); },
                   ir.patterns[id].spec);
      }
    }
  }
  return h.value();
}

std::uint64_t canonical_hash(std::span<const Machine> machines,
                             std::span<const ModelSpec> models) {
  ProgramIr ir = build_ir(machines, models);
  canonicalize(ir);
  return content_hash(ir);
}

}  // namespace dvf::analysis
