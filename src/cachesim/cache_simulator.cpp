#include "dvf/cachesim/cache_simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "dvf/common/error.hpp"
#include "dvf/obs/obs.hpp"

namespace dvf {

namespace {

/// One-time registered counters for the replay hot path. Registered lazily
/// so pure library users never pay the registration lock.
struct ReplayCounters {
  obs::Counter accesses = obs::counter("cachesim.accesses");
  obs::Counter hits = obs::counter("cachesim.hits");
  obs::Counter misses = obs::counter("cachesim.misses");
  obs::Counter writebacks = obs::counter("cachesim.writebacks");
  obs::Counter evictions = obs::counter("cachesim.evictions");
};

/// SRRIP re-reference prediction values (2-bit, hit-priority): insertion
/// predicts a long re-reference interval, a hit promotes to near-immediate,
/// replacement takes the first way predicted distant.
constexpr std::uint64_t kRripDistant = 3;
constexpr std::uint64_t kRripLong = 2;
constexpr std::uint64_t kRripNear = 0;

}  // namespace

CacheSimulator::CacheSimulator(CacheConfig config, ReplacementPolicy policy)
    : config_(std::move(config)),
      num_sets_(config_.num_sets()),
      assoc_(config_.associativity()),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config_.line_bytes()))),
      set_mask_(num_sets_ - 1),
      sets_pow2_(std::has_single_bit(num_sets_)),
      policy_(policy) {
  const std::size_t ways = static_cast<std::size_t>(num_sets_) * assoc_;
  tags_.assign(ways, kInvalidTag);
  meta_.assign(ways, 0);
  owners_.assign(ways, kNoDs);
  flags_.assign(ways, 0);
}

CacheSimulator::CacheSimulator(CacheConfig config,
                               const DataStructureRegistry& registry,
                               ReplacementPolicy policy)
    : CacheSimulator(std::move(config), policy) {
  reserve_structures(registry.size());
}

void CacheSimulator::reserve_structures(std::size_t count) {
  if (count > stats_.size()) {
    stats_.resize(count);
  }
}

CacheStats& CacheSimulator::stats_for(DsId ds) {
  if (ds == kNoDs) {
    return unattributed_;
  }
  if (ds >= stats_.size()) [[unlikely]] {
    stats_.resize(ds + 1);
  }
  return stats_[ds];
}

void CacheSimulator::access(std::uint64_t address, std::uint32_t size,
                            bool is_write, DsId ds) {
  DVF_CHECK_MSG(size > 0, "access size must be positive");
  const std::uint64_t first = address >> line_shift_;
  const std::uint64_t last = (address + size - 1) >> line_shift_;
  CacheStats& st = stats_for(ds);
  for (std::uint64_t block = first; block <= last; ++block) {
    touch_line(block, is_write, ds, st);
  }
}

void CacheSimulator::replay(std::span<const MemoryRecord> records) {
  if (obs::enabled()) [[unlikely]] {
    replay_instrumented(records);
    return;
  }
  replay_uninstrumented(records);
}

void CacheSimulator::replay_uninstrumented(
    std::span<const MemoryRecord> records) {
  const std::uint32_t line_shift = line_shift_;
  for (const MemoryRecord& record : records) {
    if (record.size == 0) [[unlikely]] {
      continue;
    }
    const std::uint64_t first = record.address >> line_shift;
    const std::uint64_t last =
        (record.address + record.size - 1) >> line_shift;
    CacheStats& st = stats_for(record.ds);
    for (std::uint64_t block = first; block <= last; ++block) {
      touch_line(block, record.is_write, record.ds, st);
    }
  }
}

void CacheSimulator::replay_filtered(std::span<const MemoryRecord> records,
                                     std::uint32_t shards,
                                     std::uint32_t shard) {
  DVF_CHECK_MSG(shards > 0 && shard < shards,
                "shard index must lie below the shard count");
  if (shards == 1) {
    replay_uninstrumented(records);
    return;
  }
  const std::uint32_t line_shift = line_shift_;
  const bool shards_pow2 = std::has_single_bit(shards);
  const std::uint64_t shard_mask = shards - 1;
  for (const MemoryRecord& record : records) {
    if (record.size == 0) [[unlikely]] {
      continue;
    }
    const std::uint64_t first = record.address >> line_shift;
    const std::uint64_t last =
        (record.address + record.size - 1) >> line_shift;
    if (first == last) [[likely]] {
      const std::uint64_t set = set_of_block(first);
      if ((shards_pow2 ? (set & shard_mask) : (set % shards)) != shard) {
        continue;
      }
      touch_line(first, record.is_write, record.ds, stats_for(record.ds));
      continue;
    }
    for (std::uint64_t block = first; block <= last; ++block) {
      const std::uint64_t set = set_of_block(block);
      if ((shards_pow2 ? (set & shard_mask) : (set % shards)) != shard) {
        continue;
      }
      touch_line(block, record.is_write, record.ds, stats_for(record.ds));
    }
  }
}

void CacheSimulator::replay_instrumented(
    std::span<const MemoryRecord> records) {
  static const ReplayCounters counters;
  const obs::ScopedSpan span("cachesim.replay");
  const CacheStats before = total_stats();
  const std::uint64_t evictions_before = evictions_;
  replay_uninstrumented(records);
  const CacheStats after = total_stats();
  counters.accesses.add(after.accesses - before.accesses);
  counters.hits.add(after.hits - before.hits);
  counters.misses.add(after.misses - before.misses);
  counters.writebacks.add(after.writebacks - before.writebacks);
  counters.evictions.add(evictions_ - evictions_before);
}

void CacheSimulator::promote_way(std::uint64_t* meta, std::uint32_t way,
                                 bool filled) {
  switch (policy_) {
    case ReplacementPolicy::kLru:
      meta[way] = tick_;
      break;
    case ReplacementPolicy::kPlru: {
      meta[way] = 1;
      // Bit-PLRU saturation: once every way is "recent", forget everything
      // except the access that saturated the set.
      bool all_set = true;
      for (std::uint32_t w = 0; w < assoc_; ++w) {
        all_set = all_set && meta[w] != 0;
      }
      if (all_set) {
        std::fill(meta, meta + assoc_, std::uint64_t{0});
        meta[way] = 1;
      }
      break;
    }
    case ReplacementPolicy::kRrip:
      meta[way] = filled ? kRripLong : kRripNear;
      break;
  }
}

std::uint32_t CacheSimulator::choose_victim(std::uint64_t* meta,
                                            const std::uint8_t* flags) {
  // Invalid ways fill first under every policy.
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if ((flags[w] & kValidFlag) == 0) {
      return w;
    }
  }
  switch (policy_) {
    case ReplacementPolicy::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < assoc_; ++w) {
        if (meta[w] < meta[victim]) {
          victim = w;
        }
      }
      return victim;
    }
    case ReplacementPolicy::kPlru:
      for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (meta[w] == 0) {
          return w;
        }
      }
      return 0;  // assoc == 1: the single way is always "recent"
    case ReplacementPolicy::kRrip:
      for (;;) {
        for (std::uint32_t w = 0; w < assoc_; ++w) {
          if (meta[w] >= kRripDistant) {
            return w;
          }
        }
        for (std::uint32_t w = 0; w < assoc_; ++w) {
          ++meta[w];
        }
      }
  }
  return 0;
}

bool CacheSimulator::touch_line(std::uint64_t block, bool is_write, DsId ds,
                                CacheStats& st) {
  ++tick_;
  ++st.accesses;

  const std::uint64_t set = set_of_block(block);
  const std::size_t base = static_cast<std::size_t>(set) * assoc_;
  std::uint64_t* const tags = tags_.data() + base;
  std::uint64_t* const meta = meta_.data() + base;
  DsId* const owners = owners_.data() + base;
  std::uint8_t* const flags = flags_.data() + base;

  // Contiguous branch-light tag scan: at most one VALID way can match, and
  // invalid ways hold kInvalidTag, so for ordinary blocks a tag match is a
  // hit without any flag load. A probe for the sentinel block itself (only
  // reachable with 1-byte lines at the very top of the address space) takes
  // the flag-checking slow path.
  std::uint32_t hit_way = assoc_;
  if (block != kInvalidTag) [[likely]] {
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      hit_way = tags[w] == block ? w : hit_way;
    }
  } else {
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      if (tags[w] == block && (flags[w] & kValidFlag) != 0) {
        hit_way = w;
      }
    }
  }

  if (hit_way != assoc_) {
    ++st.hits;
    flags[hit_way] =
        static_cast<std::uint8_t>(flags[hit_way] | (is_write ? kDirtyFlag : 0));
    owners[hit_way] = ds;
    promote_way(meta, hit_way, /*filled=*/false);
    return true;
  }

  ++st.misses;
  const std::uint32_t victim = choose_victim(meta, flags);
  if ((flags[victim] & kValidFlag) != 0) {
    ++evictions_;
    const bool dirty = (flags[victim] & kDirtyFlag) != 0;
    if (dirty) {
      // Cannot invalidate `st`: every owner stored in a line went through
      // stats_for() when it was stored, so this lookup never grows the
      // table while callers hold references into it.
      ++stats_for(owners[victim]).writebacks;
    }
    if (on_evict_) {
      on_evict_(tags[victim], owners[victim], dirty);
    }
  }
  tags[victim] = block;
  owners[victim] = ds;
  flags[victim] =
      static_cast<std::uint8_t>(kValidFlag | (is_write ? kDirtyFlag : 0));
  promote_way(meta, victim, /*filled=*/true);
  return false;
}

void CacheSimulator::flush() {
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    if ((flags_[i] & kValidFlag) == 0) {
      continue;
    }
    const bool dirty = (flags_[i] & kDirtyFlag) != 0;
    if (dirty) {
      ++stats_for(owners_[i]).writebacks;
    }
    if (on_evict_) {
      on_evict_(tags_[i], owners_[i], dirty);
    }
    tags_[i] = kInvalidTag;
    meta_[i] = 0;
    owners_[i] = kNoDs;
    flags_[i] = 0;
  }
}

void CacheSimulator::reset() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(meta_.begin(), meta_.end(), std::uint64_t{0});
  std::fill(owners_.begin(), owners_.end(), kNoDs);
  std::fill(flags_.begin(), flags_.end(), std::uint8_t{0});
  std::fill(stats_.begin(), stats_.end(), CacheStats{});
  unattributed_ = CacheStats{};
  tick_ = 0;
  evictions_ = 0;
}

CacheStats CacheSimulator::stats(DsId ds) const {
  if (ds == kNoDs) {
    return unattributed_;
  }
  return ds < stats_.size() ? stats_[ds] : CacheStats{};
}

CacheStats CacheSimulator::total_stats() const {
  CacheStats total = unattributed_;
  for (const CacheStats& st : stats_) {
    total.accesses += st.accesses;
    total.hits += st.hits;
    total.misses += st.misses;
    total.writebacks += st.writebacks;
  }
  return total;
}

std::uint64_t CacheSimulator::resident_lines() const noexcept {
  return static_cast<std::uint64_t>(
      std::count_if(flags_.begin(), flags_.end(), [](std::uint8_t f) {
        return (f & kValidFlag) != 0;
      }));
}

}  // namespace dvf
