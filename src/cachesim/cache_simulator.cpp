#include "dvf/cachesim/cache_simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "dvf/common/error.hpp"
#include "dvf/obs/obs.hpp"

namespace dvf {

namespace {

/// One-time registered counters for the replay hot path. Registered lazily
/// so pure library users never pay the registration lock.
struct ReplayCounters {
  obs::Counter accesses = obs::counter("cachesim.accesses");
  obs::Counter hits = obs::counter("cachesim.hits");
  obs::Counter misses = obs::counter("cachesim.misses");
  obs::Counter writebacks = obs::counter("cachesim.writebacks");
  obs::Counter evictions = obs::counter("cachesim.evictions");
};

}  // namespace

CacheSimulator::CacheSimulator(CacheConfig config)
    : config_(std::move(config)),
      num_sets_(config_.num_sets()),
      assoc_(config_.associativity()),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(config_.line_bytes()))),
      set_mask_(num_sets_ - 1),
      sets_pow2_(std::has_single_bit(num_sets_)) {
  lines_.resize(static_cast<std::size_t>(num_sets_) * assoc_);
}

CacheSimulator::CacheSimulator(CacheConfig config,
                               const DataStructureRegistry& registry)
    : CacheSimulator(std::move(config)) {
  reserve_structures(registry.size());
}

void CacheSimulator::reserve_structures(std::size_t count) {
  if (count > stats_.size()) {
    stats_.resize(count);
  }
}

CacheStats& CacheSimulator::stats_for(DsId ds) {
  if (ds == kNoDs) {
    return unattributed_;
  }
  if (ds >= stats_.size()) [[unlikely]] {
    stats_.resize(ds + 1);
  }
  return stats_[ds];
}

void CacheSimulator::access(std::uint64_t address, std::uint32_t size,
                            bool is_write, DsId ds) {
  DVF_CHECK_MSG(size > 0, "access size must be positive");
  const std::uint64_t first = address >> line_shift_;
  const std::uint64_t last = (address + size - 1) >> line_shift_;
  CacheStats& st = stats_for(ds);
  for (std::uint64_t block = first; block <= last; ++block) {
    touch_line(block, is_write, ds, st);
  }
}

void CacheSimulator::replay(std::span<const MemoryRecord> records) {
  if (obs::enabled()) [[unlikely]] {
    replay_instrumented(records);
    return;
  }
  replay_uninstrumented(records);
}

void CacheSimulator::replay_uninstrumented(
    std::span<const MemoryRecord> records) {
  const std::uint32_t line_shift = line_shift_;
  for (const MemoryRecord& record : records) {
    if (record.size == 0) [[unlikely]] {
      continue;
    }
    const std::uint64_t first = record.address >> line_shift;
    const std::uint64_t last =
        (record.address + record.size - 1) >> line_shift;
    CacheStats& st = stats_for(record.ds);
    for (std::uint64_t block = first; block <= last; ++block) {
      touch_line(block, record.is_write, record.ds, st);
    }
  }
}

void CacheSimulator::replay_instrumented(
    std::span<const MemoryRecord> records) {
  static const ReplayCounters counters;
  const obs::ScopedSpan span("cachesim.replay");
  const CacheStats before = total_stats();
  const std::uint64_t evictions_before = evictions_;
  replay_uninstrumented(records);
  const CacheStats after = total_stats();
  counters.accesses.add(after.accesses - before.accesses);
  counters.hits.add(after.hits - before.hits);
  counters.misses.add(after.misses - before.misses);
  counters.writebacks.add(after.writebacks - before.writebacks);
  counters.evictions.add(evictions_ - evictions_before);
}

bool CacheSimulator::touch_line(std::uint64_t block, bool is_write, DsId ds,
                                CacheStats& st) {
  ++tick_;
  ++st.accesses;

  const std::uint64_t set = set_of_block(block);
  Line* const set_begin = lines_.data() + static_cast<std::size_t>(set) * assoc_;
  Line* const set_end = set_begin + assoc_;

  Line* victim = set_begin;  // least recently used (or first invalid) way
  for (Line* way = set_begin; way != set_end; ++way) {
    if (way->valid && way->block == block) {
      ++st.hits;
      way->tick = tick_;
      way->dirty = way->dirty || is_write;
      way->owner = ds;
      return true;
    }
    // Prefer an invalid way; among valid ways pick the stalest.
    if (!victim->valid) {
      continue;
    }
    if (!way->valid || way->tick < victim->tick) {
      victim = way;
    }
  }

  ++st.misses;
  if (victim->valid) {
    ++evictions_;
    if (victim->dirty) {
      // Cannot invalidate `st`: every owner stored in a line went through
      // stats_for() when it was stored, so this lookup never grows the
      // table while callers hold references into it.
      ++stats_for(victim->owner).writebacks;
    }
    if (on_evict_) {
      on_evict_(victim->block, victim->owner, victim->dirty);
    }
  }
  victim->valid = true;
  victim->block = block;
  victim->tick = tick_;
  victim->dirty = is_write;
  victim->owner = ds;
  return false;
}

void CacheSimulator::flush() {
  for (Line& line : lines_) {
    if (!line.valid) {
      continue;
    }
    if (line.dirty) {
      ++stats_for(line.owner).writebacks;
    }
    if (on_evict_) {
      on_evict_(line.block, line.owner, line.dirty);
    }
    line.dirty = false;
    line.valid = false;
    line.owner = kNoDs;
  }
}

void CacheSimulator::reset() {
  for (Line& line : lines_) {
    line = Line{};
  }
  std::fill(stats_.begin(), stats_.end(), CacheStats{});
  unattributed_ = CacheStats{};
  tick_ = 0;
  evictions_ = 0;
}

CacheStats CacheSimulator::stats(DsId ds) const {
  if (ds == kNoDs) {
    return unattributed_;
  }
  return ds < stats_.size() ? stats_[ds] : CacheStats{};
}

CacheStats CacheSimulator::total_stats() const {
  CacheStats total = unattributed_;
  for (const CacheStats& st : stats_) {
    total.accesses += st.accesses;
    total.hits += st.hits;
    total.misses += st.misses;
    total.writebacks += st.writebacks;
  }
  return total;
}

std::uint64_t CacheSimulator::resident_lines() const noexcept {
  return static_cast<std::uint64_t>(
      std::count_if(lines_.begin(), lines_.end(),
                    [](const Line& l) { return l.valid; }));
}

}  // namespace dvf
