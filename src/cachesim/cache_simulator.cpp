#include "dvf/cachesim/cache_simulator.hpp"

#include <algorithm>
#include <utility>

#include "dvf/common/error.hpp"

namespace dvf {

CacheSimulator::CacheSimulator(CacheConfig config) : config_(std::move(config)) {
  lines_.resize(static_cast<std::size_t>(config_.num_sets()) *
                config_.associativity());
}

CacheStats& CacheSimulator::stats_for(DsId ds) {
  if (ds == kNoDs) {
    return unattributed_;
  }
  if (ds >= stats_.size()) {
    stats_.resize(ds + 1);
  }
  return stats_[ds];
}

void CacheSimulator::access(std::uint64_t address, std::uint32_t size,
                            bool is_write, DsId ds) {
  DVF_CHECK_MSG(size > 0, "access size must be positive");
  const std::uint64_t first = config_.block_of(address);
  const std::uint64_t last = config_.block_of(address + size - 1);
  for (std::uint64_t block = first; block <= last; ++block) {
    touch_line(block, is_write, ds);
  }
}

bool CacheSimulator::touch_line(std::uint64_t block, bool is_write, DsId ds) {
  ++tick_;
  CacheStats& st = stats_for(ds);
  ++st.accesses;

  const std::uint64_t set = block % config_.num_sets();
  Line* const set_begin = lines_.data() +
      static_cast<std::size_t>(set) * config_.associativity();
  Line* const set_end = set_begin + config_.associativity();

  Line* victim = set_begin;  // least recently used (or first invalid) way
  for (Line* way = set_begin; way != set_end; ++way) {
    if (way->valid && way->block == block) {
      ++st.hits;
      way->tick = tick_;
      way->dirty = way->dirty || is_write;
      way->owner = ds;
      return true;
    }
    // Prefer an invalid way; among valid ways pick the stalest.
    if (!victim->valid) {
      continue;
    }
    if (!way->valid || way->tick < victim->tick) {
      victim = way;
    }
  }

  ++st.misses;
  if (victim->valid) {
    if (victim->dirty) {
      ++stats_for(victim->owner).writebacks;
    }
    if (on_evict_) {
      on_evict_(victim->block, victim->owner, victim->dirty);
    }
  }
  victim->valid = true;
  victim->block = block;
  victim->tick = tick_;
  victim->dirty = is_write;
  victim->owner = ds;
  return false;
}

void CacheSimulator::flush() {
  for (Line& line : lines_) {
    if (!line.valid) {
      continue;
    }
    if (line.dirty) {
      ++stats_for(line.owner).writebacks;
    }
    if (on_evict_) {
      on_evict_(line.block, line.owner, line.dirty);
    }
    line.dirty = false;
    line.valid = false;
    line.owner = kNoDs;
  }
}

void CacheSimulator::reset() {
  for (Line& line : lines_) {
    line = Line{};
  }
  stats_.clear();
  unattributed_ = CacheStats{};
  tick_ = 0;
}

CacheStats CacheSimulator::stats(DsId ds) const {
  if (ds == kNoDs) {
    return unattributed_;
  }
  return ds < stats_.size() ? stats_[ds] : CacheStats{};
}

CacheStats CacheSimulator::total_stats() const {
  CacheStats total = unattributed_;
  for (const CacheStats& st : stats_) {
    total.accesses += st.accesses;
    total.hits += st.hits;
    total.misses += st.misses;
    total.writebacks += st.writebacks;
  }
  return total;
}

std::uint64_t CacheSimulator::resident_lines() const noexcept {
  return static_cast<std::uint64_t>(
      std::count_if(lines_.begin(), lines_.end(),
                    [](const Line& l) { return l.valid; }));
}

}  // namespace dvf
