#include "dvf/cachesim/hierarchy.hpp"

#include <utility>

#include "dvf/common/error.hpp"

namespace dvf {

CacheHierarchy::CacheHierarchy(std::vector<CacheConfig> levels) {
  DVF_CHECK_MSG(!levels.empty(), "hierarchy needs at least one level");
  line_bytes_ = levels.front().line_bytes();
  for (const CacheConfig& config : levels) {
    DVF_CHECK_MSG(config.line_bytes() == line_bytes_,
                  "hierarchy levels must share one line size");
  }
  levels_.reserve(levels.size());
  for (CacheConfig& config : levels) {
    Level level{config, std::make_unique<CacheSimulator>(config)};
    levels_.push_back(std::move(level));
  }

  // Dirty evictions at level i write back into level i+1 (allocating
  // there); the last level's writebacks are memory traffic and already land
  // in its own statistics.
  for (std::size_t i = 0; i + 1 < levels_.size(); ++i) {
    CacheSimulator* next = levels_[i + 1].sim.get();
    levels_[i].sim->set_eviction_handler(
        [next](std::uint64_t block, DsId owner, bool dirty) {
          if (dirty) {
            (void)next->access_block(block, /*is_write=*/true, owner);
          }
        });
  }
}

void CacheHierarchy::touch(std::size_t level, std::uint64_t block,
                           bool is_write, DsId ds) {
  for (std::size_t l = level; l < levels_.size(); ++l) {
    if (levels_[l].sim->access_block(block, is_write, ds)) {
      return;  // hit: upper levels were already filled on the way down
    }
    // A miss at level l was filled there by access_block; the demand
    // continues to the next level to fetch the line.
  }
}

void CacheHierarchy::access(std::uint64_t address, std::uint32_t size,
                            bool is_write, DsId ds) {
  DVF_CHECK_MSG(size > 0, "access size must be positive");
  const std::uint64_t first = address / line_bytes_;
  const std::uint64_t last = (address + size - 1) / line_bytes_;
  for (std::uint64_t block = first; block <= last; ++block) {
    touch(0, block, is_write, ds);
  }
}

void CacheHierarchy::flush() {
  // Upper levels first so their dirty lines cascade into lower levels
  // before those are flushed.
  for (Level& level : levels_) {
    level.sim->flush();
  }
}

void CacheHierarchy::reset() {
  for (Level& level : levels_) {
    level.sim->reset();
  }
}

CacheStats CacheHierarchy::level_stats(std::size_t level, DsId ds) const {
  DVF_CHECK_MSG(level < levels_.size(), "hierarchy level out of range");
  return levels_[level].sim->stats(ds);
}

std::uint64_t CacheHierarchy::main_memory_accesses(DsId ds) const {
  return levels_.back().sim->stats(ds).main_memory_accesses();
}

}  // namespace dvf
