// Trace-driven set-associative LRU cache simulator.
//
// This is the verification reference of the paper's §IV-A: it consumes the
// per-data-structure reference stream the kernels emit and reports, per
// structure, how many main-memory accesses (misses and writebacks) the LLC
// produced. The analytical CGPMAC models are judged against these counts.
//
// Hot-path layout: the geometry (set count, associativity, line shift) is
// cached in members at construction; when the set count is a power of two
// the set index is a mask (`block & set_mask_`), falling back to modulo
// otherwise. The per-structure stats table can be pre-sized from a registry
// so the accounting lookup never grows mid-simulation, and replay() batches
// a recorded stream through the simulator with per-access dispatch hoisted
// out of the loop.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dvf/machine/cache_config.hpp"
#include "dvf/trace/recorder.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf {

/// Per-data-structure simulation outcome.
struct CacheStats {
  std::uint64_t accesses = 0;    ///< line-granular probes
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< lines fetched from main memory
  std::uint64_t writebacks = 0;  ///< dirty lines evicted to main memory

  /// Main-memory traffic attributable to the structure. The paper's N_ha
  /// counts accesses reaching main memory; fetches and writebacks both do.
  [[nodiscard]] std::uint64_t main_memory_accesses() const noexcept {
    return misses + writebacks;
  }
};

/// Set-associative LRU cache with true-LRU replacement and write-back /
/// write-allocate policy (the policy the paper's simulator reports:
/// "the cache simulation is based on the popular LRU algorithm and can
/// report the number of cache misses and writebacks").
class CacheSimulator {
 public:
  explicit CacheSimulator(CacheConfig config);
  /// As above, pre-sizing the stats table for every id the registry holds.
  CacheSimulator(CacheConfig config, const DataStructureRegistry& registry);

  /// Pre-sizes the per-structure stats table for ids [0, count), so the hot
  /// path never reallocates it. Existing tallies are kept.
  void reserve_structures(std::size_t count);

  /// Called when a valid line leaves the cache (replacement or flush), with
  /// its block number, owner and dirtiness. Used by CacheHierarchy to
  /// cascade writebacks; unset by default.
  using EvictionHandler =
      std::function<void(std::uint64_t block, DsId owner, bool dirty)>;
  void set_eviction_handler(EvictionHandler handler) {
    on_evict_ = std::move(handler);
  }

  /// Simulates one reference; accesses spanning a line boundary probe every
  /// covered line (matching how hardware splits them).
  void access(std::uint64_t address, std::uint32_t size, bool is_write, DsId ds);

  /// Batched replay of a recorded reference stream; equivalent to calling
  /// access() per record but with the per-record checks and stats dispatch
  /// hoisted out of the inner loop (zero-sized records are skipped).
  void replay(std::span<const MemoryRecord> records);

  /// Line-granular probe; returns true on hit. The building block the
  /// multi-level hierarchy composes.
  bool access_block(std::uint64_t block, bool is_write, DsId ds) {
    return touch_line(block, is_write, ds, stats_for(ds));
  }

  /// Recorder-concept entry points, so a simulator can be handed straight to
  /// a kernel.
  void on_load(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    access(addr, bytes, /*is_write=*/false, ds);
  }
  void on_store(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    access(addr, bytes, /*is_write=*/true, ds);
  }

  /// Flushes all dirty lines, charging writebacks to their owners. Call at
  /// end of simulation so write traffic of still-resident lines is counted.
  void flush();

  /// Invalidates everything and zeroes statistics (the stats table keeps its
  /// reserved size).
  void reset();

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  /// Stats for one structure (zeros if never referenced).
  [[nodiscard]] CacheStats stats(DsId ds) const;
  /// Aggregate over all structures (including unattributed accesses).
  [[nodiscard]] CacheStats total_stats() const;
  /// Number of currently valid lines (for tests).
  [[nodiscard]] std::uint64_t resident_lines() const noexcept;
  /// Valid lines displaced by replacement since construction/reset (flush()
  /// does not count; it reports writebacks instead).
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Line {
    std::uint64_t block = 0;   ///< address / line_bytes
    std::uint64_t tick = 0;    ///< last-use timestamp for LRU
    DsId owner = kNoDs;
    bool valid = false;
    bool dirty = false;
  };

  bool touch_line(std::uint64_t block, bool is_write, DsId ds, CacheStats& st);
  CacheStats& stats_for(DsId ds);
  void replay_uninstrumented(std::span<const MemoryRecord> records);
  /// Cold path: wraps the plain replay in an obs span and publishes the
  /// stats deltas as counters. Never entered while obs is disabled.
  void replay_instrumented(std::span<const MemoryRecord> records);

  [[nodiscard]] std::uint64_t set_of_block(std::uint64_t block) const noexcept {
    return sets_pow2_ ? (block & set_mask_) : (block % num_sets_);
  }

  CacheConfig config_;
  // Geometry cached out of config_ so the hot path never re-derives it.
  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  std::uint32_t line_shift_;   ///< log2(line_bytes); lines are power of two
  std::uint64_t set_mask_;     ///< num_sets - 1 when sets_pow2_
  bool sets_pow2_;

  std::vector<Line> lines_;  ///< num_sets * associativity, set-major
  std::vector<CacheStats> stats_;
  CacheStats unattributed_;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
  EvictionHandler on_evict_;
};
static_assert(RecorderLike<CacheSimulator>);

}  // namespace dvf
