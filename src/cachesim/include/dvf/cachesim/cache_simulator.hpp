// Trace-driven set-associative LRU cache simulator.
//
// This is the verification reference of the paper's §IV-A: it consumes the
// per-data-structure reference stream the kernels emit and reports, per
// structure, how many main-memory accesses (misses and writebacks) the LLC
// produced. The analytical CGPMAC models are judged against these counts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dvf/machine/cache_config.hpp"
#include "dvf/trace/recorder.hpp"

namespace dvf {

/// Per-data-structure simulation outcome.
struct CacheStats {
  std::uint64_t accesses = 0;    ///< line-granular probes
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< lines fetched from main memory
  std::uint64_t writebacks = 0;  ///< dirty lines evicted to main memory

  /// Main-memory traffic attributable to the structure. The paper's N_ha
  /// counts accesses reaching main memory; fetches and writebacks both do.
  [[nodiscard]] std::uint64_t main_memory_accesses() const noexcept {
    return misses + writebacks;
  }
};

/// Set-associative LRU cache with true-LRU replacement and write-back /
/// write-allocate policy (the policy the paper's simulator reports:
/// "the cache simulation is based on the popular LRU algorithm and can
/// report the number of cache misses and writebacks").
class CacheSimulator {
 public:
  explicit CacheSimulator(CacheConfig config);

  /// Called when a valid line leaves the cache (replacement or flush), with
  /// its block number, owner and dirtiness. Used by CacheHierarchy to
  /// cascade writebacks; unset by default.
  using EvictionHandler =
      std::function<void(std::uint64_t block, DsId owner, bool dirty)>;
  void set_eviction_handler(EvictionHandler handler) {
    on_evict_ = std::move(handler);
  }

  /// Simulates one reference; accesses spanning a line boundary probe every
  /// covered line (matching how hardware splits them).
  void access(std::uint64_t address, std::uint32_t size, bool is_write, DsId ds);

  /// Line-granular probe; returns true on hit. The building block the
  /// multi-level hierarchy composes.
  bool access_block(std::uint64_t block, bool is_write, DsId ds) {
    return touch_line(block, is_write, ds);
  }

  /// Recorder-concept entry points, so a simulator can be handed straight to
  /// a kernel.
  void on_load(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    access(addr, bytes, /*is_write=*/false, ds);
  }
  void on_store(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    access(addr, bytes, /*is_write=*/true, ds);
  }

  /// Flushes all dirty lines, charging writebacks to their owners. Call at
  /// end of simulation so write traffic of still-resident lines is counted.
  void flush();

  /// Invalidates everything and zeroes statistics.
  void reset();

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  /// Stats for one structure (zeros if never referenced).
  [[nodiscard]] CacheStats stats(DsId ds) const;
  /// Aggregate over all structures (including unattributed accesses).
  [[nodiscard]] CacheStats total_stats() const;
  /// Number of currently valid lines (for tests).
  [[nodiscard]] std::uint64_t resident_lines() const noexcept;

 private:
  struct Line {
    std::uint64_t block = 0;   ///< address / line_bytes
    std::uint64_t tick = 0;    ///< last-use timestamp for LRU
    DsId owner = kNoDs;
    bool valid = false;
    bool dirty = false;
  };

  bool touch_line(std::uint64_t block, bool is_write, DsId ds);
  CacheStats& stats_for(DsId ds);

  CacheConfig config_;
  std::vector<Line> lines_;  ///< num_sets * associativity, set-major
  std::vector<CacheStats> stats_;
  CacheStats unattributed_;
  std::uint64_t tick_ = 0;
  EvictionHandler on_evict_;
};
static_assert(RecorderLike<CacheSimulator>);

}  // namespace dvf
