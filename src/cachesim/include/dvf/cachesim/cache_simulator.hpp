// Trace-driven set-associative cache simulator.
//
// This is the verification reference of the paper's §IV-A: it consumes the
// per-data-structure reference stream the kernels emit and reports, per
// structure, how many main-memory accesses (misses and writebacks) the LLC
// produced. The analytical CGPMAC models are judged against these counts.
//
// Hot-path layout: the geometry (set count, associativity, line shift) is
// cached in members at construction; when the set count is a power of two
// the set index is a mask (`block & set_mask_`), falling back to modulo
// otherwise. Sets are stored as flat structure-of-arrays slabs — one
// contiguous tag array, one policy-metadata array, one owner array, one
// flags array — so the N-way tag compare is a branch-light contiguous scan
// the compiler can vectorize (invalid ways hold a sentinel tag that never
// matches a real probe). The per-structure stats table can be pre-sized from
// a registry so the accounting lookup never grows mid-simulation, and
// replay() batches a recorded stream through the simulator with per-access
// dispatch hoisted out of the loop.
//
// Replacement is pluggable (dvf/cachesim/replacement.hpp): true LRU (the
// paper's reference), bit-PLRU and 2-bit SRRIP all keep their state per set
// in the same metadata array, which is what makes set-sharded replay
// (dvf/cachesim/sharded_replay.hpp) bit-identical to the single stream.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dvf/cachesim/replacement.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/trace/recorder.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf {

/// Per-data-structure simulation outcome.
struct CacheStats {
  std::uint64_t accesses = 0;    ///< line-granular probes
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< lines fetched from main memory
  std::uint64_t writebacks = 0;  ///< dirty lines evicted to main memory

  /// Main-memory traffic attributable to the structure. The paper's N_ha
  /// counts accesses reaching main memory; fetches and writebacks both do.
  [[nodiscard]] std::uint64_t main_memory_accesses() const noexcept {
    return misses + writebacks;
  }
};

/// Set-associative cache with write-back / write-allocate policy and
/// selectable replacement (LRU by default — the policy the paper's simulator
/// reports: "the cache simulation is based on the popular LRU algorithm and
/// can report the number of cache misses and writebacks").
class CacheSimulator {
 public:
  explicit CacheSimulator(CacheConfig config,
                          ReplacementPolicy policy = ReplacementPolicy::kLru);
  /// As above, pre-sizing the stats table for every id the registry holds.
  CacheSimulator(CacheConfig config, const DataStructureRegistry& registry,
                 ReplacementPolicy policy = ReplacementPolicy::kLru);

  /// Pre-sizes the per-structure stats table for ids [0, count), so the hot
  /// path never reallocates it. Existing tallies are kept.
  void reserve_structures(std::size_t count);

  /// Called when a valid line leaves the cache (replacement or flush), with
  /// its block number, owner and dirtiness. Used by CacheHierarchy to
  /// cascade writebacks; unset by default.
  using EvictionHandler =
      std::function<void(std::uint64_t block, DsId owner, bool dirty)>;
  void set_eviction_handler(EvictionHandler handler) {
    on_evict_ = std::move(handler);
  }

  /// Simulates one reference; accesses spanning a line boundary probe every
  /// covered line (matching how hardware splits them).
  void access(std::uint64_t address, std::uint32_t size, bool is_write, DsId ds);

  /// Batched replay of a recorded reference stream; equivalent to calling
  /// access() per record but with the per-record checks and stats dispatch
  /// hoisted out of the inner loop (zero-sized records are skipped).
  void replay(std::span<const MemoryRecord> records);

  /// Set-sharded replay worker: replays exactly the blocks whose set index
  /// satisfies `set mod shards == shard`, skipping everything else. With the
  /// full stream presented in order to `shards` simulators (one per shard
  /// value) the merged per-structure stats are bit-identical to a
  /// single-stream replay(), because replacement state never crosses set
  /// boundaries. Never instrumented — the sharded driver owns the obs span.
  void replay_filtered(std::span<const MemoryRecord> records,
                       std::uint32_t shards, std::uint32_t shard);

  /// Line-granular probe; returns true on hit. The building block the
  /// multi-level hierarchy composes.
  bool access_block(std::uint64_t block, bool is_write, DsId ds) {
    return touch_line(block, is_write, ds, stats_for(ds));
  }

  /// Recorder-concept entry points, so a simulator can be handed straight to
  /// a kernel.
  void on_load(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    access(addr, bytes, /*is_write=*/false, ds);
  }
  void on_store(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    access(addr, bytes, /*is_write=*/true, ds);
  }

  /// Flushes all dirty lines, charging writebacks to their owners. Call at
  /// end of simulation so write traffic of still-resident lines is counted.
  void flush();

  /// Invalidates everything and zeroes statistics (the stats table keeps its
  /// reserved size).
  void reset();

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] ReplacementPolicy policy() const noexcept { return policy_; }
  /// Stats for one structure (zeros if never referenced).
  [[nodiscard]] CacheStats stats(DsId ds) const;
  /// Aggregate over all structures (including unattributed accesses).
  [[nodiscard]] CacheStats total_stats() const;
  /// Number of currently valid lines (for tests).
  [[nodiscard]] std::uint64_t resident_lines() const noexcept;
  /// Valid lines displaced by replacement since construction/reset (flush()
  /// does not count; it reports writebacks instead).
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  /// Invalid ways park their tag here so the vectorized scan skips them
  /// without a validity load; a probe FOR this block number takes the
  /// flag-checking slow path instead.
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};
  static constexpr std::uint8_t kValidFlag = 0x1;
  static constexpr std::uint8_t kDirtyFlag = 0x2;

  bool touch_line(std::uint64_t block, bool is_write, DsId ds, CacheStats& st);
  /// Policy-metadata update for the way just accessed (`filled` = miss fill
  /// vs hit).
  void promote_way(std::uint64_t* meta, std::uint32_t way, bool filled);
  /// Victim way for a full set; may age RRIP metadata in place.
  [[nodiscard]] std::uint32_t choose_victim(std::uint64_t* meta,
                                            const std::uint8_t* flags);
  CacheStats& stats_for(DsId ds);
  void replay_uninstrumented(std::span<const MemoryRecord> records);
  /// Cold path: wraps the plain replay in an obs span and publishes the
  /// stats deltas as counters. Never entered while obs is disabled.
  void replay_instrumented(std::span<const MemoryRecord> records);

  [[nodiscard]] std::uint64_t set_of_block(std::uint64_t block) const noexcept {
    return sets_pow2_ ? (block & set_mask_) : (block % num_sets_);
  }

  CacheConfig config_;
  // Geometry cached out of config_ so the hot path never re-derives it.
  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  std::uint32_t line_shift_;   ///< log2(line_bytes); lines are power of two
  std::uint64_t set_mask_;     ///< num_sets - 1 when sets_pow2_
  bool sets_pow2_;
  ReplacementPolicy policy_;

  // Flat SoA set storage, all num_sets * associativity, set-major. meta_ is
  // the per-way replacement state: LRU timestamp, PLRU MRU bit, or RRIP
  // RRPV, depending on policy_.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> meta_;
  std::vector<DsId> owners_;
  std::vector<std::uint8_t> flags_;

  std::vector<CacheStats> stats_;
  CacheStats unattributed_;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
  EvictionHandler on_evict_;
};
static_assert(RecorderLike<CacheSimulator>);

}  // namespace dvf
