// Multi-level cache hierarchy simulator.
//
// The paper's CGPMAC deliberately models only the last-level cache: "we
// only consider the last level cache during analysis, because it has the
// largest impact on the number of main memory accesses" (§III-C). This
// hierarchy exists to CHECK that assumption (bench/ablation_hierarchy):
// upper levels filter references but, being smaller, rarely change which
// lines reach memory.
//
// Semantics: non-inclusive/non-exclusive demand-filled hierarchy. A
// reference probes L1; on miss it probes L2, and so on; each miss at level
// i fills level i. Dirty evictions write back into the next level
// (allocating there), and from the last level to memory. Per-structure
// main-memory accesses are the last level's misses plus its writebacks.
#pragma once

#include <memory>
#include <vector>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/trace/recorder.hpp"

namespace dvf {

class CacheHierarchy {
 public:
  /// Levels ordered L1 first. Throws InvalidArgumentError when empty or
  /// when line sizes differ (mixed-line hierarchies complicate fill
  /// granularity without serving the validation purpose).
  explicit CacheHierarchy(std::vector<CacheConfig> levels);

  void access(std::uint64_t address, std::uint32_t size, bool is_write, DsId ds);

  void on_load(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    access(addr, bytes, /*is_write=*/false, ds);
  }
  void on_store(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    access(addr, bytes, /*is_write=*/true, ds);
  }

  /// Flushes every level, cascading dirty lines downward.
  void flush();
  void reset();

  [[nodiscard]] std::size_t levels() const noexcept { return levels_.size(); }
  /// Stats of one level (0 = L1).
  [[nodiscard]] CacheStats level_stats(std::size_t level, DsId ds) const;
  /// Traffic that reached main memory for a structure: last-level misses
  /// plus last-level writebacks.
  [[nodiscard]] std::uint64_t main_memory_accesses(DsId ds) const;

 private:
  struct Level {
    CacheConfig config;
    // One simulator per level; reuse of the single-level engine keeps the
    // replacement behaviour identical to the LLC-only reference.
    std::unique_ptr<CacheSimulator> sim;
  };

  /// A line-granular probe cascading from `level` downward. Returns true on
  /// hit at this level.
  void touch(std::size_t level, std::uint64_t block, bool is_write, DsId ds);

  std::vector<Level> levels_;
  std::uint32_t line_bytes_ = 0;
};
static_assert(RecorderLike<CacheHierarchy>);

}  // namespace dvf
