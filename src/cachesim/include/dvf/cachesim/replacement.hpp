// Replacement policies the set-associative simulator can run.
//
// The paper's verification reference is true LRU ("the cache simulation is
// based on the popular LRU algorithm"); PLRU and RRIP widen the machine-model
// scenario space beyond it (real LLCs rarely implement true LRU):
//
//   kLru  — true LRU: per-way last-use timestamps, victim = stalest way.
//           The differential-oracle reference policy.
//   kPlru — bit-PLRU (MRU-bit approximation): each way carries one MRU bit,
//           set on every access; when all bits saturate, every OTHER way's
//           bit clears. Victim = lowest-indexed way with a clear bit. Works
//           for any associativity (unlike the tree variant) and is the
//           flavor several ARM/embedded cache designs ship.
//   kRrip — 2-bit SRRIP (Jaleel et al., ISCA'10), hit-priority: ways carry a
//           re-reference prediction value (RRPV) in [0,3]; insertion
//           predicts "long" (RRPV 2), a hit predicts "near-immediate"
//           (RRPV 0). Victim = lowest-indexed way with RRPV 3, aging every
//           way by +1 until one qualifies.
//
// All three keep state strictly per set, which is what makes set-sharded
// replay bit-identical to the single-stream simulator for every policy.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace dvf {

enum class ReplacementPolicy {
  kLru,
  kPlru,
  kRrip,
};

/// Canonical lower-case name ("lru", "plru", "rrip").
[[nodiscard]] constexpr const char* policy_name(
    ReplacementPolicy policy) noexcept {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kPlru:
      return "plru";
    case ReplacementPolicy::kRrip:
      return "rrip";
  }
  return "lru";
}

/// Parses a policy name as the CLI spells it; nullopt on anything else.
[[nodiscard]] inline std::optional<ReplacementPolicy> parse_policy(
    std::string_view text) noexcept {
  if (text == "lru") {
    return ReplacementPolicy::kLru;
  }
  if (text == "plru") {
    return ReplacementPolicy::kPlru;
  }
  if (text == "rrip") {
    return ReplacementPolicy::kRrip;
  }
  return std::nullopt;
}

}  // namespace dvf
