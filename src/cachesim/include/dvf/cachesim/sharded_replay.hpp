// Set-sharded parallel replay: the tentpole of scaling the verification
// simulator with cores.
//
// Replacement state in a set-associative cache never crosses set boundaries
// (true for all three policies in dvf/cachesim/replacement.hpp), so the set
// index space partitions cleanly: shard s simulates exactly the sets with
// `set mod shards == s`. Each worker walks the SAME shared record stream in
// order and filters it to its own sets — no locks, no queues, no shared
// mutable state on the hot path — and the per-structure stats merge by
// integer addition. The result is bit-identical to a single-stream
// CacheSimulator::replay() for every shard count, which the tests pin at
// 1/2/8 threads.
//
// The trade-off is that every worker scans every record, so sharding buys
// wall-clock time only when the per-record simulation work (tag scan,
// replacement update) dominates the filter test — true for random-ish
// streams that miss a lot, false for tiny traces or a 1-core host (see
// docs/performance.md, "when sharding loses").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/cachesim/replacement.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/parallel/thread_pool.hpp"

namespace dvf {

class TraceReader;

/// Replays reference streams through `threads` set-sharded CacheSimulator
/// instances in parallel and exposes the deterministically merged stats.
class ShardedReplayer {
 public:
  /// `threads == 0` resolves like the thread pool: DVF_THREADS or the
  /// hardware concurrency. `threads == 1` degenerates to a plain
  /// single-stream replay with no pool dispatch.
  explicit ShardedReplayer(const CacheConfig& config, unsigned threads = 1,
                           ReplacementPolicy policy = ReplacementPolicy::kLru);

  /// Replays a materialized stream across all shards in parallel.
  /// Bit-identical to CacheSimulator::replay() on the same stream.
  void replay(std::span<const MemoryRecord> records);

  /// Streams a trace chunk-by-chunk through the shards, so a multi-GB trace
  /// replays in O(chunk) memory. Workers join at each chunk boundary.
  void replay_stream(TraceReader& reader);

  /// Flushes every shard serially (handler callbacks, if any, run on the
  /// calling thread).
  void flush();
  /// Invalidates all shards and zeroes statistics.
  void reset();
  /// Pre-sizes every shard's stats table (call before replay so the hot
  /// path never reallocates).
  void reserve_structures(std::size_t count);

  /// Installs the handler on every shard. During replay() it runs
  /// concurrently from multiple workers — the handler must be thread-safe
  /// (e.g. accumulate into atomics). flush() invokes it serially.
  void set_eviction_handler(CacheSimulator::EvictionHandler handler);

  [[nodiscard]] unsigned shards() const noexcept {
    return static_cast<unsigned>(sims_.size());
  }
  [[nodiscard]] ReplacementPolicy policy() const noexcept {
    return sims_.front().policy();
  }
  /// Merged per-structure stats across all shards.
  [[nodiscard]] CacheStats stats(DsId ds) const;
  /// Merged aggregate stats across all shards.
  [[nodiscard]] CacheStats total_stats() const;
  /// Merged replacement-eviction count across all shards.
  [[nodiscard]] std::uint64_t evictions() const noexcept;

 private:
  std::vector<CacheSimulator> sims_;  ///< one full-geometry sim per shard
  parallel::ThreadPool pool_;
};

}  // namespace dvf
