#include "dvf/cachesim/sharded_replay.hpp"

#include <utility>

#include "dvf/obs/obs.hpp"
#include "dvf/trace/trace_reader.hpp"

namespace dvf {

namespace {

struct ShardedCounters {
  obs::Counter accesses = obs::counter("cachesim.sharded.accesses");
  obs::Counter misses = obs::counter("cachesim.sharded.misses");
  obs::Counter writebacks = obs::counter("cachesim.sharded.writebacks");
};

}  // namespace

ShardedReplayer::ShardedReplayer(const CacheConfig& config, unsigned threads,
                                 ReplacementPolicy policy)
    : pool_(parallel::resolve_thread_count(threads)) {
  const unsigned shards = pool_.concurrency();
  sims_.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    sims_.emplace_back(config, policy);
  }
}

void ShardedReplayer::replay(std::span<const MemoryRecord> records) {
  const unsigned shards = this->shards();
  if (shards == 1) {
    sims_.front().replay(records);
    return;
  }
  const bool instrument = obs::enabled();
  CacheStats before;
  if (instrument) [[unlikely]] {
    before = total_stats();
  }
  {
    const obs::ScopedSpan span("cachesim.sharded_replay");
    // Grain 1: each index IS one shard's whole pass over the stream, so
    // chunking buys nothing. Shard s only ever touches sims_[s] — no locks.
    pool_.for_each(shards, /*grain=*/1,
                   [this, records, shards](std::uint64_t index, unsigned) {
                     sims_[index].replay_filtered(
                         records, shards, static_cast<std::uint32_t>(index));
                   });
  }
  if (instrument) [[unlikely]] {
    static const ShardedCounters counters;
    const CacheStats after = total_stats();
    counters.accesses.add(after.accesses - before.accesses);
    counters.misses.add(after.misses - before.misses);
    counters.writebacks.add(after.writebacks - before.writebacks);
  }
}

void ShardedReplayer::replay_stream(TraceReader& reader) {
  reserve_structures(reader.structures().size());
  while (!reader.done()) {
    replay(reader.next_chunk());
  }
}

void ShardedReplayer::flush() {
  for (CacheSimulator& sim : sims_) {
    sim.flush();
  }
}

void ShardedReplayer::reset() {
  for (CacheSimulator& sim : sims_) {
    sim.reset();
  }
}

void ShardedReplayer::reserve_structures(std::size_t count) {
  for (CacheSimulator& sim : sims_) {
    sim.reserve_structures(count);
  }
}

void ShardedReplayer::set_eviction_handler(
    CacheSimulator::EvictionHandler handler) {
  for (CacheSimulator& sim : sims_) {
    sim.set_eviction_handler(handler);
  }
}

CacheStats ShardedReplayer::stats(DsId ds) const {
  CacheStats merged;
  for (const CacheSimulator& sim : sims_) {
    const CacheStats st = sim.stats(ds);
    merged.accesses += st.accesses;
    merged.hits += st.hits;
    merged.misses += st.misses;
    merged.writebacks += st.writebacks;
  }
  return merged;
}

CacheStats ShardedReplayer::total_stats() const {
  CacheStats merged;
  for (const CacheSimulator& sim : sims_) {
    const CacheStats st = sim.total_stats();
    merged.accesses += st.accesses;
    merged.hits += st.hits;
    merged.misses += st.misses;
    merged.writebacks += st.writebacks;
  }
  return merged;
}

std::uint64_t ShardedReplayer::evictions() const noexcept {
  std::uint64_t total = 0;
  for (const CacheSimulator& sim : sims_) {
    total += sim.evictions();
  }
  return total;
}

}  // namespace dvf
