#include "dvf/common/budget.hpp"

#include <chrono>
#include <limits>
#include <string>

namespace dvf {

namespace {

[[nodiscard]] std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] EvalError limit_error(const char* what, std::uint64_t used,
                                    std::uint64_t limit) {
  return EvalError{ErrorKind::kResourceLimit,
                   std::string(what) + " budget exceeded: " +
                       std::to_string(used) + " > " + std::to_string(limit)};
}

}  // namespace

void EvalBudget::arm_deadline() noexcept {
  if (limits_.wall_seconds <= 0.0) {
    deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  const auto delta =
      static_cast<std::uint64_t>(limits_.wall_seconds * 1e9);
  deadline_ns_.store(steady_now_ns() + delta, std::memory_order_relaxed);
}

Result<void> EvalBudget::charge_references(std::uint64_t n) noexcept {
  DVF_TRY_CHECK(check_deadline());
  if (limits_.max_references == 0) {
    return {};
  }
  if (per_charge_) {
    if (n > limits_.max_references) {
      return limit_error("reference", n, limits_.max_references);
    }
    return {};
  }
  const std::uint64_t used =
      references_.fetch_add(n, std::memory_order_relaxed) + n;
  if (used < n || used > limits_.max_references) {  // < n: counter wrapped
    return limit_error("reference", used, limits_.max_references);
  }
  return {};
}

Result<void> EvalBudget::charge_expansion(std::uint64_t n) noexcept {
  DVF_TRY_CHECK(check_deadline());
  if (limits_.max_expansion == 0) {
    return {};
  }
  if (per_charge_) {
    if (n > limits_.max_expansion) {
      return limit_error("expansion", n, limits_.max_expansion);
    }
    return {};
  }
  const std::uint64_t used =
      expansion_.fetch_add(n, std::memory_order_relaxed) + n;
  if (used < n || used > limits_.max_expansion) {
    return limit_error("expansion", used, limits_.max_expansion);
  }
  return {};
}

Result<void> EvalBudget::check_deadline() noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return EvalError{ErrorKind::kDeadlineExceeded, "evaluation cancelled"};
  }
  const std::uint64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == 0) {
    return {};
  }
  if (steady_now_ns() >= deadline) {
    return EvalError{ErrorKind::kDeadlineExceeded,
                     "evaluation deadline of " +
                         std::to_string(limits_.wall_seconds) +
                         " s exceeded"};
  }
  return {};
}

void EvalBudget::cancel() noexcept {
  cancelled_.store(true, std::memory_order_relaxed);
}

double EvalBudget::wall_remaining_seconds() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return 0.0;
  }
  const std::uint64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const std::uint64_t now = steady_now_ns();
  return now >= deadline ? 0.0 : static_cast<double>(deadline - now) * 1e-9;
}

void EvalBudget::reset() noexcept {
  references_.store(0, std::memory_order_relaxed);
  expansion_.store(0, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  arm_deadline();
}

EvalBudget& EvalBudget::process_default() noexcept {
  static EvalBudget budget(EvalLimits{}, /*per_charge=*/true);
  return budget;
}

EvalBudget& budget_or_default(EvalBudget* budget) noexcept {
  return budget != nullptr ? *budget : EvalBudget::process_default();
}

}  // namespace dvf
