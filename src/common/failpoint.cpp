#include "dvf/common/failpoint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <new>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf::failpoint {

namespace {

enum class TriggerKind : std::uint8_t {
  kAlways = 0,
  kOnNth,    ///< fire on hit number `arg` exactly (1-based)
  kEveryK,   ///< fire on every `arg`-th hit
  kProb,     ///< fire with probability bit_cast<double>(prob_bits) per hit
};

/// Per-point state. All mutable fields are relaxed atomics: configure()
/// writes them, the lock-free hit path reads them, and the counters are
/// order-independent sums — the same discipline as the obs shards.
struct PointState {
  std::string name;  // written once under the registry mutex, before the
                     // slot index is published; read-only afterwards
  std::atomic<std::uint8_t> action{0};
  std::atomic<int> error_code{0};
  std::atomic<std::uint8_t> trigger{0};
  std::atomic<std::uint64_t> trigger_arg{0};
  std::atomic<std::uint64_t> prob_bits{0};
  std::atomic<std::uint64_t> prob_seed{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

constexpr std::uint32_t kMaxPoints = 64;

struct Registry {
  std::mutex mutex;
  std::array<PointState, kMaxPoints> points;
  std::atomic<std::uint32_t> count{0};
};

Registry& registry() {
  static Registry r;  // leaked-on-exit by construction order; no dtor races
  return r;
}

/// Slot lookup/allocation. Caller holds no lock.
std::uint32_t intern(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::uint32_t n = r.count.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (r.points[i].name == name) {
      return i;
    }
  }
  if (n >= kMaxPoints) {
    throw Error("failpoint registry full (max " + std::to_string(kMaxPoints) +
                " points)");
  }
  r.points[n].name.assign(name);
  r.count.store(n + 1, std::memory_order_release);
  return n;
}

EvalError spec_error(std::string_view spec, const std::string& why) {
  return EvalError{ErrorKind::kDomainError,
                   "bad failpoint spec '" + std::string(spec) + "': " + why};
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

std::uint32_t register_point(std::string_view name) { return intern(name); }

Action hit(std::uint32_t slot) {
  PointState& p = registry().points[slot];
  const std::uint64_t n = p.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto action =
      static_cast<ActionKind>(p.action.load(std::memory_order_relaxed));
  if (action == ActionKind::kNone) {
    return {};
  }
  bool fire = false;
  switch (static_cast<TriggerKind>(p.trigger.load(std::memory_order_relaxed))) {
    case TriggerKind::kAlways:
      fire = true;
      break;
    case TriggerKind::kOnNth:
      fire = (n == p.trigger_arg.load(std::memory_order_relaxed));
      break;
    case TriggerKind::kEveryK: {
      const std::uint64_t k = p.trigger_arg.load(std::memory_order_relaxed);
      fire = (k != 0 && n % k == 0);
      break;
    }
    case TriggerKind::kProb: {
      // Stateless per-hit draw: the hit ordinal keys a SplitMix64 stream, so
      // the decision for hit n is deterministic however threads interleave.
      const double prob = std::bit_cast<double>(
          p.prob_bits.load(std::memory_order_relaxed));
      SplitMix64 sm(p.prob_seed.load(std::memory_order_relaxed) ^
                    (n * 0x9E3779B97F4A7C15ULL));
      const double draw =
          static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
      fire = draw < prob;
      break;
    }
  }
  if (!fire) {
    return {};
  }
  p.fired.fetch_add(1, std::memory_order_relaxed);
  switch (action) {
    case ActionKind::kThrow:
      throw Error("failpoint " + p.name + " injected failure");
    case ActionKind::kBadAlloc:
      throw std::bad_alloc();
    default:
      return Action{action, p.error_code.load(std::memory_order_relaxed)};
  }
}

}  // namespace detail

const std::vector<std::string_view>& catalog() {
  static const std::vector<std::string_view> kCatalog = {
      "campaign.journal.open",     "campaign.journal.write",
      "campaign.journal.truncate", "trace.write",
      "trace.read",                "obs.trace.write",
      "serve.accept",              "serve.read",
      "serve.write",               "serve.metrics.write",
      "pool.spawn",                "eval.alloc",
      "io.write_file",
  };
  return kCatalog;
}

Result<void> configure(std::string_view spec) {
  std::size_t pos = 0;
  bool any_live = false;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) {
      end = spec.size();
    }
    std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding spaces so env vars written by shells stay friendly.
    while (!entry.empty() && entry.front() == ' ') entry.remove_prefix(1);
    while (!entry.empty() && entry.back() == ' ') entry.remove_suffix(1);
    if (entry.empty()) {
      if (pos > spec.size()) break;
      continue;
    }

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return spec_error(entry, "expected name=action");
    }
    const std::string_view name = entry.substr(0, eq);
    std::string_view rest = entry.substr(eq + 1);

    const auto& known = catalog();
    if (name.substr(0, 5) != "test." &&
        std::find(known.begin(), known.end(), name) == known.end()) {
      return spec_error(entry, "unknown failpoint '" + std::string(name) +
                                   "' (not in the catalog; use a 'test.' "
                                   "prefix for ad-hoc points)");
    }

    // Split off the trigger suffix, if any.
    TriggerKind trigger = TriggerKind::kAlways;
    std::uint64_t trigger_arg = 0;
    double prob = 0.0;
    std::uint64_t prob_seed = 1;
    const std::size_t trig = rest.find_first_of("@/%");
    std::string_view action_text = rest;
    if (trig != std::string_view::npos) {
      action_text = rest.substr(0, trig);
      const char kind = rest[trig];
      std::string arg_text(rest.substr(trig + 1));
      try {
        if (kind == '@' || kind == '/') {
          std::size_t used = 0;
          const unsigned long long v = std::stoull(arg_text, &used);
          if (used != arg_text.size() || v == 0) {
            throw std::invalid_argument("trailing");
          }
          trigger = (kind == '@') ? TriggerKind::kOnNth : TriggerKind::kEveryK;
          trigger_arg = v;
        } else {  // '%': probability, optional ':seed'
          std::string prob_text = arg_text;
          const std::size_t colon = arg_text.find(':');
          if (colon != std::string::npos) {
            prob_text = arg_text.substr(0, colon);
            std::string seed_text = arg_text.substr(colon + 1);
            std::size_t used = 0;
            prob_seed = std::stoull(seed_text, &used);
            if (used != seed_text.size()) {
              throw std::invalid_argument("trailing");
            }
          }
          std::size_t used = 0;
          prob = std::stod(prob_text, &used);
          if (used != prob_text.size() || !(prob >= 0.0) || prob > 1.0) {
            throw std::invalid_argument("range");
          }
          trigger = TriggerKind::kProb;
        }
      } catch (const std::exception&) {
        return spec_error(entry, "bad trigger argument");
      }
    }

    ActionKind action = ActionKind::kNone;
    int error_code = 0;
    if (action_text == "off") {
      action = ActionKind::kNone;
    } else if (action_text == "throw") {
      action = ActionKind::kThrow;
    } else if (action_text == "badalloc") {
      action = ActionKind::kBadAlloc;
    } else if (action_text == "eintr") {
      action = ActionKind::kEintr;
    } else if (action_text == "short") {
      action = ActionKind::kShortWrite;
    } else if (action_text.substr(0, 5) == "error") {
      action = ActionKind::kError;
      error_code = EIO;
      std::string_view arg = action_text.substr(5);
      if (!arg.empty()) {
        if (arg.front() != '(' || arg.back() != ')') {
          return spec_error(entry, "expected error(errno)");
        }
        std::string code_text(arg.substr(1, arg.size() - 2));
        try {
          std::size_t used = 0;
          error_code = std::stoi(code_text, &used);
          if (used != code_text.size() || error_code <= 0) {
            throw std::invalid_argument("range");
          }
        } catch (const std::exception&) {
          return spec_error(entry, "bad errno in error(...)");
        }
      }
    } else {
      return spec_error(entry, "unknown action '" + std::string(action_text) +
                                   "' (off|throw|badalloc|eintr|short|"
                                   "error(errno))");
    }

    PointState& p = registry().points[intern(name)];
    p.error_code.store(error_code, std::memory_order_relaxed);
    p.trigger.store(static_cast<std::uint8_t>(trigger),
                    std::memory_order_relaxed);
    p.trigger_arg.store(trigger_arg, std::memory_order_relaxed);
    p.prob_bits.store(std::bit_cast<std::uint64_t>(prob),
                      std::memory_order_relaxed);
    p.prob_seed.store(prob_seed, std::memory_order_relaxed);
    p.action.store(static_cast<std::uint8_t>(action),
                   std::memory_order_relaxed);
    if (action != ActionKind::kNone) {
      any_live = true;
    }
    if (end == spec.size()) break;
  }
  if (any_live) {
    detail::g_armed.store(true, std::memory_order_release);
  }
  return {};
}

void clear() {
  detail::g_armed.store(false, std::memory_order_release);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::uint32_t n = r.count.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    PointState& p = r.points[i];
    p.action.store(0, std::memory_order_relaxed);
    p.trigger.store(0, std::memory_order_relaxed);
    p.trigger_arg.store(0, std::memory_order_relaxed);
    p.prob_bits.store(0, std::memory_order_relaxed);
    p.prob_seed.store(0, std::memory_order_relaxed);
    p.error_code.store(0, std::memory_order_relaxed);
    p.hits.store(0, std::memory_order_relaxed);
    p.fired.store(0, std::memory_order_relaxed);
  }
}

void reset_counters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::uint32_t n = r.count.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    r.points[i].hits.store(0, std::memory_order_relaxed);
    r.points[i].fired.store(0, std::memory_order_relaxed);
  }
}

std::vector<HitCount> hit_counts() {
  std::vector<HitCount> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::uint32_t n = r.count.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t hits =
        r.points[i].hits.load(std::memory_order_relaxed);
    if (hits == 0) {
      continue;
    }
    out.push_back(HitCount{r.points[i].name, hits,
                           r.points[i].fired.load(std::memory_order_relaxed)});
  }
  std::sort(out.begin(), out.end(),
            [](const HitCount& a, const HitCount& b) { return a.name < b.name; });
  return out;
}

}  // namespace dvf::failpoint
