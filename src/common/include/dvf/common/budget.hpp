// Cooperative resource guardrails for analytical evaluation.
//
// Adversarial model specs can ask an evaluator for practically unbounded
// work (a template progression with count=2^62, a hypergeometric sum over
// 2^60 support points) or unbounded memory (an expanded reference string of
// 2^40 indices). An EvalBudget bounds three resources cooperatively:
//
//   references  — reference-string positions an evaluator may replay
//   expansion   — elements a template expansion may materialize
//   wall clock  — an absolute deadline, checked at loop checkpoints
//
// Evaluators charge the budget at coarse granularity (per pattern, per
// expansion, per loop chunk — never per memory reference) and return a
// classified resource_limit / deadline_exceeded EvalError when a limit is
// hit, so a guarded evaluation degrades into a typed error instead of a
// hang or an OOM kill. Counters are relaxed atomics: one budget may be
// shared by the parallel fan-out of DvfCalculator::for_model.
//
// Every try_* evaluator accepts `EvalBudget*`; passing nullptr applies the
// process-default limits below (generous enough that no legitimate
// paper-scale model trips them, finite so evaluation stays bounded).
#pragma once

#include <atomic>
#include <cstdint>

#include "dvf/common/result.hpp"

namespace dvf {

/// Limit set of a budget. Zero disables the corresponding limit.
struct EvalLimits {
  /// Reference-string positions replayable per guarded evaluation scope
  /// (default 2^28 ≈ 2.7e8: seconds of work, far above paper-scale models).
  std::uint64_t max_references = std::uint64_t{1} << 28;
  /// Elements a template expansion may materialize (default 2^24 ≈ 1.7e7,
  /// ≈ 128 MiB of indices — a hard cap against expansion bombs).
  std::uint64_t max_expansion = std::uint64_t{1} << 24;
  /// Wall-clock seconds from arm_deadline() to the deadline (0 = none).
  double wall_seconds = 0.0;
};

/// Shared, thread-safe resource meter. Charge methods return a classified
/// EvalError once a limit is exceeded; they never throw.
class EvalBudget {
 public:
  EvalBudget() = default;
  explicit EvalBudget(EvalLimits limits) : limits_(limits) {
    if (limits_.wall_seconds > 0.0) {
      arm_deadline();
    }
  }

  EvalBudget(const EvalBudget&) = delete;
  EvalBudget& operator=(const EvalBudget&) = delete;

  [[nodiscard]] const EvalLimits& limits() const noexcept { return limits_; }

  /// (Re)starts the wall clock: the deadline becomes now + wall_seconds.
  /// No-op when wall_seconds is 0.
  void arm_deadline() noexcept;

  /// Charges `n` reference-string positions against max_references.
  [[nodiscard]] Result<void> charge_references(std::uint64_t n) noexcept;

  /// Charges `n` materialized expansion elements against max_expansion.
  [[nodiscard]] Result<void> charge_expansion(std::uint64_t n) noexcept;

  /// Deadline check for long-running loops; cheap enough for every few
  /// thousand iterations (one steady_clock read when a deadline is armed,
  /// one load otherwise).
  [[nodiscard]] Result<void> check_deadline() noexcept;

  /// Cooperative cancellation: every subsequent charge or deadline check
  /// returns a deadline_exceeded error, regardless of the wall clock. Safe
  /// to call from any thread while evaluators are charging (the daemon's
  /// drain path cancels in-flight requests this way). Irreversible until
  /// reset().
  void cancel() noexcept;
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Wall-clock seconds until the armed deadline: +inf when no deadline is
  /// armed, 0 once it passed (or the budget was cancelled). Used by the
  /// serve daemon for retry-after hints and drain decisions.
  [[nodiscard]] double wall_remaining_seconds() const noexcept;

  /// Resets the meters (not the limits); re-arms the deadline.
  void reset() noexcept;

  [[nodiscard]] std::uint64_t references_used() const noexcept {
    return references_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t expansion_used() const noexcept {
    return expansion_.load(std::memory_order_relaxed);
  }

  /// The budget used when an evaluator is handed nullptr: process-wide,
  /// default limits, no deadline. It meters per charge (each charge is
  /// checked against the cap in isolation, nothing accumulates), so
  /// unrelated evaluations sharing it cannot exhaust each other — the
  /// evaluators charge each loop's total up front, which makes per-charge
  /// checking equivalent to per-evaluation checking for the default case.
  static EvalBudget& process_default() noexcept;

 private:
  EvalBudget(EvalLimits limits, bool per_charge)
      : limits_(limits), per_charge_(per_charge) {}

  EvalLimits limits_;
  bool per_charge_ = false;
  std::atomic<std::uint64_t> references_{0};
  std::atomic<std::uint64_t> expansion_{0};
  std::atomic<std::uint64_t> deadline_ns_{0};  ///< steady-clock ns; 0 = none
  std::atomic<bool> cancelled_{false};
};

/// `budget` if non-null, else EvalBudget::process_default().
[[nodiscard]] EvalBudget& budget_or_default(EvalBudget* budget) noexcept;

}  // namespace dvf
