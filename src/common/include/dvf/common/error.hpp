// Error handling for the DVF library.
//
// The library reports unrecoverable misuse (invalid cache geometry, malformed
// model parameters, DSL syntax errors) with exceptions derived from
// dvf::Error. Hot paths (cache simulation, kernel inner loops) never throw.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace dvf {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// A caller violated a documented precondition (bad parameter, bad geometry).
class InvalidArgumentError : public Error {
 public:
  using Error::Error;
};

/// The DSL front end rejected the input text. Carries a source location.
class ParseError : public Error {
 public:
  ParseError(std::string message, int line, int column, int length = 1,
             const char* code = nullptr)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + std::move(message)),
        line_(line),
        column_(column),
        length_(length < 1 ? 1 : length),
        code_(code) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }
  /// Width of the offending source span in characters (>= 1).
  [[nodiscard]] int length() const noexcept { return length_; }
  /// Stable diagnostic code ("DVF-E018") when the error maps to a specific
  /// catalog entry; nullptr for a generic syntax error. The pointer must be
  /// a string literal (diagnostic codes are).
  [[nodiscard]] const char* code() const noexcept { return code_; }

 private:
  int line_;
  int column_;
  int length_ = 1;
  const char* code_ = nullptr;
};

/// The DSL analyzer rejected a structurally valid model (unknown identifier,
/// pattern/parameter mismatch, duplicate declaration, ...). Optionally
/// carries the source location of the offending construct (0:0 = unknown,
/// e.g. for programmatic ModelSpec lookups that have no source text).
class SemanticError : public Error {
 public:
  explicit SemanticError(std::string message) : Error(std::move(message)) {}
  SemanticError(std::string message, int line, int column)
      : Error(std::move(message)), line_(line), column_(column) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_ = 0;
  int column_ = 0;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  throw InvalidArgumentError(std::string(file) + ":" + std::to_string(line) +
                             ": check failed: " + expr +
                             (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace dvf

/// Precondition check that throws dvf::InvalidArgumentError on failure.
/// Always active (not compiled out in release builds): model evaluation is
/// cheap and the cost of silently accepting bad geometry is wrong science.
#define DVF_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::dvf::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                     \
  } while (false)

#define DVF_CHECK_MSG(expr, msg)                                           \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::dvf::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)
