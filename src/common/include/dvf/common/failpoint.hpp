// Deterministic failpoint injection for the infrastructure itself.
//
// The campaign runner injects faults into *application data* (the paper's
// methodology); this subsystem injects faults into *our own* durability and
// transport paths — journal writes, trace export, serve sockets, thread
// spawn, evaluation allocation — so the hardening around them can be tested
// systematically instead of hoped for (docs/resilience.md
// "Environment-fault injection").
//
// Design, mirroring the obs layer's discipline:
//
//   * The disabled path is ONE relaxed atomic load and a branch. No
//     failpoint spec configured (the overwhelmingly common case) means
//     `DVF_FAILPOINT("x")` costs under a nanosecond and touches no shared
//     cache line (bench/obs_overhead pins this).
//   * Sites are self-registering: the first armed evaluation of a
//     `DVF_FAILPOINT(name)` site resolves `name` to a slot once (function-
//     local static) and every later hit is lock-free — an atomic hit-count
//     increment plus relaxed loads of the slot's trigger/action fields.
//   * Everything is deterministic. Triggers are pure functions of the
//     slot's hit ordinal (and, for probability triggers, a caller-provided
//     seed fed through SplitMix64), so a failing schedule replays from its
//     spec string alone.
//
// Spec grammar (DVF_FAILPOINTS env var / `dvfc --failpoints`), entries
// separated by ';':
//
//   entry   := name '=' action [trigger]
//   action  := 'off' | 'throw' | 'badalloc' | 'eintr' | 'short'
//            | 'error' [ '(' errno ')' ]          (default errno: EIO)
//   trigger := '@' N                fire on the Nth hit only (1-based)
//            | '/' K                fire on every Kth hit
//            | '%' P [ ':' SEED ]   fire with probability P per hit
//                                   (default seed 1)
//
// Examples:
//   DVF_FAILPOINTS='campaign.journal.write=error(28)@3'   ENOSPC on hit 3
//   DVF_FAILPOINTS='serve.read=eintr/2;serve.write=short%0.25:2014'
//
// Actions `throw` and `badalloc` are raised directly by the evaluation
// (dvf::Error / std::bad_alloc); `error`, `eintr` and `short` are returned
// as an Action for the site to interpret (set errno, truncate the write,
// fail the stream) — a failpoint can only inject faults a real environment
// could produce at that site.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dvf/common/result.hpp"

namespace dvf::failpoint {

/// What an armed, fired failpoint asks its site to do.
enum class ActionKind : std::uint8_t {
  kNone = 0,    ///< not fired — proceed normally
  kError,       ///< fail with errno-style `error_code` (site maps to io_error)
  kThrow,       ///< raised by evaluate(): dvf::Error
  kShortWrite,  ///< site performs a partial write, then fails
  kEintr,       ///< site behaves as if the syscall returned EINTR
  kBadAlloc,    ///< raised by evaluate(): std::bad_alloc
};

/// Result of evaluating a failpoint site. Contextually false when the point
/// did not fire; `error_code` carries the errno for kError.
struct Action {
  ActionKind kind = ActionKind::kNone;
  int error_code = 0;

  explicit operator bool() const noexcept { return kind != ActionKind::kNone; }
};

namespace detail {

extern std::atomic<bool> g_armed;

/// Resolves `name` to a slot index, allocating one under the registry mutex
/// if this is the first time the name is seen. Called once per site (cached
/// in a function-local static) and by configure().
[[nodiscard]] std::uint32_t register_point(std::string_view name);

/// Counts one hit of the slot and evaluates its trigger. Throws for kThrow /
/// kBadAlloc actions; returns the Action otherwise.
Action hit(std::uint32_t slot);

}  // namespace detail

/// True when any failpoint is configured. The only cost every disabled
/// `DVF_FAILPOINT` site pays: one relaxed atomic load.
[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Parses and installs a failpoint spec (grammar above), arming the global
/// flag when at least one entry carries a live action. Unknown point names
/// are a domain_error unless prefixed "test." (the catalog below is the
/// contract between specs and instrumented sites; a typo'd name would
/// otherwise silently never fire). Entries replace any previous
/// configuration of the same point; other points are untouched.
Result<void> configure(std::string_view spec);

/// Disarms every failpoint and resets all configuration and counters.
void clear();

/// Resets hit/fired counters without touching configuration.
void reset_counters();

/// One point's counters: `hits` evaluations while armed, `fired` of those
/// that triggered the action.
struct HitCount {
  std::string name;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

/// Counters for every point with hits > 0, name-sorted. Merged into
/// obs::snapshot_metrics() as `failpoint.<name>.hits` / `.fired`, so
/// schedules are visible through `--metrics` and the serve metrics op.
[[nodiscard]] std::vector<HitCount> hit_counts();

/// The instrumented-site catalog configure() validates against.
[[nodiscard]] const std::vector<std::string_view>& catalog();

}  // namespace dvf::failpoint

/// Evaluates the named failpoint at this site. Disabled: one relaxed atomic
/// load, returns a false Action. Armed: counts the hit, applies the
/// configured trigger, and either throws (throw/badalloc actions) or returns
/// the Action for the site to interpret.
#define DVF_FAILPOINT(name)                                             \
  (::dvf::failpoint::armed()                                            \
       ? ::dvf::failpoint::detail::hit([]() -> std::uint32_t {          \
           static const std::uint32_t dvf_failpoint_slot_ =             \
               ::dvf::failpoint::detail::register_point(name);          \
           return dvf_failpoint_slot_;                                  \
         }())                                                           \
       : ::dvf::failpoint::Action{})
