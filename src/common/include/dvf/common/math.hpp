// Numerically stable combinatorics and small statistics helpers.
//
// The random-access model (paper Eqs. 5–7) evaluates hypergeometric
// probabilities with populations up to ~10^7; naive factorials overflow, so
// everything routes through log-gamma.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dvf/common/result.hpp"

namespace dvf::math {

/// ln C(n, k); returns -infinity when the coefficient is zero
/// (k < 0 or k > n), so exp() of the result is always the true value.
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k);

/// C(n, k) computed through log-gamma. Exact enough for probability ratios.
[[nodiscard]] double binomial(std::int64_t n, std::int64_t k);

/// Hypergeometric pmf: probability of drawing `k` marked items in `draws`
/// draws without replacement from a population of `total` containing
/// `marked` marked items.
[[nodiscard]] double hypergeometric_pmf(std::int64_t total, std::int64_t marked,
                                        std::int64_t draws, std::int64_t k);

/// Binomial pmf: P(X = k) for X ~ Binomial(n, p).
[[nodiscard]] double binomial_pmf(std::int64_t n, std::int64_t k, double p);

/// Upper-tail binomial mass: P(X >= k) for X ~ Binomial(n, p).
[[nodiscard]] double binomial_tail(std::int64_t n, std::int64_t k, double p);

/// Kahan-compensated running sum, for accumulating long probability series.
class KahanSum {
 public:
  void add(double x) noexcept {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Sum of a span with Kahan compensation.
[[nodiscard]] double stable_sum(std::span<const double> xs);

// ---------------------------------------------------------------------------
// Checked combinatorics. Eqs. 5-7 route through log-gamma, which keeps the
// LOG finite for any population — but exp() of a log can still overflow, and
// above kMaxCombinatoricPopulation the log-gamma differences have lost every
// significant digit (lgamma(n) grows like n*ln(n); at n ≈ 2^48 its absolute
// rounding error reaches order 1 in log space, i.e. a factor of e in the
// probability). The checked variants classify both failure modes instead of
// returning garbage, and are what the total try_* evaluators call.

/// Largest population the checked combinatorics accept. Beyond it the
/// result would be numerically meaningless, so the checked functions return
/// a classified overflow error instead.
inline constexpr std::int64_t kMaxCombinatoricPopulation = std::int64_t{1}
                                                           << 48;

/// ln C(n, k) with population guard: overflow error when n exceeds
/// kMaxCombinatoricPopulation, -infinity (a VALUE, not an error) when the
/// coefficient is exactly zero.
[[nodiscard]] Result<double> checked_log_binomial(std::int64_t n,
                                                  std::int64_t k);

/// C(n, k), classifying exp-overflow (the coefficient exceeds the double
/// range) and oversized populations. Out-of-support (k < 0, k > n) is the
/// exact value 0.
[[nodiscard]] Result<double> checked_binomial(std::int64_t n, std::int64_t k);

/// Hypergeometric pmf with population guard and a finiteness check on the
/// result. Out-of-support arguments (draws > total, marked > total, k
/// outside the support) are the exact value 0, matching the unchecked
/// function.
[[nodiscard]] Result<double> checked_hypergeometric_pmf(std::int64_t total,
                                                         std::int64_t marked,
                                                         std::int64_t draws,
                                                         std::int64_t k);

/// Kahan sum that classifies non-finite inputs (non_finite error naming the
/// offending index) and overflow of the accumulated total, instead of
/// silently propagating NaN the way stable_sum must for hot paths.
[[nodiscard]] Result<double> checked_sum(std::span<const double> xs);

/// Integer ceiling division for non-negative operands. Written without the
/// (a + b - 1) intermediate so it cannot wrap for any a, b.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return a / b + (a % b != 0 ? 1 : 0);
}

/// a * b clamped to UINT64_MAX instead of wrapping. Cost estimates charged
/// against an EvalBudget use this: a saturated estimate still trips the
/// budget, a wrapped one silently passes.
[[nodiscard]] constexpr std::uint64_t saturating_mul(std::uint64_t a,
                                                     std::uint64_t b) {
  std::uint64_t out = 0;
  return __builtin_mul_overflow(a, b, &out) ? ~std::uint64_t{0} : out;
}

/// a + b clamped to UINT64_MAX instead of wrapping.
[[nodiscard]] constexpr std::uint64_t saturating_add(std::uint64_t a,
                                                     std::uint64_t b) {
  std::uint64_t out = 0;
  return __builtin_add_overflow(a, b, &out) ? ~std::uint64_t{0} : out;
}

/// Half-width of the Wilson score confidence interval for a binomial
/// proportion with `successes` out of `n` observations at critical value
/// `z` (default: two-sided 95%). Returns 1.0 (maximal uncertainty) when
/// n == 0, so adaptive-stopping loops can call it unconditionally. Unlike
/// the Wald interval, the width is well-behaved at p̂ = 0 or 1 — exactly
/// the regime of rare SDC outcomes in injection campaigns.
[[nodiscard]] double wilson_half_width(std::uint64_t successes,
                                       std::uint64_t n,
                                       double z = 1.959963984540054);

/// True when |a - b| <= tol * max(1, |a|, |b|).
[[nodiscard]] bool approx_equal(double a, double b, double tol = 1e-9);

/// Relative error |est - ref| / |ref| (0 when both are 0, +inf when only the
/// reference is 0). Used by the verification harness to report Fig. 4 errors.
[[nodiscard]] double relative_error(double estimate, double reference);

}  // namespace dvf::math
