// Numerically stable combinatorics and small statistics helpers.
//
// The random-access model (paper Eqs. 5–7) evaluates hypergeometric
// probabilities with populations up to ~10^7; naive factorials overflow, so
// everything routes through log-gamma.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dvf::math {

/// ln C(n, k); returns -infinity when the coefficient is zero
/// (k < 0 or k > n), so exp() of the result is always the true value.
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k);

/// C(n, k) computed through log-gamma. Exact enough for probability ratios.
[[nodiscard]] double binomial(std::int64_t n, std::int64_t k);

/// Hypergeometric pmf: probability of drawing `k` marked items in `draws`
/// draws without replacement from a population of `total` containing
/// `marked` marked items.
[[nodiscard]] double hypergeometric_pmf(std::int64_t total, std::int64_t marked,
                                        std::int64_t draws, std::int64_t k);

/// Binomial pmf: P(X = k) for X ~ Binomial(n, p).
[[nodiscard]] double binomial_pmf(std::int64_t n, std::int64_t k, double p);

/// Upper-tail binomial mass: P(X >= k) for X ~ Binomial(n, p).
[[nodiscard]] double binomial_tail(std::int64_t n, std::int64_t k, double p);

/// Kahan-compensated running sum, for accumulating long probability series.
class KahanSum {
 public:
  void add(double x) noexcept {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Sum of a span with Kahan compensation.
[[nodiscard]] double stable_sum(std::span<const double> xs);

/// Integer ceiling division for non-negative operands.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Half-width of the Wilson score confidence interval for a binomial
/// proportion with `successes` out of `n` observations at critical value
/// `z` (default: two-sided 95%). Returns 1.0 (maximal uncertainty) when
/// n == 0, so adaptive-stopping loops can call it unconditionally. Unlike
/// the Wald interval, the width is well-behaved at p̂ = 0 or 1 — exactly
/// the regime of rare SDC outcomes in injection campaigns.
[[nodiscard]] double wilson_half_width(std::uint64_t successes,
                                       std::uint64_t n,
                                       double z = 1.959963984540054);

/// True when |a - b| <= tol * max(1, |a|, |b|).
[[nodiscard]] bool approx_equal(double a, double b, double tol = 1e-9);

/// Relative error |est - ref| / |ref| (0 when both are 0, +inf when only the
/// reference is 0). Used by the verification harness to report Fig. 4 errors.
[[nodiscard]] double relative_error(double estimate, double reference);

}  // namespace dvf::math
