// Total evaluation: dvf::Result<T> and the structured evaluation-error
// taxonomy.
//
// The analytical evaluators (pattern models, DvfCalculator, the cache/ECC/
// weighted layers, template expansion) each exist in two forms: a `try_*`
// variant returning Result<T> that NEVER throws and never yields silent
// NaN/Inf, and the historical throwing form kept as a thin wrapper. The
// taxonomy matches the failure modes a multi-tenant evaluation service must
// distinguish:
//
//   domain_error       a documented precondition was violated (bad spec)
//   overflow           arithmetic left the representable range (exp/integer)
//   non_finite         NaN/Inf appeared where a finite value is required
//   resource_limit     an expansion/reference cap was exceeded (EvalBudget)
//   deadline_exceeded  the cooperative wall-clock deadline passed
//   io_error           a durability/transport syscall failed (write, flush,
//                      rename, socket) — surfaced instead of silently dropped
//
// Every model boundary re-checks finiteness, so a non-finite value can never
// escape one layer and poison the next silently.
#pragma once

#include <cmath>
#include <string>
#include <utility>
#include <variant>

#include "dvf/common/error.hpp"

namespace dvf {

/// The structured evaluation-error taxonomy (see file comment).
enum class ErrorKind {
  kDomainError,
  kOverflow,
  kNonFinite,
  kResourceLimit,
  kDeadlineExceeded,
  kIoError,
};

/// Stable snake_case label ("domain_error", ...), used in messages, obs
/// counter names and the fuzz harness's reports.
[[nodiscard]] constexpr const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kDomainError: return "domain_error";
    case ErrorKind::kOverflow: return "overflow";
    case ErrorKind::kNonFinite: return "non_finite";
    case ErrorKind::kResourceLimit: return "resource_limit";
    case ErrorKind::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorKind::kIoError: return "io_error";
  }
  return "unknown";
}

/// One classified evaluation failure.
struct EvalError {
  ErrorKind kind = ErrorKind::kDomainError;
  std::string message;

  /// "non_finite: streaming produced inf (element_count=...)".
  [[nodiscard]] std::string describe() const {
    return std::string(to_string(kind)) + ": " + message;
  }
};

/// Thrown by the compatibility wrappers for error kinds that have no
/// historical exception type (overflow, non_finite, resource_limit,
/// deadline_exceeded). Domain errors keep throwing InvalidArgumentError so
/// existing callers and tests see the exceptions they always saw.
class EvaluationError : public Error {
 public:
  explicit EvaluationError(EvalError error)
      : Error(error.describe()), kind_(error.kind) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

/// Minimal expected-style result: either a T or an EvalError. Deliberately
/// small — no monadic combinators beyond what the evaluators need — so the
/// header stays cheap to include from every model.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}                // NOLINT
  Result(EvalError error) : state_(std::move(error)) {}        // NOLINT

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return ok(); }

  /// Value access. Precondition: ok().
  [[nodiscard]] const T& value() const& { return std::get<T>(state_); }
  [[nodiscard]] T& value() & { return std::get<T>(state_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(state_)); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T&& operator*() && { return std::move(*this).value(); }

  /// Error access. Precondition: !ok().
  [[nodiscard]] const EvalError& error() const& {
    return std::get<EvalError>(state_);
  }
  [[nodiscard]] EvalError&& error() && {
    return std::get<EvalError>(std::move(state_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

  /// Unwraps, rethrowing the taxonomy as the historical exception types:
  /// domain_error → InvalidArgumentError, everything else → EvaluationError.
  T value_or_throw() && {
    if (ok()) {
      return std::get<T>(std::move(state_));
    }
    if (error().kind == ErrorKind::kDomainError) {
      throw InvalidArgumentError(error().message);
    }
    throw EvaluationError(std::move(*this).error());
  }

 private:
  std::variant<T, EvalError> state_;
};

/// Result<void>: success carries no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(EvalError error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const EvalError& error() const& { return error_; }
  [[nodiscard]] EvalError&& error() && { return std::move(error_); }

  void value_or_throw() && {
    if (failed_) {
      if (error_.kind == ErrorKind::kDomainError) {
        throw InvalidArgumentError(error_.message);
      }
      throw EvaluationError(std::move(error_));
    }
  }

 private:
  EvalError error_;
  bool failed_ = false;
};

/// Classifies a computed double at a model boundary: finite values pass
/// through; Inf is an overflow (the usual way exp/pow/accumulation leave the
/// range), NaN is non_finite. `what` names the quantity for the message.
[[nodiscard]] inline Result<double> finite_or_error(double value,
                                                    const char* what) {
  if (std::isfinite(value)) {
    return value;
  }
  if (std::isnan(value)) {
    return EvalError{ErrorKind::kNonFinite,
                     std::string(what) + " evaluated to NaN"};
  }
  return EvalError{ErrorKind::kOverflow,
                   std::string(what) + " overflowed to " +
                       (value > 0 ? "+inf" : "-inf")};
}

}  // namespace dvf

/// Propagates the error of a Result-returning expression; binds the value
/// otherwise. Usage: DVF_TRY_ASSIGN(x, try_compute()); uses `x` below.
#define DVF_TRY_ASSIGN(var, expr)                  \
  auto var##_result = (expr);                      \
  if (!var##_result.ok()) {                        \
    return std::move(var##_result).error();        \
  }                                                \
  auto var = *std::move(var##_result)

/// Propagates the error of a Result<void>-returning expression.
#define DVF_TRY_CHECK(expr)                        \
  do {                                             \
    auto check_result_ = (expr);                   \
    if (!check_result_.ok()) {                     \
      return std::move(check_result_).error();     \
    }                                              \
  } while (false)

/// Returns a domain_error unless `cond` holds.
#define DVF_EVAL_REQUIRE(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      return ::dvf::EvalError{::dvf::ErrorKind::kDomainError, (msg)};       \
    }                                                                       \
  } while (false)
