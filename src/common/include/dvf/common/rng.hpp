// Deterministic, seedable random number generation for the kernels.
//
// The Barnes–Hut and Monte Carlo kernels must be reproducible run-to-run so
// that (a) the verification experiment compares the model against a fixed
// reference stream and (b) tests are stable. std::mt19937_64 would work but
// xoshiro256** is smaller, faster and fully specified here, so the trace
// byte streams are identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace dvf {

/// SplitMix64 — used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound): multiply-shift on the top 32 bits
  /// (unbiased enough for workload generation; bounds here are < 2^32).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return (((*this)() >> 32) * bound) >> 32;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Derives a decorrelated seed for the sub-stream (i, j) of a master seed,
/// by feeding each coordinate through a SplitMix64 round. Used to give every
/// (structure, trial) pair of an injection campaign its own RNG stream, so
/// trial outcomes are a pure function of (seed, i, j) — independent of the
/// order (or the thread) in which trials execute.
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t seed,
                                                  std::uint64_t i,
                                                  std::uint64_t j) noexcept {
  std::uint64_t h = SplitMix64(seed).next();
  h = SplitMix64(h ^ (i + 0x9E3779B97F4A7C15ULL)).next();
  h = SplitMix64(h ^ (j + 0xBF58476D1CE4E5B9ULL)).next();
  return h;
}

/// A Xoshiro256 positioned at sub-stream (i, j) of `seed` (see stream_seed).
[[nodiscard]] constexpr Xoshiro256 stream_rng(std::uint64_t seed,
                                              std::uint64_t i,
                                              std::uint64_t j) noexcept {
  return Xoshiro256(stream_seed(seed, i, j));
}

}  // namespace dvf
