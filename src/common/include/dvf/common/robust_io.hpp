// Hardened file/stream I/O for durability paths (docs/resilience.md
// "Environment-fault injection").
//
// Everything that persists a final artifact — trace files, Chrome traces,
// metrics JSON, serve metrics dumps — goes through these helpers instead of
// a bare std::ofstream, so that:
//
//   * stream failure is *checked* and surfaced as a classified
//     `io_error` in the dvf::Result taxonomy (with errno text when the
//     OS provides one), never silently swallowed;
//   * whole-file writes are atomic: contents land in `<path>.tmp`, are
//     flushed, and only then renamed over the destination, so a crash or
//     ENOSPC mid-write can never leave a torn artifact under the final
//     name;
//   * fd writes retry EINTR a *bounded* number of times and loop until the
//     full buffer is written (partial writes are legal for sockets/pipes),
//     instead of either giving up on the first EINTR or spinning forever.
//
// The `io.write_file` failpoint fires inside write_file_atomic, so chaos
// schedules can prove every caller handles a failed artifact write.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "dvf/common/result.hpp"

namespace dvf::io {

/// Upper bound on consecutive EINTR retries before the write is surfaced as
/// an io_error: bounded so an interrupt storm degrades into a classified
/// failure rather than an unbounded spin.
inline constexpr int kMaxEintrRetries = 64;

/// Flushes `out` and classifies its state: an io_error naming `what` if the
/// stream failed at any point, success otherwise.
[[nodiscard]] Result<void> checked_flush(std::ostream& out, const char* what);

/// Writes the whole buffer to `fd`, looping over partial writes and
/// retrying EINTR up to kMaxEintrRetries times. Returns io_error (with
/// errno text) on any other failure or on retry exhaustion.
[[nodiscard]] Result<void> write_all_fd(int fd, const char* data,
                                        std::size_t size);

/// Writes `contents` to `<path>.tmp`, flushes, checks the stream, then
/// renames over `path`. On any failure the temp file is removed and an
/// io_error is returned; the destination is either the complete old file or
/// the complete new one, never a prefix. Evaluates the `io.write_file`
/// failpoint.
[[nodiscard]] Result<void> write_file_atomic(const std::string& path,
                                             std::string_view contents);

/// Formats the current errno (or `err`) as "what failed: <strerror>" for
/// io_error messages.
[[nodiscard]] std::string errno_message(const std::string& what, int err);

}  // namespace dvf::io
