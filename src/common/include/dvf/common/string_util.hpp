// Small string utilities shared by the DSL front end and the reporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dvf {

/// Splits on a single-character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Case-sensitive prefix/suffix tests (string_view helpers for pre-C++20 call
/// sites are gone; these forward to the standard members but read better at
/// call sites taking std::string).
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros — the reporters use this for table cells.
[[nodiscard]] std::string format_significant(double value, int digits = 4);

}  // namespace dvf
