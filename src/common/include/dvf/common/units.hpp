// Unit helpers and conversions used throughout the DVF models.
//
// The DVF definition (paper Eq. 1) mixes units deliberately:
//   FIT  — failures per 10^9 device-hours per Mbit
//   T    — execution time (we keep seconds internally)
//   S_d  — data-structure size (bytes internally)
// N_error = FIT * hours(T) / 1e9 * megabits(S_d).
#pragma once

#include <cstdint>

namespace dvf {

using Byte = std::uint64_t;

inline constexpr Byte kKiB = 1024;
inline constexpr Byte kMiB = 1024 * kKiB;
inline constexpr Byte kGiB = 1024 * kMiB;

constexpr Byte operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr Byte operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr Byte operator""_GiB(unsigned long long v) { return v * kGiB; }

/// Hours in one second.
inline constexpr double kHoursPerSecond = 1.0 / 3600.0;
/// FIT rates are quoted per billion (1e9) hours.
inline constexpr double kFitHours = 1e9;
/// FIT rates are quoted per megabit (1e6 bits).
inline constexpr double kBitsPerMegabit = 1e6;

/// Converts a byte count to megabits (the FIT denomination).
constexpr double bytes_to_megabits(double bytes) {
  return bytes * 8.0 / kBitsPerMegabit;
}

/// Expected number of raw errors striking `size_bytes` of memory exposed for
/// `seconds` at failure rate `fit` (failures / 1e9 h / Mbit). Paper: N_error.
constexpr double expected_errors(double fit, double seconds, double size_bytes) {
  return fit * (seconds * kHoursPerSecond / kFitHours) *
         bytes_to_megabits(size_bytes);
}

}  // namespace dvf
