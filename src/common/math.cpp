#include "dvf/common/math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dvf::math {

double log_binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) {
    return -std::numeric_limits<double>::infinity();
  }
  if (k == 0 || k == n) {
    return 0.0;
  }
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial(std::int64_t n, std::int64_t k) {
  const double lb = log_binomial(n, k);
  return std::isinf(lb) ? 0.0 : std::exp(lb);
}

double hypergeometric_pmf(std::int64_t total, std::int64_t marked,
                          std::int64_t draws, std::int64_t k) {
  if (total < 0 || marked < 0 || marked > total || draws < 0 || draws > total) {
    return 0.0;
  }
  // Support: max(0, draws - (total - marked)) <= k <= min(draws, marked).
  if (k < std::max<std::int64_t>(0, draws - (total - marked)) ||
      k > std::min(draws, marked)) {
    return 0.0;
  }
  const double log_p = log_binomial(marked, k) +
                       log_binomial(total - marked, draws - k) -
                       log_binomial(total, draws);
  return std::exp(log_p);
}

double binomial_pmf(std::int64_t n, std::int64_t k, double p) {
  if (k < 0 || k > n || n < 0 || p < 0.0 || p > 1.0) {
    return 0.0;
  }
  if (p == 0.0) {
    return k == 0 ? 1.0 : 0.0;
  }
  if (p == 1.0) {
    return k == n ? 1.0 : 0.0;
  }
  const double log_p = log_binomial(n, k) +
                       static_cast<double>(k) * std::log(p) +
                       static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_p);
}

double binomial_tail(std::int64_t n, std::int64_t k, double p) {
  if (k <= 0) {
    return 1.0;
  }
  if (k > n) {
    return 0.0;
  }
  // The tails we need are short (k near the cache associativity), so direct
  // summation of the complement is both exact enough and fast.
  KahanSum below;
  for (std::int64_t i = 0; i < k; ++i) {
    below.add(binomial_pmf(n, i, p));
  }
  return std::clamp(1.0 - below.value(), 0.0, 1.0);
}

double stable_sum(std::span<const double> xs) {
  KahanSum s;
  for (const double x : xs) {
    s.add(x);
  }
  return s.value();
}

namespace {

[[nodiscard]] Result<void> check_population(std::int64_t n) {
  if (n > kMaxCombinatoricPopulation) {
    return EvalError{ErrorKind::kOverflow,
                     "population " + std::to_string(n) +
                         " exceeds the checked-combinatorics limit " +
                         std::to_string(kMaxCombinatoricPopulation) +
                         " (log-gamma differences lose all precision)"};
  }
  return {};
}

}  // namespace

Result<double> checked_log_binomial(std::int64_t n, std::int64_t k) {
  DVF_TRY_CHECK(check_population(n));
  return log_binomial(n, k);
}

Result<double> checked_binomial(std::int64_t n, std::int64_t k) {
  DVF_TRY_CHECK(check_population(n));
  const double lb = log_binomial(n, k);
  if (std::isinf(lb)) {
    return 0.0;  // empty support: exactly zero ways
  }
  const double value = std::exp(lb);
  if (!std::isfinite(value)) {
    return EvalError{ErrorKind::kOverflow,
                     "C(" + std::to_string(n) + ", " + std::to_string(k) +
                         ") exceeds the double range (ln C = " +
                         std::to_string(lb) + ")"};
  }
  return value;
}

Result<double> checked_hypergeometric_pmf(std::int64_t total,
                                          std::int64_t marked,
                                          std::int64_t draws, std::int64_t k) {
  DVF_TRY_CHECK(check_population(total));
  const double p = hypergeometric_pmf(total, marked, draws, k);
  if (!std::isfinite(p)) {
    return EvalError{ErrorKind::kNonFinite,
                     "hypergeometric pmf(total=" + std::to_string(total) +
                         ", marked=" + std::to_string(marked) +
                         ", draws=" + std::to_string(draws) +
                         ", k=" + std::to_string(k) +
                         ") is not finite"};
  }
  return p;
}

Result<double> checked_sum(std::span<const double> xs) {
  KahanSum s;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!std::isfinite(xs[i])) {
      return EvalError{ErrorKind::kNonFinite,
                       "summand " + std::to_string(i) + " is " +
                           (std::isnan(xs[i]) ? "NaN" : "infinite")};
    }
    s.add(xs[i]);
  }
  return finite_or_error(s.value(), "checked_sum total");
}

double wilson_half_width(std::uint64_t successes, std::uint64_t n, double z) {
  if (n == 0) {
    return 1.0;
  }
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  return z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) /
         (1.0 + z2 / nn);
}

bool approx_equal(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double relative_error(double estimate, double reference) {
  if (reference == 0.0) {
    return estimate == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::fabs(estimate - reference) / std::fabs(reference);
}

}  // namespace dvf::math
