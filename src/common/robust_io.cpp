#include "dvf/common/robust_io.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#include "dvf/common/failpoint.hpp"

namespace dvf::io {

std::string errno_message(const std::string& what, int err) {
  std::string msg = what;
  if (err != 0) {
    msg += ": ";
    msg += std::strerror(err);
    msg += " (errno " + std::to_string(err) + ")";
  }
  return msg;
}

Result<void> checked_flush(std::ostream& out, const char* what) {
  out.flush();
  if (!out) {
    return EvalError{ErrorKind::kIoError,
                     std::string(what) + ": stream write failed"};
  }
  return {};
}

Result<void> write_all_fd(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  int eintr_budget = kMaxEintrRetries;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR && eintr_budget-- > 0) {
        continue;
      }
      return EvalError{ErrorKind::kIoError,
                       errno_message("write failed", errno)};
    }
    written += static_cast<std::size_t>(n);
  }
  return {};
}

Result<void> write_file_atomic(const std::string& path,
                               std::string_view contents) {
  const std::string tmp = path + ".tmp";
  if (auto fp = DVF_FAILPOINT("io.write_file")) {
    return EvalError{ErrorKind::kIoError,
                     errno_message("write " + path + " failed (injected)",
                                   fp.error_code)};
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return EvalError{ErrorKind::kIoError,
                       errno_message("cannot open " + tmp + " for writing",
                                     errno)};
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return EvalError{ErrorKind::kIoError, "write to " + tmp + " failed"};
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return EvalError{ErrorKind::kIoError,
                     errno_message("rename " + tmp + " -> " + path + " failed",
                                   err)};
  }
  return {};
}

}  // namespace dvf::io
