#include "dvf/common/string_util.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace dvf {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += items[i];
  }
  return out;
}

std::string format_significant(double value, int digits) {
  if (std::isnan(value)) {
    return "nan";
  }
  if (std::isinf(value)) {
    return value > 0 ? "inf" : "-inf";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

}  // namespace dvf
