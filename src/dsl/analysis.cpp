#include "dvf/dsl/analysis.hpp"

#include <fstream>
#include <sstream>

#include "dvf/common/error.hpp"
#include "dvf/dsl/parser.hpp"

namespace dvf::dsl {

namespace {

const ModelDecl* find_model_decl(const Program& ast, const std::string& name) {
  for (const ModelDecl& model : ast.models) {
    if (model.name == name) {
      return &model;
    }
  }
  return nullptr;
}

const DataDecl* find_data_decl(const ModelDecl& model,
                               const std::string& name) {
  for (const DataDecl& data : model.data) {
    if (data.name == name) {
      return &data;
    }
  }
  return nullptr;
}

}  // namespace

bool provably_zero_work(const PatternProvenance& row,
                        const CompiledProgram& program) {
  const ModelSpec* model = nullptr;
  for (const ModelSpec& m : program.models) {
    if (m.name == row.model) {
      model = &m;
      break;
    }
  }
  if (model == nullptr) {
    return false;
  }
  const DataStructureSpec* target = model->find(row.structure);
  if (target == nullptr) {
    return false;
  }
  if (row.phase_count == 0) {
    return true;  // the declaration emitted nothing at all
  }
  for (std::size_t i = 0; i < row.phase_count; ++i) {
    const std::size_t phase = row.first_phase + i;
    if (phase >= target->patterns.size() ||
        !analysis::zero_steady_work(target->patterns[phase])) {
      return false;
    }
  }
  return true;
}

namespace {

void report_verdicts(const Program& ast, const SemanticAnalysis& result,
                     DiagnosticEngine& diags) {
  const analysis::AnalysisReport& report = *result.report;
  const bool has_machines = !report.machines.empty();

  for (const analysis::ModelBounds& model : report.models) {
    const ModelDecl* decl = find_model_decl(ast, model.name);
    if (decl == nullptr) {
      continue;  // defensive: compiled models always have a declaration
    }
    for (const analysis::StructureBounds& s : model.structures) {
      const DataDecl* data = find_data_decl(*decl, s.name);
      const SourceSpan span = data != nullptr
                                  ? SourceSpan{data->line, data->column, 4}
                                  : SourceSpan{decl->line, decl->column, 5};
      if (s.dead) {
        diags.warning(codes::kAnalysisDeadStructure, span,
                      "data '" + s.name + "' in model '" + model.name +
                          "' lowers to zero access phases; its N_ha and DVF "
                          "contribution are provably 0 on every machine",
                      "attach a non-empty pattern or drop the declaration");
      }
      if (has_machines && s.rejects_everywhere) {
        const char* kind =
            to_string(s.per_machine.front().reject_kind);
        diags.warning(
            codes::kAnalysisRejectsEverywhere, span,
            "evaluating '" + s.name + "' in model '" + model.name +
                "' provably fails on every configured machine (" +
                std::string(kind) + "); the model's DVF cannot be computed",
            "fix the pattern parameters the evaluator rejects");
      }
      if (has_machines && s.exceeds_all_shares && !s.rejects_everywhere) {
        diags.note(
            codes::kAnalysisExceedsAllShares, span,
            "a pattern over '" + s.name + "' in model '" + model.name +
                "' has a working set that provably exceeds its cache share "
                "on every configured machine; steady-state reuse misses "
                "dominate N_ha");
      }
    }
  }

  // Zero-work declarations, via lowering provenance (a declaration can be
  // zero-work even when its structure is not dead — other patterns may
  // still access it).
  for (const PatternProvenance& row : result.program.provenance) {
    if (!provably_zero_work(row, result.program)) {
      continue;
    }
    diags.warning(codes::kAnalysisZeroWork,
                  {row.line, row.column, 7},
                  "pattern on '" + row.structure + "' in model '" + row.model +
                      "' provably performs no steady-state work" +
                      (row.phase_count == 0 ? " (it lowers to zero phases)"
                                            : ""),
                  "a zero repeat/iteration/round count models nothing");
  }
}

}  // namespace

SemanticAnalysis analyze_models(std::string_view source,
                                const analysis::AnalysisOptions& options) {
  SemanticAnalysis result;
  result.source.assign(source);

  DiagnosticEngine diags;
  Program ast;
  bool parsed = true;
  try {
    ast = parse(source);
  } catch (const ParseError& err) {
    const std::string prefix = "parse error at " + std::to_string(err.line()) +
                               ":" + std::to_string(err.column()) + ": ";
    std::string message = err.what();
    if (message.rfind(prefix, 0) == 0) {
      message = message.substr(prefix.size());
    }
    const char* code = err.code() != nullptr ? err.code() : codes::kSyntax;
    diags.error(code, {err.line(), err.column(), err.length()},
                std::move(message));
    parsed = false;
  }

  if (parsed) {
    result.program = analyze(ast, diags);
    result.report = analysis::analyze(result.program.machines,
                                      result.program.models, options);
    report_verdicts(ast, result, diags);
  }

  result.diagnostics = diags.sorted();
  result.errors = diags.error_count();
  result.warnings = diags.warning_count();
  return result;
}

SemanticAnalysis analyze_models_file(const std::string& path,
                                     const analysis::AnalysisOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open model file: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return analyze_models(contents.str(), options);
}

}  // namespace dvf::dsl
