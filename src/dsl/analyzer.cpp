#include "dvf/dsl/analyzer.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "dvf/common/error.hpp"
#include "dvf/dsl/parser.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/dsl/template_expander.hpp"

namespace dvf::dsl {

namespace {

SourceSpan expr_span(const Expr& expr) { return {expr.line, expr.column, 1}; }

SourceSpan key_span(const KeyValue& kv) {
  return {kv.line, kv.column, static_cast<int>(kv.key.size())};
}

SourceSpan tuple_span(const KeyTuple& tuple) {
  return {tuple.line, tuple.column, static_cast<int>(tuple.key.size())};
}

/// Shared recursive evaluator. `diags` may be null (probe mode: fail
/// silently); `poisoned` names parameters whose own definitions already
/// failed, so uses of them stay quiet instead of cascading E002.
std::optional<double> eval_expr(const Expr& expr,
                                const std::map<std::string, double>& env,
                                const std::set<std::string>* poisoned,
                                DiagnosticEngine* diags) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
      return expr.number;
    case Expr::Kind::kIdentifier: {
      const auto it = env.find(expr.identifier);
      if (it != env.end()) {
        return it->second;
      }
      if (diags != nullptr &&
          (poisoned == nullptr || poisoned->count(expr.identifier) == 0)) {
        diags->error(codes::kUnknownIdentifier,
                     {expr.line, expr.column,
                      static_cast<int>(expr.identifier.size())},
                     "unknown parameter '" + expr.identifier + "'",
                     "declare it first: param " + expr.identifier + " = ...;");
      }
      return std::nullopt;
    }
    case Expr::Kind::kUnary: {
      const auto v = eval_expr(*expr.lhs, env, poisoned, diags);
      return v ? std::optional<double>(-*v) : std::nullopt;
    }
    case Expr::Kind::kBinary: {
      const auto a = eval_expr(*expr.lhs, env, poisoned, diags);
      const auto b = eval_expr(*expr.rhs, env, poisoned, diags);
      if (!a || !b) {
        return std::nullopt;
      }
      switch (expr.op) {
        case '+': return *a + *b;
        case '-': return *a - *b;
        case '*': return *a * *b;
        case '/':
        case '%':
          if (*b == 0.0) {
            if (diags != nullptr) {
              diags->error(codes::kDivisionByZero, expr_span(expr),
                           expr.op == '/' ? "division by zero"
                                          : "modulo by zero");
            }
            return std::nullopt;
          }
          return expr.op == '/' ? *a / *b : std::fmod(*a, *b);
        case '^': return std::pow(*a, *b);
        default: break;
      }
      break;
    }
  }
  if (diags != nullptr) {
    diags->error(codes::kSyntax, expr_span(expr), "malformed expression node");
  }
  return std::nullopt;
}

class Analyzer;

/// Property bag with required/optional accessors and unknown-key detection.
/// All values are evaluated up front (reporting expression errors inline);
/// accessors return nullopt for a property whose expression failed, without
/// reporting anything further.
class Properties {
 public:
  Properties(const std::vector<KeyValue>& kvs, Analyzer& analyzer,
             std::string context);

  /// Reports E007 when absent; nullopt when absent or failed-to-evaluate.
  [[nodiscard]] std::optional<double> require(const std::string& key,
                                              SourceSpan missing_span);

  /// `fallback` when absent; nullopt when present but failed to evaluate.
  [[nodiscard]] std::optional<double> get(const std::string& key,
                                          double fallback);

  [[nodiscard]] bool has(const std::string& key) const {
    return entries_.count(key) != 0;
  }

  /// Span of the property's key, or `fallback` when the key is absent.
  [[nodiscard]] SourceSpan span(const std::string& key,
                                SourceSpan fallback) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? fallback : it->second.span;
  }

  /// Call after all accesses: reports E006 for every leftover key (typos).
  void reject_unknown();

 private:
  struct Entry {
    std::optional<double> value;
    SourceSpan span;
    bool used = false;
  };
  std::map<std::string, Entry> entries_;
  std::string context_;
  DiagnosticEngine& diags_;
};

class Analyzer {
 public:
  Analyzer(const Program& program, DiagnosticEngine& diags)
      : program_(program), diags_(diags) {}

  CompiledProgram run() {
    for (const ParamDecl& param : program_.params) {
      lower_param(param);
    }
    for (const MachineDecl& machine : program_.machines) {
      lower_machine(machine);
    }
    for (const ModelDecl& model : program_.models) {
      lower_model(model);
    }
    return std::move(out_);
  }

  [[nodiscard]] std::optional<double> eval(const Expr& expr) {
    return eval_expr(expr, out_.params, &poisoned_params_, &diags_);
  }

  [[nodiscard]] DiagnosticEngine& diags() { return diags_; }

 private:
  /// Rejects negative, fractional and absurdly large values (E008).
  std::optional<std::uint64_t> count_of(std::optional<double> v,
                                        const std::string& what,
                                        SourceSpan span) {
    if (!v) {
      return std::nullopt;
    }
    if (*v < 0.0 || *v != std::floor(*v) || *v > 9.0e15) {
      diags_.error(codes::kNotACount, span,
                   what + " must be a non-negative integer (got " +
                       std::to_string(*v) + ")");
      return std::nullopt;
    }
    return static_cast<std::uint64_t>(*v);
  }

  void lower_param(const ParamDecl& decl) {
    const SourceSpan span{decl.line, decl.column, 5};
    if (out_.params.count(decl.name) != 0 ||
        poisoned_params_.count(decl.name) != 0) {
      diags_.error(codes::kDuplicateDeclaration, span,
                   "duplicate parameter '" + decl.name + "'");
      return;
    }
    const auto value = eval(*decl.value);
    if (value) {
      out_.params[decl.name] = *value;
    } else {
      poisoned_params_.insert(decl.name);
    }
  }

  void lower_machine(const MachineDecl& decl) {
    const SourceSpan decl_span{decl.line, decl.column, 7};
    for (const Machine& existing : out_.machines) {
      if (existing.name == decl.name) {
        diags_.error(codes::kDuplicateDeclaration, decl_span,
                     "duplicate machine '" + decl.name + "'");
        return;
      }
    }

    Properties cache(decl.cache, *this, "machine '" + decl.name + "' cache");
    const auto assoc =
        count_of(cache.require("associativity", decl_span),
                 "cache associativity", cache.span("associativity", decl_span));
    const auto sets = count_of(cache.require("sets", decl_span), "cache sets",
                               cache.span("sets", decl_span));
    const auto line = count_of(cache.require("line", decl_span), "cache line",
                               cache.span("line", decl_span));
    cache.reject_unknown();

    Properties memory(decl.memory, *this, "machine '" + decl.name + "' memory");
    std::optional<double> fit;
    if (!decl.ecc.empty()) {
      const SourceSpan ecc_span{decl.ecc_line, decl.ecc_column, 3};
      if (memory.has("fit")) {
        (void)memory.get("fit", 0.0);  // consume: the conflict is the error
        diags_.error(codes::kConflictingMemorySpec, ecc_span,
                     "machine '" + decl.name +
                         "': give either 'fit' or 'ecc', not both");
      } else {
        try {
          fit = fit_rate(ecc_from_string(decl.ecc));
        } catch (const Error& err) {
          diags_.error(codes::kConflictingMemorySpec, ecc_span,
                       "machine '" + decl.name + "': " + err.what(),
                       "known schemes: none, secded, chipkill");
        }
      }
    } else {
      fit = memory.get("fit", fit_rate(EccScheme::kNone));
      if (fit && *fit <= 0.0) {
        diags_.error(codes::kNegativeQuantity,
                     memory.span("fit", decl_span),
                     "machine '" + decl.name +
                         "': FIT rate must be positive (got " +
                         std::to_string(*fit) + ")",
                     "FIT is failures per 10^9 device-hours per Mbit");
        fit.reset();
      }
    }
    memory.reject_unknown();

    if (!assoc || !sets || !line || !fit) {
      return;
    }
    try {
      out_.machines.emplace_back(
          decl.name,
          CacheConfig(decl.name + "-llc", static_cast<std::uint32_t>(*assoc),
                      static_cast<std::uint32_t>(*sets),
                      static_cast<std::uint32_t>(*line)),
          MemoryModel(*fit));
    } catch (const Error& err) {
      // CacheConfig rejects zero fields and non-power-of-two line lengths.
      diags_.error(codes::kValueOutOfRange, decl_span,
                   "machine '" + decl.name + "': " + err.what());
    }
  }

  std::optional<ReuseScenario> scenario_from(std::optional<double> code,
                                             SourceSpan span) {
    if (!code) {
      return std::nullopt;
    }
    switch (static_cast<int>(*code)) {
      case 0: return ReuseScenario::kLruProtects;
      case 1: return ReuseScenario::kUniformEviction;
      case 2: return ReuseScenario::kBlend;
      default:
        diags_.error(codes::kValueOutOfRange, span,
                     "reuse scenario must be 0 (lru), 1 (uniform) or 2 "
                     "(blend)");
        return std::nullopt;
    }
  }

  void lower_model(const ModelDecl& decl) {
    const SourceSpan decl_span{decl.line, decl.column, 5};
    for (const ModelSpec& existing : out_.models) {
      if (existing.name == decl.name) {
        diags_.error(codes::kDuplicateDeclaration, decl_span,
                     "duplicate model '" + decl.name + "'");
        return;
      }
    }

    bool failed = false;
    ModelSpec spec;
    spec.name = decl.name;
    if (decl.time) {
      const auto t = eval(*decl.time);
      if (!t) {
        failed = true;
      } else if (*t < 0.0) {
        diags_.error(codes::kNegativeQuantity, expr_span(*decl.time),
                     "model '" + decl.name + "': time must be >= 0");
        failed = true;
      } else {
        spec.exec_time_seconds = *t;
      }
    }

    // Element sizes and counts, needed when lowering patterns.
    std::map<std::string, std::uint32_t> element_bytes;
    std::map<std::string, std::uint64_t> element_count;

    for (const DataDecl& data : decl.data) {
      if (!lower_data(decl, data, spec, element_bytes, element_count)) {
        failed = true;
      }
    }

    AccessOrder order;
    if (!decl.order.empty()) {
      try {
        order = parse_access_order(decl.order);
      } catch (const Error& err) {
        diags_.error(codes::kSyntax,
                     {decl.order_line, decl.order_column,
                      static_cast<int>(decl.order.size()) + 2},
                     "model '" + decl.name + "': bad access order: " +
                         err.what());
        failed = true;
      }
    }

    std::vector<PatternProvenance> provenance;
    provenance.reserve(decl.patterns.size());
    for (const PatternDecl& pattern : decl.patterns) {
      // The target structure's phase list grows by whatever this declaration
      // lowers to (0..n phases); record the slice for provenance. The
      // structures vector does not change during pattern lowering, so the
      // pointer stays valid across the call.
      const DataStructureSpec* target = spec.find(pattern.target);
      const std::size_t before = target != nullptr ? target->patterns.size() : 0;
      if (!lower_pattern(decl, pattern, spec, order, element_bytes,
                         element_count)) {
        failed = true;
      } else if (target != nullptr) {
        provenance.push_back({decl.name, pattern.target, pattern.line,
                              pattern.column, before,
                              target->patterns.size() - before});
      }
    }

    // A partially lowered model would feed meaningless numbers to the
    // calculator; only clean models make it into the compiled program.
    if (!failed) {
      out_.models.push_back(std::move(spec));
      out_.provenance.insert(out_.provenance.end(),
                             std::make_move_iterator(provenance.begin()),
                             std::make_move_iterator(provenance.end()));
    }
  }

  bool lower_data(const ModelDecl& model, const DataDecl& data,
                  ModelSpec& spec,
                  std::map<std::string, std::uint32_t>& element_bytes,
                  std::map<std::string, std::uint64_t>& element_count) {
    const SourceSpan decl_span{data.line, data.column, 4};
    if (spec.find(data.name) != nullptr) {
      diags_.error(codes::kDuplicateDeclaration, decl_span,
                   "model '" + model.name + "': duplicate data '" + data.name +
                       "'");
      return false;
    }
    Properties props(data.properties, *this,
                     "data '" + data.name + "' in model '" + model.name + "'");
    const auto esize = count_of(props.get("element_size", 8.0), "element_size",
                                props.span("element_size", decl_span));
    std::optional<std::uint64_t> count;
    if (props.has("elements")) {
      count = count_of(props.require("elements", decl_span), "elements",
                       props.span("elements", decl_span));
    } else if (props.has("size")) {
      const auto size = count_of(props.require("size", decl_span), "size",
                                 props.span("size", decl_span));
      if (size && esize) {
        if (*esize == 0 || *size % *esize != 0) {
          diags_.error(codes::kInconsistentSize,
                       props.span("size", decl_span),
                       "data '" + data.name +
                           "': size must be a multiple of element_size");
        } else {
          count = *size / *esize;
        }
      }
    } else {
      diags_.error(codes::kMissingProperty, decl_span,
                   "data '" + data.name + "': needs 'elements' or 'size'",
                   "give the footprint as elements N; or size N;");
    }
    props.reject_unknown();
    if (!esize || !count) {
      return false;
    }
    if (*esize == 0 || *count == 0) {
      diags_.error(codes::kInconsistentSize, decl_span,
                   "data '" + data.name +
                       "': element_size and elements must be positive");
      return false;
    }

    DataStructureSpec ds;
    ds.name = data.name;
    ds.size_bytes = *count * *esize;
    spec.structures.push_back(std::move(ds));
    element_bytes[data.name] = static_cast<std::uint32_t>(*esize);
    element_count[data.name] = *count;
    return true;
  }

  bool lower_pattern(const ModelDecl& model, const PatternDecl& pattern,
                     ModelSpec& spec, const AccessOrder& order,
                     const std::map<std::string, std::uint32_t>& element_bytes,
                     const std::map<std::string, std::uint64_t>& element_count) {
    const SourceSpan decl_span{pattern.line, pattern.column, 7};
    DataStructureSpec* target = nullptr;
    for (auto& ds : spec.structures) {
      if (ds.name == pattern.target) {
        target = &ds;
        break;
      }
    }
    if (target == nullptr) {
      diags_.error(codes::kUndeclaredData, decl_span,
                   "pattern for undeclared data '" + pattern.target +
                       "' in model '" + model.name + "'",
                   "declare it first: data " + pattern.target + " { ... }");
      return false;
    }
    const std::string context = "pattern " + pattern.kind + " on '" +
                                pattern.target + "' in model '" + model.name +
                                "'";
    Properties props(pattern.properties, *this, context);
    const auto no_tuples = [&]() {
      if (pattern.tuples.empty()) {
        return true;
      }
      diags_.error(codes::kBadTuple, tuple_span(pattern.tuples.front()),
                   context + ": " + pattern.kind + " patterns take no tuples");
      return false;
    };

    if (pattern.kind == "stream") {
      const bool tuples_ok = no_tuples();
      StreamingSpec s;
      s.element_bytes = element_bytes.at(pattern.target);
      s.element_count = element_count.at(pattern.target);
      const auto stride = count_of(props.get("stride", 1.0), "stride",
                                   props.span("stride", decl_span));
      const auto repeats = count_of(props.get("repeat", 1.0), "repeat",
                                    props.span("repeat", decl_span));
      props.reject_unknown();
      if (!tuples_ok || !stride || !repeats) {
        return false;
      }
      s.stride_elements = *stride;
      for (std::uint64_t i = 0; i < *repeats; ++i) {
        target->patterns.emplace_back(s);
      }
      return true;
    }

    if (pattern.kind == "random") {
      const bool tuples_ok = no_tuples();
      RandomSpec r;
      r.element_count = element_count.at(pattern.target);
      r.element_bytes = element_bytes.at(pattern.target);
      const auto visits = props.require("visits", decl_span);
      const auto iterations =
          count_of(props.require("iterations", decl_span), "iterations",
                   props.span("iterations", decl_span));
      const auto ratio = props.get("ratio", 1.0);
      props.reject_unknown();
      if (!tuples_ok || !visits || !iterations || !ratio) {
        return false;
      }
      r.visits_per_iteration = *visits;
      r.iterations = *iterations;
      r.cache_ratio = *ratio;
      target->patterns.emplace_back(r);
      return true;
    }

    if (pattern.kind == "template") {
      return lower_template(pattern, props, context, decl_span, target,
                            element_bytes.at(pattern.target));
    }

    if (pattern.kind == "reuse") {
      const bool tuples_ok = no_tuples();
      ReuseSpec u;
      u.self_bytes = target->size_bytes;
      std::optional<std::uint64_t> other;
      if (props.has("other_bytes")) {
        other = count_of(props.require("other_bytes", decl_span),
                         "other_bytes", props.span("other_bytes", decl_span));
      } else {
        // Derive the interferer footprint from the access order: every other
        // structure sharing a phase with the target.
        std::uint64_t derived = 0;
        for (const std::string& name : order.concurrent_with(pattern.target)) {
          if (const DataStructureSpec* ds = spec.find(name)) {
            derived += ds->size_bytes;
          }
        }
        other = derived;
      }
      std::optional<std::uint64_t> rounds;
      if (props.has("rounds")) {
        rounds = count_of(props.require("rounds", decl_span), "rounds",
                          props.span("rounds", decl_span));
      } else {
        const std::uint64_t appearances = order.appearances(pattern.target);
        if (appearances < 2) {
          diags_.error(codes::kMissingProperty, decl_span,
                       context +
                           ": reuse needs 'rounds' or an access order in "
                           "which the structure appears at least twice");
        } else {
          rounds = appearances - 1;
        }
      }
      const auto scenario = scenario_from(props.get("scenario", 0.0),
                                          props.span("scenario", decl_span));
      // occupancy: 0 = Bernoulli (paper Eq. 8, default), 1 = contiguous.
      const auto occupancy = props.get("occupancy", 0.0);
      bool occupancy_ok = occupancy.has_value();
      if (occupancy) {
        if (*occupancy == 1.0) {
          u.occupancy = ReuseOccupancy::kContiguous;
        } else if (*occupancy != 0.0) {
          diags_.error(codes::kValueOutOfRange,
                       props.span("occupancy", decl_span),
                       context +
                           ": occupancy must be 0 (bernoulli) or 1 "
                           "(contiguous)");
          occupancy_ok = false;
        }
      }
      props.reject_unknown();
      if (!tuples_ok || !other || !rounds || !scenario || !occupancy_ok) {
        return false;
      }
      u.other_bytes = *other;
      u.reuse_rounds = *rounds;
      u.scenario = *scenario;
      target->patterns.emplace_back(u);
      return true;
    }

    if (pattern.kind == "tiled") {
      return lower_tiled(pattern, props, context, decl_span, target,
                         element_bytes.at(pattern.target),
                         element_count.at(pattern.target));
    }

    diags_.error(codes::kUnknownPatternKind, decl_span,
                 context + ": unknown pattern kind '" + pattern.kind +
                     "' (expected stream|random|template|reuse|tiled)");
    return false;
  }

  bool lower_template(const PatternDecl& pattern, Properties& props,
                      const std::string& context, SourceSpan decl_span,
                      DataStructureSpec* target, std::uint32_t esize) {
    std::vector<std::int64_t> start;
    const KeyTuple* start_tuple = nullptr;
    const KeyTuple* end_tuple = nullptr;
    bool tuples_ok = true;
    for (const KeyTuple& tuple : pattern.tuples) {
      if (tuple.key == "start") {
        start_tuple = &tuple;
        for (const ExprPtr& e : tuple.values) {
          const auto v = eval(*e);
          if (!v) {
            tuples_ok = false;
          } else {
            start.push_back(
                static_cast<std::int64_t>(std::llround(*v)));
          }
        }
      } else if (tuple.key == "end") {
        // Validated against count below; the end tuple documents the
        // boundary (paper's MG template) but count drives expansion.
        end_tuple = &tuple;
      } else {
        diags_.error(codes::kUnknownProperty, tuple_span(tuple),
                     context + ": unknown tuple '" + tuple.key + "'",
                     "templates take 'start (...)' and 'end (...)' tuples");
        tuples_ok = false;
      }
    }
    if (start_tuple == nullptr) {
      diags_.error(codes::kMissingProperty, decl_span,
                   context + ": template needs a 'start (...)' tuple");
      tuples_ok = false;
    }

    std::optional<std::int64_t> step;
    if (const auto step_value = props.get("step", 1.0)) {
      step = static_cast<std::int64_t>(std::llround(*step_value));
    }
    std::optional<std::uint64_t> count;
    if (props.has("count")) {
      count = count_of(props.require("count", decl_span), "count",
                       props.span("count", decl_span));
    } else if (tuples_ok && step) {
      // Derive the iteration count from the end tuple's first component.
      if (end_tuple == nullptr || end_tuple->values.empty() || *step == 0) {
        diags_.error(codes::kBadTuple, decl_span,
                     context +
                         ": template needs 'count' or an 'end (...)' "
                         "tuple with a nonzero step");
      } else if (const auto end_value = eval(*end_tuple->values[0])) {
        const auto end0 =
            static_cast<std::int64_t>(std::llround(*end_value));
        const std::int64_t span = end0 - start[0];
        if (span % *step != 0 || span / *step < 0) {
          diags_.error(codes::kBadTuple, tuple_span(*end_tuple),
                       context +
                           ": end tuple is not reachable from start with "
                           "the given step");
        } else {
          count = static_cast<std::uint64_t>(span / *step) + 1;
        }
      }
    }

    const auto repeats = count_of(props.get("repeat", 1.0), "repeat",
                                  props.span("repeat", decl_span));
    const auto ratio = props.get("ratio", 1.0);
    props.reject_unknown();
    if (!tuples_ok || !step || !count || !repeats || !ratio) {
      return false;
    }

    TemplateSpec t;
    t.element_bytes = esize;
    // Total expansion: progressions that underflow element 0, overflow the
    // index range, or exceed the expansion budget (template bombs) all
    // degrade into a diagnostic on the start tuple instead of an exception
    // or an OOM kill.
    auto expansion = try_expand_progression(start, *step, *count);
    if (!expansion.ok()) {
      diags_.error(codes::kTemplateOutOfBounds, tuple_span(*start_tuple),
                   context + ": " + expansion.error().describe());
      return false;
    }
    t.element_indices = *std::move(expansion);
    t.repetitions = *repeats;
    t.cache_ratio = *ratio;
    target->patterns.emplace_back(std::move(t));
    return true;
  }

  bool lower_tiled(const PatternDecl& pattern, Properties& props,
                   const std::string& context, SourceSpan decl_span,
                   DataStructureSpec* target, std::uint32_t esize,
                   std::uint64_t elements) {
    // tile (TR, TC) — the blocking geometry; the only tuple tiled takes.
    const KeyTuple* tile_tuple = nullptr;
    bool tuples_ok = true;
    for (const KeyTuple& tuple : pattern.tuples) {
      if (tuple.key == "tile") {
        tile_tuple = &tuple;
      } else {
        diags_.error(codes::kUnknownProperty, tuple_span(tuple),
                     context + ": unknown tuple '" + tuple.key + "'",
                     "tiled takes one 'tile (rows, cols)' tuple");
        tuples_ok = false;
      }
    }
    std::optional<std::uint64_t> tile_rows;
    std::optional<std::uint64_t> tile_cols;
    if (tile_tuple == nullptr) {
      diags_.error(codes::kMissingProperty, decl_span,
                   context + ": tiled needs a 'tile (rows, cols)' tuple");
      tuples_ok = false;
    } else if (tile_tuple->values.size() != 2) {
      diags_.error(codes::kBadTuple, tuple_span(*tile_tuple),
                   context + ": 'tile' takes exactly two components "
                             "(rows, cols)");
      tuples_ok = false;
    } else {
      const auto tr = eval(*tile_tuple->values[0]);
      const auto tc = eval(*tile_tuple->values[1]);
      if (tr && tc) {
        tile_rows = count_of(tr, "tile rows", tuple_span(*tile_tuple));
        tile_cols = count_of(tc, "tile cols", tuple_span(*tile_tuple));
      }
      if (!tile_rows || !tile_cols) {
        tuples_ok = false;
      } else if (*tile_rows == 0 || *tile_cols == 0) {
        diags_.error(codes::kTiledGeometry, tuple_span(*tile_tuple),
                     context + ": tile dimensions must be at least 1");
        tuples_ok = false;
      }
    }

    const auto rows = count_of(props.require("rows", decl_span), "rows",
                               props.span("rows", decl_span));
    std::optional<std::uint64_t> cols;
    const bool cols_given = props.has("cols");
    if (cols_given) {
      cols = count_of(props.require("cols", decl_span), "cols",
                      props.span("cols", decl_span));
    }
    const auto intra = count_of(props.get("intra_reuse", 0.0), "intra_reuse",
                                props.span("intra_reuse", decl_span));
    const auto passes = count_of(props.get("passes", 1.0), "passes",
                                 props.span("passes", decl_span));
    const auto ratio = props.get("ratio", 1.0);
    props.reject_unknown();
    if (!tuples_ok || !rows || (cols_given && !cols) || !intra || !passes ||
        !ratio) {
      return false;
    }

    // The matrix must tile the declared footprint exactly: rows * cols ==
    // elements, with cols derived from the element count when omitted.
    if (*rows == 0) {
      diags_.error(codes::kTiledGeometry, props.span("rows", decl_span),
                   context + ": rows must be at least 1");
      return false;
    }
    if (!cols_given) {
      if (elements % *rows != 0) {
        diags_.error(codes::kTiledGeometry, props.span("rows", decl_span),
                     context + ": rows (" + std::to_string(*rows) +
                         ") does not divide the element count (" +
                         std::to_string(elements) + ")",
                     "give 'cols' explicitly or pick a divisor of the count");
        return false;
      }
      cols = elements / *rows;
    } else if (*cols == 0 || *rows > elements / *cols ||
               *rows * *cols != elements) {
      diags_.error(codes::kTiledGeometry, props.span("cols", decl_span),
                   context + ": rows * cols must equal the declared element "
                             "count (" +
                       std::to_string(elements) + ")");
      return false;
    }

    TiledSpec b;
    b.element_bytes = esize;
    b.rows = *rows;
    b.cols = *cols;
    b.tile_rows = *tile_rows;
    b.tile_cols = *tile_cols;
    b.intra_reuse = *intra;
    b.passes = *passes;
    b.cache_ratio = *ratio;
    target->patterns.emplace_back(b);
    return true;
  }

  const Program& program_;
  DiagnosticEngine& diags_;
  CompiledProgram out_;
  std::set<std::string> poisoned_params_;
};

Properties::Properties(const std::vector<KeyValue>& kvs, Analyzer& analyzer,
                       std::string context)
    : context_(std::move(context)), diags_(analyzer.diags()) {
  for (const KeyValue& kv : kvs) {
    Entry entry{analyzer.eval(*kv.value), key_span(kv), false};
    const auto [it, inserted] = entries_.emplace(kv.key, std::move(entry));
    if (!inserted) {
      diags_.error(codes::kDuplicateProperty, key_span(kv),
                   context_ + ": duplicate property '" + kv.key + "'",
                   "first given at " + std::to_string(it->second.span.line) +
                       ":" + std::to_string(it->second.span.column));
    }
  }
}

std::optional<double> Properties::require(const std::string& key,
                                          SourceSpan missing_span) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    diags_.error(codes::kMissingProperty, missing_span,
                 context_ + ": missing required property '" + key + "'");
    return std::nullopt;
  }
  it->second.used = true;
  return it->second.value;
}

std::optional<double> Properties::get(const std::string& key,
                                      double fallback) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return fallback;
  }
  it->second.used = true;
  return it->second.value;
}

void Properties::reject_unknown() {
  for (const auto& [key, entry] : entries_) {
    if (!entry.used) {
      diags_.error(codes::kUnknownProperty, entry.span,
                   context_ + ": unknown property '" + key + "'");
    }
  }
}

}  // namespace

double evaluate(const Expr& expr, const std::map<std::string, double>& env) {
  DiagnosticEngine diags;
  const auto value = eval_expr(expr, env, nullptr, &diags);
  if (value) {
    return *value;
  }
  const Diagnostic* first = diags.first_error();
  if (first == nullptr) {
    throw SemanticError("malformed expression node");
  }
  throw SemanticError(first->message + " at " +
                          std::to_string(first->span.line) + ":" +
                          std::to_string(first->span.column),
                      first->span.line, first->span.column);
}

std::optional<double> try_evaluate(
    const Expr& expr, const std::map<std::string, double>& env) noexcept {
  return eval_expr(expr, env, nullptr, nullptr);
}

const Machine& CompiledProgram::machine(std::string_view name) const {
  for (const Machine& m : machines) {
    if (m.name == name) {
      return m;
    }
  }
  throw SemanticError("no machine named '" + std::string(name) + "'");
}

const ModelSpec& CompiledProgram::model(std::string_view name) const {
  for (const ModelSpec& m : models) {
    if (m.name == name) {
      return m;
    }
  }
  throw SemanticError("no model named '" + std::string(name) + "'");
}

CompiledProgram analyze(const Program& program, DiagnosticEngine& diags) {
  const obs::ScopedSpan span("dsl.analyze");
  return Analyzer(program, diags).run();
}

CompiledProgram analyze(const Program& program) {
  DiagnosticEngine diags;
  CompiledProgram out = analyze(program, diags);
  if (const Diagnostic* first = diags.first_error()) {
    std::string message = first->message + " [" + first->code + "]";
    if (first->span.line > 0) {
      message += " at " + std::to_string(first->span.line) + ":" +
                 std::to_string(first->span.column);
    }
    throw SemanticError(std::move(message), first->span.line,
                        first->span.column);
  }
  return out;
}

CompiledProgram compile(std::string_view source) {
  return analyze(parse(source));
}

CompiledProgram compile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open model file: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return compile(contents.str());
}

}  // namespace dvf::dsl
