#include "dvf/dsl/analyzer.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "dvf/common/error.hpp"
#include "dvf/dsl/parser.hpp"
#include "dvf/dsl/template_expander.hpp"

namespace dvf::dsl {

double evaluate(const Expr& expr, const std::map<std::string, double>& env) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
      return expr.number;
    case Expr::Kind::kIdentifier: {
      const auto it = env.find(expr.identifier);
      if (it == env.end()) {
        throw SemanticError("unknown parameter '" + expr.identifier + "' at " +
                            std::to_string(expr.line) + ":" +
                            std::to_string(expr.column));
      }
      return it->second;
    }
    case Expr::Kind::kUnary:
      return -evaluate(*expr.lhs, env);
    case Expr::Kind::kBinary: {
      const double a = evaluate(*expr.lhs, env);
      const double b = evaluate(*expr.rhs, env);
      switch (expr.op) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/':
          if (b == 0.0) {
            throw SemanticError("division by zero at " +
                                std::to_string(expr.line) + ":" +
                                std::to_string(expr.column));
          }
          return a / b;
        case '%':
          if (b == 0.0) {
            throw SemanticError("modulo by zero at " +
                                std::to_string(expr.line) + ":" +
                                std::to_string(expr.column));
          }
          return std::fmod(a, b);
        case '^': return std::pow(a, b);
        default: break;
      }
      break;
    }
  }
  throw SemanticError("malformed expression node");
}

namespace {

/// Property bag with required/optional accessors and unknown-key detection.
class Properties {
 public:
  Properties(const std::vector<KeyValue>& kvs,
             const std::map<std::string, double>& env, std::string context)
      : context_(std::move(context)) {
    for (const KeyValue& kv : kvs) {
      if (!values_.emplace(kv.key, evaluate(*kv.value, env)).second) {
        throw SemanticError(context_ + ": duplicate property '" + kv.key + "'");
      }
    }
  }

  [[nodiscard]] double require(const std::string& key) {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw SemanticError(context_ + ": missing required property '" + key +
                          "'");
    }
    used_.insert(key);
    return it->second;
  }

  [[nodiscard]] double get(const std::string& key, double fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    used_.insert(key);
    return it->second;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  /// Call after all accesses: rejects typos.
  void reject_unknown() const {
    for (const auto& [key, value] : values_) {
      (void)value;
      if (used_.count(key) == 0) {
        throw SemanticError(context_ + ": unknown property '" + key + "'");
      }
    }
  }

 private:
  std::map<std::string, double> values_;
  std::set<std::string> used_;
  std::string context_;
};

std::uint64_t to_count(double v, const std::string& what) {
  if (v < 0.0 || v != std::floor(v) || v > 9.0e15) {
    throw SemanticError(what + " must be a non-negative integer (got " +
                        std::to_string(v) + ")");
  }
  return static_cast<std::uint64_t>(v);
}

Machine lower_machine(const MachineDecl& decl,
                      const std::map<std::string, double>& env) {
  Properties cache(decl.cache, env, "machine '" + decl.name + "' cache");
  const auto assoc = to_count(cache.require("associativity"),
                              "cache associativity");
  const auto sets = to_count(cache.require("sets"), "cache sets");
  const auto line = to_count(cache.require("line"), "cache line");
  cache.reject_unknown();

  Properties memory(decl.memory, env, "machine '" + decl.name + "' memory");
  double fit;
  if (!decl.ecc.empty()) {
    fit = fit_rate(ecc_from_string(decl.ecc));
    if (memory.has("fit")) {
      throw SemanticError("machine '" + decl.name +
                          "': give either 'fit' or 'ecc', not both");
    }
  } else {
    fit = memory.get("fit", fit_rate(EccScheme::kNone));
  }
  memory.reject_unknown();

  return Machine(decl.name,
                 CacheConfig(decl.name + "-llc",
                             static_cast<std::uint32_t>(assoc),
                             static_cast<std::uint32_t>(sets),
                             static_cast<std::uint32_t>(line)),
                 MemoryModel(fit));
}

ReuseScenario scenario_from(double code) {
  switch (static_cast<int>(code)) {
    case 0: return ReuseScenario::kLruProtects;
    case 1: return ReuseScenario::kUniformEviction;
    case 2: return ReuseScenario::kBlend;
    default:
      throw SemanticError("reuse scenario must be 0 (lru), 1 (uniform) or "
                          "2 (blend)");
  }
}

ModelSpec lower_model(const ModelDecl& decl,
                      const std::map<std::string, double>& env) {
  ModelSpec spec;
  spec.name = decl.name;
  if (decl.time) {
    const double t = evaluate(*decl.time, env);
    if (t < 0.0) {
      throw SemanticError("model '" + decl.name + "': time must be >= 0");
    }
    spec.exec_time_seconds = t;
  }

  // Element sizes, needed when lowering patterns.
  std::map<std::string, std::uint32_t> element_bytes;
  std::map<std::string, std::uint64_t> element_count;

  for (const DataDecl& data : decl.data) {
    if (spec.find(data.name) != nullptr) {
      throw SemanticError("model '" + decl.name + "': duplicate data '" +
                          data.name + "'");
    }
    Properties props(data.properties, env,
                     "data '" + data.name + "' in model '" + decl.name + "'");
    const std::uint64_t esize = to_count(props.get("element_size", 8.0),
                                         "element_size");
    std::uint64_t count = 0;
    if (props.has("elements")) {
      count = to_count(props.require("elements"), "elements");
    } else if (props.has("size")) {
      const std::uint64_t size = to_count(props.require("size"), "size");
      if (esize == 0 || size % esize != 0) {
        throw SemanticError("data '" + data.name +
                            "': size must be a multiple of element_size");
      }
      count = size / esize;
    } else {
      throw SemanticError("data '" + data.name +
                          "': needs 'elements' or 'size'");
    }
    props.reject_unknown();
    if (esize == 0 || count == 0) {
      throw SemanticError("data '" + data.name +
                          "': element_size and elements must be positive");
    }

    DataStructureSpec ds;
    ds.name = data.name;
    ds.size_bytes = count * esize;
    spec.structures.push_back(std::move(ds));
    element_bytes[data.name] = static_cast<std::uint32_t>(esize);
    element_count[data.name] = count;
  }

  AccessOrder order;
  if (!decl.order.empty()) {
    order = parse_access_order(decl.order);
  }

  for (const PatternDecl& pattern : decl.patterns) {
    DataStructureSpec* target = nullptr;
    for (auto& ds : spec.structures) {
      if (ds.name == pattern.target) {
        target = &ds;
        break;
      }
    }
    if (target == nullptr) {
      throw SemanticError("pattern for undeclared data '" + pattern.target +
                          "' in model '" + decl.name + "'");
    }
    const std::string context = "pattern " + pattern.kind + " on '" +
                                pattern.target + "' in model '" + decl.name +
                                "'";
    Properties props(pattern.properties, env, context);

    if (pattern.kind == "stream") {
      if (!pattern.tuples.empty()) {
        throw SemanticError(context + ": stream patterns take no tuples");
      }
      StreamingSpec s;
      s.element_bytes = element_bytes[pattern.target];
      s.element_count = element_count[pattern.target];
      s.stride_elements = to_count(props.get("stride", 1.0), "stride");
      const std::uint64_t repeats = to_count(props.get("repeat", 1.0), "repeat");
      props.reject_unknown();
      for (std::uint64_t i = 0; i < repeats; ++i) {
        target->patterns.emplace_back(s);
      }
    } else if (pattern.kind == "random") {
      if (!pattern.tuples.empty()) {
        throw SemanticError(context + ": random patterns take no tuples");
      }
      RandomSpec r;
      r.element_count = element_count[pattern.target];
      r.element_bytes = element_bytes[pattern.target];
      r.visits_per_iteration = props.require("visits");
      r.iterations = to_count(props.require("iterations"), "iterations");
      r.cache_ratio = props.get("ratio", 1.0);
      props.reject_unknown();
      target->patterns.emplace_back(r);
    } else if (pattern.kind == "template") {
      std::vector<std::int64_t> start;
      for (const KeyTuple& tuple : pattern.tuples) {
        if (tuple.key == "start") {
          for (const ExprPtr& e : tuple.values) {
            start.push_back(static_cast<std::int64_t>(
                std::llround(evaluate(*e, env))));
          }
        } else if (tuple.key == "end") {
          // Validated against count below; the end tuple documents the
          // boundary (paper's MG template) but count drives expansion.
        } else {
          throw SemanticError(context + ": unknown tuple '" + tuple.key + "'");
        }
      }
      if (start.empty()) {
        throw SemanticError(context + ": template needs a 'start (...)' tuple");
      }
      const auto step = static_cast<std::int64_t>(
          std::llround(props.get("step", 1.0)));
      std::uint64_t count = 0;
      if (props.has("count")) {
        count = to_count(props.require("count"), "count");
      } else {
        // Derive the iteration count from the end tuple's first component.
        const KeyTuple* end_tuple = nullptr;
        for (const KeyTuple& tuple : pattern.tuples) {
          if (tuple.key == "end") {
            end_tuple = &tuple;
          }
        }
        if (end_tuple == nullptr || end_tuple->values.empty() || step == 0) {
          throw SemanticError(context +
                              ": template needs 'count' or an 'end (...)' "
                              "tuple with a nonzero step");
        }
        const auto end0 = static_cast<std::int64_t>(
            std::llround(evaluate(*end_tuple->values[0], env)));
        const std::int64_t span = end0 - start[0];
        if (span % step != 0 || span / step < 0) {
          throw SemanticError(context +
                              ": end tuple is not reachable from start with "
                              "the given step");
        }
        count = static_cast<std::uint64_t>(span / step) + 1;
      }
      TemplateSpec t;
      t.element_bytes = element_bytes[pattern.target];
      t.element_indices = expand_progression(start, step, count);
      t.repetitions = to_count(props.get("repeat", 1.0), "repeat");
      t.cache_ratio = props.get("ratio", 1.0);
      props.reject_unknown();
      target->patterns.emplace_back(std::move(t));
    } else if (pattern.kind == "reuse") {
      if (!pattern.tuples.empty()) {
        throw SemanticError(context + ": reuse patterns take no tuples");
      }
      ReuseSpec u;
      u.self_bytes = target->size_bytes;
      if (props.has("other_bytes")) {
        u.other_bytes = to_count(props.require("other_bytes"), "other_bytes");
      } else {
        // Derive the interferer footprint from the access order: every other
        // structure sharing a phase with the target.
        std::uint64_t other = 0;
        for (const std::string& name : order.concurrent_with(pattern.target)) {
          if (const DataStructureSpec* ds = spec.find(name)) {
            other += ds->size_bytes;
          }
        }
        u.other_bytes = other;
      }
      if (props.has("rounds")) {
        u.reuse_rounds = to_count(props.require("rounds"), "rounds");
      } else {
        const std::uint64_t appearances = order.appearances(pattern.target);
        if (appearances < 2) {
          throw SemanticError(context +
                              ": reuse needs 'rounds' or an access order in "
                              "which the structure appears at least twice");
        }
        u.reuse_rounds = appearances - 1;
      }
      u.scenario = scenario_from(props.get("scenario", 0.0));
      // occupancy: 0 = Bernoulli (paper Eq. 8, default), 1 = contiguous.
      const double occupancy = props.get("occupancy", 0.0);
      if (occupancy == 1.0) {
        u.occupancy = ReuseOccupancy::kContiguous;
      } else if (occupancy != 0.0) {
        throw SemanticError(context +
                            ": occupancy must be 0 (bernoulli) or 1 "
                            "(contiguous)");
      }
      props.reject_unknown();
      target->patterns.emplace_back(u);
    } else {
      throw SemanticError(context + ": unknown pattern kind '" + pattern.kind +
                          "' (expected stream|random|template|reuse)");
    }
  }

  return spec;
}

}  // namespace

const Machine& CompiledProgram::machine(std::string_view name) const {
  for (const Machine& m : machines) {
    if (m.name == name) {
      return m;
    }
  }
  throw SemanticError("no machine named '" + std::string(name) + "'");
}

const ModelSpec& CompiledProgram::model(std::string_view name) const {
  for (const ModelSpec& m : models) {
    if (m.name == name) {
      return m;
    }
  }
  throw SemanticError("no model named '" + std::string(name) + "'");
}

CompiledProgram analyze(const Program& program) {
  CompiledProgram out;

  for (const ParamDecl& param : program.params) {
    if (out.params.count(param.name) != 0) {
      throw SemanticError("duplicate parameter '" + param.name + "'");
    }
    out.params[param.name] = evaluate(*param.value, out.params);
  }

  for (const MachineDecl& machine : program.machines) {
    for (const Machine& existing : out.machines) {
      if (existing.name == machine.name) {
        throw SemanticError("duplicate machine '" + machine.name + "'");
      }
    }
    out.machines.push_back(lower_machine(machine, out.params));
  }

  for (const ModelDecl& model : program.models) {
    for (const ModelSpec& existing : out.models) {
      if (existing.name == model.name) {
        throw SemanticError("duplicate model '" + model.name + "'");
      }
    }
    out.models.push_back(lower_model(model, out.params));
  }

  return out;
}

CompiledProgram compile(std::string_view source) {
  return analyze(parse(source));
}

CompiledProgram compile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open model file: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return compile(contents.str());
}

}  // namespace dvf::dsl
