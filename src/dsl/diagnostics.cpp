#include "dvf/dsl/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace dvf::dsl {

const char* to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

void DiagnosticEngine::report(Diagnostic diagnostic) {
  switch (diagnostic.severity) {
    case Severity::kError: ++error_count_; break;
    case Severity::kWarning: ++warning_count_; break;
    case Severity::kNote: break;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticEngine::error(const char* code, SourceSpan span,
                             std::string message, std::string hint) {
  report({code, Severity::kError, span, std::move(message), std::move(hint)});
}

void DiagnosticEngine::warning(const char* code, SourceSpan span,
                               std::string message, std::string hint) {
  report({code, Severity::kWarning, span, std::move(message),
          std::move(hint)});
}

void DiagnosticEngine::note(const char* code, SourceSpan span,
                            std::string message, std::string hint) {
  report({code, Severity::kNote, span, std::move(message), std::move(hint)});
}

const Diagnostic* DiagnosticEngine::first_error() const noexcept {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) {
      return &d;
    }
  }
  return nullptr;
}

std::vector<Diagnostic> DiagnosticEngine::sorted() const {
  std::vector<Diagnostic> out = diagnostics_;
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     if (a.span.column != b.span.column) {
                       return a.span.column < b.span.column;
                     }
                     return static_cast<int>(a.severity) <
                            static_cast<int>(b.severity);
                   });
  return out;
}

namespace {

/// The 1-based `line` of `source`, without its trailing newline / CR.
std::string_view source_line(std::string_view source, int line) {
  std::size_t begin = 0;
  for (int l = 1; l < line; ++l) {
    const std::size_t nl = source.find('\n', begin);
    if (nl == std::string_view::npos) {
      return {};
    }
    begin = nl + 1;
  }
  std::size_t end = source.find('\n', begin);
  if (end == std::string_view::npos) {
    end = source.size();
  }
  std::string_view text = source.substr(begin, end - begin);
  if (!text.empty() && text.back() == '\r') {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::string render_human(std::span<const Diagnostic> diagnostics,
                         std::string_view source, std::string_view filename) {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << filename;
    if (d.span.line > 0) {
      out << ':' << d.span.line << ':' << d.span.column;
    }
    out << ": " << to_string(d.severity) << '[' << d.code
        << "]: " << d.message << '\n';

    const std::string_view excerpt =
        d.span.line > 0 ? source_line(source, d.span.line)
                        : std::string_view{};
    if (!excerpt.empty()) {
      char gutter[16];
      std::snprintf(gutter, sizeof(gutter), "%5d", d.span.line);
      out << gutter << " | " << excerpt << '\n';
      out << "      | ";
      // Pad up to the caret column, copying tabs from the source line so the
      // underline stays aligned however the terminal expands them.
      const int col = std::max(1, d.span.column);
      for (int c = 1; c < col; ++c) {
        const std::size_t i = static_cast<std::size_t>(c - 1);
        out << (i < excerpt.size() && excerpt[i] == '\t' ? '\t' : ' ');
      }
      const int available =
          std::max(1, static_cast<int>(excerpt.size()) - (col - 1));
      const int underline = std::clamp(d.span.length, 1, available);
      out << '^';
      for (int c = 1; c < underline; ++c) {
        out << '~';
      }
      out << '\n';
    }
    if (!d.hint.empty()) {
      out << "  hint: " << d.hint << '\n';
    }
  }
  return out.str();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string render_json_object(const Diagnostic& d,
                               std::string_view filename) {
  std::ostringstream out;
  out << "{\"file\":\"" << json_escape(filename) << "\""
      << ",\"line\":" << d.span.line << ",\"column\":" << d.span.column
      << ",\"length\":" << d.span.length << ",\"severity\":\""
      << to_string(d.severity) << "\",\"code\":\"" << d.code
      << "\",\"message\":\"" << json_escape(d.message) << "\"";
  if (!d.hint.empty()) {
    out << ",\"hint\":\"" << json_escape(d.hint) << "\"";
  }
  out << "}";
  return out.str();
}

std::string render_json(std::span<const Diagnostic> diagnostics,
                        std::string_view filename) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  " << render_json_object(d, filename);
  }
  out << (first ? "]\n" : "\n]\n");
  return out.str();
}

}  // namespace dvf::dsl
