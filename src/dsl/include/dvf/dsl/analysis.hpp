// Source-level driver for the semantic analysis (`dvfc analyze`): parse +
// lower a program, run the abstract-interpretation bounds driver over the
// compiled machines × models, and map the proved verdicts back to source
// spans as DVF-A3xx diagnostics.
//
// A3xx findings are warnings and notes only: a program that parses and
// lowers always analyzes (the bounds driver is total). Lowering errors
// surface through the ordinary Exxx diagnostics, exactly as in lint().
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "dvf/analysis/bounds.hpp"
#include "dvf/dsl/analyzer.hpp"
#include "dvf/dsl/diagnostics.hpp"

namespace dvf::dsl {

/// The result of analyzing one source file.
struct SemanticAnalysis {
  std::string source;               ///< the analyzed text (for rendering)
  CompiledProgram program;          ///< lowered machines + models
  /// Bounds, verdicts and the canonical hash over the compiled program.
  /// Engaged whenever the source parsed (even with lowering errors —
  /// failed models simply do not appear in it).
  std::optional<analysis::AnalysisReport> report;
  std::vector<Diagnostic> diagnostics;  ///< sorted by source position
  std::size_t errors = 0;
  std::size_t warnings = 0;
};

/// Dataflow fact behind DVF-A302 / DVF-W107: every phase the declaration
/// lowered to requests zero steady-state work — including the vacuous case
/// of a declaration that emitted no phases at all (e.g. stream `repeat 0`).
[[nodiscard]] bool provably_zero_work(const PatternProvenance& row,
                                      const CompiledProgram& program);

/// Parses, lowers and analyzes `source`, reporting A3xx findings:
///   DVF-A301  structure provably dead (no phases: N_ha = 0, DVF = 0)
///   DVF-A302  pattern declaration provably does zero steady-state work
///   DVF-A303  working set provably exceeds its share on every machine
///   DVF-A304  pattern evaluation provably rejects on every machine
[[nodiscard]] SemanticAnalysis analyze_models(
    std::string_view source, const analysis::AnalysisOptions& options = {});

/// Reads and analyzes a model file. Throws Error when unreadable.
[[nodiscard]] SemanticAnalysis analyze_models_file(
    const std::string& path, const analysis::AnalysisOptions& options = {});

}  // namespace dvf::dsl
