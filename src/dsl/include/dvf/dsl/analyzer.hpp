// Semantic analysis and lowering: AST → machines + typed ModelSpecs.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dvf/dsl/ast.hpp"
#include "dvf/dsl/diagnostics.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/machine.hpp"

namespace dvf::dsl {

/// Maps one pattern declaration back to the spec phases it lowered to, so
/// consumers of analysis facts (lint, dvfc analyze) can point diagnostics at
/// the declaration's source span. `phase_count` can be 0 (e.g. a stream
/// with `repeat 0` emits no phases) or > 1 (template expansion).
struct PatternProvenance {
  std::string model;      ///< lowered ModelSpec name
  std::string structure;  ///< target DataStructureSpec name
  int line = 0;           ///< pattern keyword location
  int column = 0;
  std::size_t first_phase = 0;  ///< index into the structure's patterns
  std::size_t phase_count = 0;
};

/// The result of compiling a DSL program.
struct CompiledProgram {
  std::map<std::string, double> params;
  std::vector<Machine> machines;
  std::vector<ModelSpec> models;
  /// One entry per pattern declaration of each fully-lowered model, in
  /// declaration order. Models with lowering errors contribute none.
  std::vector<PatternProvenance> provenance;

  /// Named lookups; throw SemanticError when absent.
  [[nodiscard]] const Machine& machine(std::string_view name) const;
  [[nodiscard]] const ModelSpec& model(std::string_view name) const;
};

/// Evaluates an expression against a parameter environment. Exposed for the
/// expression-evaluator tests. Throws SemanticError on unknown identifiers
/// or division by zero.
[[nodiscard]] double evaluate(const Expr& expr,
                              const std::map<std::string, double>& env);

/// Non-throwing evaluation: nullopt on unknown identifier / division by
/// zero, with no diagnostic reported. Used by lint rules to probe values
/// whose errors the analyzer already reported.
[[nodiscard]] std::optional<double> try_evaluate(
    const Expr& expr, const std::map<std::string, double>& env) noexcept;

/// Multi-error analysis: reports every problem into `diags` and returns the
/// declarations that lowered cleanly (a declaration with an error-severity
/// diagnostic is skipped, the rest of the program still lowers). Never
/// throws on model mistakes.
[[nodiscard]] CompiledProgram analyze(const Program& program,
                                      DiagnosticEngine& diags);

/// Throwing wrapper over the diagnostic pass: raises SemanticError (with
/// the source location) on the first error-severity diagnostic. Kept for
/// the many callers that want fail-fast validation (dvfc check, tests).
[[nodiscard]] CompiledProgram analyze(const Program& program);

/// Convenience: parse + analyze.
[[nodiscard]] CompiledProgram compile(std::string_view source);

/// Reads and compiles a model file. Throws Error when unreadable.
[[nodiscard]] CompiledProgram compile_file(const std::string& path);

}  // namespace dvf::dsl
