// Semantic analysis and lowering: AST → machines + typed ModelSpecs.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dvf/dsl/ast.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/machine.hpp"

namespace dvf::dsl {

/// The result of compiling a DSL program.
struct CompiledProgram {
  std::map<std::string, double> params;
  std::vector<Machine> machines;
  std::vector<ModelSpec> models;

  /// Named lookups; throw SemanticError when absent.
  [[nodiscard]] const Machine& machine(std::string_view name) const;
  [[nodiscard]] const ModelSpec& model(std::string_view name) const;
};

/// Evaluates an expression against a parameter environment. Exposed for the
/// expression-evaluator tests. Throws SemanticError on unknown identifiers
/// or division by zero.
[[nodiscard]] double evaluate(const Expr& expr,
                              const std::map<std::string, double>& env);

/// Analyzes a parsed program. Throws SemanticError on duplicate names,
/// unknown properties, missing required properties, or invalid values.
[[nodiscard]] CompiledProgram analyze(const Program& program);

/// Convenience: parse + analyze.
[[nodiscard]] CompiledProgram compile(std::string_view source);

/// Reads and compiles a model file. Throws Error when unreadable.
[[nodiscard]] CompiledProgram compile_file(const std::string& path);

}  // namespace dvf::dsl
