// Semantic analysis and lowering: AST → machines + typed ModelSpecs.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dvf/dsl/ast.hpp"
#include "dvf/dsl/diagnostics.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/machine.hpp"

namespace dvf::dsl {

/// The result of compiling a DSL program.
struct CompiledProgram {
  std::map<std::string, double> params;
  std::vector<Machine> machines;
  std::vector<ModelSpec> models;

  /// Named lookups; throw SemanticError when absent.
  [[nodiscard]] const Machine& machine(std::string_view name) const;
  [[nodiscard]] const ModelSpec& model(std::string_view name) const;
};

/// Evaluates an expression against a parameter environment. Exposed for the
/// expression-evaluator tests. Throws SemanticError on unknown identifiers
/// or division by zero.
[[nodiscard]] double evaluate(const Expr& expr,
                              const std::map<std::string, double>& env);

/// Non-throwing evaluation: nullopt on unknown identifier / division by
/// zero, with no diagnostic reported. Used by lint rules to probe values
/// whose errors the analyzer already reported.
[[nodiscard]] std::optional<double> try_evaluate(
    const Expr& expr, const std::map<std::string, double>& env) noexcept;

/// Multi-error analysis: reports every problem into `diags` and returns the
/// declarations that lowered cleanly (a declaration with an error-severity
/// diagnostic is skipped, the rest of the program still lowers). Never
/// throws on model mistakes.
[[nodiscard]] CompiledProgram analyze(const Program& program,
                                      DiagnosticEngine& diags);

/// Throwing wrapper over the diagnostic pass: raises SemanticError (with
/// the source location) on the first error-severity diagnostic. Kept for
/// the many callers that want fail-fast validation (dvfc check, tests).
[[nodiscard]] CompiledProgram analyze(const Program& program);

/// Convenience: parse + analyze.
[[nodiscard]] CompiledProgram compile(std::string_view source);

/// Reads and compiles a model file. Throws Error when unreadable.
[[nodiscard]] CompiledProgram compile_file(const std::string& path);

}  // namespace dvf::dsl
