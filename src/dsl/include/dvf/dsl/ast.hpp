// Abstract syntax tree of the Aspen-extended resilience modeling DSL.
//
// Grammar sketch (see models/*.aspen for concrete programs):
//
//   program      := (param | machine | model)*
//   param        := 'param' IDENT '=' expr ';'
//   machine      := 'machine' STRING '{' ('cache'|'memory') '{' kv* '}' ... '}'
//   model        := 'model' STRING '{' model_item* '}'
//   model_item   := 'time' expr ';'
//                 | 'order' STRING ';'
//                 | 'data' IDENT '{' kv* '}'
//                 | 'pattern' IDENT IDENT '{' (kv | tuplekv)* '}'
//   kv           := IDENT expr ';'
//   tuplekv      := IDENT '(' expr (',' expr)* ')' ';'
//   expr         := standard arithmetic over numbers and params
//                   (+ - * / % ^, unary -, parentheses)
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace dvf::dsl {

/// Arithmetic expression node.
struct Expr {
  enum class Kind { kNumber, kIdentifier, kUnary, kBinary };

  Kind kind = Kind::kNumber;
  double number = 0.0;      ///< kNumber
  std::string identifier;   ///< kIdentifier
  char op = 0;              ///< kUnary ('-') / kBinary ('+','-','*','/','%','^')
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
  int line = 0;
  int column = 0;
};
using ExprPtr = std::unique_ptr<Expr>;

/// IDENT expr ';' — a scalar property.
struct KeyValue {
  std::string key;
  ExprPtr value;
  int line = 0;
  int column = 0;
};

/// IDENT '(' expr, ... ')' ';' — a tuple property (template start/end).
struct KeyTuple {
  std::string key;
  std::vector<ExprPtr> values;
  int line = 0;
  int column = 0;
};

struct ParamDecl {
  std::string name;
  ExprPtr value;
  int line = 0;
  int column = 0;
};

struct MachineDecl {
  std::string name;
  std::vector<KeyValue> cache;   ///< associativity / sets / line
  std::vector<KeyValue> memory;  ///< fit (or ecc via fit value)
  std::string ecc;               ///< optional: 'ecc "secded";' in memory block
  int ecc_line = 0;              ///< location of the 'ecc' property, if any
  int ecc_column = 0;
  int line = 0;
  int column = 0;
};

struct DataDecl {
  std::string name;
  std::vector<KeyValue> properties;  ///< elements, element_size
  int line = 0;
  int column = 0;
};

struct PatternDecl {
  std::string target;  ///< data structure name
  std::string kind;    ///< stream | random | template | reuse
  std::vector<KeyValue> properties;
  std::vector<KeyTuple> tuples;  ///< template start/end tuples
  int line = 0;
  int column = 0;
};

struct ModelDecl {
  std::string name;
  ExprPtr time;  ///< optional execution time (seconds)
  std::string order;  ///< optional access-order string, e.g. "r(Ap)p(xp)"
  int order_line = 0;  ///< location of the order string literal, if any
  int order_column = 0;
  std::vector<DataDecl> data;
  std::vector<PatternDecl> patterns;
  int line = 0;
  int column = 0;
};

struct Program {
  std::vector<ParamDecl> params;
  std::vector<MachineDecl> machines;
  std::vector<ModelDecl> models;
};

}  // namespace dvf::dsl
