// Multi-error diagnostics for the DVF DSL front end.
//
// Instead of throwing on the first problem, the analyzer and the lint rule
// pass report every finding into a DiagnosticEngine. Each Diagnostic carries
// a stable code (DVF-Exxx / DVF-Wxxx / DVF-Nxxx), a severity, a source span
// (line/column/length from the token locations threaded through the AST), a
// message, and an optional fix-it hint. Renderers produce human-readable
// caret output and machine-readable JSON (one object per diagnostic) for CI.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dvf::dsl {

enum class Severity {
  kError,    ///< the program is rejected / its DVF would be meaningless
  kWarning,  ///< almost certainly a mistake, but lowering proceeds
  kNote,     ///< model-sanity observation worth a human look
};

[[nodiscard]] const char* to_string(Severity severity) noexcept;

/// Half-open source region: `length` characters starting at line:column
/// (both 1-based, tabs count as one column). line 0 = no location (e.g. a
/// whole-program finding).
struct SourceSpan {
  int line = 0;
  int column = 0;
  int length = 1;
};

/// One finding. `code` is stable across releases (documented in
/// docs/dsl.md's diagnostics catalog) so CI can match on it.
struct Diagnostic {
  std::string code;      ///< e.g. "DVF-E012"
  Severity severity = Severity::kError;
  SourceSpan span;
  std::string message;
  std::string hint;      ///< optional fix-it suggestion
};

/// Stable diagnostic codes. Exxx are errors, Wxxx warnings, Nxxx notes;
/// numbers never get reused. The catalog in docs/dsl.md explains each.
namespace codes {
inline constexpr const char* kSyntax = "DVF-E001";
inline constexpr const char* kUnknownIdentifier = "DVF-E002";
inline constexpr const char* kDivisionByZero = "DVF-E003";
inline constexpr const char* kDuplicateDeclaration = "DVF-E004";
inline constexpr const char* kDuplicateProperty = "DVF-E005";
inline constexpr const char* kUnknownProperty = "DVF-E006";
inline constexpr const char* kMissingProperty = "DVF-E007";
inline constexpr const char* kNotACount = "DVF-E008";
inline constexpr const char* kUndeclaredData = "DVF-E009";
inline constexpr const char* kUnknownPatternKind = "DVF-E010";
inline constexpr const char* kBadTuple = "DVF-E011";
inline constexpr const char* kRandomInfeasible = "DVF-E012";
inline constexpr const char* kTemplateOutOfBounds = "DVF-E013";
inline constexpr const char* kValueOutOfRange = "DVF-E014";
inline constexpr const char* kInconsistentSize = "DVF-E015";
inline constexpr const char* kConflictingMemorySpec = "DVF-E016";
inline constexpr const char* kNegativeQuantity = "DVF-E017";
inline constexpr const char* kNumberOverflow = "DVF-E018";
inline constexpr const char* kTiledGeometry = "DVF-E019";
inline constexpr const char* kUnusedParam = "DVF-W101";
inline constexpr const char* kDataNeverAccessed = "DVF-W102";
inline constexpr const char* kNoMachine = "DVF-W103";
inline constexpr const char* kStrideExceedsExtent = "DVF-W104";
inline constexpr const char* kStrideSkipsLines = "DVF-W105";
inline constexpr const char* kElementSpansLines = "DVF-W106";
inline constexpr const char* kZeroWorkPattern = "DVF-W107";
inline constexpr const char* kCacheShareBelowElement = "DVF-W108";
inline constexpr const char* kReuseOverflowsCache = "DVF-W109";
inline constexpr const char* kTriviallyZeroDvf = "DVF-W110";
inline constexpr const char* kEmptyModel = "DVF-W111";
inline constexpr const char* kTileExceedsFootprint = "DVF-W112";
inline constexpr const char* kTileNoReuse = "DVF-W113";
inline constexpr const char* kReuseNoInterference = "DVF-N201";
inline constexpr const char* kTemplateExceedsShare = "DVF-N202";
inline constexpr const char* kTileExceedsShare = "DVF-N203";
// A3xx: facts proved by the semantic analysis (dvfc analyze). Warnings and
// notes only — a model that parses and lowers always analyzes.
inline constexpr const char* kAnalysisDeadStructure = "DVF-A301";
inline constexpr const char* kAnalysisZeroWork = "DVF-A302";
inline constexpr const char* kAnalysisExceedsAllShares = "DVF-A303";
inline constexpr const char* kAnalysisRejectsEverywhere = "DVF-A304";
}  // namespace codes

/// Collects diagnostics across a front-end pass. Never throws; callers that
/// want throwing behavior raise on the first error after the pass finishes
/// (see dsl::analyze / dsl::compile).
class DiagnosticEngine {
 public:
  void report(Diagnostic diagnostic);
  void error(const char* code, SourceSpan span, std::string message,
             std::string hint = "");
  void warning(const char* code, SourceSpan span, std::string message,
               std::string hint = "");
  void note(const char* code, SourceSpan span, std::string message,
            std::string hint = "");

  [[nodiscard]] bool has_errors() const noexcept { return error_count_ != 0; }
  [[nodiscard]] std::size_t error_count() const noexcept {
    return error_count_;
  }
  [[nodiscard]] std::size_t warning_count() const noexcept {
    return warning_count_;
  }
  [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }

  /// In report order (the analyzer reports roughly top-to-bottom already).
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  /// First error-severity diagnostic, or nullptr.
  [[nodiscard]] const Diagnostic* first_error() const noexcept;
  /// Copy sorted by (line, column, severity) for stable presentation.
  [[nodiscard]] std::vector<Diagnostic> sorted() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

/// Human-readable rendering with source excerpt and caret underline:
///
///   file.aspen:4:15: error[DVF-E012]: random pattern visits 500 ...
///       4 |   pattern T random { visits 500; iterations 10; }
///         |                      ^~~~~~
///     hint: Eqs. 5-7 need k <= N
///
/// `source` is the full program text (used for the excerpt; tabs are
/// preserved so the caret stays aligned); `filename` prefixes each line.
[[nodiscard]] std::string render_human(std::span<const Diagnostic> diagnostics,
                                       std::string_view source,
                                       std::string_view filename);

/// Machine-readable rendering: a JSON array, one object per diagnostic,
/// each on its own line:
///   {"file":"x.aspen","line":4,"column":15,"length":6,
///    "severity":"error","code":"DVF-E012","message":"...","hint":"..."}
[[nodiscard]] std::string render_json(std::span<const Diagnostic> diagnostics,
                                      std::string_view filename);

/// One diagnostic as a JSON object (no surrounding array). Lets callers
/// combine diagnostics from several files into a single array.
[[nodiscard]] std::string render_json_object(const Diagnostic& diagnostic,
                                             std::string_view filename);

/// JSON string-body escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace dvf::dsl
