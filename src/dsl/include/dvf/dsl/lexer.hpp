// Lexer for the Aspen-extended resilience modeling DSL.
//
// Supports: identifiers, numeric literals with scientific notation and
// KB/MB/GB binary suffixes, double-quoted strings, // and /* */ comments,
// and the operator/punctuation set of the expression grammar.
#pragma once

#include <string_view>
#include <vector>

#include "dvf/dsl/token.hpp"

namespace dvf::dsl {

/// Tokenizes the whole source; the trailing token is always kEndOfFile.
/// Throws ParseError on malformed input (bad character, unterminated string
/// or comment, malformed number).
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace dvf::dsl
