// `dvfc lint`: the model-sanity rule pass over DVF DSL programs.
//
// Linting runs the whole front end in multi-error mode (lexer/parser
// diagnostics, then the collecting analyzer) and layers a registry of
// semantic rules grounded in the paper's math on top: streaming
// stride/element/cache-line consistency (Eqs. 3-4), random-pattern
// feasibility (Eqs. 5-7 need k <= N), template indices versus declared
// bounds and reuse distance versus cache capacity, reuse degeneracies
// (Eqs. 8-15), unit sanity for FIT/size/time, and hygiene (unused
// declarations, zero-work patterns). A program can compile yet still carry
// warnings — lint is the stricter tool.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "dvf/dsl/analyzer.hpp"
#include "dvf/dsl/diagnostics.hpp"

namespace dvf::dsl {

/// One registered rule, for documentation and tooling (`docs/dsl.md` lists
/// the full diagnostic catalog).
struct LintRuleInfo {
  const char* name;   ///< kebab-case rule id, e.g. "random-feasibility"
  const char* codes;  ///< comma-separated diagnostic codes it can emit
};

/// The registry of semantic model-sanity rules, in execution order.
[[nodiscard]] std::span<const LintRuleInfo> lint_rule_catalog();

/// Everything one lint invocation produced.
struct LintResult {
  std::string source;                   ///< the program text (for rendering)
  std::vector<Diagnostic> diagnostics;  ///< sorted by source position
  CompiledProgram program;              ///< the cleanly lowered declarations
  std::size_t errors = 0;
  std::size_t warnings = 0;

  /// No error-severity diagnostics (warnings/notes may remain).
  [[nodiscard]] bool clean() const noexcept { return errors == 0; }
};

/// Lints a program: collects front-end diagnostics and runs every rule in
/// the registry. Never throws on model mistakes (only on internal errors).
[[nodiscard]] LintResult lint(std::string_view source);

/// Reads and lints a model file. Throws dvf::Error when unreadable.
[[nodiscard]] LintResult lint_file(const std::string& path);

}  // namespace dvf::dsl
