// Recursive-descent parser for the Aspen-extended DSL.
#pragma once

#include <string_view>

#include "dvf/dsl/ast.hpp"

namespace dvf::dsl {

/// Parses a whole program. Throws ParseError with source positions.
[[nodiscard]] Program parse(std::string_view source);

}  // namespace dvf::dsl
