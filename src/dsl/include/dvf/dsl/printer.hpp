// Canonical pretty-printer for DSL programs: formats an AST back to source
// text that re-parses to an equivalent program (round-trip tested). Used by
// the CLI's `fmt` command and as a debugging aid.
#pragma once

#include <string>

#include "dvf/dsl/ast.hpp"

namespace dvf::dsl {

/// Formats an expression with minimal parentheses.
[[nodiscard]] std::string print(const Expr& expr);

/// Formats a whole program in canonical style (two-space indent, one
/// declaration per line, ';'-terminated properties).
[[nodiscard]] std::string print(const Program& program);

}  // namespace dvf::dsl
