// Expansion of the paper's template syntax and access-order strings.
//
// A template is written as (start tuple) : step : count — the references of
// the first iteration, advanced by `step` elements each iteration (the MG
// example of §III-D advances four stencil references by one until the grid
// boundary). An access-order string like "r(Ap)p(xp)(Ap)r(rp)" lists the
// phase sequence of the structures within one outer iteration; parenthesized
// groups are concurrently accessed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dvf/common/budget.hpp"
#include "dvf/common/result.hpp"

namespace dvf::dsl {

/// Total form of expand_progression: classified EvalError instead of an
/// exception. domain_error for an empty start tuple, zero count or a
/// negative index; overflow when start + r*step leaves the int64 range;
/// resource_limit when the expanded size start.size()*count exceeds the
/// budget's expansion cap (the guard against (0):1:2^62-style expansion
/// bombs). `budget` may be null (process-default limits apply).
[[nodiscard]] Result<std::vector<std::uint64_t>> try_expand_progression(
    std::span<const std::int64_t> start, std::int64_t step,
    std::uint64_t count, EvalBudget* budget = nullptr);

/// Expands a template progression into the full element-index reference
/// string: iteration r references start[0]+r*step, start[1]+r*step, ...
/// Throws InvalidArgumentError on empty start, zero count, or a progression
/// that would underflow below element 0 (thin wrapper over
/// try_expand_progression).
[[nodiscard]] std::vector<std::uint64_t> expand_progression(
    std::span<const std::int64_t> start, std::int64_t step,
    std::uint64_t count);

/// One phase of an access order: the structures accessed (concurrently when
/// more than one).
using AccessPhase = std::vector<std::string>;

/// Parsed access-order string.
struct AccessOrder {
  std::vector<AccessPhase> phases;

  /// How many phases the named structure appears in.
  [[nodiscard]] std::uint64_t appearances(std::string_view name) const;
  /// Names that ever share a phase with `name` (each listed once).
  [[nodiscard]] std::vector<std::string> concurrent_with(
      std::string_view name) const;
};

/// Parses "r(Ap)p(xp)(Ap)r(rp)"-style strings. Structure names are single
/// characters (the paper's notation). Throws ParseError on unbalanced
/// parentheses or stray characters.
[[nodiscard]] AccessOrder parse_access_order(std::string_view text);

}  // namespace dvf::dsl
