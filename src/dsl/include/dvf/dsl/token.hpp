// Tokens of the Aspen-extended resilience modeling DSL.
#pragma once

#include <cstdint>
#include <string>

namespace dvf::dsl {

enum class TokenKind {
  kIdentifier,  ///< keywords are contextual identifiers
  kNumber,      ///< numeric literal, value already scaled by any KB/MB suffix
  kString,      ///< double-quoted
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kEquals,
  kColon,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kCaret,
  kEndOfFile,
};

[[nodiscard]] const char* to_string(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;     ///< identifier / string contents / literal spelling
  double number = 0.0;  ///< for kNumber
  int line = 0;         ///< 1-based; the token's first character
  int column = 0;       ///< 1-based; tabs count as one column
  int length = 0;       ///< source characters covered (0 for end-of-file)

  [[nodiscard]] bool is_word(const char* word) const {
    return kind == TokenKind::kIdentifier && text == word;
  }
};

}  // namespace dvf::dsl
