#include "dvf/dsl/lexer.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "dvf/common/error.hpp"
#include "dvf/dsl/diagnostics.hpp"

namespace dvf::dsl {

const char* to_string(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kColon: return "':'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kEndOfFile: return "end of file";
  }
  return "?";
}

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  [[nodiscard]] bool done() const noexcept { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char ch = source_[pos_++];
    if (ch == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return ch;
  }
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool is_ident_start(char ch) {
  return std::isalpha(static_cast<unsigned char>(ch)) || ch == '_';
}
bool is_ident_char(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  const auto simple = [&](TokenKind kind, int line, int column) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    t.length = 1;
    tokens.push_back(std::move(t));
  };

  while (!cur.done()) {
    const int line = cur.line();
    const int column = cur.column();
    const std::size_t start = cur.offset();
    const char ch = cur.peek();

    if (std::isspace(static_cast<unsigned char>(ch))) {
      cur.advance();
      continue;
    }

    // Comments.
    if (ch == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') {
        cur.advance();
      }
      continue;
    }
    if (ch == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      bool closed = false;
      while (!cur.done()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          cur.advance();
          cur.advance();
          closed = true;
          break;
        }
        cur.advance();
      }
      if (!closed) {
        throw ParseError("unterminated block comment", line, column);
      }
      continue;
    }

    // Identifiers / keywords.
    if (is_ident_start(ch)) {
      std::string word;
      while (!cur.done() && is_ident_char(cur.peek())) {
        word += cur.advance();
      }
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = std::move(word);
      t.line = line;
      t.column = column;
      t.length = static_cast<int>(cur.offset() - start);
      tokens.push_back(std::move(t));
      continue;
    }

    // Numbers: digits [. digits] [e[+-]digits] [KB|MB|GB].
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
      std::string literal;
      while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
        literal += cur.advance();
      }
      if (cur.peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(cur.peek(1)))) {
        literal += cur.advance();
        while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
          literal += cur.advance();
        }
      }
      if ((cur.peek() == 'e' || cur.peek() == 'E') &&
          (std::isdigit(static_cast<unsigned char>(cur.peek(1))) ||
           ((cur.peek(1) == '+' || cur.peek(1) == '-') &&
            std::isdigit(static_cast<unsigned char>(cur.peek(2)))))) {
        literal += cur.advance();
        if (cur.peek() == '+' || cur.peek() == '-') {
          literal += cur.advance();
        }
        while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
          literal += cur.advance();
        }
      }

      double value = 0.0;
      const char* begin = literal.c_str();
      char* end = nullptr;
      errno = 0;
      value = std::strtod(begin, &end);
      if (end != begin + literal.size()) {
        throw ParseError("malformed numeric literal '" + literal + "'", line,
                         column, static_cast<int>(literal.size()));
      }
      // strtod reports range errors through errno: a literal like 1e999
      // converts to +inf (silently poisoning every model quantity downstream)
      // and sets ERANGE. Underflow to zero/denormal also sets ERANGE but is a
      // representable approximation, so only reject the non-finite case.
      if (errno == ERANGE && !std::isfinite(value)) {
        throw ParseError("numeric literal '" + literal +
                             "' overflows the representable range",
                         line, column, static_cast<int>(literal.size()),
                         codes::kNumberOverflow);
      }

      // Binary size suffix (must immediately follow the digits).
      double scale = 1.0;
      if ((cur.peek() == 'K' || cur.peek() == 'M' || cur.peek() == 'G') &&
          cur.peek(1) == 'B') {
        const char prefix = cur.advance();
        cur.advance();  // 'B'
        scale = prefix == 'K' ? 1024.0 : prefix == 'M' ? 1048576.0
                                                       : 1073741824.0;
        literal += prefix;
        literal += 'B';
      }
      if (!std::isfinite(value * scale)) {
        // A finite mantissa can still overflow through the size suffix
        // (1e308KB); same classification as the bare-literal overflow.
        throw ParseError("numeric literal '" + literal +
                             "' overflows the representable range",
                         line, column, static_cast<int>(literal.size()),
                         codes::kNumberOverflow);
      }

      Token t;
      t.kind = TokenKind::kNumber;
      t.text = std::move(literal);
      t.number = value * scale;
      t.line = line;
      t.column = column;
      t.length = static_cast<int>(cur.offset() - start);
      tokens.push_back(std::move(t));
      continue;
    }

    // Strings.
    if (ch == '"') {
      cur.advance();
      std::string contents;
      bool closed = false;
      while (!cur.done()) {
        const char c = cur.advance();
        if (c == '"') {
          closed = true;
          break;
        }
        if (c == '\\' && cur.peek() == '"') {
          contents += cur.advance();
          continue;
        }
        contents += c;
      }
      if (!closed) {
        throw ParseError("unterminated string literal", line, column);
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(contents);
      t.line = line;
      t.column = column;
      t.length = static_cast<int>(cur.offset() - start);
      tokens.push_back(std::move(t));
      continue;
    }

    cur.advance();
    switch (ch) {
      case '{': simple(TokenKind::kLBrace, line, column); break;
      case '}': simple(TokenKind::kRBrace, line, column); break;
      case '(': simple(TokenKind::kLParen, line, column); break;
      case ')': simple(TokenKind::kRParen, line, column); break;
      case ',': simple(TokenKind::kComma, line, column); break;
      case ';': simple(TokenKind::kSemicolon, line, column); break;
      case '=': simple(TokenKind::kEquals, line, column); break;
      case ':': simple(TokenKind::kColon, line, column); break;
      case '+': simple(TokenKind::kPlus, line, column); break;
      case '-': simple(TokenKind::kMinus, line, column); break;
      case '*': simple(TokenKind::kStar, line, column); break;
      case '/': simple(TokenKind::kSlash, line, column); break;
      case '%': simple(TokenKind::kPercent, line, column); break;
      case '^': simple(TokenKind::kCaret, line, column); break;
      default:
        throw ParseError(std::string("unexpected character '") + ch + "'",
                         line, column);
    }
  }

  Token eof;
  eof.kind = TokenKind::kEndOfFile;
  eof.line = cur.line();
  eof.column = cur.column();
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace dvf::dsl
