#include "dvf/dsl/lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "dvf/analysis/bounds.hpp"
#include "dvf/common/error.hpp"
#include "dvf/dsl/analysis.hpp"
#include "dvf/dsl/parser.hpp"
#include "dvf/obs/obs.hpp"

namespace dvf::dsl {

namespace {

SourceSpan key_span(const KeyValue& kv) {
  return {kv.line, kv.column, static_cast<int>(kv.key.size())};
}

SourceSpan tuple_span(const KeyTuple& tuple) {
  return {tuple.line, tuple.column, static_cast<int>(tuple.key.size())};
}

std::string num_str(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

std::string bytes_str(double bytes) {
  std::ostringstream out;
  if (bytes >= 1024.0 * 1024.0) {
    out << bytes / (1024.0 * 1024.0) << " MB";
  } else if (bytes >= 1024.0) {
    out << bytes / 1024.0 << " KB";
  } else {
    out << bytes << " bytes";
  }
  return out.str();
}

/// What the rules know about one declared data structure.
struct DataInfo {
  const DataDecl* decl = nullptr;
  std::optional<std::uint64_t> elements;
  std::optional<std::uint64_t> element_bytes;
  int pattern_count = 0;
};

struct LintContext {
  const Program& ast;
  const CompiledProgram& program;
  DiagnosticEngine& diags;
  /// Bounds and verdicts over the compiled program; the dataflow-fact rules
  /// (W102/W107/W109/N202) consult it instead of re-deriving locally.
  const analysis::AnalysisReport& report;
  /// Per model declaration: data name -> info. Values the analyzer already
  /// rejected stay nullopt and the rules skip them quietly.
  std::map<const ModelDecl*, std::map<std::string, DataInfo>> data;

  [[nodiscard]] std::optional<double> eval(const Expr& expr) const {
    return try_evaluate(expr, program.params);
  }

  /// Bounds of a compiled structure, or nullptr when the model did not
  /// lower (AST-only fallbacks apply then).
  [[nodiscard]] const analysis::StructureBounds* bounds_of(
      const std::string& model, const std::string& data_name) const {
    const analysis::ModelBounds* bounds = report.find_model(model);
    if (bounds == nullptr) {
      return nullptr;
    }
    for (const analysis::StructureBounds& s : bounds->structures) {
      if (s.name == data_name) {
        return &s;
      }
    }
    return nullptr;
  }

  /// Lowering provenance of one pattern declaration, or nullptr when its
  /// model did not compile.
  [[nodiscard]] const PatternProvenance* provenance_for(
      const std::string& model, const PatternDecl& pattern) const {
    for (const PatternProvenance& row : program.provenance) {
      if (row.model == model && row.line == pattern.line &&
          row.column == pattern.column) {
        return &row;
      }
    }
    return nullptr;
  }

  /// First lowered phase of a declaration, or nullptr.
  [[nodiscard]] const PatternSpec* lowered_phase(
      const PatternProvenance& row) const {
    for (const ModelSpec& model : program.models) {
      if (model.name != row.model) {
        continue;
      }
      const DataStructureSpec* target = model.find(row.structure);
      if (target != nullptr && row.phase_count > 0 &&
          row.first_phase < target->patterns.size()) {
        return &target->patterns[row.first_phase];
      }
      return nullptr;
    }
    return nullptr;
  }

  /// First occurrence of a property key, or nullptr.
  [[nodiscard]] static const KeyValue* find(const std::vector<KeyValue>& kvs,
                                            std::string_view key) {
    for (const KeyValue& kv : kvs) {
      if (kv.key == key) {
        return &kv;
      }
    }
    return nullptr;
  }

  /// Property value: the default when absent, nullopt when unevaluable.
  [[nodiscard]] std::optional<double> prop(const std::vector<KeyValue>& kvs,
                                           std::string_view key,
                                           double fallback) const {
    const KeyValue* kv = find(kvs, key);
    return kv == nullptr ? std::optional<double>(fallback) : eval(*kv->value);
  }

  /// Like prop() but coerced to a count; nullopt when absent-by-default is
  /// impossible (negative / fractional values the analyzer already flagged).
  [[nodiscard]] std::optional<std::uint64_t> count_prop(
      const std::vector<KeyValue>& kvs, std::string_view key,
      double fallback) const {
    const auto v = prop(kvs, key, fallback);
    if (!v || *v < 0.0 || *v != std::floor(*v) || *v > 9.0e15) {
      return std::nullopt;
    }
    return static_cast<std::uint64_t>(*v);
  }

  /// Span of a property key, or the pattern/data declaration when absent.
  [[nodiscard]] static SourceSpan prop_span(const std::vector<KeyValue>& kvs,
                                            std::string_view key,
                                            SourceSpan fallback) {
    const KeyValue* kv = find(kvs, key);
    return kv == nullptr ? fallback : key_span(*kv);
  }
};

void collect_data_info(LintContext& ctx) {
  for (const ModelDecl& model : ctx.ast.models) {
    auto& table = ctx.data[&model];
    for (const DataDecl& data : model.data) {
      DataInfo info;
      info.decl = &data;
      info.element_bytes =
          ctx.count_prop(data.properties, "element_size", 8.0);
      if (LintContext::find(data.properties, "elements") != nullptr) {
        info.elements = ctx.count_prop(data.properties, "elements", 0.0);
      } else if (LintContext::find(data.properties, "size") != nullptr) {
        const auto size = ctx.count_prop(data.properties, "size", 0.0);
        if (size && info.element_bytes && *info.element_bytes != 0 &&
            *size % *info.element_bytes == 0) {
          info.elements = *size / *info.element_bytes;
        }
      }
      table.emplace(data.name, info);
    }
    for (const PatternDecl& pattern : model.patterns) {
      const auto it = table.find(pattern.target);
      if (it != table.end()) {
        ++it->second.pattern_count;
      }
    }
  }
}

// ---- hygiene rules -------------------------------------------------------

void rule_unused_param(LintContext& ctx) {
  std::set<std::string> used;
  const std::function<void(const Expr&)> walk = [&](const Expr& expr) {
    if (expr.kind == Expr::Kind::kIdentifier) {
      used.insert(expr.identifier);
    }
    if (expr.lhs) walk(*expr.lhs);
    if (expr.rhs) walk(*expr.rhs);
  };
  const auto walk_kvs = [&](const std::vector<KeyValue>& kvs) {
    for (const KeyValue& kv : kvs) {
      walk(*kv.value);
    }
  };
  for (const ParamDecl& param : ctx.ast.params) {
    walk(*param.value);
  }
  for (const MachineDecl& machine : ctx.ast.machines) {
    walk_kvs(machine.cache);
    walk_kvs(machine.memory);
  }
  for (const ModelDecl& model : ctx.ast.models) {
    if (model.time) walk(*model.time);
    for (const DataDecl& data : model.data) {
      walk_kvs(data.properties);
    }
    for (const PatternDecl& pattern : model.patterns) {
      walk_kvs(pattern.properties);
      for (const KeyTuple& tuple : pattern.tuples) {
        for (const ExprPtr& e : tuple.values) {
          walk(*e);
        }
      }
    }
  }

  std::set<std::string> reported;
  for (const ParamDecl& param : ctx.ast.params) {
    if (used.count(param.name) == 0 && reported.insert(param.name).second) {
      ctx.diags.warning(codes::kUnusedParam,
                        {param.line, param.column, 5},
                        "parameter '" + param.name + "' is never used",
                        "remove it, or reference it in an expression");
    }
  }
}

void rule_data_never_accessed(LintContext& ctx) {
  for (const ModelDecl& model : ctx.ast.models) {
    for (const auto& [name, info] : ctx.data[&model]) {
      // The analysis' deadness verdict (zero lowered phases) is the ground
      // truth for compiled models; pattern_count keeps uncompiled models
      // covered. A structure whose declarations all lower to zero phases is
      // dead too, but that is DVF-A302's finding, not W102's.
      const analysis::StructureBounds* bounds =
          ctx.bounds_of(model.name, name);
      const bool dead = bounds != nullptr ? bounds->dead
                                          : info.pattern_count == 0;
      if (dead && info.pattern_count == 0) {
        ctx.diags.warning(
            codes::kDataNeverAccessed,
            {info.decl->line, info.decl->column, 4},
            "data '" + name + "' in model '" + model.name +
                "' has no access pattern; it contributes footprint S_d but "
                "zero N_ha",
            "attach a 'pattern " + name +
                " <stream|random|template|reuse|tiled> { ... }' or drop it");
      }
    }
  }
}

void rule_machine_coverage(LintContext& ctx) {
  if (ctx.ast.models.empty() || !ctx.ast.machines.empty()) {
    return;
  }
  const ModelDecl& first = ctx.ast.models.front();
  ctx.diags.warning(codes::kNoMachine, {first.line, first.column, 5},
                    "program declares model(s) but no machine; there is "
                    "nothing to evaluate DVF against",
                    "add: machine \"name\" { cache { associativity ...; "
                    "sets ...; line ...; } memory { fit ...; } }");
}

void rule_empty_model(LintContext& ctx) {
  for (const ModelDecl& model : ctx.ast.models) {
    if (model.data.empty()) {
      ctx.diags.warning(codes::kEmptyModel, {model.line, model.column, 5},
                        "model '" + model.name +
                            "' declares no data structures; its DVF is "
                            "trivially zero");
    }
  }
}

// ---- model-sanity rules --------------------------------------------------

void rule_streaming_geometry(LintContext& ctx) {
  for (const ModelDecl& model : ctx.ast.models) {
    for (const PatternDecl& pattern : model.patterns) {
      if (pattern.kind != "stream") {
        continue;
      }
      const auto it = ctx.data[&model].find(pattern.target);
      if (it == ctx.data[&model].end()) {
        continue;
      }
      const DataInfo& info = it->second;
      const SourceSpan fallback{pattern.line, pattern.column, 7};
      const auto stride =
          ctx.count_prop(pattern.properties, "stride", 1.0);
      if (!stride || !info.element_bytes) {
        continue;
      }
      if (info.elements && *info.elements > 1 && *stride >= *info.elements) {
        ctx.diags.warning(
            codes::kStrideExceedsExtent,
            LintContext::prop_span(pattern.properties, "stride", fallback),
            "stream over '" + pattern.target + "' strides " +
                std::to_string(*stride) + " elements but the structure has "
                "only " + std::to_string(*info.elements) +
                "; only the first element is ever touched",
            "stride is measured in elements, not bytes");
      }
      const std::uint64_t stride_bytes = *stride * *info.element_bytes;
      for (const Machine& machine : ctx.program.machines) {
        const std::uint32_t line = machine.llc.line_bytes();
        if (*info.element_bytes > line) {
          ctx.diags.warning(
              codes::kElementSpansLines,
              LintContext::prop_span(pattern.properties, "stride", fallback),
              "element size " + std::to_string(*info.element_bytes) +
                  " of '" + pattern.target + "' exceeds machine '" +
                  machine.name + "' cache line (" + std::to_string(line) +
                  " bytes); Eqs. 3-4 assume an element fits in one line");
        } else if (stride_bytes > line) {
          ctx.diags.warning(
              codes::kStrideSkipsLines,
              LintContext::prop_span(pattern.properties, "stride", fallback),
              "stream stride of " + std::to_string(stride_bytes) +
                  " bytes skips whole cache lines on machine '" +
                  machine.name + "' (line = " + std::to_string(line) +
                  " bytes); every reference misses and Eqs. 3-4 lose all "
                  "spatial reuse");
        }
      }
    }
  }
}

void rule_random_feasibility(LintContext& ctx) {
  for (const ModelDecl& model : ctx.ast.models) {
    for (const PatternDecl& pattern : model.patterns) {
      if (pattern.kind != "random") {
        continue;
      }
      const auto it = ctx.data[&model].find(pattern.target);
      if (it == ctx.data[&model].end()) {
        continue;
      }
      const DataInfo& info = it->second;
      const SourceSpan fallback{pattern.line, pattern.column, 7};
      const KeyValue* visits_kv =
          LintContext::find(pattern.properties, "visits");
      const auto visits = visits_kv ? ctx.eval(*visits_kv->value)
                                    : std::optional<double>();
      if (visits && info.elements &&
          *visits > static_cast<double>(*info.elements)) {
        ctx.diags.error(
            codes::kRandomInfeasible, key_span(*visits_kv),
            "random pattern visits " + num_str(*visits) +
                " distinct elements per iteration but '" + pattern.target +
                "' declares only " + std::to_string(*info.elements),
            "Eqs. 5-7 sample k of N elements without replacement: k <= N");
      }
      const auto ratio = ctx.prop(pattern.properties, "ratio", 1.0);
      if (!ratio || !info.element_bytes || *ratio <= 0.0 || *ratio > 1.0) {
        continue;  // out-of-range ratio is reported by cache-share-range
      }
      for (const Machine& machine : ctx.program.machines) {
        const double share =
            *ratio * static_cast<double>(machine.llc.capacity_bytes());
        if (share < static_cast<double>(*info.element_bytes)) {
          ctx.diags.warning(
              codes::kCacheShareBelowElement,
              LintContext::prop_span(pattern.properties, "ratio", fallback),
              "the cache share of '" + pattern.target + "' on machine '" +
                  machine.name + "' (r*C = " + bytes_str(share) +
                  ") holds no complete element; Eq. 6's hit probability "
                  "collapses to zero",
              "raise 'ratio' or model a larger cache");
        }
      }
    }
  }
}

void rule_cache_share_range(LintContext& ctx) {
  for (const ModelDecl& model : ctx.ast.models) {
    for (const PatternDecl& pattern : model.patterns) {
      if (pattern.kind != "random" && pattern.kind != "template" &&
          pattern.kind != "tiled") {
        continue;
      }
      const KeyValue* ratio_kv =
          LintContext::find(pattern.properties, "ratio");
      if (ratio_kv == nullptr) {
        continue;
      }
      const auto ratio = ctx.eval(*ratio_kv->value);
      if (ratio && (*ratio <= 0.0 || *ratio > 1.0)) {
        ctx.diags.error(codes::kValueOutOfRange, key_span(*ratio_kv),
                        "cache-share ratio must be in (0, 1], got " +
                            num_str(*ratio),
                        "r is the structure's fraction of the LLC "
                        "(size-proportional for concurrent structures)");
      }
    }
  }
}

void rule_template_bounds(LintContext& ctx) {
  for (const ModelDecl& model : ctx.ast.models) {
    for (const PatternDecl& pattern : model.patterns) {
      if (pattern.kind != "template") {
        continue;
      }
      const auto it = ctx.data[&model].find(pattern.target);
      if (it == ctx.data[&model].end()) {
        continue;
      }
      const DataInfo& info = it->second;
      const SourceSpan fallback{pattern.line, pattern.column, 7};

      const KeyTuple* start_tuple = nullptr;
      const KeyTuple* end_tuple = nullptr;
      for (const KeyTuple& tuple : pattern.tuples) {
        if (tuple.key == "start") start_tuple = &tuple;
        if (tuple.key == "end") end_tuple = &tuple;
      }
      if (start_tuple == nullptr) {
        continue;  // analyzer already reported E007
      }
      std::vector<std::int64_t> start;
      for (const ExprPtr& e : start_tuple->values) {
        if (const auto v = ctx.eval(*e)) {
          start.push_back(static_cast<std::int64_t>(std::llround(*v)));
        }
      }
      if (start.size() != start_tuple->values.size() || start.empty()) {
        continue;
      }
      const auto step_value = ctx.prop(pattern.properties, "step", 1.0);
      if (!step_value) {
        continue;
      }
      const auto step =
          static_cast<std::int64_t>(std::llround(*step_value));

      std::optional<std::uint64_t> count;
      if (LintContext::find(pattern.properties, "count") != nullptr) {
        count = ctx.count_prop(pattern.properties, "count", 0.0);
      } else if (end_tuple != nullptr && !end_tuple->values.empty() &&
                 step != 0) {
        if (const auto end_value = ctx.eval(*end_tuple->values[0])) {
          const auto end0 =
              static_cast<std::int64_t>(std::llround(*end_value));
          const std::int64_t span = end0 - start[0];
          if (span % step == 0 && span / step >= 0) {
            count = static_cast<std::uint64_t>(span / step) + 1;
          }
        }
      }
      if (!count || *count == 0) {
        continue;
      }

      const std::int64_t lo = *std::min_element(start.begin(), start.end());
      const std::int64_t hi = *std::max_element(start.begin(), start.end());
      const std::int64_t advance =
          step * static_cast<std::int64_t>(*count - 1);
      const std::int64_t max_index = step > 0 ? hi + advance : hi;
      const std::int64_t min_index = step > 0 ? lo : lo + advance;

      if (info.elements &&
          max_index >= static_cast<std::int64_t>(*info.elements)) {
        ctx.diags.error(
            codes::kTemplateOutOfBounds, tuple_span(*start_tuple),
            "template reaches element " + std::to_string(max_index) +
                " but '" + pattern.target + "' declares only " +
                std::to_string(*info.elements) + " elements",
            "shrink 'count'/'end' or grow the data declaration");
      }

      // Reuse distance vs. capacity: repeated sweeps can only hit when the
      // whole template working set fits the structure's cache share.
      const auto repeat = ctx.count_prop(pattern.properties, "repeat", 1.0);
      if (!repeat || *repeat < 2) {
        continue;
      }
      const SourceSpan note_span =
          LintContext::prop_span(pattern.properties, "repeat", fallback);
      const PatternProvenance* row = ctx.provenance_for(model.name, pattern);
      const PatternSpec* phase =
          row != nullptr ? ctx.lowered_phase(*row) : nullptr;
      if (phase != nullptr && std::holds_alternative<TemplateSpec>(*phase)) {
        // Compiled models: the analysis counts the distinct cache lines the
        // reference string touches and compares against the share in block
        // units — the exact quantity the reuse-distance argument is about.
        if (std::get<TemplateSpec>(*phase).repetitions < 2) {
          continue;
        }
        for (const Machine& machine : ctx.program.machines) {
          const analysis::PatternFacts facts =
              analysis::pattern_bounds(*phase, machine.llc, false);
          if (facts.exceeds_share) {
            ctx.diags.note(
                codes::kTemplateExceedsShare, note_span,
                "the template working set over '" + pattern.target + "' (" +
                    std::to_string(facts.working_set_blocks) +
                    " cache lines) exceeds its cache share on machine '" +
                    machine.name + "' (" +
                    std::to_string(facts.capacity_blocks) +
                    " lines); repeated sweeps mostly miss (reuse distance "
                    "beyond capacity)");
          }
        }
        continue;
      }
      // AST fallback for models that did not lower.
      const auto ratio = ctx.prop(pattern.properties, "ratio", 1.0);
      if (!ratio || !info.element_bytes || *ratio <= 0.0 || *ratio > 1.0 ||
          min_index < 0) {
        continue;
      }
      const double footprint =
          static_cast<double>(max_index - min_index + 1) *
          static_cast<double>(*info.element_bytes);
      for (const Machine& machine : ctx.program.machines) {
        const double share =
            *ratio * static_cast<double>(machine.llc.capacity_bytes());
        if (footprint > share) {
          ctx.diags.note(
              codes::kTemplateExceedsShare, note_span,
              "the template working set over '" + pattern.target + "' (" +
                  bytes_str(footprint) + ") exceeds its cache share on "
                  "machine '" + machine.name + "' (" + bytes_str(share) +
                  "); repeated sweeps mostly miss (reuse distance beyond "
                  "capacity)");
        }
      }
    }
  }
}

void rule_reuse_footprint(LintContext& ctx) {
  for (const ModelDecl& model : ctx.ast.models) {
    for (const PatternDecl& pattern : model.patterns) {
      if (pattern.kind != "reuse") {
        continue;
      }
      const auto it = ctx.data[&model].find(pattern.target);
      if (it == ctx.data[&model].end()) {
        continue;
      }
      const DataInfo& info = it->second;
      const SourceSpan fallback{pattern.line, pattern.column, 7};
      // Compiled models: the analysis' exceeds-share fact (footprint blocks
      // vs cache blocks) decides; the AST footprint remains the fallback
      // for models that did not lower, and supplies the message numbers.
      const PatternProvenance* row = ctx.provenance_for(model.name, pattern);
      const PatternSpec* phase =
          row != nullptr ? ctx.lowered_phase(*row) : nullptr;
      if (phase != nullptr && !std::holds_alternative<ReuseSpec>(*phase)) {
        phase = nullptr;
      }
      if (info.elements && info.element_bytes) {
        const double self = static_cast<double>(*info.elements) *
                            static_cast<double>(*info.element_bytes);
        for (const Machine& machine : ctx.program.machines) {
          const auto capacity =
              static_cast<double>(machine.llc.capacity_bytes());
          const bool overflows =
              phase != nullptr
                  ? analysis::pattern_bounds(*phase, machine.llc, false)
                        .exceeds_share
                  : self > capacity;
          if (overflows) {
            ctx.diags.warning(
                codes::kReuseOverflowsCache, fallback,
                "'" + pattern.target + "' alone (" + bytes_str(self) +
                    ") overflows machine '" + machine.name + "' (" +
                    bytes_str(capacity) + "); Eq. 8's occupancy saturates "
                    "and every reuse round misses",
                "a streaming pattern models this traversal more faithfully");
          }
        }
      }
      const KeyValue* other_kv =
          LintContext::find(pattern.properties, "other_bytes");
      if (other_kv != nullptr) {
        const auto other = ctx.eval(*other_kv->value);
        if (other && *other == 0.0) {
          ctx.diags.note(
              codes::kReuseNoInterference, key_span(*other_kv),
              "reuse over '" + pattern.target + "' declares zero interferer "
              "bytes: every reuse round hits and N_ha is just the initial "
              "load (Eqs. 9-15 degenerate)");
        }
      }
    }
  }
}

void rule_tiled_geometry(LintContext& ctx) {
  for (const ModelDecl& model : ctx.ast.models) {
    for (const PatternDecl& pattern : model.patterns) {
      if (pattern.kind != "tiled") {
        continue;
      }
      const auto it = ctx.data[&model].find(pattern.target);
      if (it == ctx.data[&model].end()) {
        continue;
      }
      const DataInfo& info = it->second;
      const SourceSpan fallback{pattern.line, pattern.column, 7};

      const KeyTuple* tile_tuple = nullptr;
      for (const KeyTuple& tuple : pattern.tuples) {
        if (tuple.key == "tile") tile_tuple = &tuple;
      }
      std::optional<std::uint64_t> tile_rows;
      std::optional<std::uint64_t> tile_cols;
      if (tile_tuple != nullptr && tile_tuple->values.size() == 2) {
        const auto tr = ctx.eval(*tile_tuple->values[0]);
        const auto tc = ctx.eval(*tile_tuple->values[1]);
        if (tr && *tr >= 1.0 && *tr == std::floor(*tr) && *tr <= 9.0e15) {
          tile_rows = static_cast<std::uint64_t>(*tr);
        }
        if (tc && *tc >= 1.0 && *tc == std::floor(*tc) && *tc <= 9.0e15) {
          tile_cols = static_cast<std::uint64_t>(*tc);
        }
      }

      const auto rows = ctx.count_prop(pattern.properties, "rows", 0.0);
      std::optional<std::uint64_t> cols;
      if (LintContext::find(pattern.properties, "cols") != nullptr) {
        cols = ctx.count_prop(pattern.properties, "cols", 0.0);
      } else if (rows && *rows > 0 && info.elements &&
                 *info.elements % *rows == 0) {
        cols = *info.elements / *rows;
      }

      // W112: a tile wider or taller than the matrix is vacuous blocking —
      // the evaluator clamps to the matrix edge, so the declared geometry
      // buys nothing.
      if (tile_tuple != nullptr && tile_rows && tile_cols && rows && cols &&
          *rows > 0 && *cols > 0 &&
          (*tile_rows > *rows || *tile_cols > *cols)) {
        ctx.diags.warning(
            codes::kTileExceedsFootprint, tuple_span(*tile_tuple),
            "tile (" + std::to_string(*tile_rows) + ", " +
                std::to_string(*tile_cols) + ") over '" + pattern.target +
                "' exceeds the " + std::to_string(*rows) + " x " +
                std::to_string(*cols) +
                " matrix; the tiling degenerates to a whole-matrix sweep",
            "shrink the tile to at most the matrix dimensions");
      }

      // W113: a tile never re-read (one pass, no intra-tile reuse) gets no
      // benefit from blocking; the streaming model says the same thing with
      // fewer parameters.
      const auto intra =
          ctx.count_prop(pattern.properties, "intra_reuse", 0.0);
      const auto passes = ctx.count_prop(pattern.properties, "passes", 1.0);
      if (intra && passes && *intra == 0 && *passes == 1) {
        ctx.diags.warning(
            codes::kTileNoReuse, fallback,
            "tiled pattern on '" + pattern.target +
                "' has no reuse (passes 1, intra_reuse 0): a single cold "
                "sweep that a stream pattern models with fewer parameters",
            "add 'passes'/'intra_reuse', or use 'pattern " + pattern.target +
                " stream { ... }'");
      }

      // N203: the tile itself overflows the structure's cache share — the
      // blocking is mis-sized for the machine and every intra-tile re-read
      // misses. The analysis' exceeds-share fact decides for compiled
      // models; the AST footprint is the fallback.
      const PatternProvenance* row = ctx.provenance_for(model.name, pattern);
      const PatternSpec* phase =
          row != nullptr ? ctx.lowered_phase(*row) : nullptr;
      if (phase != nullptr && !std::holds_alternative<TiledSpec>(*phase)) {
        phase = nullptr;
      }
      const SourceSpan note_span =
          tile_tuple != nullptr ? tuple_span(*tile_tuple) : fallback;
      const auto ratio = ctx.prop(pattern.properties, "ratio", 1.0);
      for (const Machine& machine : ctx.program.machines) {
        bool overflows = false;
        std::uint64_t ws_blocks = 0;
        std::uint64_t cap_blocks = 0;
        if (phase != nullptr) {
          const analysis::PatternFacts facts =
              analysis::pattern_bounds(*phase, machine.llc, false);
          overflows = facts.exceeds_share;
          ws_blocks = facts.working_set_blocks;
          cap_blocks = facts.capacity_blocks;
        } else if (tile_rows && tile_cols && info.element_bytes && ratio &&
                   *ratio > 0.0 && *ratio <= 1.0) {
          const double tile_bytes = static_cast<double>(*tile_rows) *
                                    static_cast<double>(*tile_cols) *
                                    static_cast<double>(*info.element_bytes);
          const double share =
              *ratio * static_cast<double>(machine.llc.capacity_bytes());
          overflows = tile_bytes > share;
          ws_blocks = static_cast<std::uint64_t>(
              std::ceil(tile_bytes / machine.llc.line_bytes()));
          cap_blocks = static_cast<std::uint64_t>(
              static_cast<double>(machine.llc.total_blocks()) * *ratio);
        }
        if (overflows) {
          ctx.diags.note(
              codes::kTileExceedsShare, note_span,
              "one tile of '" + pattern.target + "' (" +
                  std::to_string(ws_blocks) +
                  " cache lines) exceeds its cache share on machine '" +
                  machine.name + "' (" + std::to_string(cap_blocks) +
                  " lines); every intra-tile re-read misses",
              "shrink the tile or raise 'ratio'");
        }
      }
    }
  }
}

void rule_zero_work(LintContext& ctx) {
  const auto check = [&](const ModelDecl& model, const PatternDecl& pattern,
                         const char* key, const char* meaning) {
    const KeyValue* kv = LintContext::find(pattern.properties, key);
    if (kv == nullptr) {
      return;
    }
    const auto v = ctx.eval(*kv->value);
    if (!v || *v != 0.0) {
      return;
    }
    // Dataflow confirmation: for compiled models the declaration must be
    // provably zero-work (zero phases, or every phase requesting zero
    // steady-state work). Uncompiled models keep the AST heuristic.
    const PatternProvenance* row = ctx.provenance_for(model.name, pattern);
    if (row != nullptr && !provably_zero_work(*row, ctx.program)) {
      return;
    }
    ctx.diags.warning(codes::kZeroWorkPattern, key_span(*kv),
                      "pattern " + pattern.kind + " on '" + pattern.target +
                          "' has " + std::string(key) + " 0; " + meaning);
  };
  for (const ModelDecl& model : ctx.ast.models) {
    for (const PatternDecl& pattern : model.patterns) {
      if (pattern.kind == "stream") {
        check(model, pattern, "repeat", "it emits no phases at all");
      } else if (pattern.kind == "random") {
        check(model, pattern, "iterations", "it performs no accesses");
        check(model, pattern, "visits", "it performs no accesses");
      } else if (pattern.kind == "template") {
        check(model, pattern, "count", "the reference string is empty");
        check(model, pattern, "repeat", "the template is never replayed");
      } else if (pattern.kind == "reuse") {
        check(model, pattern, "rounds", "nothing is ever re-read");
      }
    }
  }
}

void rule_unit_sanity(LintContext& ctx) {
  // Non-positive FIT rates are analyzer errors (DVF-E017); here only the
  // subtler degeneracy is left: a zero execution time.
  for (const ModelDecl& model : ctx.ast.models) {
    if (!model.time) {
      continue;
    }
    const auto t = ctx.eval(*model.time);
    if (t && *t == 0.0) {
      ctx.diags.warning(codes::kTriviallyZeroDvf,
                        {model.time->line, model.time->column, 1},
                        "model '" + model.name +
                            "': execution time 0 makes N_error and DVF "
                            "trivially zero");
    }
  }
}

struct LintRule {
  LintRuleInfo info;
  void (*run)(LintContext&);
};

// The registry. Order is presentation-neutral (diagnostics are sorted by
// source position afterwards) but kept hygiene-first for readability.
constexpr LintRule kRules[] = {
    {{"unused-param", "DVF-W101"}, rule_unused_param},
    {{"data-never-accessed", "DVF-W102"}, rule_data_never_accessed},
    {{"machine-coverage", "DVF-W103"}, rule_machine_coverage},
    {{"empty-model", "DVF-W111"}, rule_empty_model},
    {{"streaming-geometry", "DVF-W104,DVF-W105,DVF-W106"},
     rule_streaming_geometry},
    {{"random-feasibility", "DVF-E012,DVF-W108"}, rule_random_feasibility},
    {{"cache-share-range", "DVF-E014"}, rule_cache_share_range},
    {{"template-bounds", "DVF-E013,DVF-N202"}, rule_template_bounds},
    {{"reuse-footprint", "DVF-W109,DVF-N201"}, rule_reuse_footprint},
    {{"tiled-geometry", "DVF-W112,DVF-W113,DVF-N203"}, rule_tiled_geometry},
    {{"zero-work", "DVF-W107"}, rule_zero_work},
    {{"unit-sanity", "DVF-W110"}, rule_unit_sanity},
};

}  // namespace

std::span<const LintRuleInfo> lint_rule_catalog() {
  static const std::vector<LintRuleInfo> catalog = [] {
    std::vector<LintRuleInfo> out;
    for (const LintRule& rule : kRules) {
      out.push_back(rule.info);
    }
    return out;
  }();
  return catalog;
}

LintResult lint(std::string_view source) {
  LintResult result;
  result.source.assign(source);

  DiagnosticEngine diags;
  Program ast;
  bool parsed = true;
  try {
    ast = parse(source);
  } catch (const ParseError& err) {
    // Strip the "parse error at L:C: " prefix; the span carries the
    // location already.
    const std::string prefix = "parse error at " +
                               std::to_string(err.line()) + ":" +
                               std::to_string(err.column()) + ": ";
    std::string message = err.what();
    if (message.rfind(prefix, 0) == 0) {
      message = message.substr(prefix.size());
    }
    // Lexer errors that map to a specific catalog entry (e.g. DVF-E018
    // numeric overflow) carry their code and span width; generic syntax
    // errors fall back to kSyntax with a one-character span.
    const char* code = err.code() != nullptr ? err.code() : codes::kSyntax;
    diags.error(code, {err.line(), err.column(), err.length()},
                std::move(message));
    parsed = false;
  }

  if (parsed) {
    result.program = analyze(ast, diags);
    // Facts only, no exact-refinement runs: lint never evaluates a model,
    // it just reads the analysis' verdict bits.
    analysis::AnalysisOptions options;
    options.refine_exact = false;
    const analysis::AnalysisReport report = analysis::analyze(
        result.program.machines, result.program.models, options);
    LintContext ctx{ast, result.program, diags, report, {}};
    collect_data_info(ctx);
    const obs::ScopedSpan span("dsl.lint_rules");
    for (const LintRule& rule : kRules) {
      rule.run(ctx);
    }
  }

  result.diagnostics = diags.sorted();
  result.errors = diags.error_count();
  result.warnings = diags.warning_count();
  return result;
}

LintResult lint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open model file: " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return lint(contents.str());
}

}  // namespace dvf::dsl
