#include "dvf/dsl/parser.hpp"

#include <utility>

#include "dvf/common/error.hpp"
#include "dvf/dsl/lexer.hpp"
#include "dvf/obs/obs.hpp"

namespace dvf::dsl {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program() {
    Program program;
    while (!at(TokenKind::kEndOfFile)) {
      if (peek().is_word("param")) {
        program.params.push_back(parse_param());
      } else if (peek().is_word("machine")) {
        program.machines.push_back(parse_machine());
      } else if (peek().is_word("model")) {
        program.models.push_back(parse_model());
      } else {
        fail("expected 'param', 'machine' or 'model'");
      }
    }
    return program;
  }

 private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
  const Token& advance() { return tokens_[pos_++]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message + " (found " +
                         std::string(to_string(peek().kind)) +
                         (peek().kind == TokenKind::kIdentifier
                              ? " '" + peek().text + "'"
                              : "") +
                         ")",
                     peek().line, peek().column);
  }

  const Token& expect(TokenKind kind, const char* what) {
    if (!at(kind)) {
      fail(std::string("expected ") + what);
    }
    return advance();
  }

  const Token& expect_word(const char* word) {
    if (!peek().is_word(word)) {
      fail(std::string("expected '") + word + "'");
    }
    return advance();
  }

  void expect_semicolon() { expect(TokenKind::kSemicolon, "';'"); }

  // ---- expressions -------------------------------------------------------

  ExprPtr parse_expr() { return parse_additive(); }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      const Token& op = advance();
      ExprPtr rhs = parse_multiplicative();
      lhs = make_binary(op.kind == TokenKind::kPlus ? '+' : '-',
                        std::move(lhs), std::move(rhs), op);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_power();
    while (at(TokenKind::kStar) || at(TokenKind::kSlash) ||
           at(TokenKind::kPercent)) {
      const Token& op = advance();
      ExprPtr rhs = parse_power();
      const char ch = op.kind == TokenKind::kStar    ? '*'
                      : op.kind == TokenKind::kSlash ? '/'
                                                     : '%';
      lhs = make_binary(ch, std::move(lhs), std::move(rhs), op);
    }
    return lhs;
  }

  ExprPtr parse_power() {
    ExprPtr base = parse_unary();
    if (at(TokenKind::kCaret)) {
      const Token& op = advance();
      // Right-associative.
      ExprPtr exponent = parse_power();
      return make_binary('^', std::move(base), std::move(exponent), op);
    }
    return base;
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::kMinus)) {
      const Token& op = advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->op = '-';
      node->lhs = parse_unary();
      node->line = op.line;
      node->column = op.column;
      return node;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (at(TokenKind::kNumber)) {
      const Token& t = advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->number = t.number;
      node->line = t.line;
      node->column = t.column;
      return node;
    }
    if (at(TokenKind::kIdentifier)) {
      const Token& t = advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kIdentifier;
      node->identifier = t.text;
      node->line = t.line;
      node->column = t.column;
      return node;
    }
    if (at(TokenKind::kLParen)) {
      advance();
      ExprPtr inner = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return inner;
    }
    fail("expected a number, parameter name or '('");
  }

  static ExprPtr make_binary(char op, ExprPtr lhs, ExprPtr rhs,
                             const Token& at_token) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    node->line = at_token.line;
    node->column = at_token.column;
    return node;
  }

  // ---- declarations ------------------------------------------------------

  KeyValue parse_key_value() {
    const Token& key = expect(TokenKind::kIdentifier, "a property name");
    KeyValue kv;
    kv.key = key.text;
    kv.line = key.line;
    kv.column = key.column;
    // Optional '=' between key and value.
    if (at(TokenKind::kEquals)) {
      advance();
    }
    kv.value = parse_expr();
    expect_semicolon();
    return kv;
  }

  ParamDecl parse_param() {
    const Token& kw = expect_word("param");
    ParamDecl decl;
    decl.line = kw.line;
    decl.column = kw.column;
    decl.name = expect(TokenKind::kIdentifier, "a parameter name").text;
    expect(TokenKind::kEquals, "'='");
    decl.value = parse_expr();
    expect_semicolon();
    return decl;
  }

  MachineDecl parse_machine() {
    const Token& kw = expect_word("machine");
    MachineDecl decl;
    decl.line = kw.line;
    decl.column = kw.column;
    decl.name = expect(TokenKind::kString, "a machine name string").text;
    expect(TokenKind::kLBrace, "'{'");
    while (!at(TokenKind::kRBrace)) {
      if (peek().is_word("cache")) {
        advance();
        expect(TokenKind::kLBrace, "'{'");
        while (!at(TokenKind::kRBrace)) {
          decl.cache.push_back(parse_key_value());
        }
        advance();
      } else if (peek().is_word("memory")) {
        advance();
        expect(TokenKind::kLBrace, "'{'");
        while (!at(TokenKind::kRBrace)) {
          if (peek().is_word("ecc") && peek(1).kind == TokenKind::kString) {
            const Token& ecc_kw = advance();
            decl.ecc_line = ecc_kw.line;
            decl.ecc_column = ecc_kw.column;
            decl.ecc = advance().text;
            expect_semicolon();
          } else {
            decl.memory.push_back(parse_key_value());
          }
        }
        advance();
      } else {
        fail("expected 'cache' or 'memory' in machine block");
      }
    }
    advance();  // '}'
    return decl;
  }

  DataDecl parse_data() {
    const Token& kw = expect_word("data");
    DataDecl decl;
    decl.line = kw.line;
    decl.column = kw.column;
    decl.name = expect(TokenKind::kIdentifier, "a data structure name").text;
    expect(TokenKind::kLBrace, "'{'");
    while (!at(TokenKind::kRBrace)) {
      decl.properties.push_back(parse_key_value());
    }
    advance();
    return decl;
  }

  PatternDecl parse_pattern() {
    const Token& kw = expect_word("pattern");
    PatternDecl decl;
    decl.line = kw.line;
    decl.column = kw.column;
    decl.target = expect(TokenKind::kIdentifier, "a data structure name").text;
    decl.kind = expect(TokenKind::kIdentifier,
                       "a pattern kind (stream|random|template|reuse)")
                    .text;
    expect(TokenKind::kLBrace, "'{'");
    while (!at(TokenKind::kRBrace)) {
      // Tuple property: IDENT '(' ... ')' ';'
      if (at(TokenKind::kIdentifier) && peek(1).kind == TokenKind::kLParen) {
        const Token& key = advance();
        KeyTuple tuple;
        tuple.key = key.text;
        tuple.line = key.line;
        tuple.column = key.column;
        advance();  // '('
        tuple.values.push_back(parse_expr());
        while (at(TokenKind::kComma)) {
          advance();
          tuple.values.push_back(parse_expr());
        }
        expect(TokenKind::kRParen, "')'");
        expect_semicolon();
        decl.tuples.push_back(std::move(tuple));
      } else {
        decl.properties.push_back(parse_key_value());
      }
    }
    advance();
    return decl;
  }

  ModelDecl parse_model() {
    const Token& kw = expect_word("model");
    ModelDecl decl;
    decl.line = kw.line;
    decl.column = kw.column;
    decl.name = expect(TokenKind::kString, "a model name string").text;
    expect(TokenKind::kLBrace, "'{'");
    while (!at(TokenKind::kRBrace)) {
      if (peek().is_word("time")) {
        advance();
        if (at(TokenKind::kEquals)) {
          advance();
        }
        decl.time = parse_expr();
        expect_semicolon();
      } else if (peek().is_word("order")) {
        advance();
        const Token& text = expect(TokenKind::kString, "an access-order string");
        decl.order = text.text;
        decl.order_line = text.line;
        decl.order_column = text.column;
        expect_semicolon();
      } else if (peek().is_word("data")) {
        decl.data.push_back(parse_data());
      } else if (peek().is_word("pattern")) {
        decl.patterns.push_back(parse_pattern());
      } else {
        fail("expected 'time', 'order', 'data' or 'pattern' in model block");
      }
    }
    advance();
    return decl;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  std::vector<Token> tokens;
  {
    const obs::ScopedSpan span("dsl.lex");
    tokens = tokenize(source);
  }
  const obs::ScopedSpan span("dsl.parse");
  Parser parser(std::move(tokens));
  return parser.parse_program();
}

}  // namespace dvf::dsl
