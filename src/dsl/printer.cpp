#include "dvf/dsl/printer.hpp"

#include <sstream>

#include "dvf/common/string_util.hpp"

namespace dvf::dsl {

namespace {

/// Binding strength for parenthesization decisions.
int precedence(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
    case Expr::Kind::kIdentifier:
      return 100;
    case Expr::Kind::kUnary:
      return 30;
    case Expr::Kind::kBinary:
      switch (expr.op) {
        case '^': return 40;
        case '*':
        case '/':
        case '%': return 20;
        default: return 10;  // + -
      }
  }
  return 0;
}

void print_expr(const Expr& expr, std::ostringstream& out) {
  const auto child = [&](const Expr& sub, bool needs_parens) {
    if (needs_parens) {
      out << '(';
      print_expr(sub, out);
      out << ')';
    } else {
      print_expr(sub, out);
    }
  };

  switch (expr.kind) {
    case Expr::Kind::kNumber:
      out << format_significant(expr.number, 17);
      return;
    case Expr::Kind::kIdentifier:
      out << expr.identifier;
      return;
    case Expr::Kind::kUnary:
      out << '-';
      child(*expr.lhs, precedence(*expr.lhs) < precedence(expr));
      return;
    case Expr::Kind::kBinary: {
      const int prec = precedence(expr);
      // Left child needs parens when strictly weaker; right child also when
      // equal (all our binary operators are left-associative except '^',
      // which is right-associative — mirror that).
      const bool right_assoc = expr.op == '^';
      child(*expr.lhs,
            precedence(*expr.lhs) < prec + (right_assoc ? 1 : 0));
      out << ' ' << expr.op << ' ';
      child(*expr.rhs,
            precedence(*expr.rhs) < prec + (right_assoc ? 0 : 1));
      return;
    }
  }
}

void print_key_values(const std::vector<KeyValue>& kvs, int indent,
                      std::ostringstream& out) {
  for (const KeyValue& kv : kvs) {
    out << std::string(static_cast<std::size_t>(indent), ' ') << kv.key << ' '
        << print(*kv.value) << ";\n";
  }
}

}  // namespace

std::string print(const Expr& expr) {
  std::ostringstream out;
  print_expr(expr, out);
  return out.str();
}

std::string print(const Program& program) {
  std::ostringstream out;

  for (const ParamDecl& param : program.params) {
    out << "param " << param.name << " = " << print(*param.value) << ";\n";
  }
  if (!program.params.empty()) {
    out << '\n';
  }

  for (const MachineDecl& machine : program.machines) {
    out << "machine \"" << machine.name << "\" {\n";
    out << "  cache {\n";
    print_key_values(machine.cache, 4, out);
    out << "  }\n";
    out << "  memory {\n";
    if (!machine.ecc.empty()) {
      out << "    ecc \"" << machine.ecc << "\";\n";
    }
    print_key_values(machine.memory, 4, out);
    out << "  }\n";
    out << "}\n\n";
  }

  for (const ModelDecl& model : program.models) {
    out << "model \"" << model.name << "\" {\n";
    if (model.time) {
      out << "  time " << print(*model.time) << ";\n";
    }
    if (!model.order.empty()) {
      out << "  order \"" << model.order << "\";\n";
    }
    for (const DataDecl& data : model.data) {
      out << "  data " << data.name << " {\n";
      print_key_values(data.properties, 4, out);
      out << "  }\n";
    }
    for (const PatternDecl& pattern : model.patterns) {
      out << "  pattern " << pattern.target << ' ' << pattern.kind << " {\n";
      for (const KeyTuple& tuple : pattern.tuples) {
        out << "    " << tuple.key << " (";
        for (std::size_t i = 0; i < tuple.values.size(); ++i) {
          if (i != 0) {
            out << ", ";
          }
          out << print(*tuple.values[i]);
        }
        out << ");\n";
      }
      print_key_values(pattern.properties, 4, out);
      out << "  }\n";
    }
    out << "}\n";
  }

  return out.str();
}

}  // namespace dvf::dsl
