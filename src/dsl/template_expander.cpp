#include "dvf/dsl/template_expander.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"

namespace dvf::dsl {

Result<std::vector<std::uint64_t>> try_expand_progression(
    std::span<const std::int64_t> start, std::int64_t step,
    std::uint64_t count, EvalBudget* budget) {
  DVF_EVAL_REQUIRE(!start.empty(), "template progression needs a start tuple");
  DVF_EVAL_REQUIRE(count >= 1, "template progression needs count >= 1");
  // The expansion bomb guard: (0):1:2^62 would ask for 2^62 indices (32 EiB
  // of vector). Charge the full expanded size before allocating anything.
  DVF_TRY_CHECK(budget_or_default(budget).charge_expansion(
      math::saturating_mul(start.size(), count)));

  std::vector<std::uint64_t> out;
  out.reserve(start.size() * count);
  for (std::uint64_t r = 0; r < count; ++r) {
    // offset = r * step and idx = s + offset in checked int64 arithmetic:
    // with count up to 2^64 and step up to int64 limits both can leave the
    // representable range long before the negative-index check would fire.
    std::int64_t offset = 0;
    if (__builtin_mul_overflow(static_cast<std::int64_t>(r), step, &offset)) {
      return EvalError{ErrorKind::kOverflow,
                       "template progression offset " + std::to_string(r) +
                           " * " + std::to_string(step) +
                           " overflows a 64-bit index"};
    }
    for (const std::int64_t s : start) {
      std::int64_t idx = 0;
      if (__builtin_add_overflow(s, offset, &idx)) {
        return EvalError{ErrorKind::kOverflow,
                         "template progression index " + std::to_string(s) +
                             " + " + std::to_string(offset) +
                             " overflows a 64-bit index"};
      }
      DVF_EVAL_REQUIRE(idx >= 0,
                       "template progression references a negative element "
                       "index");
      out.push_back(static_cast<std::uint64_t>(idx));
    }
  }
  return out;
}

std::vector<std::uint64_t> expand_progression(
    std::span<const std::int64_t> start, std::int64_t step,
    std::uint64_t count) {
  return try_expand_progression(start, step, count).value_or_throw();
}

std::uint64_t AccessOrder::appearances(std::string_view name) const {
  std::uint64_t n = 0;
  for (const AccessPhase& phase : phases) {
    n += static_cast<std::uint64_t>(
        std::count(phase.begin(), phase.end(), std::string(name)));
  }
  return n;
}

std::vector<std::string> AccessOrder::concurrent_with(
    std::string_view name) const {
  std::vector<std::string> out;
  for (const AccessPhase& phase : phases) {
    const bool has_name =
        std::find(phase.begin(), phase.end(), std::string(name)) != phase.end();
    if (!has_name) {
      continue;
    }
    for (const std::string& other : phase) {
      if (other != name &&
          std::find(out.begin(), out.end(), other) == out.end()) {
        out.push_back(other);
      }
    }
  }
  return out;
}

AccessOrder parse_access_order(std::string_view text) {
  AccessOrder order;
  bool in_group = false;
  AccessPhase group;
  int column = 0;
  for (const char ch : text) {
    ++column;
    if (std::isspace(static_cast<unsigned char>(ch))) {
      continue;
    }
    if (ch == '(') {
      if (in_group) {
        throw ParseError("nested '(' in access-order string", 1, column);
      }
      in_group = true;
      group.clear();
      continue;
    }
    if (ch == ')') {
      if (!in_group) {
        throw ParseError("unmatched ')' in access-order string", 1, column);
      }
      if (group.empty()) {
        throw ParseError("empty group in access-order string", 1, column);
      }
      order.phases.push_back(group);
      in_group = false;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_') {
      if (in_group) {
        group.emplace_back(1, ch);
      } else {
        order.phases.push_back({std::string(1, ch)});
      }
      continue;
    }
    throw ParseError(std::string("unexpected character '") + ch +
                         "' in access-order string",
                     1, column);
  }
  if (in_group) {
    throw ParseError("unterminated '(' in access-order string", 1, column);
  }
  return order;
}

}  // namespace dvf::dsl
