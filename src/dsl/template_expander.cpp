#include "dvf/dsl/template_expander.hpp"

#include <algorithm>
#include <cctype>

#include "dvf/common/error.hpp"

namespace dvf::dsl {

std::vector<std::uint64_t> expand_progression(
    std::span<const std::int64_t> start, std::int64_t step,
    std::uint64_t count) {
  DVF_CHECK_MSG(!start.empty(), "template progression needs a start tuple");
  DVF_CHECK_MSG(count >= 1, "template progression needs count >= 1");

  std::vector<std::uint64_t> out;
  out.reserve(start.size() * count);
  for (std::uint64_t r = 0; r < count; ++r) {
    const std::int64_t offset = static_cast<std::int64_t>(r) * step;
    for (const std::int64_t s : start) {
      const std::int64_t idx = s + offset;
      DVF_CHECK_MSG(idx >= 0, "template progression references a negative "
                              "element index");
      out.push_back(static_cast<std::uint64_t>(idx));
    }
  }
  return out;
}

std::uint64_t AccessOrder::appearances(std::string_view name) const {
  std::uint64_t n = 0;
  for (const AccessPhase& phase : phases) {
    n += static_cast<std::uint64_t>(
        std::count(phase.begin(), phase.end(), std::string(name)));
  }
  return n;
}

std::vector<std::string> AccessOrder::concurrent_with(
    std::string_view name) const {
  std::vector<std::string> out;
  for (const AccessPhase& phase : phases) {
    const bool has_name =
        std::find(phase.begin(), phase.end(), std::string(name)) != phase.end();
    if (!has_name) {
      continue;
    }
    for (const std::string& other : phase) {
      if (other != name &&
          std::find(out.begin(), out.end(), other) == out.end()) {
        out.push_back(other);
      }
    }
  }
  return out;
}

AccessOrder parse_access_order(std::string_view text) {
  AccessOrder order;
  bool in_group = false;
  AccessPhase group;
  int column = 0;
  for (const char ch : text) {
    ++column;
    if (std::isspace(static_cast<unsigned char>(ch))) {
      continue;
    }
    if (ch == '(') {
      if (in_group) {
        throw ParseError("nested '(' in access-order string", 1, column);
      }
      in_group = true;
      group.clear();
      continue;
    }
    if (ch == ')') {
      if (!in_group) {
        throw ParseError("unmatched ')' in access-order string", 1, column);
      }
      if (group.empty()) {
        throw ParseError("empty group in access-order string", 1, column);
      }
      order.phases.push_back(group);
      in_group = false;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_') {
      if (in_group) {
        group.emplace_back(1, ch);
      } else {
        order.phases.push_back({std::string(1, ch)});
      }
      continue;
    }
    throw ParseError(std::string("unexpected character '") + ch +
                         "' in access-order string",
                     1, column);
  }
  if (in_group) {
    throw ParseError("unterminated '(' in access-order string", 1, column);
  }
  return order;
}

}  // namespace dvf::dsl
