#include "dvf/dvf/calculator.hpp"

#include <atomic>
#include <cmath>
#include <iterator>
#include <new>
#include <optional>
#include <utility>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/units.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/parallel/parallel_for.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf {

namespace {

/// One counter per taxonomy kind, so dashboards can alarm on e.g. a burst of
/// deadline_exceeded without parsing messages. Cold path: only touched when
/// an evaluation fails. Each failed public calculator call counts once.
void count_eval_error(ErrorKind kind) {
  if (!obs::enabled()) {
    return;
  }
  static const obs::Counter counters[] = {
      obs::counter("dvf.eval_errors.domain_error"),
      obs::counter("dvf.eval_errors.overflow"),
      obs::counter("dvf.eval_errors.non_finite"),
      obs::counter("dvf.eval_errors.resource_limit"),
      obs::counter("dvf.eval_errors.deadline_exceeded"),
      obs::counter("dvf.eval_errors.io_error"),
  };
  const auto index = static_cast<std::size_t>(kind);
  if (index < std::size(counters)) {
    counters[index].add();
  }
}

template <typename T>
Result<T> counted(Result<T> result) {
  if (!result.ok()) {
    count_eval_error(result.error().kind);
  }
  return result;
}

}  // namespace

const StructureDvf* ApplicationDvf::find(const std::string& name) const {
  for (const auto& s : structures) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

DvfCalculator::DvfCalculator(Machine machine) : machine_(std::move(machine)) {}

Result<double> DvfCalculator::try_main_memory_accesses(
    const DataStructureSpec& ds) const {
  return counted(try_estimate_accesses(
      std::span<const PatternSpec>(ds.patterns), machine_.llc, budget_));
}

double DvfCalculator::main_memory_accesses(const DataStructureSpec& ds) const {
  return try_main_memory_accesses(ds).value_or_throw();
}

Result<StructureDvf> DvfCalculator::eval_structure(
    const DataStructureSpec& ds, double exec_time_seconds) const {
  if (!std::isfinite(exec_time_seconds)) {
    return EvalError{ErrorKind::kNonFinite, "execution time is not finite"};
  }
  DVF_EVAL_REQUIRE(exec_time_seconds >= 0.0, "execution time must be >= 0");
  DVF_EVAL_REQUIRE(ds.size_bytes > 0, "data structure size must be positive");

  StructureDvf result;
  result.name = ds.name;
  result.size_bytes = static_cast<double>(ds.size_bytes);
  DVF_TRY_ASSIGN(n_ha,
                 try_estimate_accesses(
                     std::span<const PatternSpec>(ds.patterns), machine_.llc,
                     budget_));
  result.n_ha = n_ha;
  DVF_TRY_ASSIGN(n_error,
                 finite_or_error(expected_errors(machine_.memory.fit(),
                                                 exec_time_seconds,
                                                 result.size_bytes),
                                 "N_error (FIT * T * S_d)"));
  result.n_error = n_error;
  DVF_TRY_ASSIGN(dvf_value, finite_or_error(result.n_error * result.n_ha,
                                            "structure DVF (Eq. 1)"));
  result.dvf = dvf_value;
  return result;
}

Result<StructureDvf> DvfCalculator::try_for_structure(
    const DataStructureSpec& ds, double exec_time_seconds) const {
  return counted(eval_structure(ds, exec_time_seconds));
}

StructureDvf DvfCalculator::for_structure(const DataStructureSpec& ds,
                                          double exec_time_seconds) const {
  return try_for_structure(ds, exec_time_seconds).value_or_throw();
}

Result<ApplicationDvf> DvfCalculator::try_for_model(
    const ModelSpec& model) const {
  if (!model.exec_time_seconds.has_value()) {
    return counted<ApplicationDvf>(EvalError{
        ErrorKind::kDomainError,
        "model '" + model.name +
            "' has no execution time; measure the kernel or set one in the "
            "model"});
  }
  return try_for_model(model, *model.exec_time_seconds);
}

ApplicationDvf DvfCalculator::for_model(const ModelSpec& model) const {
  if (!model.exec_time_seconds.has_value()) {
    throw SemanticError("model '" + model.name +
                        "' has no execution time; measure the kernel or set "
                        "one in the model");
  }
  return for_model(model, *model.exec_time_seconds);
}

Result<ApplicationDvf> DvfCalculator::try_for_model(
    const ModelSpec& model, double exec_time_seconds) const {
  try {
  const obs::ScopedSpan span("dvf.for_model");
  if (obs::enabled()) {
    static const obs::Counter models = obs::counter("dvf.models_evaluated");
    static const obs::Counter structures =
        obs::counter("dvf.structures_evaluated");
    models.add();
    structures.add(model.structures.size());
  }
  ApplicationDvf app;
  app.model_name = model.name;
  app.machine_name = machine_.name;
  app.exec_time_seconds = exec_time_seconds;
  app.structures.resize(model.structures.size());

  // Lowest failing structure index, or SIZE_MAX while none failed. The
  // parallel path races on it with a min-CAS, so the reported error is the
  // same one the serial path would report, regardless of thread timing.
  std::atomic<std::size_t> first_error_index{~std::size_t{0}};
  std::vector<std::optional<EvalError>> errors(model.structures.size());

  const auto evaluate_one = [&](std::size_t i) {
    auto structure_result =
        eval_structure(model.structures[i], exec_time_seconds);
    if (structure_result.ok()) {
      app.structures[i] = *std::move(structure_result);
      return;
    }
    errors[i] = std::move(structure_result).error();
    std::size_t prev = first_error_index.load(std::memory_order_relaxed);
    while (i < prev && !first_error_index.compare_exchange_weak(
                           prev, i, std::memory_order_relaxed)) {
    }
  };

  const unsigned threads = parallel::resolve_thread_count(threads_);
  if (threads > 1 &&
      model.structures.size() >= kParallelStructureThreshold) {
    // Per-structure evaluations are independent; fan them out and keep the
    // Eq. 2 summation in model order below, so the result matches the
    // serial path bit for bit.
    parallel::parallel_for(parallel::ThreadPool::global(),
                           model.structures.size(),
                           [&](std::uint64_t i) {
                             evaluate_one(static_cast<std::size_t>(i));
                           },
                           /*grain=*/4);
  } else {
    for (std::size_t i = 0; i < model.structures.size(); ++i) {
      evaluate_one(i);
      if (errors[i].has_value()) {
        break;  // serial path can stop at the first failure
      }
    }
  }

  const std::size_t failed = first_error_index.load(std::memory_order_relaxed);
  if (failed != ~std::size_t{0}) {
    EvalError err = std::move(*errors[failed]);
    err.message = "structure '" + model.structures[failed].name + "': " +
                  err.message;
    count_eval_error(err.kind);
    return err;
  }

  math::KahanSum total;
  for (const StructureDvf& s : app.structures) {
    total.add(s.dvf);  // Eq. 2
  }
  DVF_TRY_ASSIGN(total_value,
                 counted(finite_or_error(total.value(),
                                         "application DVF (Eq. 2)")));
  app.total = total_value;
  return app;
  } catch (const std::bad_alloc&) {
    // Allocation failure degrades into the classified taxonomy like every
    // other resource exhaustion: callers (serve, campaigns) shed one
    // evaluation instead of dying on an uncaught bad_alloc.
    EvalError err{ErrorKind::kResourceLimit,
                  "model '" + model.name +
                      "': evaluation allocation failed (out of memory)"};
    count_eval_error(err.kind);
    return err;
  }
}

ApplicationDvf DvfCalculator::for_model(const ModelSpec& model,
                                        double exec_time_seconds) const {
  return try_for_model(model, exec_time_seconds).value_or_throw();
}

}  // namespace dvf
