#include "dvf/dvf/calculator.hpp"

#include <utility>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/units.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/parallel/parallel_for.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf {

const StructureDvf* ApplicationDvf::find(const std::string& name) const {
  for (const auto& s : structures) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

DvfCalculator::DvfCalculator(Machine machine) : machine_(std::move(machine)) {}

double DvfCalculator::main_memory_accesses(const DataStructureSpec& ds) const {
  return estimate_accesses(std::span<const PatternSpec>(ds.patterns),
                           machine_.llc);
}

StructureDvf DvfCalculator::for_structure(const DataStructureSpec& ds,
                                          double exec_time_seconds) const {
  DVF_CHECK_MSG(exec_time_seconds >= 0.0, "execution time must be >= 0");
  DVF_CHECK_MSG(ds.size_bytes > 0, "data structure size must be positive");

  StructureDvf result;
  result.name = ds.name;
  result.size_bytes = static_cast<double>(ds.size_bytes);
  result.n_ha = main_memory_accesses(ds);
  result.n_error = expected_errors(machine_.memory.fit(), exec_time_seconds,
                                   result.size_bytes);
  result.dvf = result.n_error * result.n_ha;  // Eq. 1
  return result;
}

ApplicationDvf DvfCalculator::for_model(const ModelSpec& model) const {
  if (!model.exec_time_seconds.has_value()) {
    throw SemanticError("model '" + model.name +
                        "' has no execution time; measure the kernel or set "
                        "one in the model");
  }
  return for_model(model, *model.exec_time_seconds);
}

ApplicationDvf DvfCalculator::for_model(const ModelSpec& model,
                                        double exec_time_seconds) const {
  const obs::ScopedSpan span("dvf.for_model");
  if (obs::enabled()) {
    static const obs::Counter models = obs::counter("dvf.models_evaluated");
    static const obs::Counter structures =
        obs::counter("dvf.structures_evaluated");
    models.add();
    structures.add(model.structures.size());
  }
  ApplicationDvf app;
  app.model_name = model.name;
  app.machine_name = machine_.name;
  app.exec_time_seconds = exec_time_seconds;
  app.structures.resize(model.structures.size());

  const unsigned threads = parallel::resolve_thread_count(threads_);
  if (threads > 1 &&
      model.structures.size() >= kParallelStructureThreshold) {
    // Per-structure evaluations are independent; fan them out and keep the
    // Eq. 2 summation in model order below, so the result matches the
    // serial path bit for bit.
    parallel::parallel_for(
        parallel::ThreadPool::global(), model.structures.size(),
        [&](std::uint64_t i) {
          app.structures[i] =
              for_structure(model.structures[i], exec_time_seconds);
        },
        /*grain=*/4);
  } else {
    for (std::size_t i = 0; i < model.structures.size(); ++i) {
      app.structures[i] = for_structure(model.structures[i], exec_time_seconds);
    }
  }

  math::KahanSum total;
  for (const StructureDvf& s : app.structures) {
    total.add(s.dvf);  // Eq. 2
  }
  app.total = total.value();
  return app;
}

}  // namespace dvf
