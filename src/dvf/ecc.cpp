#include "dvf/dvf/ecc.hpp"

#include <algorithm>
#include <utility>

#include "dvf/common/error.hpp"

namespace dvf {

EccTradeoffExplorer::EccTradeoffExplorer(Machine machine, ModelSpec model)
    : machine_(std::move(machine)), model_(std::move(model)) {
  if (!model_.exec_time_seconds.has_value()) {
    throw SemanticError("ECC trade-off study needs a model with an execution "
                        "time");
  }
}

std::vector<EccTradeoffPoint> EccTradeoffExplorer::sweep(
    const EccSweepConfig& config) const {
  DVF_CHECK_MSG(config.step > 0.0, "sweep step must be positive");
  DVF_CHECK_MSG(config.max_degradation >= 0.0,
                "max degradation must be non-negative");
  DVF_CHECK_MSG(config.full_coverage_degradation > 0.0,
                "full-coverage degradation must be positive");

  const double protected_fit = fit_rate(config.scheme);
  const double base_time = *model_.exec_time_seconds;

  std::vector<EccTradeoffPoint> points;
  for (double d = 0.0; d <= config.max_degradation + 1e-12; d += config.step) {
    EccTradeoffPoint pt;
    pt.degradation = d;
    pt.coverage = std::min(1.0, d / config.full_coverage_degradation);
    pt.effective_fit = config.raw_fit * (1.0 - pt.coverage) +
                       protected_fit * pt.coverage;

    Machine m(machine_.name, machine_.llc, MemoryModel(pt.effective_fit));
    const DvfCalculator calc(std::move(m));
    pt.dvf = calc.for_model(model_, base_time * (1.0 + d)).total;
    points.push_back(pt);
  }
  return points;
}

double EccTradeoffExplorer::optimal_degradation(
    const std::vector<EccTradeoffPoint>& points) {
  DVF_CHECK_MSG(!points.empty(), "sweep produced no points");
  const auto best = std::min_element(
      points.begin(), points.end(),
      [](const EccTradeoffPoint& a, const EccTradeoffPoint& b) {
        return a.dvf < b.dvf;
      });
  return best->degradation;
}

}  // namespace dvf
