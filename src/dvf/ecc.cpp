#include "dvf/dvf/ecc.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "dvf/common/error.hpp"

namespace dvf {

EccTradeoffExplorer::EccTradeoffExplorer(Machine machine, ModelSpec model)
    : machine_(std::move(machine)), model_(std::move(model)) {
  if (!model_.exec_time_seconds.has_value()) {
    throw SemanticError("ECC trade-off study needs a model with an execution "
                        "time");
  }
}

Result<std::vector<EccTradeoffPoint>> EccTradeoffExplorer::try_sweep(
    const EccSweepConfig& config) const {
  DVF_EVAL_REQUIRE(std::isfinite(config.step) && config.step > 0.0,
                   "sweep step must be positive");
  DVF_EVAL_REQUIRE(std::isfinite(config.max_degradation) &&
                       config.max_degradation >= 0.0,
                   "max degradation must be non-negative");
  DVF_EVAL_REQUIRE(std::isfinite(config.full_coverage_degradation) &&
                       config.full_coverage_degradation > 0.0,
                   "full-coverage degradation must be positive");
  DVF_EVAL_REQUIRE(std::isfinite(config.raw_fit),
                   "raw FIT must be finite");

  // A denormal step over the default 0..0.30 range would ask for ~10^307
  // points; bound the count before looping. The +1e-12 epsilon matches the
  // loop condition below.
  const double expected_points =
      std::floor((config.max_degradation + 1e-12) / config.step) + 1.0;
  if (!(expected_points <= static_cast<double>(kMaxSweepPoints))) {
    return EvalError{ErrorKind::kResourceLimit,
                     "ECC sweep would produce " +
                         std::to_string(expected_points) + " points (cap " +
                         std::to_string(kMaxSweepPoints) +
                         "); increase the step"};
  }

  const double protected_fit = fit_rate(config.scheme);
  const double base_time = *model_.exec_time_seconds;

  std::vector<EccTradeoffPoint> points;
  for (double d = 0.0; d <= config.max_degradation + 1e-12; d += config.step) {
    EccTradeoffPoint pt;
    pt.degradation = d;
    pt.coverage = std::min(1.0, d / config.full_coverage_degradation);
    pt.effective_fit = config.raw_fit * (1.0 - pt.coverage) +
                       protected_fit * pt.coverage;
    // MemoryModel rejects non-positive FIT by throwing; keep that failure
    // classified instead (a negative raw_fit can blend below zero).
    DVF_EVAL_REQUIRE(pt.effective_fit > 0.0,
                     "ECC sweep: blended FIT is not positive at degradation " +
                         std::to_string(d));

    Machine m(machine_.name, machine_.llc, MemoryModel(pt.effective_fit));
    DvfCalculator calc(std::move(m));
    calc.set_budget(budget_);
    auto model_result = calc.try_for_model(model_, base_time * (1.0 + d));
    if (!model_result.ok()) {
      EvalError err = std::move(model_result).error();
      err.message = "ECC sweep at degradation " + std::to_string(d) + ": " +
                    err.message;
      return err;
    }
    pt.dvf = model_result.value().total;
    points.push_back(pt);
  }
  return points;
}

std::vector<EccTradeoffPoint> EccTradeoffExplorer::sweep(
    const EccSweepConfig& config) const {
  return try_sweep(config).value_or_throw();
}

double EccTradeoffExplorer::optimal_degradation(
    const std::vector<EccTradeoffPoint>& points) {
  DVF_CHECK_MSG(!points.empty(), "sweep produced no points");
  const auto best = std::min_element(
      points.begin(), points.end(),
      [](const EccTradeoffPoint& a, const EccTradeoffPoint& b) {
        return a.dvf < b.dvf;
      });
  return best->degradation;
}

}  // namespace dvf
