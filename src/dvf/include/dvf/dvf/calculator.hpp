// The DVF calculator: Eq. 1 (per data structure) and Eq. 2 (application).
#pragma once

#include <string>
#include <vector>

#include "dvf/common/budget.hpp"
#include "dvf/common/result.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/machine.hpp"

namespace dvf {

/// DVF of one data structure, with the intermediate terms of Eq. 1 exposed
/// for reporting: DVF_d = N_error * N_ha = FIT * T * S_d * N_ha.
struct StructureDvf {
  std::string name;
  double size_bytes = 0.0;   ///< S_d
  double n_ha = 0.0;         ///< estimated main-memory accesses
  double n_error = 0.0;      ///< FIT * T * S_d (unit-converted)
  double dvf = 0.0;          ///< N_error * N_ha
};

/// DVF of an application (Eq. 2): the per-structure results plus their sum.
struct ApplicationDvf {
  std::string model_name;
  std::string machine_name;
  double exec_time_seconds = 0.0;
  std::vector<StructureDvf> structures;
  double total = 0.0;  ///< DVF_a

  /// Per-structure lookup (nullptr when absent).
  [[nodiscard]] const StructureDvf* find(const std::string& name) const;
};

/// Evaluates models against one machine. Stateless apart from the machine;
/// safe to share across threads.
class DvfCalculator {
 public:
  /// Models with at least this many structures are evaluated in parallel
  /// (per-structure analytics are independent); smaller models stay serial
  /// so tiny evaluations never pay scheduling overhead.
  static constexpr std::size_t kParallelStructureThreshold = 32;

  explicit DvfCalculator(Machine machine);

  /// Caps the worker threads used for large models (0 = DVF_THREADS env
  /// var / hardware default, 1 = always serial). Results are bit-identical
  /// for every setting: structures are evaluated independently and summed
  /// in model order.
  void set_threads(unsigned threads) noexcept { threads_ = threads; }

  /// Attaches a resource budget applied to every evaluation through this
  /// calculator (try_* and throwing forms alike). The budget must outlive
  /// the calculator's use; nullptr restores the process-default limits.
  /// Shared safely by the parallel fan-out (EvalBudget is thread-safe).
  void set_budget(EvalBudget* budget) noexcept { budget_ = budget; }
  [[nodiscard]] EvalBudget* budget() const noexcept { return budget_; }

  /// Total forms: classified EvalError instead of an exception. Errors from
  /// a structure's evaluation are annotated with the structure's name; the
  /// parallel fan-out reports the lowest-index failure deterministically.
  /// A missing execution time in try_for_model(model) is a domain_error.
  [[nodiscard]] Result<double> try_main_memory_accesses(
      const DataStructureSpec& ds) const;
  [[nodiscard]] Result<StructureDvf> try_for_structure(
      const DataStructureSpec& ds, double exec_time_seconds) const;
  [[nodiscard]] Result<ApplicationDvf> try_for_model(
      const ModelSpec& model) const;
  [[nodiscard]] Result<ApplicationDvf> try_for_model(
      const ModelSpec& model, double exec_time_seconds) const;

  /// N_ha of one data structure on this machine's LLC.
  [[nodiscard]] double main_memory_accesses(const DataStructureSpec& ds) const;

  /// Eq. 1. `exec_time_seconds` is T; throws InvalidArgumentError when
  /// negative.
  [[nodiscard]] StructureDvf for_structure(const DataStructureSpec& ds,
                                           double exec_time_seconds) const;

  /// Eq. 2 over all structures of the model. The model must carry an
  /// execution time (measured or modeled); throws SemanticError otherwise.
  [[nodiscard]] ApplicationDvf for_model(const ModelSpec& model) const;

  /// As above but overriding T (used by studies that sweep time).
  [[nodiscard]] ApplicationDvf for_model(const ModelSpec& model,
                                         double exec_time_seconds) const;

  [[nodiscard]] const Machine& machine() const noexcept { return machine_; }

 private:
  /// Uncounted core of try_for_structure, shared with the model fan-out so
  /// the obs error counters tick exactly once per failed public call.
  [[nodiscard]] Result<StructureDvf> eval_structure(
      const DataStructureSpec& ds, double exec_time_seconds) const;

  Machine machine_;
  unsigned threads_ = 0;
  EvalBudget* budget_ = nullptr;
};

}  // namespace dvf
