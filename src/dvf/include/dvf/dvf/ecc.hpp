// The §V-B study: quantifying a hardware protection mechanism's effect on
// DVF and exploring the performance/resilience trade-off (Fig. 7).
//
// Modeling assumption (documented in DESIGN.md): the paper does not state
// the mechanism by which a *small* performance sacrifice already lowers DVF
// and the minimum lands near 5% degradation. We model ECC protection
// coverage as growing linearly with the spent performance budget until full
// coverage at `full_coverage_degradation`:
//   c(d)    = min(1, d / d_full)
//   FIT(d)  = FIT_raw * (1 - c(d)) + FIT_ecc * c(d)
//   T(d)    = T * (1 + d)
//   DVF(d)  = FIT(d) * T(d) * S_d * N_ha  summed over structures
// which yields the published curve shape: a steep drop while coverage grows,
// a minimum at d_full, then a slow linear rise as exposure time dominates.
#pragma once

#include <vector>

#include "dvf/dvf/calculator.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/machine.hpp"

namespace dvf {

/// One point of the Fig. 7 sweep.
struct EccTradeoffPoint {
  double degradation = 0.0;  ///< performance loss, e.g. 0.05 for 5%
  double coverage = 0.0;     ///< fraction of memory protected at this budget
  double effective_fit = 0.0;
  double dvf = 0.0;          ///< application DVF at this point
};

/// Sweep configuration.
struct EccSweepConfig {
  EccScheme scheme = EccScheme::kSecDed;
  double max_degradation = 0.30;           ///< paper sweeps 0..30%
  double step = 0.01;
  double full_coverage_degradation = 0.05; ///< where coverage saturates
  double raw_fit = fit_rate(EccScheme::kNone);
};

/// Explores DVF as a function of the ECC performance budget for a model on
/// a machine (the machine's own FIT is replaced by the sweep's blend).
class EccTradeoffExplorer {
 public:
  EccTradeoffExplorer(Machine machine, ModelSpec model);

  /// Runs the sweep; the model must carry an execution time.
  [[nodiscard]] std::vector<EccTradeoffPoint> sweep(
      const EccSweepConfig& config) const;

  /// Degradation of the sweep's minimum-DVF point.
  [[nodiscard]] static double optimal_degradation(
      const std::vector<EccTradeoffPoint>& points);

 private:
  Machine machine_;
  ModelSpec model_;
};

}  // namespace dvf
