// The §V-B study: quantifying a hardware protection mechanism's effect on
// DVF and exploring the performance/resilience trade-off (Fig. 7).
//
// Modeling assumption (documented in DESIGN.md): the paper does not state
// the mechanism by which a *small* performance sacrifice already lowers DVF
// and the minimum lands near 5% degradation. We model ECC protection
// coverage as growing linearly with the spent performance budget until full
// coverage at `full_coverage_degradation`:
//   c(d)    = min(1, d / d_full)
//   FIT(d)  = FIT_raw * (1 - c(d)) + FIT_ecc * c(d)
//   T(d)    = T * (1 + d)
//   DVF(d)  = FIT(d) * T(d) * S_d * N_ha  summed over structures
// which yields the published curve shape: a steep drop while coverage grows,
// a minimum at d_full, then a slow linear rise as exposure time dominates.
#pragma once

#include <vector>

#include "dvf/common/result.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/machine.hpp"

namespace dvf {

/// One point of the Fig. 7 sweep.
struct EccTradeoffPoint {
  double degradation = 0.0;  ///< performance loss, e.g. 0.05 for 5%
  double coverage = 0.0;     ///< fraction of memory protected at this budget
  double effective_fit = 0.0;
  double dvf = 0.0;          ///< application DVF at this point
};

/// Sweep configuration.
struct EccSweepConfig {
  EccScheme scheme = EccScheme::kSecDed;
  double max_degradation = 0.30;           ///< paper sweeps 0..30%
  double step = 0.01;
  double full_coverage_degradation = 0.05; ///< where coverage saturates
  double raw_fit = fit_rate(EccScheme::kNone);
};

/// Explores DVF as a function of the ECC performance budget for a model on
/// a machine (the machine's own FIT is replaced by the sweep's blend).
class EccTradeoffExplorer {
 public:
  /// Hard cap on sweep points: a tiny (or denormal) step over a wide range
  /// must degrade into a classified resource_limit error, not an unbounded
  /// loop. Far above any plottable sweep (the paper uses 31 points).
  static constexpr std::size_t kMaxSweepPoints = 100000;

  EccTradeoffExplorer(Machine machine, ModelSpec model);

  /// Attaches a resource budget applied to every per-point evaluation of the
  /// sweep (the budget must outlive the explorer's use; nullptr restores the
  /// process-default limits).
  void set_budget(EvalBudget* budget) noexcept { budget_ = budget; }

  /// Total form of sweep: domain_error for an invalid config (including
  /// non-finite step/bounds), resource_limit when the step would produce
  /// more than kMaxSweepPoints points, and any per-point evaluation error
  /// annotated with the degradation at which it occurred.
  [[nodiscard]] Result<std::vector<EccTradeoffPoint>> try_sweep(
      const EccSweepConfig& config) const;

  /// Runs the sweep; the model must carry an execution time. Thin wrapper
  /// over try_sweep.
  [[nodiscard]] std::vector<EccTradeoffPoint> sweep(
      const EccSweepConfig& config) const;

  /// Degradation of the sweep's minimum-DVF point.
  [[nodiscard]] static double optimal_degradation(
      const std::vector<EccTradeoffPoint>& points);

 private:
  Machine machine_;
  ModelSpec model_;
  EvalBudget* budget_ = nullptr;
};

}  // namespace dvf
