// Pattern inference: derive an access-pattern spec from a recorded
// reference stream — the inverse of CGPMAC's forward modeling. Where the
// paper asks users to classify each structure's accesses by reading the
// pseudocode (§III-B), this derives the classification from a trace:
//
//   1. constant-stride monotone sweeps        -> StreamingSpec (per sweep)
//   2. a periodic reference string            -> TemplateSpec{base, reps}
//   3. anything else, within a size budget    -> literal TemplateSpec
//      (the trace itself is the template: the stack-distance count is then
//      exact for any fully-associative-LRU-like cache)
//   4. beyond the budget                      -> RandomSpec with a measured
//      popularity histogram (IRM)
//
// Used by `dvfc infer` and by studies that start from a trace instead of
// pseudocode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/trace/recorder.hpp"
#include "dvf/trace/trace_io.hpp"

namespace dvf {

class TraceReader;

struct InferenceOptions {
  /// Longest reference string kept as a literal template; longer streams
  /// degrade to the IRM random summary.
  std::size_t literal_template_limit = 4'000'000;
};

/// Infers the pattern phases of ONE structure from its element-index
/// reference string (indices must already be element-granular).
[[nodiscard]] std::vector<PatternSpec> infer_patterns(
    std::span<const std::uint64_t> element_indices,
    std::uint32_t element_bytes, std::uint64_t element_count,
    const InferenceOptions& options = {});

/// Infers a whole application model from a structure table plus reference
/// stream: one DataStructureSpec per traced structure, with patterns
/// inferred from its references. Records not attributable to a structure
/// are ignored.
[[nodiscard]] ModelSpec infer_model(
    std::span<const DataStructureInfo> structures,
    std::span<const MemoryRecord> records,
    const InferenceOptions& options = {});

/// As above, from a deserialized trace.
[[nodiscard]] ModelSpec infer_model(const TraceFile& trace,
                                    const InferenceOptions& options = {});

/// As above, streaming: buckets the reference string chunk by chunk from a
/// TraceReader, so only the per-structure element indices are ever resident
/// (not the raw record stream). Consumes the reader to its end.
[[nodiscard]] ModelSpec infer_model(TraceReader& reader,
                                    const InferenceOptions& options = {});

}  // namespace dvf
