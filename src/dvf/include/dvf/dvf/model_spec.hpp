// Application model specifications — the typed form of an Aspen-extended
// resilience model (what the DSL lowers to, and what the kernels' built-in
// self-descriptions produce directly).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dvf/patterns/specs.hpp"

namespace dvf {

/// One major data structure of an application: its footprint S_d plus the
/// composition of access-pattern phases that determines N_ha.
struct DataStructureSpec {
  std::string name;
  std::uint64_t size_bytes = 0;       ///< S_d
  std::vector<PatternSpec> patterns;  ///< phases; N_ha = sum of estimates
};

/// An application model: the major data structures (paper: "the combination
/// of major data structures accounts for most of the working set") plus the
/// execution time T. `exec_time_seconds` may be filled in later from a
/// measured kernel run (std::nullopt until then).
struct ModelSpec {
  std::string name;
  std::vector<DataStructureSpec> structures;
  std::optional<double> exec_time_seconds;  ///< T

  /// Total working-set size of the modeled structures, in bytes.
  [[nodiscard]] std::uint64_t working_set_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& ds : structures) {
      total += ds.size_bytes;
    }
    return total;
  }

  /// Pointer to the named structure, or nullptr.
  [[nodiscard]] const DataStructureSpec* find(const std::string& ds_name) const {
    for (const auto& ds : structures) {
      if (ds.name == ds_name) {
        return &ds;
      }
    }
    return nullptr;
  }
};

}  // namespace dvf
