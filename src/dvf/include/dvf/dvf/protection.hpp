// Selective protection planning — the optimization DVF exists to enable.
//
// The paper's motivation (§I): "selectively apply protection mechanisms to
// its critical components ... balancing their benefits against the costs of
// their respective overheads", and §III-A's use cases: "decide whether a
// specific resilience mechanism provides sufficient protection, given a
// pre-defined DVF target". This module turns per-structure DVF into those
// decisions: evaluate a protection assignment, find the minimum-DVF plan
// within a performance budget, or the cheapest plan meeting a DVF target.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dvf/dvf/calculator.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/machine.hpp"

namespace dvf {

/// A mechanism that can protect ONE data structure (ECC region, software
/// replication, checksummed container, ...).
struct ProtectionMechanism {
  std::string name;
  /// Multiplies the structure's effective FIT (e.g. chipkill: 0.02/5000).
  double fit_factor = 1.0;
  /// Fractional slowdown of accesses to the protected structure. The
  /// application-level slowdown weights this by the structure's share of
  /// main-memory traffic, so protecting a cold structure is nearly free.
  double access_overhead = 0.0;

  /// Table VII presets.
  static ProtectionMechanism none();
  static ProtectionMechanism secded(double access_overhead = 0.03);
  static ProtectionMechanism chipkill(double access_overhead = 0.05);
  /// Software triple-modular redundancy on the structure's updates: strong
  /// but expensive (illustrative default costs).
  static ProtectionMechanism software_tmr(double access_overhead = 0.60);
};

/// One structure's protection choice within a plan.
struct ProtectionChoice {
  std::string structure;
  std::string mechanism;
  double structure_dvf = 0.0;  ///< DVF of this structure under the plan
};

/// A fully evaluated plan.
struct ProtectionPlan {
  std::vector<ProtectionChoice> choices;
  double total_dvf = 0.0;        ///< DVF_a under the plan
  double time_overhead = 0.0;    ///< fractional slowdown vs the bare run
  double baseline_dvf = 0.0;     ///< DVF_a with no protection
  [[nodiscard]] double improvement() const noexcept {
    return baseline_dvf == 0.0 ? 1.0 : total_dvf / baseline_dvf;
  }
};

/// Exhaustive planner (the paper's models have a handful of major
/// structures, so the mechanism^structure space is small and solved
/// exactly).
class ProtectionPlanner {
 public:
  /// The model must carry an execution time. Throws SemanticError
  /// otherwise; InvalidArgumentError when no mechanisms are given.
  ProtectionPlanner(Machine machine, ModelSpec model,
                    std::vector<ProtectionMechanism> mechanisms);

  /// Evaluates an explicit assignment: mechanism index per structure
  /// (same order as the model's structures; index into mechanisms()).
  [[nodiscard]] ProtectionPlan evaluate(
      const std::vector<std::size_t>& assignment) const;

  /// Minimum-DVF plan whose slowdown stays within `max_time_overhead`
  /// (e.g. 0.05 for 5%).
  [[nodiscard]] ProtectionPlan optimize(double max_time_overhead) const;

  /// Cheapest plan (smallest slowdown, DVF as tie-break) achieving
  /// DVF_a <= `dvf_target`; std::nullopt when no assignment reaches it.
  [[nodiscard]] std::optional<ProtectionPlan> cheapest_meeting_target(
      double dvf_target) const;

  [[nodiscard]] const std::vector<ProtectionMechanism>& mechanisms() const
      noexcept {
    return mechanisms_;
  }
  /// Main-memory-traffic share of each structure (the overhead weights).
  [[nodiscard]] const std::vector<double>& traffic_shares() const noexcept {
    return shares_;
  }

 private:
  template <typename Visit>
  void for_each_assignment(Visit&& visit) const;

  Machine machine_;
  ModelSpec model_;
  std::vector<ProtectionMechanism> mechanisms_;
  std::vector<double> n_ha_;     ///< per-structure main-memory accesses
  std::vector<double> shares_;   ///< n_ha / sum(n_ha)
  double baseline_dvf_ = 0.0;
};

}  // namespace dvf
