// Weighted DVF — §III-A's proposed refinement: "a further refined definition
// of DVF could assign a weighting factor to each term to account for diverse
// vulnerability contributions from each term."
//
// We implement the exponent form DVF_w = N_error^alpha * N_ha^beta, which
// preserves the plain definition at alpha = beta = 1 and keeps the metric
// scale-free in each term. Comparative statements (which structure is more
// vulnerable) are invariant to common rescaling, so the weights only matter
// when the two terms trade off — exactly the paper's intent.
#pragma once

#include "dvf/common/error.hpp"
#include "dvf/common/result.hpp"
#include "dvf/dvf/calculator.hpp"

namespace dvf {

/// Exponent weights for the two DVF terms.
struct DvfWeights {
  double error_weight = 1.0;   ///< alpha — exponent on N_error
  double access_weight = 1.0;  ///< beta — exponent on N_ha
};

/// Total form of weighted_dvf: pow overflow (large bases with large
/// exponents reach inf fast) and NaN (negative base with fractional
/// exponent) are classified instead of returned.
[[nodiscard]] Result<double> try_weighted_dvf(const StructureDvf& structure,
                                              const DvfWeights& weights);

/// Total form of weighted_application_dvf; a per-structure error is
/// annotated with the structure's name.
[[nodiscard]] Result<double> try_weighted_application_dvf(
    const ApplicationDvf& app, const DvfWeights& weights);

/// Weighted DVF of an already-evaluated structure.
[[nodiscard]] double weighted_dvf(const StructureDvf& structure,
                                  const DvfWeights& weights);

/// Weighted DVF_a: the weighted per-structure values summed (Eq. 2 applied
/// to the refined metric).
[[nodiscard]] double weighted_application_dvf(const ApplicationDvf& app,
                                              const DvfWeights& weights);

}  // namespace dvf
