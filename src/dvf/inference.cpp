#include "dvf/dvf/inference.hpp"

#include <algorithm>
#include <optional>
#include <functional>
#include <unordered_map>
#include <variant>

#include "dvf/common/error.hpp"
#include "dvf/trace/trace_reader.hpp"

namespace dvf {

namespace {

/// Detects a pure constant-stride traversal split into one or more monotone
/// sweeps that all share the same stride and start. Returns the stride in
/// elements (>= 1) and the sweep count, or nullopt.
struct SweepShape {
  std::uint64_t stride = 1;
  std::uint64_t sweeps = 1;
  std::uint64_t elements_per_sweep = 0;
};

std::optional<SweepShape> detect_streaming(
    std::span<const std::uint64_t> indices) {
  if (indices.size() < 2) {
    return std::nullopt;
  }
  // Split into monotone runs at each descent.
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // [begin, end)
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= indices.size(); ++i) {
    if (i == indices.size() || indices[i] <= indices[i - 1]) {
      runs.emplace_back(begin, i);
      begin = i;
    }
  }
  // All runs must start at the same index and advance by one shared stride.
  std::uint64_t stride = 0;
  for (const auto& [run_begin, run_end] : runs) {
    if (indices[run_begin] != indices[runs[0].first]) {
      return std::nullopt;
    }
    for (std::size_t i = run_begin + 1; i < run_end; ++i) {
      const std::uint64_t step = indices[i] - indices[i - 1];
      if (stride == 0) {
        stride = step;
      } else if (step != stride) {
        return std::nullopt;
      }
    }
    if (run_end - run_begin != runs[0].second - runs[0].first) {
      return std::nullopt;  // ragged sweeps: not a clean traversal
    }
  }
  if (stride == 0) {
    return std::nullopt;  // all references to one element: template handles it
  }
  SweepShape shape;
  shape.stride = stride;
  shape.sweeps = runs.size();
  shape.elements_per_sweep = runs[0].second - runs[0].first;
  return shape;
}

/// Smallest period p (dividing the length) such that the string is the
/// first p entries repeated; returns the length itself when aperiodic.
std::size_t smallest_period(std::span<const std::uint64_t> indices) {
  const std::size_t n = indices.size();
  for (std::size_t p = 1; p <= n / 2; ++p) {
    if (n % p != 0) {
      continue;
    }
    bool periodic = true;
    for (std::size_t i = p; i < n && periodic; ++i) {
      periodic = indices[i] == indices[i - p];
    }
    if (periodic) {
      return p;
    }
  }
  return n;
}

}  // namespace

std::vector<PatternSpec> infer_patterns(
    std::span<const std::uint64_t> element_indices,
    std::uint32_t element_bytes, std::uint64_t element_count,
    const InferenceOptions& options) {
  DVF_CHECK_MSG(element_bytes > 0, "inference needs a positive element size");
  std::vector<PatternSpec> patterns;
  if (element_indices.empty()) {
    return patterns;
  }

  // 1. Constant-stride sweeps.
  if (const auto shape = detect_streaming(element_indices)) {
    StreamingSpec s;
    s.element_bytes = element_bytes;
    s.element_count = shape->elements_per_sweep * shape->stride;
    s.stride_elements = shape->stride;
    for (std::uint64_t sweep = 0; sweep < shape->sweeps; ++sweep) {
      patterns.emplace_back(s);
    }
    return patterns;
  }

  // 2./3. Periodic or literal template within budget.
  if (element_indices.size() <= options.literal_template_limit) {
    const std::size_t period = smallest_period(element_indices);
    TemplateSpec t;
    t.element_bytes = element_bytes;
    t.element_indices.assign(element_indices.begin(),
                             element_indices.begin() +
                                 static_cast<std::ptrdiff_t>(period));
    t.repetitions = element_indices.size() / period;
    patterns.emplace_back(std::move(t));
    return patterns;
  }

  // 4. IRM summary for very long irregular streams. Treat the stream as
  // `sweeps` passes where each pass visits the average number of
  // references; the popularity histogram carries the real structure.
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  counts.reserve(element_count / 4 + 16);
  for (const std::uint64_t idx : element_indices) {
    ++counts[idx];
  }
  const double distinct = static_cast<double>(counts.size());
  const double passes = std::max(
      1.0, static_cast<double>(element_indices.size()) / distinct);

  RandomSpec r;
  r.element_count = element_count;
  r.element_bytes = element_bytes;
  r.iterations = static_cast<std::uint64_t>(passes);
  r.visits_per_iteration = distinct;
  r.sorted_visit_fractions.assign(element_count, 0.0);
  std::size_t slot = 0;
  for (const auto& [idx, count] : counts) {
    (void)idx;
    r.sorted_visit_fractions[slot++] =
        std::min(1.0, static_cast<double>(count) / passes);
  }
  std::sort(r.sorted_visit_fractions.begin(), r.sorted_visit_fractions.end(),
            std::greater<>());
  patterns.emplace_back(std::move(r));
  return patterns;
}

namespace {

// Appends the element-granular reference string of each structure; callable
// per chunk so a streamed trace buckets in O(per-structure indices) memory.
void bucket_records(std::span<const DataStructureInfo> structures,
                    std::span<const MemoryRecord> records,
                    std::vector<std::vector<std::uint64_t>>& per_structure) {
  for (const MemoryRecord& record : records) {
    if (record.ds == kNoDs || record.ds >= structures.size()) {
      continue;
    }
    const DataStructureInfo& info = structures[record.ds];
    if (info.element_bytes == 0 || record.address < info.base_address) {
      continue;
    }
    per_structure[record.ds].push_back(
        (record.address - info.base_address) / info.element_bytes);
  }
}

ModelSpec model_from_buckets(
    std::span<const DataStructureInfo> structures,
    const std::vector<std::vector<std::uint64_t>>& per_structure,
    const InferenceOptions& options) {
  ModelSpec spec;
  spec.name = "inferred";

  // The paper's rule for concurrently accessed structures: split the cache
  // by footprint. Per-structure inference cannot see cross-structure
  // interference, so the share is applied to the capacity-sensitive specs.
  std::uint64_t total_bytes = 0;
  for (std::size_t i = 0; i < structures.size(); ++i) {
    if (!per_structure[i].empty()) {
      total_bytes += structures[i].size_bytes;
    }
  }

  for (std::size_t i = 0; i < structures.size(); ++i) {
    const DataStructureInfo& info = structures[i];
    if (per_structure[i].empty()) {
      continue;
    }
    DataStructureSpec ds;
    ds.name = info.name;
    ds.size_bytes = info.size_bytes;
    ds.patterns = infer_patterns(per_structure[i], info.element_bytes,
                                 info.element_count(), options);
    const double share =
        total_bytes == 0
            ? 1.0
            : std::max(1.0 / 64.0, static_cast<double>(info.size_bytes) /
                                       static_cast<double>(total_bytes));
    for (PatternSpec& pattern : ds.patterns) {
      if (auto* t = std::get_if<TemplateSpec>(&pattern)) {
        t->cache_ratio = share;
      } else if (auto* r = std::get_if<RandomSpec>(&pattern)) {
        r->cache_ratio = share;
      }
    }
    spec.structures.push_back(std::move(ds));
  }
  return spec;
}

}  // namespace

ModelSpec infer_model(std::span<const DataStructureInfo> structures,
                      std::span<const MemoryRecord> records,
                      const InferenceOptions& options) {
  std::vector<std::vector<std::uint64_t>> per_structure(structures.size());
  bucket_records(structures, records, per_structure);
  return model_from_buckets(structures, per_structure, options);
}

ModelSpec infer_model(const TraceFile& trace, const InferenceOptions& options) {
  return infer_model(std::span<const DataStructureInfo>(trace.structures),
                     std::span<const MemoryRecord>(trace.records), options);
}

ModelSpec infer_model(TraceReader& reader, const InferenceOptions& options) {
  std::vector<std::vector<std::uint64_t>> per_structure(
      reader.structures().size());
  while (!reader.done()) {
    bucket_records(reader.structures(), reader.next_chunk(), per_structure);
  }
  return model_from_buckets(reader.structures(), per_structure, options);
}

}  // namespace dvf
