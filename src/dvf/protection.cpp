#include "dvf/dvf/protection.hpp"

#include <limits>
#include <utility>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/units.hpp"

namespace dvf {

ProtectionMechanism ProtectionMechanism::none() {
  return {"none", 1.0, 0.0};
}
ProtectionMechanism ProtectionMechanism::secded(double access_overhead) {
  return {"secded", fit_rate(EccScheme::kSecDed) / fit_rate(EccScheme::kNone),
          access_overhead};
}
ProtectionMechanism ProtectionMechanism::chipkill(double access_overhead) {
  return {"chipkill",
          fit_rate(EccScheme::kChipkill) / fit_rate(EccScheme::kNone),
          access_overhead};
}
ProtectionMechanism ProtectionMechanism::software_tmr(double access_overhead) {
  // Triple redundancy detects and outvotes single errors on every update;
  // residual vulnerability comes from double faults — model as a strong
  // but not chipkill-grade factor.
  return {"software-tmr", 1e-3, access_overhead};
}

ProtectionPlanner::ProtectionPlanner(Machine machine, ModelSpec model,
                                     std::vector<ProtectionMechanism> mechanisms)
    : machine_(std::move(machine)),
      model_(std::move(model)),
      mechanisms_(std::move(mechanisms)) {
  if (!model_.exec_time_seconds.has_value()) {
    throw SemanticError("protection planning needs a model with an execution "
                        "time");
  }
  DVF_CHECK_MSG(!mechanisms_.empty(), "need at least one mechanism");
  DVF_CHECK_MSG(!model_.structures.empty(), "model has no data structures");
  for (const ProtectionMechanism& m : mechanisms_) {
    DVF_CHECK_MSG(m.fit_factor > 0.0, "fit_factor must be positive");
    DVF_CHECK_MSG(m.access_overhead >= 0.0,
                  "access overhead must be non-negative");
  }

  const DvfCalculator calc(machine_);
  double total_traffic = 0.0;
  for (const DataStructureSpec& ds : model_.structures) {
    n_ha_.push_back(calc.main_memory_accesses(ds));
    total_traffic += n_ha_.back();
  }
  for (const double n : n_ha_) {
    shares_.push_back(total_traffic == 0.0 ? 0.0 : n / total_traffic);
  }
  baseline_dvf_ = calc.for_model(model_).total;
}

ProtectionPlan ProtectionPlanner::evaluate(
    const std::vector<std::size_t>& assignment) const {
  DVF_CHECK_MSG(assignment.size() == model_.structures.size(),
                "assignment size must match the structure count");

  // Application slowdown: each protected structure contributes its
  // mechanism's access overhead weighted by its main-memory-traffic share.
  double overhead = 0.0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    DVF_CHECK_MSG(assignment[i] < mechanisms_.size(),
                  "mechanism index out of range");
    overhead += mechanisms_[assignment[i]].access_overhead * shares_[i];
  }
  const double time = *model_.exec_time_seconds * (1.0 + overhead);

  // Per-structure DVF under the plan: the protected structure's FIT shrinks
  // by the mechanism's factor, but EVERY structure's exposure grows with
  // the slowed-down run — the structure-granular version of the Fig. 7
  // tension.
  ProtectionPlan plan;
  plan.time_overhead = overhead;
  plan.baseline_dvf = baseline_dvf_;
  math::KahanSum total;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const ProtectionMechanism& mech = mechanisms_[assignment[i]];
    const DataStructureSpec& ds = model_.structures[i];
    const double fit = machine_.memory.fit() * mech.fit_factor;
    const double n_error = expected_errors(
        fit, time, static_cast<double>(ds.size_bytes));
    const double dvf = n_error * n_ha_[i];
    plan.choices.push_back({ds.name, mech.name, dvf});
    total.add(dvf);
  }
  plan.total_dvf = total.value();
  return plan;
}

template <typename Visit>
void ProtectionPlanner::for_each_assignment(Visit&& visit) const {
  const std::size_t n = model_.structures.size();
  const std::size_t m = mechanisms_.size();
  std::vector<std::size_t> assignment(n, 0);
  while (true) {
    visit(assignment);
    std::size_t pos = 0;
    while (pos < n && ++assignment[pos] == m) {
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) {
      return;
    }
  }
}

ProtectionPlan ProtectionPlanner::optimize(double max_time_overhead) const {
  DVF_CHECK_MSG(max_time_overhead >= 0.0, "budget must be non-negative");
  ProtectionPlan best;
  best.total_dvf = std::numeric_limits<double>::infinity();
  for_each_assignment([&](const std::vector<std::size_t>& assignment) {
    const ProtectionPlan plan = evaluate(assignment);
    if (plan.time_overhead <= max_time_overhead + 1e-12 &&
        plan.total_dvf < best.total_dvf) {
      best = plan;
    }
  });
  return best;  // the all-none assignment always fits the budget
}

std::optional<ProtectionPlan> ProtectionPlanner::cheapest_meeting_target(
    double dvf_target) const {
  DVF_CHECK_MSG(dvf_target > 0.0, "DVF target must be positive");
  std::optional<ProtectionPlan> best;
  for_each_assignment([&](const std::vector<std::size_t>& assignment) {
    const ProtectionPlan plan = evaluate(assignment);
    if (plan.total_dvf > dvf_target) {
      return;
    }
    if (!best.has_value() ||
        plan.time_overhead < best->time_overhead - 1e-12 ||
        (plan.time_overhead < best->time_overhead + 1e-12 &&
         plan.total_dvf < best->total_dvf)) {
      best = plan;
    }
  });
  return best;
}

}  // namespace dvf
