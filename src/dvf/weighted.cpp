#include "dvf/dvf/weighted.hpp"

#include <cmath>

#include "dvf/common/math.hpp"

namespace dvf {

double weighted_dvf(const StructureDvf& structure, const DvfWeights& weights) {
  DVF_CHECK_MSG(weights.error_weight >= 0.0 && weights.access_weight >= 0.0,
                "DVF weights must be non-negative");
  // 0^0 is taken as 1 so a zeroed weight truly removes the term.
  const auto term = [](double base, double exponent) {
    if (exponent == 0.0) {
      return 1.0;
    }
    return std::pow(base, exponent);
  };
  return term(structure.n_error, weights.error_weight) *
         term(structure.n_ha, weights.access_weight);
}

double weighted_application_dvf(const ApplicationDvf& app,
                                const DvfWeights& weights) {
  math::KahanSum total;
  for (const StructureDvf& s : app.structures) {
    total.add(weighted_dvf(s, weights));
  }
  return total.value();
}

}  // namespace dvf
