#include "dvf/dvf/weighted.hpp"

#include <cmath>

#include "dvf/common/math.hpp"

namespace dvf {

Result<double> try_weighted_dvf(const StructureDvf& structure,
                                const DvfWeights& weights) {
  DVF_EVAL_REQUIRE(weights.error_weight >= 0.0 && weights.access_weight >= 0.0,
                   "DVF weights must be non-negative");
  // 0^0 is taken as 1 so a zeroed weight truly removes the term.
  const auto term = [](double base, double exponent) {
    if (exponent == 0.0) {
      return 1.0;
    }
    return std::pow(base, exponent);
  };
  // pow leaves the finite range quickly (n_ha^beta with paper-scale n_ha
  // ~1e6 overflows for beta ≳ 51); classify instead of returning inf/NaN.
  DVF_TRY_ASSIGN(error_term,
                 finite_or_error(term(structure.n_error, weights.error_weight),
                                 "weighted N_error term"));
  DVF_TRY_ASSIGN(access_term,
                 finite_or_error(term(structure.n_ha, weights.access_weight),
                                 "weighted N_ha term"));
  return finite_or_error(error_term * access_term, "weighted DVF");
}

double weighted_dvf(const StructureDvf& structure, const DvfWeights& weights) {
  return try_weighted_dvf(structure, weights).value_or_throw();
}

Result<double> try_weighted_application_dvf(const ApplicationDvf& app,
                                            const DvfWeights& weights) {
  math::KahanSum total;
  for (const StructureDvf& s : app.structures) {
    auto structure_result = try_weighted_dvf(s, weights);
    if (!structure_result.ok()) {
      EvalError err = std::move(structure_result).error();
      err.message = "structure '" + s.name + "': " + err.message;
      return err;
    }
    total.add(*structure_result);
  }
  return finite_or_error(total.value(), "weighted application DVF");
}

double weighted_application_dvf(const ApplicationDvf& app,
                                const DvfWeights& weights) {
  return try_weighted_application_dvf(app, weights).value_or_throw();
}

}  // namespace dvf
