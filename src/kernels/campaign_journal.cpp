#include "dvf/kernels/campaign_journal.hpp"

#include <filesystem>
#include <sstream>
#include <system_error>

#include "dvf/common/error.hpp"
#include "dvf/common/failpoint.hpp"
#include "dvf/common/robust_io.hpp"

namespace dvf::kernels {

namespace {

constexpr const char* kMagic = "dvf-campaign-journal v1";

/// Doubles are journaled with 17 significant digits so the header a resume
/// reads back compares bit-equal to the one the original run wrote.
std::string format_double(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string header_line(std::istream& in, const std::string& want) {
  std::string line;
  if (!std::getline(in, line)) {
    throw Error("campaign journal: truncated header (missing '" + want + "')");
  }
  std::istringstream fields(line);
  std::string key;
  fields >> key;
  if (key != want) {
    throw Error("campaign journal: expected header key '" + want +
                "', found '" + key + "'");
  }
  std::string rest;
  std::getline(fields, rest);
  if (!rest.empty() && rest.front() == ' ') {
    rest.erase(rest.begin());
  }
  return rest;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  std::istringstream in(text);
  std::uint64_t value = 0;
  if (!(in >> value) || !(in >> std::ws).eof()) {
    throw Error("campaign journal: bad " + what + " value '" + text + "'");
  }
  return value;
}

double parse_double(const std::string& text, const std::string& what) {
  std::istringstream in(text);
  double value = 0.0;
  if (!(in >> value) || !(in >> std::ws).eof()) {
    throw Error("campaign journal: bad " + what + " value '" + text + "'");
  }
  return value;
}

}  // namespace

CampaignJournalContents read_campaign_journal(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("campaign journal: cannot open '" + path + "'");
  }

  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw Error("campaign journal: '" + path +
                "' is not a v1 campaign journal");
  }

  CampaignJournalContents contents;
  CampaignJournalHeader& header = contents.header;
  header.kernel = header_line(in, "kernel");
  header.seed = parse_u64(header_line(in, "seed"), "seed");
  header.trials_per_structure =
      parse_u64(header_line(in, "trials"), "trials");
  header.hang_factor =
      parse_double(header_line(in, "hang_factor"), "hang_factor");
  header.ci_width = parse_double(header_line(in, "ci_width"), "ci_width");
  header.batch_trials = parse_u64(header_line(in, "batch"), "batch");

  // Target list, terminated by "end-header".
  while (true) {
    if (!std::getline(in, line)) {
      throw Error("campaign journal: truncated header (missing end-header)");
    }
    if (line == "end-header") {
      break;
    }
    std::istringstream fields(line);
    std::string key;
    JournalTarget target;
    if (!(fields >> key >> target.spec_index >> target.name) ||
        key != "target") {
      throw Error("campaign journal: malformed target line '" + line + "'");
    }
    header.targets.push_back(std::move(target));
  }

  // Trial lines. A line that fails to parse — the torn tail a mid-write
  // kill leaves behind — ends replay; the trials it would have covered
  // simply re-run. A final line missing its newline (killed between the
  // line and the flush) is likewise dropped even if it parses, so
  // valid_bytes always ends on a newline and appending stays safe.
  contents.valid_bytes = static_cast<std::uint64_t>(in.tellg());
  while (std::getline(in, line)) {
    const bool complete_line = !in.eof();
    std::istringstream fields(line);
    std::string key;
    std::string label;
    int injected = 0;
    CampaignJournalEntry entry;
    if (!complete_line ||
        !(fields >> key >> entry.target >> entry.trial >> label >> injected) ||
        key != "trial" || !(fields >> std::ws).eof() ||
        (injected != 0 && injected != 1) ||
        entry.target >= header.targets.size() ||
        entry.trial >= header.trials_per_structure) {
      contents.torn_tail = true;
      break;
    }
    const auto outcome = trial_outcome_from_string(label);
    if (!outcome.has_value()) {
      contents.torn_tail = true;
      break;
    }
    entry.outcome = *outcome;
    entry.injected = injected == 1;
    contents.entries.push_back(entry);
    contents.valid_bytes = static_cast<std::uint64_t>(in.tellg());
  }
  return contents;
}

CampaignJournalWriter::CampaignJournalWriter(
    const std::string& path, const CampaignJournalHeader& header) {
  if (auto fp = DVF_FAILPOINT("campaign.journal.open")) {
    throw Error(io::errno_message(
        "campaign journal: cannot create '" + path + "' (injected)",
        fp.error_code));
  }
  out_.open(path, std::ios::trunc);
  if (!out_) {
    throw Error("campaign journal: cannot create '" + path + "'");
  }
  out_ << kMagic << "\n"
       << "kernel " << header.kernel << "\n"
       << "seed " << header.seed << "\n"
       << "trials " << header.trials_per_structure << "\n"
       << "hang_factor " << format_double(header.hang_factor) << "\n"
       << "ci_width " << format_double(header.ci_width) << "\n"
       << "batch " << header.batch_trials << "\n";
  for (const JournalTarget& target : header.targets) {
    out_ << "target " << target.spec_index << " " << target.name << "\n";
  }
  out_ << "end-header\n";
  out_.flush();
  if (!out_) {
    throw Error("campaign journal: write failed on '" + path + "'");
  }
}

CampaignJournalWriter::CampaignJournalWriter(const std::string& path,
                                             std::uint64_t valid_bytes) {
  if (auto fp = DVF_FAILPOINT("campaign.journal.truncate")) {
    throw Error(io::errno_message(
        "campaign journal: cannot truncate torn tail of '" + path +
            "' (injected)",
        fp.error_code));
  }
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    throw Error("campaign journal: cannot truncate torn tail of '" + path +
                "': " + ec.message());
  }
  if (auto fp = DVF_FAILPOINT("campaign.journal.open")) {
    throw Error(io::errno_message(
        "campaign journal: cannot append to '" + path + "' (injected)",
        fp.error_code));
  }
  out_.open(path, std::ios::app);
  if (!out_) {
    throw Error("campaign journal: cannot append to '" + path + "'");
  }
}

Result<void> CampaignJournalWriter::record(const CampaignJournalEntry& entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (dead_.load(std::memory_order_relaxed)) {
    return EvalError{ErrorKind::kIoError,
                     "campaign journal: writer disabled after earlier write "
                     "failure"};
  }
  std::ostringstream line;
  line << "trial " << entry.target << " " << entry.trial << " "
       << to_string(entry.outcome) << " " << (entry.injected ? 1 : 0) << "\n";
  const std::string text = line.str();
  if (auto fp = DVF_FAILPOINT("campaign.journal.write")) {
    if (fp.kind == failpoint::ActionKind::kShortWrite) {
      // A torn write: half the line reaches the disk before the failure —
      // exactly the tail a mid-write kill leaves, which the reader must
      // drop on resume.
      out_.write(text.data(), static_cast<std::streamsize>(text.size() / 2));
      out_.flush();
    }
    dead_.store(true, std::memory_order_relaxed);
    return EvalError{ErrorKind::kIoError,
                     io::errno_message("campaign journal: write failed "
                                       "(injected)",
                                       fp.error_code)};
  }
  out_.write(text.data(), static_cast<std::streamsize>(text.size()));
  // Flush per trial: a trial is a full kernel re-run (milliseconds), so the
  // flush is noise (quantified in bench/campaign_injection), and it bounds
  // journal loss on a kill to the line being written. The post-flush state
  // check is what turns a full disk into a classified io_error instead of a
  // silently dropped trial.
  out_.flush();
  if (!out_) {
    dead_.store(true, std::memory_order_relaxed);
    return EvalError{ErrorKind::kIoError,
                     "campaign journal: write failed (stream error after "
                     "flush)"};
  }
  return {};
}

}  // namespace dvf::kernels
