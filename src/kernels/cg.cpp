#include "dvf/kernels/cg.hpp"

#include <cmath>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf::kernels {

ConjugateGradient::ConjugateGradient(const Config& config)
    : config_(config),
      a_(config.n * config.n),
      m_(config.preconditioned ? config.n * config.n : 1),
      x_(config.n),
      b_(config.n),
      r_(config.n),
      p_(config.n),
      z_(config.preconditioned ? config.n : 1),
      ap_(config.n),
      exact_(config.n) {
  DVF_CHECK_MSG(config.n >= 2, "CG: system dimension must be at least 2");
  const std::size_t n = config_.n;

  // Symmetric, strictly diagonally dominant SPD system. The diagonal spread
  // — and with it the condition number — grows cubically with the problem
  // size: small systems are well conditioned (Jacobi preconditioning buys
  // almost nothing over its own cost) while large systems leave plain CG
  // far behind. That schedule produces the paper's Fig. 6 crossover: PCG is
  // slightly more vulnerable at small n, clearly less at large n.
  Xoshiro256 rng(config_.seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = (rng.uniform() - 0.5) / static_cast<double>(n);
      a_[at(i, j)] = v;
      a_[at(j, i)] = v;
    }
  }
  const double nd = static_cast<double>(n);
  const double spread = (nd / 160.0) * (nd / 160.0) * (nd / 160.0);
  for (std::size_t i = 0; i < n; ++i) {
    a_[at(i, i)] = 1.0 + spread * static_cast<double>(i) /
                             static_cast<double>(n - 1);
  }

  if (config_.preconditioned) {
    // Jacobi: M^-1 = diag(A)^-1, stored as the paper's "auxiliary matrix".
    for (std::size_t i = 0; i < n * n; ++i) {
      m_[i] = 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      m_[at(i, i)] = 1.0 / a_[at(i, i)];
    }
  }

  // Known exact solution, b = A * exact.
  for (std::size_t i = 0; i < n; ++i) {
    exact_[i] = 1.0 + std::sin(static_cast<double>(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      s += a_[at(i, j)] * exact_[j];
    }
    b_[i] = s;
  }

  a_id_ = registry_.register_structure("A", a_.data(), a_.size_bytes(),
                                       sizeof(double));
  x_id_ = registry_.register_structure("x", x_.data(), x_.size_bytes(),
                                       sizeof(double));
  p_id_ = registry_.register_structure("p", p_.data(), p_.size_bytes(),
                                       sizeof(double));
  r_id_ = registry_.register_structure("r", r_.data(), r_.size_bytes(),
                                       sizeof(double));
  ap_id_ = registry_.register_structure("Ap", ap_.data(), ap_.size_bytes(),
                                        sizeof(double));
  if (config_.preconditioned) {
    m_id_ = registry_.register_structure("M", m_.data(), m_.size_bytes(),
                                         sizeof(double));
    z_id_ = registry_.register_structure("z", z_.data(), z_.size_bytes(),
                                         sizeof(double));
  }
}

ModelSpec ConjugateGradient::model_spec() const {
  const std::uint64_t n = config_.n;
  const std::uint64_t iters =
      iterations_run_ > 0 ? iterations_run_ : iteration_bound();
  const std::uint64_t vec_bytes = n * sizeof(double);
  const std::uint64_t mat_bytes = n * n * sizeof(double);

  ModelSpec spec;
  spec.name = config_.preconditioned ? "PCG" : "CG";

  const auto reuse_of = [](std::uint64_t self, std::uint64_t other,
                           std::uint64_t rounds) {
    ReuseSpec u;
    u.self_bytes = self;
    u.other_bytes = other;
    u.reuse_rounds = rounds;
    u.occupancy = ReuseOccupancy::kContiguous;  // arrays map round-robin
    return u;
  };

  // A: the first matvec streams the matrix in (the reuse estimate includes
  // that initial footprint load); every later iteration re-reads it against
  // the vectors' (small) interference — a cache that holds the matrix keeps
  // it resident, a smaller one reloads it per iteration.
  {
    DataStructureSpec ds;
    ds.name = "A";
    ds.size_bytes = mat_bytes;
    ds.patterns.emplace_back(reuse_of(mat_bytes, 6 * vec_bytes, iters - 1));
    spec.structures.push_back(std::move(ds));
  }

  const auto vector_ds = [&](const char* name, std::uint64_t rounds) {
    DataStructureSpec ds;
    ds.name = name;
    ds.size_bytes = vec_bytes;
    // The matrix sweep separates the vector's reuse clusters, so the
    // interferer is the full matrix working set.
    ds.patterns.emplace_back(reuse_of(vec_bytes, mat_bytes, rounds));
    return ds;
  };

  // x: one reuse cluster per iteration (the axpy), separated by the matvec.
  spec.structures.push_back(vector_ds("x", iters));
  // p: the Algorithm-4 access order r(Ap)p(xp)(Ap)r(rp) shows p in four
  // phases per iteration, each separated by large interfering phases.
  spec.structures.push_back(vector_ds("p", 4 * iters));
  // r: four textual uses per iteration but three are adjacent (the update,
  // beta and p-update cluster), so one separated reuse per iteration.
  spec.structures.push_back(vector_ds("r", config_.preconditioned ? 2 * iters
                                                                  : iters));

  if (config_.preconditioned) {
    // M: the preconditioner matrix streams once per application (one at
    // setup plus one per iteration), competing with A for the cache.
    DataStructureSpec ds;
    ds.name = "M";
    ds.size_bytes = mat_bytes;
    ds.patterns.emplace_back(reuse_of(mat_bytes, mat_bytes + 7 * vec_bytes,
                                      iters));
    spec.structures.push_back(std::move(ds));
    spec.structures.push_back(vector_ds("z", 2 * iters));
  }
  return spec;
}

double ConjugateGradient::solution_error() const {
  double err = 0.0;
  for (std::size_t i = 0; i < config_.n; ++i) {
    err = std::max(err, std::fabs(x_[i] - exact_[i]));
  }
  return err;
}

}  // namespace dvf::kernels
