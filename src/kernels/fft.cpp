#include "dvf/kernels/fft.hpp"

#include <cmath>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf::kernels {

namespace {
bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Fft1D::Fft1D(const Config& config) : config_(config), x_(config.n) {
  DVF_CHECK_MSG(is_power_of_two(config.n) && config.n >= 4,
                "FT: transform length must be a power of two >= 4");
  DVF_CHECK_MSG(config.transforms >= 1, "FT: need at least one transform");

  // Deterministic band-limited signal plus noise.
  Xoshiro256 rng(config_.seed);
  original_.resize(config.n);
  for (std::size_t i = 0; i < config.n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(config.n);
    original_[i].re = std::sin(2.0 * 3.14159265358979323846 * 5.0 * t) +
                      0.25 * (rng.uniform() - 0.5);
    original_[i].im = 0.0;
    x_[i] = original_[i];
  }

  x_id_ = registry_.register_structure("X", x_.data(), x_.size_bytes(),
                                       sizeof(Complex));
}

void Fft1D::reset_signal() {
  for (std::size_t i = 0; i < config_.n; ++i) {
    x_[i] = original_[i];
  }
}

std::vector<std::uint64_t> Fft1D::transform_template() const {
  const std::uint64_t n = config_.n;
  std::vector<std::uint64_t> indices;

  for (std::uint64_t i = 1, j = 0; i < n; ++i) {
    std::uint64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      indices.push_back(i);
      indices.push_back(j);
    }
  }
  for (std::uint64_t len = 2; len <= n; len <<= 1) {
    for (std::uint64_t i = 0; i < n; i += len) {
      for (std::uint64_t j = 0; j < len / 2; ++j) {
        indices.push_back(i + j);
        indices.push_back(i + j + len / 2);
      }
    }
  }
  return indices;
}

ModelSpec Fft1D::model_spec() const {
  ModelSpec spec;
  spec.name = "FT";

  DataStructureSpec ds;
  ds.name = "X";
  ds.size_bytes = x_.size_bytes();
  TemplateSpec t;
  t.element_bytes = sizeof(Complex);
  t.element_indices = transform_template();
  t.repetitions = config_.transforms;
  ds.patterns.emplace_back(std::move(t));
  spec.structures.push_back(std::move(ds));
  return spec;
}

double Fft1D::spectrum_energy() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < config_.n; ++i) {
    sum += x_[i].re * x_[i].re + x_[i].im * x_[i].im;
  }
  return sum;
}

}  // namespace dvf::kernels
