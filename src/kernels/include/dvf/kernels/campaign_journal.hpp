// Crash-safe checkpointing for injection campaigns.
//
// A campaign journal is an append-only text file: a header that binds the
// run's identity (kernel, seed, trials, hang factor, CI target, batch size
// and the exact target-structure list), then one line per completed trial
// recording its (structure, trial) coordinates and classified outcome.
// Because every trial's randomness is a pure function of (seed, s, t), a
// journal line is all the state a trial ever produces — replaying the
// journal and running only the missing trials reconstructs an interrupted
// campaign bit for bit (docs/resilience.md, "Resume semantics").
//
// The reader tolerates a torn tail: a process killed mid-write leaves at
// most one partial last line, which is dropped (that trial simply re-runs
// on resume). Any malformed line earlier in the file stops replay at that
// point, for the same effect.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "dvf/common/result.hpp"
#include "dvf/kernels/suite.hpp"

namespace dvf::kernels {

/// Identity of one campaign target as journaled: the structure's index in
/// the kernel's model spec (the RNG-stream coordinate) plus its name.
struct JournalTarget {
  std::uint64_t spec_index = 0;
  std::string name;
  friend bool operator==(const JournalTarget&, const JournalTarget&) = default;
};

/// The header every journal starts with. Resume refuses a journal whose
/// header does not match the resumed campaign exactly — mixing
/// configurations would silently corrupt the statistics.
struct CampaignJournalHeader {
  std::string kernel;
  std::uint64_t seed = 0;
  std::uint64_t trials_per_structure = 0;
  double hang_factor = 0.0;
  double ci_width = 0.0;
  std::uint64_t batch_trials = 0;
  std::vector<JournalTarget> targets;
  friend bool operator==(const CampaignJournalHeader&,
                         const CampaignJournalHeader&) = default;
};

/// One completed trial: target index (position in the header's target
/// list), trial index, and what happened.
struct CampaignJournalEntry {
  std::uint64_t target = 0;
  std::uint64_t trial = 0;
  TrialOutcome outcome = TrialOutcome::kMasked;
  bool injected = false;
};

/// Parse result of an existing journal.
struct CampaignJournalContents {
  CampaignJournalHeader header;
  std::vector<CampaignJournalEntry> entries;
  /// True when the file ended in a partial/garbled line (dropped).
  bool torn_tail = false;
  /// Byte offset just past the last complete, valid line — the truncation
  /// point a resume uses so appended lines never concatenate onto a torn
  /// tail.
  std::uint64_t valid_bytes = 0;
};

/// Reads and parses `path`. Throws dvf::Error when the file cannot be
/// opened or its header is malformed; trailing damage is reported via
/// `torn_tail` instead of throwing (that is the crash-recovery case).
[[nodiscard]] CampaignJournalContents read_campaign_journal(
    const std::string& path);

/// Append-only journal writer. `record` is thread-safe (campaign workers
/// call it concurrently) and flushes after every line so a kill loses at
/// most the line being written.
class CampaignJournalWriter {
 public:
  /// Creates/truncates `path` and writes the header.
  CampaignJournalWriter(const std::string& path,
                        const CampaignJournalHeader& header);
  /// Reopens `path` for appending after the trials already journaled
  /// (resume), first truncating the file to `valid_bytes` (from
  /// read_campaign_journal) so a torn tail from the interrupted run can
  /// never merge with the first appended line. The caller is responsible
  /// for header validation before appending.
  CampaignJournalWriter(const std::string& path, std::uint64_t valid_bytes);

  /// Appends and flushes one trial line. Stream failure (disk full, torn
  /// write, an injected `campaign.journal.write` failpoint) is surfaced as
  /// an `io_error` instead of silently dropping the trial; the writer then
  /// latches dead — every later record() returns the same io_error without
  /// touching the stream, so one campaign emits one warning, not thousands.
  [[nodiscard]] Result<void> record(const CampaignJournalEntry& entry);

  /// True once a write has failed and the writer latched dead.
  [[nodiscard]] bool failed() const noexcept {
    return dead_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::ofstream out_;
  std::atomic<bool> dead_{false};
};

}  // namespace dvf::kernels
