// Conjugate Gradient (CG) and Preconditioned CG (PCG) — sparse/dense linear
// algebra with reuse + streaming patterns (paper Algorithms 4 and 5).
//
// The solver is real: it solves A x = b for a synthetic SPD system whose
// condition number grows with n, so plain CG needs many iterations while the
// Jacobi-preconditioned variant converges almost immediately — the dynamic
// behind the Fig. 6 resilience crossover.
#pragma once

#include <cstdint>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

class ConjugateGradient {
 public:
  struct Config {
    std::uint64_t n = 500;             ///< system dimension
    std::uint64_t max_iterations = 0;  ///< 0 = up to n
    double tolerance = 1e-10;          ///< on ||r||^2 / ||b||^2
    bool preconditioned = false;       ///< PCG (Algorithm 5) when true
    std::uint64_t seed = 42;
  };

  explicit ConjugateGradient(const Config& config);

  /// Solves the system, recording every logical element reference.
  template <RecorderLike R>
  void run(R& rec);

  /// Aspen-style model (paper §III-D fourth example). Uses the iteration
  /// count of the last run when available, else the configured maximum.
  [[nodiscard]] ModelSpec model_spec() const;

  [[nodiscard]] const DataStructureRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  /// Iterations the last run() performed (0 before any run).
  [[nodiscard]] std::uint64_t iterations_run() const noexcept {
    return iterations_run_;
  }
  /// Final squared residual relative to ||b||^2.
  [[nodiscard]] double relative_residual() const noexcept {
    return relative_residual_;
  }
  /// Max-norm error of the solution against the known exact solution.
  [[nodiscard]] double solution_error() const;

  /// run() fully re-initializes its state, so reset is a no-op (kept for the
  /// uniform kernel interface).
  void reset() noexcept {}

  /// Scalar output fingerprint for fault-injection campaigns: how far the
  /// computed solution is from the known exact one.
  [[nodiscard]] double output_signature() const { return solution_error(); }

 private:
  [[nodiscard]] std::uint64_t iteration_bound() const noexcept {
    return config_.max_iterations == 0 ? config_.n : config_.max_iterations;
  }
  [[nodiscard]] std::size_t at(std::size_t i, std::size_t j) const noexcept {
    return i * config_.n + j;
  }

  Config config_;
  AlignedBuffer<double> a_;    ///< dense SPD matrix, row-major
  AlignedBuffer<double> m_;    ///< PCG only: auxiliary preconditioner matrix
  AlignedBuffer<double> x_;
  AlignedBuffer<double> b_;
  AlignedBuffer<double> r_;
  AlignedBuffer<double> p_;
  AlignedBuffer<double> z_;    ///< PCG only
  AlignedBuffer<double> ap_;   ///< matvec scratch
  AlignedBuffer<double> exact_;
  DataStructureRegistry registry_;
  DsId a_id_ = 0;
  DsId m_id_ = 0;
  DsId x_id_ = 0;
  DsId r_id_ = 0;
  DsId p_id_ = 0;
  DsId z_id_ = 0;
  DsId ap_id_ = 0;
  std::uint64_t iterations_run_ = 0;
  double relative_residual_ = 0.0;
};

template <RecorderLike R>
void ConjugateGradient::run(R& rec) {
  const std::size_t n = config_.n;

  // x = 0, r = b, p = r (z = M^-1 r, p = z for PCG).
  for (std::size_t i = 0; i < n; ++i) {
    x_[i] = 0.0;
    store(rec, x_id_, x_, i);
    r_[i] = b_[i];
    store(rec, r_id_, r_, i);
  }
  if (config_.preconditioned) {
    // z0 = M^-1 r0 — the auxiliary matrix is applied as a full matvec (the
    // paper's "auxiliary matrix M"), though only its diagonal is nonzero.
    for (std::size_t i = 0; i < n; ++i) {
      double zi = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        load(rec, m_id_, m_, at(i, j));
        load(rec, r_id_, r_, j);
        zi += m_[at(i, j)] * r_[j];
      }
      z_[i] = zi;
      store(rec, z_id_, z_, i);
      p_[i] = zi;
      store(rec, p_id_, p_, i);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      load(rec, r_id_, r_, i);
      p_[i] = r_[i];
      store(rec, p_id_, p_, i);
    }
  }

  double b_norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    b_norm2 += b_[i] * b_[i];
  }
  if (b_norm2 == 0.0) {
    b_norm2 = 1.0;
  }

  // rho = r.r (CG) or r.z (PCG).
  double rho = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    load(rec, r_id_, r_, i);
    if (config_.preconditioned) {
      load(rec, z_id_, z_, i);
      rho += r_[i] * z_[i];
    } else {
      rho += r_[i] * r_[i];
    }
  }

  iterations_run_ = 0;
  double r_norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r_norm2 += r_[i] * r_[i];
  }

  const std::uint64_t bound = iteration_bound();
  while (iterations_run_ < bound && r_norm2 / b_norm2 > config_.tolerance) {
    // Ap = A p  and  pAp = p.Ap.
    double p_ap = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        load(rec, a_id_, a_, at(i, j));
        load(rec, p_id_, p_, j);
        s += a_[at(i, j)] * p_[j];
      }
      ap_[i] = s;
      store(rec, ap_id_, ap_, i);
      load(rec, p_id_, p_, i);
      p_ap += p_[i] * s;
    }
    const double alpha = rho / p_ap;

    // x += alpha p ; r -= alpha Ap.
    r_norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      load(rec, x_id_, x_, i);
      load(rec, p_id_, p_, i);
      x_[i] += alpha * p_[i];
      store(rec, x_id_, x_, i);
      load(rec, r_id_, r_, i);
      load(rec, ap_id_, ap_, i);
      r_[i] -= alpha * ap_[i];
      store(rec, r_id_, r_, i);
      r_norm2 += r_[i] * r_[i];
    }

    // rho' = r.r (CG) or r.z with z = M^-1 r (PCG); beta = rho'/rho.
    double rho_next = 0.0;
    if (config_.preconditioned) {
      for (std::size_t i = 0; i < n; ++i) {
        double zi = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          load(rec, m_id_, m_, at(i, j));
          load(rec, r_id_, r_, j);
          zi += m_[at(i, j)] * r_[j];
        }
        z_[i] = zi;
        store(rec, z_id_, z_, i);
        load(rec, r_id_, r_, i);
        rho_next += r_[i] * zi;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        load(rec, r_id_, r_, i);
        rho_next += r_[i] * r_[i];
      }
    }
    const double beta = rho_next / rho;
    rho = rho_next;

    // p = (z|r) + beta p.
    for (std::size_t i = 0; i < n; ++i) {
      load(rec, p_id_, p_, i);
      if (config_.preconditioned) {
        load(rec, z_id_, z_, i);
        p_[i] = z_[i] + beta * p_[i];
      } else {
        load(rec, r_id_, r_, i);
        p_[i] = r_[i] + beta * p_[i];
      }
      store(rec, p_id_, p_, i);
    }

    ++iterations_run_;
  }
  relative_residual_ = r_norm2 / b_norm2;
}

}  // namespace dvf::kernels
