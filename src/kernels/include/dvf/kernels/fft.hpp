// 1-D FFT (FT) — spectral method, template-based access (the paper's FT is
// a 1-D FFT segment of the NPB FT benchmark).
//
// Iterative radix-2 Cooley–Tukey with an in-place bit-reversal permutation;
// the data structure X (complex array) is traversed once per stage with the
// butterfly stride pattern, which is what produces the sharp DVF jump of
// Fig. 5(e) once the cache no longer holds the whole array.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

class Fft1D {
 public:
  struct Complex {
    double re = 0.0;
    double im = 0.0;
  };
  static_assert(sizeof(Complex) == 16);

  struct Config {
    std::uint64_t n = 2048;        ///< transform length (power of two)
    std::uint64_t transforms = 1;  ///< back-to-back transforms (timing)
    std::uint64_t seed = 3;
  };

  explicit Fft1D(const Config& config);

  /// Forward transform(s) over the deterministic input signal.
  template <RecorderLike R>
  void run(R& rec);

  /// Aspen model: X template-based — bit-reversal pass plus one butterfly
  /// pass per stage.
  [[nodiscard]] ModelSpec model_spec() const;

  /// The expanded element-index reference string of one full transform.
  [[nodiscard]] std::vector<std::uint64_t> transform_template() const;

  [[nodiscard]] const DataStructureRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const Complex& bin(std::size_t i) const noexcept { return x_[i]; }
  /// Sum of |X_k|^2 (for Parseval checks).
  [[nodiscard]] double spectrum_energy() const;
  /// Restores the original input signal (run() transforms in place).
  void reset_signal();
  /// Uniform kernel interface alias for reset_signal().
  void reset() { reset_signal(); }

  /// Scalar output fingerprint for fault-injection campaigns.
  [[nodiscard]] double output_signature() const { return spectrum_energy(); }

 private:
  Config config_;
  AlignedBuffer<Complex> x_;
  std::vector<Complex> original_;
  DataStructureRegistry registry_;
  DsId x_id_ = 0;
};

template <RecorderLike R>
void Fft1D::run(R& rec) {
  const std::uint64_t n = config_.n;
  for (std::uint64_t t = 0; t < config_.transforms; ++t) {
    // Bit-reversal permutation.
    for (std::uint64_t i = 1, j = 0; i < n; ++i) {
      std::uint64_t bit = n >> 1;
      for (; j & bit; bit >>= 1) {
        j ^= bit;
      }
      j ^= bit;
      if (i < j) {
        load(rec, x_id_, x_, static_cast<std::size_t>(i));
        load(rec, x_id_, x_, static_cast<std::size_t>(j));
        std::swap(x_[static_cast<std::size_t>(i)], x_[static_cast<std::size_t>(j)]);
        store(rec, x_id_, x_, static_cast<std::size_t>(i));
        store(rec, x_id_, x_, static_cast<std::size_t>(j));
      }
    }

    // Butterfly stages.
    for (std::uint64_t len = 2; len <= n; len <<= 1) {
      const double angle = -2.0 * 3.14159265358979323846 /
                           static_cast<double>(len);
      const Complex wn{std::cos(angle), std::sin(angle)};
      for (std::uint64_t i = 0; i < n; i += len) {
        Complex w{1.0, 0.0};
        for (std::uint64_t j = 0; j < len / 2; ++j) {
          const std::size_t lo = static_cast<std::size_t>(i + j);
          const std::size_t hi = static_cast<std::size_t>(i + j + len / 2);
          load(rec, x_id_, x_, lo);
          load(rec, x_id_, x_, hi);
          const Complex u = x_[lo];
          const Complex v{x_[hi].re * w.re - x_[hi].im * w.im,
                          x_[hi].re * w.im + x_[hi].im * w.re};
          x_[lo] = {u.re + v.re, u.im + v.im};
          x_[hi] = {u.re - v.re, u.im - v.im};
          store(rec, x_id_, x_, lo);
          store(rec, x_id_, x_, hi);
          w = {w.re * wn.re - w.im * wn.im, w.re * wn.im + w.im * wn.re};
        }
      }
    }
  }
}

}  // namespace dvf::kernels
