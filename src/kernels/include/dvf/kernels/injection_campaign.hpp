// Statistical fault-injection campaigns over the instrumented kernels —
// the expensive baseline methodology (§VI) that DVF approximates
// analytically. A campaign estimates, per data structure, the probability
// that one random bit flip corrupts the application's output; comparing
// those probabilities against the structures' DVFs demonstrates (and
// stress-tests) the metric's claim to rank vulnerability correctly.
//
// The runner is fault-tolerant (docs/resilience.md): every trial is
// sandboxed and classified into the masked / SDC / DUE taxonomy instead of
// aborting the campaign, runs can journal completed trials to survive
// kills (checkpoint/resume), and per-structure Wilson confidence intervals
// can stop a structure early once its SDC rate is pinned down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dvf/kernels/suite.hpp"

namespace dvf::kernels {

/// Per-structure campaign outcome: the classified trial counts plus the
/// derived rates. Every trial lands in exactly one outcome class, so
/// masked + sdc + due_exception + due_hang + due_invalid == trials.
struct StructureInjectionStats {
  std::string structure;
  std::uint64_t trials = 0;
  std::uint64_t injected = 0;  ///< trigger fired before the run ended

  // Outcome classes. `masked` includes trials whose trigger never fired
  // (the flip landed after the run's last reference — nothing to corrupt);
  // the other classes imply an injection.
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;            ///< finite output, deviates
  std::uint64_t due_exception = 0;  ///< kernel threw; contained per-trial
  std::uint64_t due_hang = 0;       ///< reference budget exceeded
  std::uint64_t due_invalid = 0;    ///< NaN/Inf in the output signature

  std::uint64_t corrupted = 0;  ///< any non-masked class (== trials - masked)

  /// True when the adaptive stopper ended this structure before
  /// trials_per_structure (its Wilson CI converged).
  bool early_stopped = false;

  /// Unconditional corruption rate, corrupted / trials. Diluted by trials
  /// whose trigger never fired; kept for backwards comparability — rank
  /// comparisons against DVF should use corruption_rate_injected().
  [[nodiscard]] double corruption_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(corrupted) /
                             static_cast<double>(trials);
  }
  /// Corruption rate conditioned on the fault actually landing,
  /// corrupted / injected — the per-flip vulnerability the taxonomy papers
  /// (and the DVF comparison) care about.
  [[nodiscard]] double corruption_rate_injected() const noexcept {
    return injected == 0 ? 0.0
                         : static_cast<double>(corrupted) /
                               static_cast<double>(injected);
  }
  /// SDC rate conditioned on injection, sdc / injected — the quantity the
  /// adaptive stopper tracks.
  [[nodiscard]] double sdc_rate_injected() const noexcept {
    return injected == 0 ? 0.0
                         : static_cast<double>(sdc) /
                               static_cast<double>(injected);
  }
  /// Wilson 95% half-width of sdc_rate_injected() (1.0 when nothing
  /// injected yet).
  [[nodiscard]] double sdc_ci_half_width() const noexcept;
};

struct CampaignConfig {
  std::uint64_t trials_per_structure = 100;
  std::uint64_t seed = 2014;  ///< the paper's vintage
  /// Worker threads for the campaign; 0 = DVF_THREADS env var / hardware
  /// default, 1 = serial. Results are bit-identical for every value.
  unsigned threads = 0;
  /// Hang detector: a trial's reference budget is
  /// ceil(hang_factor × golden-run references); a run that exceeds it is
  /// classified due_hang. 0 disables the budget (a trial may then run as
  /// long as the kernel's own control flow allows).
  double hang_factor = 8.0;
  /// Adaptive early stopping: stop a structure once the Wilson 95% CI
  /// half-width of its injected-SDC rate drops below this. 0 disables
  /// (every structure runs all trials_per_structure trials). Decisions are
  /// taken at deterministic batch boundaries, so results stay bit-identical
  /// across thread counts.
  double ci_width = 0.0;
  /// Trials per structure scheduled between adaptive-stopping decisions.
  /// Only the trial *schedule* depends on it (smaller batches stop closer
  /// to the CI target but synchronize more often); individual trial
  /// outcomes never do. Ignored (single batch) when ci_width == 0.
  std::uint64_t batch_trials = 50;
  /// When non-empty, journal every completed trial to this file so an
  /// interrupted campaign can be resumed.
  std::string journal_path;
  /// Replay an existing journal at journal_path and run only the missing
  /// trials — bit-identical to an uninterrupted run. The journal header
  /// must match this config (kernel, seed, trials, hang_factor, ci_width,
  /// batch, targets) or the campaign throws.
  bool resume = false;
};

/// Runs the campaign over every structure in the kernel's model. Fault
/// sites are uniform over the structure's bytes and bits; fault times are
/// uniform over the run's references (the §VI "random fault injection into
/// application states").
///
/// Determinism: trial (s, t) — structure index s in the model spec, trial
/// index t — draws its trigger reference, byte offset and bit from the
/// dedicated counter-derived stream `stream_rng(seed, s, t)`, in that
/// order. The serial reference order is the nested loop `for s { for t }`;
/// because every trial's randomness is a pure function of (seed, s, t) and
/// the per-structure tallies are order-independent integer sums, any thread
/// count reproduces that reference bit for bit. Adaptive stopping and
/// journal resume preserve the guarantee: stopping decisions read only
/// merged tallies at batch boundaries, and a journaled outcome equals the
/// outcome re-running the trial would produce. Worker threads run trials
/// on clones of `kernel` (KernelCase::clone), so the kernel must clone into
/// an instance with the same reference stream and registry layout.
///
/// Fault tolerance: trials that throw, exceed the reference budget, or
/// produce non-finite output are classified (due_*) and counted — a
/// misbehaving trial never aborts the campaign.
[[nodiscard]] std::vector<StructureInjectionStats> run_injection_campaign(
    KernelCase& kernel, const CampaignConfig& config = {});

/// Spearman rank correlation between two vectors (used to compare the DVF
/// ranking against the injection-derived ranking; 1 = identical order).
[[nodiscard]] double rank_correlation(const std::vector<double>& a,
                                      const std::vector<double>& b);

}  // namespace dvf::kernels
