// Statistical fault-injection campaigns over the instrumented kernels —
// the expensive baseline methodology (§VI) that DVF approximates
// analytically. A campaign estimates, per data structure, the probability
// that one random bit flip corrupts the application's output; comparing
// those probabilities against the structures' DVFs demonstrates (and
// stress-tests) the metric's claim to rank vulnerability correctly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dvf/kernels/suite.hpp"

namespace dvf::kernels {

/// Per-structure campaign outcome.
struct StructureInjectionStats {
  std::string structure;
  std::uint64_t trials = 0;
  std::uint64_t injected = 0;   ///< trigger fired before the run ended
  std::uint64_t corrupted = 0;  ///< output deviated
  [[nodiscard]] double corruption_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(corrupted) /
                             static_cast<double>(trials);
  }
};

struct CampaignConfig {
  std::uint64_t trials_per_structure = 100;
  std::uint64_t seed = 2014;  ///< the paper's vintage
  /// Worker threads for the campaign; 0 = DVF_THREADS env var / hardware
  /// default, 1 = serial. Results are bit-identical for every value.
  unsigned threads = 0;
};

/// Runs the campaign over every structure in the kernel's model. Fault
/// sites are uniform over the structure's bytes and bits; fault times are
/// uniform over the run's references (the §VI "random fault injection into
/// application states").
///
/// Determinism: trial (s, t) — structure index s in the model spec, trial
/// index t — draws its trigger reference, byte offset and bit from the
/// dedicated counter-derived stream `stream_rng(seed, s, t)`, in that
/// order. The serial reference order is the nested loop `for s { for t }`;
/// because every trial's randomness is a pure function of (seed, s, t) and
/// the per-structure tallies are order-independent integer sums, any thread
/// count reproduces that reference bit for bit. Worker threads run trials
/// on clones of `kernel` (KernelCase::clone), so the kernel must clone into
/// an instance with the same reference stream and registry layout.
[[nodiscard]] std::vector<StructureInjectionStats> run_injection_campaign(
    KernelCase& kernel, const CampaignConfig& config = {});

/// Spearman rank correlation between two vectors (used to compare the DVF
/// ranking against the injection-derived ranking; 1 = identical order).
[[nodiscard]] double rank_correlation(const std::vector<double>& a,
                                      const std::vector<double>& b);

}  // namespace dvf::kernels
