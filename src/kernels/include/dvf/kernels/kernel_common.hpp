// Shared infrastructure for the six instrumented kernels (paper Table II).
//
// Every kernel is a class owning aligned data buffers and a data-structure
// registry; run() is a template over the recorder so the untraced
// configuration compiles to the bare algorithm. Each kernel also produces
// its Aspen-style ModelSpec — the analytical self-description the DVF
// engine evaluates (the paper's §III-D example programs).
#pragma once

#include <chrono>
#include <cstdint>

#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/recorder.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

/// Wall-clock stopwatch for kernel timing (T of Eq. 1).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  /// Seconds since construction.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Records a load of buf[i].
template <RecorderLike R, typename T>
inline void load(R& rec, DsId ds, const AlignedBuffer<T>& buf, std::size_t i) {
  rec.on_load(ds, buf.address_of(i), sizeof(T));
}

/// Records a store of buf[i].
template <RecorderLike R, typename T>
inline void store(R& rec, DsId ds, const AlignedBuffer<T>& buf, std::size_t i) {
  rec.on_store(ds, buf.address_of(i), sizeof(T));
}

}  // namespace dvf::kernels
