// Monte Carlo cross-section lookup (MC) — the XSBench macroscopic
// cross-section lookup kernel: random access over two concurrently used
// structures, the unionized energy grid G and the cross-section data E.
#pragma once

#include <cstdint>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

class MonteCarlo {
 public:
  /// One point of the unionized energy grid: 16 bytes.
  struct GridPoint {
    double energy = 0.0;
    std::uint32_t xs_index = 0;
    std::uint32_t pad = 0;
  };
  static_assert(sizeof(GridPoint) == 16);

  /// One cross-section record: 32 bytes (total/elastic/absorption/fission).
  struct XsEntry {
    double xs[4] = {};
  };
  static_assert(sizeof(XsEntry) == 32);

  /// Defaults approximate XSBench's "small" unionized grid scaled to a
  /// laptop LLC study: the MC working set dwarfs the N-body one, which is
  /// part of the paper's Fig. 5(c)/(f) comparison.
  struct Config {
    std::uint64_t grid_points = 200000;  ///< |G|
    std::uint64_t xs_entries = 50000;    ///< |E|
    std::uint64_t lookups = 1000;        ///< iterations
    std::uint64_t seed = 5;
  };

  explicit MonteCarlo(const Config& config);

  /// Performs the lookups: sample an energy, binary-search G, read the
  /// bracketing cross-section rows of E, accumulate the macroscopic XS.
  template <RecorderLike R>
  void run(R& rec);

  /// Aspen model: both G and E random-access; k values are profiled; cache
  /// shares follow the paper's size-proportional split
  /// r_G = S_G / (S_G + S_E).
  [[nodiscard]] ModelSpec model_spec();

  [[nodiscard]] const DataStructureRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  /// Average distinct G elements touched per lookup (model k for G).
  [[nodiscard]] double average_grid_visits() const noexcept {
    return lookups_done_ == 0 ? 0.0
                              : static_cast<double>(grid_touches_) /
                                    static_cast<double>(lookups_done_);
  }
  /// Average E rows touched per lookup (model k for E).
  [[nodiscard]] double average_xs_visits() const noexcept {
    return lookups_done_ == 0 ? 0.0
                              : static_cast<double>(xs_touches_) /
                                    static_cast<double>(lookups_done_);
  }
  /// Accumulated macroscopic cross-section (sanity value).
  [[nodiscard]] double accumulated_xs() const noexcept { return accumulated_; }

  /// The lookup tables are immutable; run() resets its own tallies. No-op.
  void reset() noexcept {}

  /// Scalar output fingerprint for fault-injection campaigns.
  [[nodiscard]] double output_signature() const { return accumulated_; }

 private:
  Config config_;
  AlignedBuffer<GridPoint> grid_;
  AlignedBuffer<XsEntry> xs_;
  DataStructureRegistry registry_;
  DsId grid_id_ = 0;
  DsId xs_id_ = 0;
  std::uint64_t grid_touches_ = 0;
  std::uint64_t xs_touches_ = 0;
  std::uint64_t lookups_done_ = 0;
  double accumulated_ = 0.0;
  std::vector<std::uint64_t> grid_visit_counts_;  ///< bisection popularity
  std::vector<std::uint64_t> xs_visit_counts_;
};

template <RecorderLike R>
void MonteCarlo::run(R& rec) {
  grid_touches_ = 0;
  xs_touches_ = 0;
  lookups_done_ = 0;
  accumulated_ = 0.0;
  grid_visit_counts_.assign(grid_.size(), 0);
  xs_visit_counts_.assign(xs_.size(), 0);

  // Construction traversal: the model assumes each element was touched once
  // before the random phase (the paper's data-construction assumption).
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    load(rec, grid_id_, grid_, i);
  }
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    load(rec, xs_id_, xs_, i);
  }

  Xoshiro256 rng(config_.seed ^ 0x9E3779B97F4A7C15ULL);
  for (std::uint64_t l = 0; l < config_.lookups; ++l) {
    const double e = rng.uniform();

    // Binary search of the unionized grid.
    std::size_t lo = 0;
    std::size_t hi = grid_.size() - 1;
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      load(rec, grid_id_, grid_, mid);
      ++grid_touches_;
      ++grid_visit_counts_[mid];
      if (grid_[mid].energy <= e) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    load(rec, grid_id_, grid_, lo);
    ++grid_touches_;
    ++grid_visit_counts_[lo];

    const std::size_t row = grid_[lo].xs_index % xs_.size();
    load(rec, xs_id_, xs_, row);
    ++xs_touches_;
    ++xs_visit_counts_[row];
    const XsEntry& entry = xs_[row];
    accumulated_ += entry.xs[0] + e * entry.xs[1] +
                    (1.0 - e) * entry.xs[2] + entry.xs[3];
    ++lookups_done_;
  }
}

}  // namespace dvf::kernels
