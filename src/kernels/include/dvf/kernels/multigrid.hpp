// Multi-grid (MG) — structured grids, template-based access (paper
// Algorithm 3 and the NPB MG V-cycle).
//
// A real geometric multigrid V-cycle on a 3-D Poisson problem: smoothing
// with the paper's 4-neighbor smoother template, residual computation,
// full-weighting-ish restriction and trilinear-ish prolongation. The finest
// grid R is the modeled structure; coarse grids and the right-hand sides
// are registered interferers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

class MultiGrid {
 public:
  struct Config {
    std::uint64_t dim = 32;     ///< finest grid edge (power of two)
    std::uint64_t levels = 3;   ///< V-cycle depth (coarsest edge = dim >> (levels-1))
    std::uint64_t vcycles = 4;
    std::uint64_t pre_smooth = 1;
    std::uint64_t post_smooth = 1;
    std::uint64_t seed = 11;
  };

  explicit MultiGrid(const Config& config);

  /// Runs the configured V-cycles on rhs = deterministic noise.
  template <RecorderLike R>
  void run(R& rec);

  /// Aspen model: R as a template-based structure whose reference string is
  /// one smoother sweep over the finest grid, repeated for every finest-grid
  /// pass of the configured V-cycles.
  [[nodiscard]] ModelSpec model_spec() const;

  /// One finest-grid smoother sweep as an element-index reference string
  /// (the expansion of the paper's MG template).
  [[nodiscard]] std::vector<std::uint64_t> smoother_template() const;

  [[nodiscard]] const DataStructureRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  /// RMS residual on the finest level after the last run.
  [[nodiscard]] double residual_norm() const noexcept { return residual_norm_; }

  /// run() zeroes the solution grids itself; no-op.
  void reset() noexcept {}

  /// Scalar output fingerprint for fault-injection campaigns.
  [[nodiscard]] double output_signature() const { return residual_norm_; }

  /// Padded indexing: the innermost dimension is allocated with one extra
  /// element so power-of-two plane strides do not alias onto a single cache
  /// set (the NPB MG arrays carry boundary padding for the same reason;
  /// without it a 4-way cache thrashes on the i±1 stencil neighbors).
  [[nodiscard]] static std::size_t at(std::uint64_t n, std::uint64_t i,
                                      std::uint64_t j, std::uint64_t k) noexcept {
    return static_cast<std::size_t>((i * n + j) * (n + 1) + k);
  }
  /// Physical cell count of one padded n^3 grid.
  [[nodiscard]] static std::size_t cells(std::uint64_t n) noexcept {
    return static_cast<std::size_t>(n * n * (n + 1));
  }

 private:
  [[nodiscard]] std::uint64_t edge(std::size_t level) const noexcept {
    return config_.dim >> level;
  }

  template <RecorderLike R>
  void smooth(R& rec, std::size_t level, std::uint64_t sweeps);
  template <RecorderLike R>
  void residual(R& rec, std::size_t level);
  template <RecorderLike R>
  void restrict_to(R& rec, std::size_t fine);
  template <RecorderLike R>
  void prolong_from(R& rec, std::size_t fine);
  template <RecorderLike R>
  void vcycle(R& rec, std::size_t level);

  Config config_;
  std::vector<AlignedBuffer<double>> u_;    ///< solution per level; u_[0] is R
  std::vector<AlignedBuffer<double>> rhs_;
  std::vector<AlignedBuffer<double>> res_;
  DataStructureRegistry registry_;
  std::vector<DsId> u_ids_;
  std::vector<DsId> rhs_ids_;
  std::vector<DsId> res_ids_;
  double residual_norm_ = 0.0;
};

template <RecorderLike R>
void MultiGrid::smooth(R& rec, std::size_t level, std::uint64_t sweeps) {
  const std::uint64_t n = edge(level);
  auto& u = u_[level];
  auto& f = rhs_[level];
  const DsId uid = u_ids_[level];
  const DsId fid = rhs_ids_[level];

  // Paper Algorithm 3: the update reads the four (j±1, i±1) neighbors —
  // here as a damped Gauss–Seidel sweep for the operator
  // A u = 4u − Σ neighbors, so the V-cycle genuinely converges.
  constexpr double kOmega = 0.8;
  for (std::uint64_t sweep = 0; sweep < sweeps; ++sweep) {
    for (std::uint64_t i = 1; i + 1 < n; ++i) {
      for (std::uint64_t j = 1; j + 1 < n; ++j) {
        for (std::uint64_t k = 0; k < n; ++k) {
          load(rec, uid, u, at(n, i, j - 1, k));
          load(rec, uid, u, at(n, i, j + 1, k));
          load(rec, uid, u, at(n, i - 1, j, k));
          load(rec, uid, u, at(n, i + 1, j, k));
          load(rec, uid, u, at(n, i, j, k));
          load(rec, fid, f, at(n, i, j, k));
          const double sum = u[at(n, i, j - 1, k)] + u[at(n, i, j + 1, k)] +
                             u[at(n, i - 1, j, k)] + u[at(n, i + 1, j, k)];
          const double residual_here =
              f[at(n, i, j, k)] - (4.0 * u[at(n, i, j, k)] - sum);
          u[at(n, i, j, k)] += kOmega * 0.25 * residual_here;
          store(rec, uid, u, at(n, i, j, k));
        }
      }
    }
  }
}

template <RecorderLike R>
void MultiGrid::residual(R& rec, std::size_t level) {
  const std::uint64_t n = edge(level);
  auto& u = u_[level];
  auto& f = rhs_[level];
  auto& r = res_[level];
  const DsId uid = u_ids_[level];
  const DsId fid = rhs_ids_[level];
  const DsId rid = res_ids_[level];

  double norm2 = 0.0;
  for (std::uint64_t i = 1; i + 1 < n; ++i) {
    for (std::uint64_t j = 1; j + 1 < n; ++j) {
      for (std::uint64_t k = 0; k < n; ++k) {
        load(rec, uid, u, at(n, i, j - 1, k));
        load(rec, uid, u, at(n, i, j + 1, k));
        load(rec, uid, u, at(n, i - 1, j, k));
        load(rec, uid, u, at(n, i + 1, j, k));
        load(rec, uid, u, at(n, i, j, k));
        load(rec, fid, f, at(n, i, j, k));
        const double rv = f[at(n, i, j, k)] -
                          (4.0 * u[at(n, i, j, k)] - u[at(n, i, j - 1, k)] -
                           u[at(n, i, j + 1, k)] - u[at(n, i - 1, j, k)] -
                           u[at(n, i + 1, j, k)]);
        r[at(n, i, j, k)] = rv;
        store(rec, rid, r, at(n, i, j, k));
        norm2 += rv * rv;
      }
    }
  }
  if (level == 0) {
    residual_norm_ = std::sqrt(norm2 / static_cast<double>(n * n * n));
  }
}

template <RecorderLike R>
void MultiGrid::restrict_to(R& rec, std::size_t fine) {
  const std::uint64_t nf = edge(fine);
  const std::uint64_t nc = edge(fine + 1);
  auto& r = res_[fine];
  auto& fc = rhs_[fine + 1];
  auto& uc = u_[fine + 1];
  const DsId rid = res_ids_[fine];
  const DsId fcid = rhs_ids_[fine + 1];
  const DsId ucid = u_ids_[fine + 1];

  for (std::uint64_t i = 0; i < nc; ++i) {
    for (std::uint64_t j = 0; j < nc; ++j) {
      for (std::uint64_t k = 0; k < nc; ++k) {
        // Injection restriction (sample the co-located fine point).
        const std::uint64_t fi = std::min(2 * i, nf - 1);
        const std::uint64_t fj = std::min(2 * j, nf - 1);
        const std::uint64_t fk = std::min(2 * k, nf - 1);
        load(rec, rid, r, at(nf, fi, fj, fk));
        fc[at(nc, i, j, k)] = r[at(nf, fi, fj, fk)];
        store(rec, fcid, fc, at(nc, i, j, k));
        uc[at(nc, i, j, k)] = 0.0;
        store(rec, ucid, uc, at(nc, i, j, k));
      }
    }
  }
}

template <RecorderLike R>
void MultiGrid::prolong_from(R& rec, std::size_t fine) {
  const std::uint64_t nf = edge(fine);
  const std::uint64_t nc = edge(fine + 1);
  auto& uf = u_[fine];
  auto& uc = u_[fine + 1];
  const DsId ufid = u_ids_[fine];
  const DsId ucid = u_ids_[fine + 1];

  for (std::uint64_t i = 0; i < nf; ++i) {
    for (std::uint64_t j = 0; j < nf; ++j) {
      for (std::uint64_t k = 0; k < nf; ++k) {
        const std::uint64_t ci = std::min(i / 2, nc - 1);
        const std::uint64_t cj = std::min(j / 2, nc - 1);
        const std::uint64_t ck = std::min(k / 2, nc - 1);
        load(rec, ucid, uc, at(nc, ci, cj, ck));
        load(rec, ufid, uf, at(nf, i, j, k));
        uf[at(nf, i, j, k)] += uc[at(nc, ci, cj, ck)];
        store(rec, ufid, uf, at(nf, i, j, k));
      }
    }
  }
}

template <RecorderLike R>
void MultiGrid::vcycle(R& rec, std::size_t level) {
  if (level + 1 == u_.size()) {
    smooth(rec, level, 8);  // coarsest: smooth hard in lieu of a direct solve
    return;
  }
  smooth(rec, level, config_.pre_smooth);
  residual(rec, level);
  restrict_to(rec, level);
  vcycle(rec, level + 1);
  prolong_from(rec, level);
  smooth(rec, level, config_.post_smooth);
}

template <RecorderLike R>
void MultiGrid::run(R& rec) {
  // Reset state so repeated runs are identical.
  for (std::size_t l = 0; l < u_.size(); ++l) {
    for (std::size_t i = 0; i < u_[l].size(); ++i) {
      u_[l][i] = 0.0;
    }
  }
  for (std::uint64_t c = 0; c < config_.vcycles; ++c) {
    vcycle(rec, 0);
  }
  residual(rec, 0);
}

}  // namespace dvf::kernels
