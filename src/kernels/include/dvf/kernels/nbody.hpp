// Barnes–Hut N-body (NB) — random access over a quadtree (paper Algorithm 2).
//
// Bodies are organized into a 2-D quadtree; the force pass traverses the
// tree per body with the theta opening criterion, so which tree nodes a body
// touches depends on the (random) particle distribution — the paper's
// canonical random access pattern.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

class BarnesHut {
 public:
  struct Config {
    std::uint64_t bodies = 1000;
    double theta = 0.5;       ///< opening criterion
    std::uint64_t steps = 1;  ///< force passes
    std::uint64_t seed = 7;
  };

  /// Tree node: 32 bytes, matching the paper's NB Aspen program (E = 32).
  /// A leaf holds one particle (children all -1); an internal node holds the
  /// aggregated mass and center of mass of its subtree.
  struct Node {
    float cx = 0.0F;         ///< center of mass x
    float cy = 0.0F;         ///< center of mass y
    float mass = 0.0F;
    float half_size = 0.0F;  ///< half the cell edge (theta criterion)
    std::int32_t child[4] = {-1, -1, -1, -1};
  };
  static_assert(sizeof(Node) == 32);

  /// Particle: 32 bytes.
  struct Particle {
    float x = 0.0F;
    float y = 0.0F;
    float mass = 0.0F;
    float fx = 0.0F;
    float fy = 0.0F;
    float pad[3] = {};
  };
  static_assert(sizeof(Particle) == 32);

  explicit BarnesHut(const Config& config);

  /// Builds the tree (the model's "construction traversal") and runs the
  /// force pass(es), recording every node and particle reference.
  template <RecorderLike R>
  void run(R& rec);

  /// Aspen model: T random (N, E, k, iter, r) and P streaming. k is the
  /// average number of tree nodes visited per body, profiled from the last
  /// run; calling before any run() profiles silently with a null recorder.
  [[nodiscard]] ModelSpec model_spec();

  [[nodiscard]] const DataStructureRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  /// Tree nodes in use after the last build.
  [[nodiscard]] std::uint64_t node_count() const noexcept { return node_count_; }
  /// Average tree nodes visited per body in the last force pass (the model's
  /// k parameter).
  [[nodiscard]] double average_visits() const noexcept {
    return total_force_passes_ == 0
               ? 0.0
               : static_cast<double>(total_visits_) /
                     static_cast<double>(total_force_passes_);
  }
  /// Total force magnitude, for sanity checks.
  [[nodiscard]] double total_force() const;

  /// run() rebuilds the tree from the immutable particle set; no-op.
  void reset() noexcept {}

  /// Scalar output fingerprint for fault-injection campaigns.
  [[nodiscard]] double output_signature() const { return total_force(); }

 private:
  void build_tree_geometry();
  template <RecorderLike R>
  void insert_body(R& rec, std::uint32_t body);
  template <RecorderLike R>
  void force_on_body(R& rec, std::uint32_t body);
  std::int32_t allocate_node(float half_size);

  Config config_;
  AlignedBuffer<Node> tree_;
  AlignedBuffer<Particle> bodies_;
  // Geometric cell centers, needed only while inserting (not part of the
  // modeled working set; real BH codes recompute them on descent).
  std::vector<float> cell_x_;
  std::vector<float> cell_y_;
  DataStructureRegistry registry_;
  DsId tree_id_ = 0;
  DsId bodies_id_ = 0;
  std::uint64_t node_count_ = 0;
  std::uint64_t total_visits_ = 0;
  std::uint64_t total_force_passes_ = 0;
  std::uint64_t pool_capacity_ = 0;
  std::vector<std::uint64_t> visit_counts_;  ///< per-node popularity profile
};

template <RecorderLike R>
void BarnesHut::insert_body(R& rec, std::uint32_t body) {
  const Particle& pb = bodies_[body];
  load(rec, bodies_id_, bodies_, body);

  std::int32_t node = 0;
  int depth = 0;
  constexpr int kMaxDepth = 48;
  while (true) {
    Node& nd = tree_[static_cast<std::size_t>(node)];
    load(rec, tree_id_, tree_, static_cast<std::size_t>(node));

    const bool is_leaf = nd.child[0] < 0 && nd.child[1] < 0 &&
                         nd.child[2] < 0 && nd.child[3] < 0;
    if (is_leaf && nd.mass == 0.0F) {
      // Empty leaf: claim it.
      nd.cx = pb.x;
      nd.cy = pb.y;
      nd.mass = pb.mass;
      store(rec, tree_id_, tree_, static_cast<std::size_t>(node));
      return;
    }

    if (is_leaf) {
      if (depth >= kMaxDepth) {
        // Coincident bodies: aggregate instead of splitting forever.
        const float total = nd.mass + pb.mass;
        nd.cx = (nd.cx * nd.mass + pb.x * pb.mass) / total;
        nd.cy = (nd.cy * nd.mass + pb.y * pb.mass) / total;
        nd.mass = total;
        store(rec, tree_id_, tree_, static_cast<std::size_t>(node));
        return;
      }
      // Split: push the resident particle one level down.
      const float old_x = nd.cx;
      const float old_y = nd.cy;
      const float old_mass = nd.mass;
      const float hs = nd.half_size * 0.5F;
      const float gx = cell_x_[static_cast<std::size_t>(node)];
      const float gy = cell_y_[static_cast<std::size_t>(node)];
      const int old_quad = (old_x >= gx ? 1 : 0) | (old_y >= gy ? 2 : 0);
      const std::int32_t fresh = allocate_node(hs);
      cell_x_[static_cast<std::size_t>(fresh)] =
          gx + (old_quad & 1 ? hs : -hs);
      cell_y_[static_cast<std::size_t>(fresh)] =
          gy + (old_quad & 2 ? hs : -hs);
      Node& child_node = tree_[static_cast<std::size_t>(fresh)];
      child_node.cx = old_x;
      child_node.cy = old_y;
      child_node.mass = old_mass;
      store(rec, tree_id_, tree_, static_cast<std::size_t>(fresh));
      nd.child[old_quad] = fresh;
      // The node becomes internal; fall through to route the new body.
    }

    // Internal node: fold the body into the aggregate and descend.
    const float total = nd.mass + pb.mass;
    nd.cx = (nd.cx * nd.mass + pb.x * pb.mass) / total;
    nd.cy = (nd.cy * nd.mass + pb.y * pb.mass) / total;
    nd.mass = total;
    store(rec, tree_id_, tree_, static_cast<std::size_t>(node));

    const float gx = cell_x_[static_cast<std::size_t>(node)];
    const float gy = cell_y_[static_cast<std::size_t>(node)];
    const int quad = (pb.x >= gx ? 1 : 0) | (pb.y >= gy ? 2 : 0);
    // Range guard: an injected fault may corrupt a child index; treat an
    // out-of-pool value as an empty slot rather than dereferencing it.
    if (nd.child[quad] >= static_cast<std::int32_t>(node_count_)) {
      nd.child[quad] = -1;
    }
    if (nd.child[quad] < 0) {
      const float hs = nd.half_size * 0.5F;
      const std::int32_t fresh = allocate_node(hs);
      cell_x_[static_cast<std::size_t>(fresh)] = gx + (quad & 1 ? hs : -hs);
      cell_y_[static_cast<std::size_t>(fresh)] = gy + (quad & 2 ? hs : -hs);
      tree_[static_cast<std::size_t>(node)].child[quad] = fresh;
      Node& child_node = tree_[static_cast<std::size_t>(fresh)];
      child_node.cx = pb.x;
      child_node.cy = pb.y;
      child_node.mass = pb.mass;
      store(rec, tree_id_, tree_, static_cast<std::size_t>(fresh));
      return;
    }
    node = nd.child[quad];
    ++depth;
  }
}

template <RecorderLike R>
void BarnesHut::force_on_body(R& rec, std::uint32_t body) {
  Particle& pb = bodies_[body];
  load(rec, bodies_id_, bodies_, body);

  constexpr float kSoftening = 1e-4F;
  float fx = 0.0F;
  float fy = 0.0F;

  // Explicit stack traversal (paper Algorithm 2, FORCE_UPDATE). The visit
  // budget and child-range guards keep the traversal memory-safe even when
  // a fault-injection campaign corrupts child indices mid-run.
  const std::uint64_t visit_budget = 64 * node_count_ + 256;
  std::uint64_t visited = 0;
  std::int32_t stack[128];
  int top = 0;
  stack[top++] = 0;
  while (top > 0 && visited++ < visit_budget) {
    const std::int32_t node = stack[--top];
    const Node& nd = tree_[static_cast<std::size_t>(node)];
    load(rec, tree_id_, tree_, static_cast<std::size_t>(node));
    ++total_visits_;
    ++visit_counts_[static_cast<std::size_t>(node)];

    if (nd.mass == 0.0F) {
      continue;
    }
    const float dx = nd.cx - pb.x;
    const float dy = nd.cy - pb.y;
    const float dist2 = dx * dx + dy * dy + kSoftening;
    const float dist = std::sqrt(dist2);

    const bool is_leaf = nd.child[0] < 0 && nd.child[1] < 0 &&
                         nd.child[2] < 0 && nd.child[3] < 0;
    if (is_leaf || (2.0F * nd.half_size) / dist <
                       static_cast<float>(config_.theta)) {
      // Aggregate (or single) interaction; skip self-interaction, which
      // manifests as a near-zero distance leaf.
      if (!(is_leaf && dist2 <= 2.0F * kSoftening)) {
        const float f = pb.mass * nd.mass / (dist2 * dist);
        fx += f * dx;
        fy += f * dy;
      }
      continue;
    }
    for (const std::int32_t c : nd.child) {
      if (c >= 0 && c < static_cast<std::int32_t>(node_count_) && top < 128) {
        stack[top++] = c;
      }
    }
  }

  pb.fx = fx;
  pb.fy = fy;
  store(rec, bodies_id_, bodies_, body);
  ++total_force_passes_;
}

template <RecorderLike R>
void BarnesHut::run(R& rec) {
  build_tree_geometry();
  total_visits_ = 0;
  total_force_passes_ = 0;
  for (std::uint32_t b = 0; b < config_.bodies; ++b) {
    insert_body(rec, b);
  }
  visit_counts_.assign(node_count_, 0);
  for (std::uint64_t s = 0; s < config_.steps; ++s) {
    for (std::uint32_t b = 0; b < config_.bodies; ++b) {
      force_on_body(rec, b);
    }
  }
}

}  // namespace dvf::kernels
