// Sparse conjugate gradient (CSR) — the NPB CG benchmark the paper's
// Table II cites is sparse linear algebra; this kernel models the CSR
// format's characteristic patterns the dense variant cannot show:
// streaming value/index arrays plus an indirect GATHER of the search
// direction p through the column indices (random access with a profiled
// column-popularity histogram).
#pragma once

#include <cstdint>
#include <vector>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

class SparseConjugateGradient {
 public:
  struct Config {
    std::uint64_t n = 1000;            ///< unknowns
    std::uint64_t offdiag_per_row = 8; ///< off-diagonal nonzeros per row (~)
    std::uint64_t max_iterations = 0;  ///< 0 = up to n
    double tolerance = 1e-10;
    std::uint64_t seed = 17;
  };

  explicit SparseConjugateGradient(const Config& config);

  /// Solves A x = b; records every element reference including the CSR
  /// gather.
  template <RecorderLike R>
  void run(R& rec);

  /// Aspen model: val/col streaming per iteration, row_ptr streaming, p a
  /// random gather with the profiled column-popularity histogram, x/r reuse.
  [[nodiscard]] ModelSpec model_spec() const;

  [[nodiscard]] const DataStructureRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t nonzeros() const noexcept { return nnz_; }
  [[nodiscard]] std::uint64_t iterations_run() const noexcept {
    return iterations_run_;
  }
  [[nodiscard]] double relative_residual() const noexcept {
    return relative_residual_;
  }
  [[nodiscard]] double solution_error() const;

  void reset() noexcept {}
  [[nodiscard]] double output_signature() const { return solution_error(); }

 private:
  [[nodiscard]] std::uint64_t iteration_bound() const noexcept {
    return config_.max_iterations == 0 ? config_.n : config_.max_iterations;
  }

  Config config_;
  std::uint64_t nnz_ = 0;
  AlignedBuffer<double> values_;
  AlignedBuffer<std::int32_t> col_idx_;
  AlignedBuffer<std::int32_t> row_ptr_;
  AlignedBuffer<double> x_;
  AlignedBuffer<double> b_;
  AlignedBuffer<double> r_;
  AlignedBuffer<double> p_;
  AlignedBuffer<double> ap_;
  AlignedBuffer<double> exact_;
  std::vector<std::uint64_t> column_counts_;  ///< gather popularity profile
  DataStructureRegistry registry_;
  DsId val_id_ = 0;
  DsId col_id_ = 0;
  DsId row_id_ = 0;
  DsId x_id_ = 0;
  DsId r_id_ = 0;
  DsId p_id_ = 0;
  DsId ap_id_ = 0;
  std::uint64_t iterations_run_ = 0;
  double relative_residual_ = 0.0;
};

template <RecorderLike R>
void SparseConjugateGradient::run(R& rec) {
  const std::size_t n = config_.n;

  for (std::size_t i = 0; i < n; ++i) {
    x_[i] = 0.0;
    store(rec, x_id_, x_, i);
    r_[i] = b_[i];
    store(rec, r_id_, r_, i);
    p_[i] = r_[i];
    store(rec, p_id_, p_, i);
  }

  double b_norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    b_norm2 += b_[i] * b_[i];
  }
  if (b_norm2 == 0.0) {
    b_norm2 = 1.0;
  }
  double rho = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    load(rec, r_id_, r_, i);
    rho += r_[i] * r_[i];
  }

  iterations_run_ = 0;
  double r_norm2 = rho;
  const std::uint64_t bound = iteration_bound();
  while (iterations_run_ < bound && r_norm2 / b_norm2 > config_.tolerance) {
    // Ap = A p (CSR SpMV with the p gather) and p.Ap.
    double p_ap = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      load(rec, row_id_, row_ptr_, i);
      load(rec, row_id_, row_ptr_, i + 1);
      double s = 0.0;
      for (std::int32_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        load(rec, val_id_, values_, kk);
        load(rec, col_id_, col_idx_, kk);
        const auto col = static_cast<std::size_t>(col_idx_[kk]);
        load(rec, p_id_, p_, col);  // the indirect gather
        s += values_[kk] * p_[col];
      }
      ap_[i] = s;
      store(rec, ap_id_, ap_, i);
      load(rec, p_id_, p_, i);
      p_ap += p_[i] * s;
    }
    const double alpha = rho / p_ap;

    r_norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      load(rec, x_id_, x_, i);
      load(rec, p_id_, p_, i);
      x_[i] += alpha * p_[i];
      store(rec, x_id_, x_, i);
      load(rec, r_id_, r_, i);
      load(rec, ap_id_, ap_, i);
      r_[i] -= alpha * ap_[i];
      store(rec, r_id_, r_, i);
      r_norm2 += r_[i] * r_[i];
    }

    const double beta = r_norm2 / rho;
    rho = r_norm2;
    for (std::size_t i = 0; i < n; ++i) {
      load(rec, p_id_, p_, i);
      load(rec, r_id_, r_, i);
      p_[i] = r_[i] + beta * p_[i];
      store(rec, p_id_, p_, i);
    }
    ++iterations_run_;
  }
  relative_residual_ = r_norm2 / b_norm2;
}

}  // namespace dvf::kernels
