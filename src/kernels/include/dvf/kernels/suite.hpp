// The kernel suite: a uniform, type-erased handle over the six instrumented
// kernels (paper Table II), plus factories for the paper's verification
// (Table V) and profiling (Table VI) input sizes.
#pragma once

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/cachesim/hierarchy.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/trace/fault_injection.hpp"
#include "dvf/trace/recorder.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

/// Taxonomy of fault-injection trial outcomes, following the
/// masked / SDC / interruption classification of application-level
/// resilience studies (Guo et al., arXiv:1705.00267) with the DUE
/// (detected-unrecoverable) interruptions split by detection mechanism
/// (Jaulmes et al., arXiv:1810.06472 argue the DUE/SDC distinction changes
/// vulnerability conclusions).
enum class TrialOutcome : std::uint8_t {
  kMasked = 0,        ///< output matched the golden run (or no flip landed)
  kSdc = 1,           ///< silent data corruption: finite output, deviates
  kDueException = 2,  ///< the kernel threw; contained per-trial
  kDueHang = 3,       ///< reference budget exceeded (runaway control flow)
  kDueInvalid = 4,    ///< NaN/Inf detected in the output signature
};

/// Short stable label ("masked", "sdc", "due_exception", ...) used by the
/// journal format, the CLI and the benches.
[[nodiscard]] const char* to_string(TrialOutcome outcome) noexcept;

/// Inverse of to_string; std::nullopt for an unknown label.
[[nodiscard]] std::optional<TrialOutcome> trial_outcome_from_string(
    const std::string& label) noexcept;

/// Outcome of one injected-fault trial.
struct InjectionOutcome {
  bool injected = false;   ///< the trigger fired before the run ended
  bool corrupted = false;  ///< any non-masked classification
  double deviation = 0.0;  ///< |signature - clean| / max(1, |clean|)
  TrialOutcome classification = TrialOutcome::kMasked;
};

/// Type-erased kernel handle used by the verification and profiling drivers:
/// run against a cache simulator, run untraced for timing, and produce the
/// kernel's Aspen-style model.
class KernelCase {
 public:
  virtual ~KernelCase() = default;
  KernelCase(const KernelCase&) = delete;
  KernelCase& operator=(const KernelCase&) = delete;

  /// Short paper name: "VM", "CG", "NB", "MG", "FT", "MC" (or "PCG").
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Computational-method class (Table II).
  [[nodiscard]] const std::string& method_class() const noexcept {
    return method_;
  }

  /// Runs the kernel with every reference driven through the simulator.
  virtual void run_traced(CacheSimulator& sim) = 0;
  /// As above but against a multi-level hierarchy.
  virtual void run_traced(CacheHierarchy& hierarchy) = 0;
  /// Runs the kernel while tallying raw reference counts.
  virtual void run_counting(CountingRecorder& rec) = 0;
  /// Runs the kernel capturing the full reference stream (verification-size
  /// workloads; used by `dvfc trace`).
  virtual void run_buffered(TraceBuffer& buffer) = 0;
  /// Untraced timing run; returns wall-clock seconds (T of Eq. 1).
  virtual double run_timed() = 0;
  /// The kernel's analytical self-description. May profile (run with a null
  /// recorder) on first call for kernels whose models need measured k/iter.
  [[nodiscard]] virtual ModelSpec model_spec() = 0;
  [[nodiscard]] virtual const DataStructureRegistry& registry() const = 0;

  /// The kernel's scalar output fingerprint after a clean run (computed and
  /// cached on first use).
  [[nodiscard]] virtual double clean_signature() = 0;
  /// Total references a clean run issues (the fault-trigger range).
  [[nodiscard]] virtual std::uint64_t total_references() = 0;
  /// One fault-injection trial: flip `bit` of byte `byte_offset` within the
  /// structure `target` when the run reaches `trigger_reference`. The
  /// flipped byte is restored afterwards, so trials are independent.
  ///
  /// Fault containment: the run is sandboxed per trial. A kernel exception
  /// is caught and classified kDueException; a non-zero `reference_budget`
  /// bounds runaway control flow (classified kDueHang past the budget); a
  /// non-finite output signature classifies kDueInvalid. None of these
  /// escape to the caller — only precondition violations (bad target/offset)
  /// still throw.
  [[nodiscard]] virtual InjectionOutcome run_injected(
      DsId target, std::uint64_t trigger_reference, std::uint64_t byte_offset,
      std::uint8_t bit, std::uint64_t reference_budget = 0) = 0;

  /// A fresh instance with the same name, method and kernel configuration
  /// (and therefore the same reference stream and registry layout, modulo
  /// base addresses). The parallel campaign clones one kernel per worker so
  /// trials never share mutable kernel state.
  [[nodiscard]] virtual std::unique_ptr<KernelCase> clone() const = 0;

 protected:
  KernelCase(std::string name, std::string method)
      : name_(std::move(name)), method_(std::move(method)) {}

 private:
  std::string name_;
  std::string method_;
};

/// Adapter binding a concrete kernel type to the KernelCase interface. The
/// kernel must provide run(RecorderLike&), reset(), model_spec() and
/// registry().
template <typename K>
class KernelCaseAdapter final : public KernelCase {
 public:
  KernelCaseAdapter(std::string name, std::string method,
                    typename K::Config config)
      : KernelCase(std::move(name), std::move(method)),
        config_(std::move(config)),
        kernel_(config_) {}

  [[nodiscard]] std::unique_ptr<KernelCase> clone() const override {
    return std::make_unique<KernelCaseAdapter<K>>(name(), method_class(),
                                                  config_);
  }

  void run_traced(CacheSimulator& sim) override {
    kernel_.reset();
    kernel_.run(sim);
    sim.flush();
  }
  void run_traced(CacheHierarchy& hierarchy) override {
    kernel_.reset();
    kernel_.run(hierarchy);
    hierarchy.flush();
  }
  void run_counting(CountingRecorder& rec) override {
    kernel_.reset();
    kernel_.run(rec);
  }
  void run_buffered(TraceBuffer& buffer) override {
    kernel_.reset();
    kernel_.run(buffer);
  }
  double run_timed() override {
    kernel_.reset();
    NullRecorder null;
    const Stopwatch watch;
    kernel_.run(null);
    return watch.seconds();
  }
  [[nodiscard]] ModelSpec model_spec() override { return kernel_.model_spec(); }
  [[nodiscard]] const DataStructureRegistry& registry() const override {
    return kernel_.registry();
  }

  [[nodiscard]] double clean_signature() override {
    if (!clean_signature_.has_value()) {
      kernel_.reset();
      NullRecorder null;
      kernel_.run(null);
      clean_signature_ = kernel_.output_signature();
    }
    return *clean_signature_;
  }

  [[nodiscard]] std::uint64_t total_references() override {
    if (total_references_ == 0) {
      CountingRecorder counts;
      kernel_.reset();
      kernel_.run(counts);
      total_references_ = counts.total_references();
    }
    return total_references_;
  }

  [[nodiscard]] InjectionOutcome run_injected(
      DsId target, std::uint64_t trigger_reference, std::uint64_t byte_offset,
      std::uint8_t bit, std::uint64_t reference_budget = 0) override {
    const DataStructureInfo& info = kernel_.registry().info(target);
    DVF_CHECK_MSG(byte_offset < info.size_bytes,
                  "fault byte offset outside the target structure");
    const double clean = clean_signature();

    FaultSpec fault;
    fault.trigger_reference = trigger_reference;
    fault.target_byte =
        reinterpret_cast<std::uint8_t*>(info.base_address + byte_offset);
    fault.bit = bit;
    fault.reference_budget = reference_budget;

    kernel_.reset();
    FaultInjectingRecorder injector(fault);
    InjectionOutcome outcome;
    try {
      kernel_.run(injector);
    } catch (const ReferenceBudgetExceeded&) {
      injector.restore();
      outcome.injected = injector.injected();
      outcome.corrupted = true;
      outcome.deviation = std::numeric_limits<double>::infinity();
      outcome.classification = TrialOutcome::kDueHang;
      return outcome;
    } catch (const std::exception&) {
      // The flip drove the kernel into a throwing path (bad index,
      // violated invariant, ...). Contained: the trial is a DUE, the
      // campaign goes on. The next trial's reset() rebuilds kernel state.
      injector.restore();
      outcome.injected = injector.injected();
      outcome.corrupted = true;
      outcome.deviation = std::numeric_limits<double>::infinity();
      outcome.classification = TrialOutcome::kDueException;
      return outcome;
    }
    const double signature = kernel_.output_signature();
    injector.restore();

    outcome.injected = injector.injected();
    const double scale = std::max(1.0, std::fabs(clean));
    if (!std::isfinite(signature)) {
      outcome.corrupted = true;
      outcome.deviation = std::numeric_limits<double>::infinity();
      outcome.classification = TrialOutcome::kDueInvalid;
    } else {
      outcome.deviation = std::fabs(signature - clean) / scale;
      outcome.corrupted = outcome.deviation > 1e-9;
      outcome.classification =
          outcome.corrupted ? TrialOutcome::kSdc : TrialOutcome::kMasked;
    }
    return outcome;
  }

  [[nodiscard]] K& kernel() noexcept { return kernel_; }

 private:
  typename K::Config config_;
  K kernel_;
  std::optional<double> clean_signature_;
  std::uint64_t total_references_ = 0;
};

/// Table V: the verification-size instances of all six kernels.
[[nodiscard]] std::vector<std::unique_ptr<KernelCase>> make_verification_suite();

/// Table VI: the profiling-size instances of all six kernels.
[[nodiscard]] std::vector<std::unique_ptr<KernelCase>> make_profiling_suite();

/// The verification suite plus the beyond-paper kernels (CGS, the CSR
/// sparse CG, and GEMM, the tiled matmul) — what the interactive tools
/// expose.
[[nodiscard]] std::vector<std::unique_ptr<KernelCase>> make_extended_suite();

/// One kernel's end-to-end DVF evaluation: measured execution time plus the
/// analytical model evaluated on a machine.
struct SuiteEvaluation {
  std::string kernel;
  std::string method;
  double exec_time_seconds = 0.0;
  ApplicationDvf dvf;
};

/// Evaluates every kernel of `suite` (timed run, model extraction, DVF on
/// `calc`), farming independent kernels out across `threads` workers
/// (0 → DVF_THREADS / hardware default). Results are indexed like `suite`
/// regardless of thread count. Note that `exec_time_seconds` is wall-clock:
/// on an oversubscribed machine concurrent timing runs inflate T, so studies
/// that feed T into DVF comparisons should use threads = 1.
[[nodiscard]] std::vector<SuiteEvaluation> evaluate_suite(
    const std::vector<std::unique_ptr<KernelCase>>& suite,
    const DvfCalculator& calc, unsigned threads = 0);

}  // namespace dvf::kernels
