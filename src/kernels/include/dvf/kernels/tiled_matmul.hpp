// Tiled (blocked) dense matrix multiply C = A * B — the GEMM-style loop
// nest behind the tiled/blocked access-pattern family. The ii/kk/jj tile
// loops give each matrix a distinct tile-reuse signature the streaming and
// reuse families cannot express:
//   A: each (ii, kk) tile is held hot and re-read once per jj tile,
//   B: the whole matrix is re-swept once per ii tile row, the hot tile
//      re-read by every row of the C tile being produced,
//   C: the accumulator tile is re-read/written once per kk step.
#pragma once

#include <cstdint>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

class TiledMatmul {
 public:
  struct Config {
    std::uint64_t n = 64;    ///< matrix order (n x n, row-major doubles)
    std::uint64_t tile = 8;  ///< square tile edge; must divide n
    std::uint64_t seed = 23;
  };

  explicit TiledMatmul(const Config& config);

  /// C := A * B with the blocked ii/kk/jj nest; records every element
  /// reference including the C-initialization sweep.
  template <RecorderLike R>
  void run(R& rec);

  /// Aspen model: one tiled pattern per matrix (plus C's init stream),
  /// with passes/intra_reuse read off the loop nest.
  [[nodiscard]] ModelSpec model_spec() const;

  [[nodiscard]] const DataStructureRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  /// max_ij |C[i][j] - reference| — 0 on a clean run (the blocked nest
  /// accumulates each element in the same k order as the reference).
  [[nodiscard]] double solution_error() const;

  void reset() noexcept {}  // run() rebuilds C from scratch
  [[nodiscard]] double output_signature() const { return solution_error(); }

 private:
  Config config_;
  AlignedBuffer<double> a_;
  AlignedBuffer<double> b_;
  AlignedBuffer<double> c_;
  AlignedBuffer<double> exact_;
  DataStructureRegistry registry_;
  DsId a_id_ = 0;
  DsId b_id_ = 0;
  DsId c_id_ = 0;
};

template <RecorderLike R>
void TiledMatmul::run(R& rec) {
  const std::size_t n = config_.n;
  const std::size_t t = config_.tile;

  for (std::size_t idx = 0; idx < n * n; ++idx) {
    c_[idx] = 0.0;
    store(rec, c_id_, c_, idx);
  }

  for (std::size_t ii = 0; ii < n; ii += t) {
    for (std::size_t kk = 0; kk < n; kk += t) {
      for (std::size_t jj = 0; jj < n; jj += t) {
        for (std::size_t i = ii; i < ii + t; ++i) {
          for (std::size_t k = kk; k < kk + t; ++k) {
            load(rec, a_id_, a_, i * n + k);
            const double a = a_[i * n + k];
            for (std::size_t j = jj; j < jj + t; ++j) {
              load(rec, b_id_, b_, k * n + j);
              load(rec, c_id_, c_, i * n + j);
              c_[i * n + j] += a * b_[k * n + j];
              store(rec, c_id_, c_, i * n + j);
            }
          }
        }
      }
    }
  }
}

}  // namespace dvf::kernels
