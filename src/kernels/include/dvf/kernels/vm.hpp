// Vector Multiplication (VM) — dense linear algebra, streaming patterns.
//
// Paper Algorithm 1: C_i ← C_i + A_{i·j} · B_{i·k}; the three arrays stream
// with different strides (A's stride is larger, which is what makes its DVF
// dominate in Fig. 5(a)).
#pragma once

#include <cstdint>

#include "dvf/dvf/model_spec.hpp"
#include "dvf/kernels/kernel_common.hpp"
#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf::kernels {

class VectorMultiply {
 public:
  /// Element type follows the paper's "Integer Array" inputs (Tables V/VI).
  using Element = std::int32_t;

  struct Config {
    std::uint64_t iterations = 1000;  ///< n — number of multiply-adds
    std::uint64_t stride_a = 4;       ///< j — A's access stride (elements)
    std::uint64_t stride_b = 1;       ///< k — B's access stride (elements)
    std::uint64_t stride_c = 1;       ///< C's access stride (elements)
    std::uint64_t repeats = 1;        ///< whole-kernel repetitions
  };

  explicit VectorMultiply(const Config& config);

  /// Runs the multiply, emitting one record per logical element reference.
  template <RecorderLike R>
  void run(R& rec) {
    for (std::uint64_t rep = 0; rep < config_.repeats; ++rep) {
      for (std::uint64_t i = 0; i < config_.iterations; ++i) {
        const std::size_t ia = static_cast<std::size_t>(i * config_.stride_a);
        const std::size_t ib = static_cast<std::size_t>(i * config_.stride_b);
        const std::size_t ic = static_cast<std::size_t>(i * config_.stride_c);
        load(rec, a_id_, a_, ia);
        load(rec, b_id_, b_, ib);
        load(rec, c_id_, c_, ic);
        c_[ic] = static_cast<Element>(c_[ic] + a_[ia] * b_[ib]);
        store(rec, c_id_, c_, ic);
      }
    }
  }

  /// The paper's Aspen program for VM: three streaming structures.
  [[nodiscard]] ModelSpec model_spec() const;

  [[nodiscard]] const DataStructureRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Checksum over C, for correctness tests.
  [[nodiscard]] std::int64_t checksum() const;

  /// Zeroes the accumulator C so repeated runs are identical.
  void reset();

  /// Scalar output fingerprint for fault-injection campaigns.
  [[nodiscard]] double output_signature() const {
    return static_cast<double>(checksum());
  }

 private:
  Config config_;
  AlignedBuffer<Element> a_;
  AlignedBuffer<Element> b_;
  AlignedBuffer<Element> c_;
  DataStructureRegistry registry_;
  DsId a_id_;
  DsId b_id_;
  DsId c_id_;
};

}  // namespace dvf::kernels
