#include "dvf/kernels/injection_campaign.hpp"

#include <algorithm>
#include <numeric>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf::kernels {

std::vector<StructureInjectionStats> run_injection_campaign(
    KernelCase& kernel, const CampaignConfig& config) {
  DVF_CHECK_MSG(config.trials_per_structure >= 1,
                "campaign needs at least one trial per structure");

  const ModelSpec spec = kernel.model_spec();
  const std::uint64_t total_refs = kernel.total_references();
  DVF_CHECK_MSG(total_refs > 0, "kernel issued no references");

  Xoshiro256 rng(config.seed);
  std::vector<StructureInjectionStats> results;
  for (const DataStructureSpec& ds : spec.structures) {
    const auto id = kernel.registry().find(ds.name);
    if (!id.has_value()) {
      continue;
    }
    const DataStructureInfo& info = kernel.registry().info(*id);

    StructureInjectionStats stats;
    stats.structure = ds.name;
    for (std::uint64_t trial = 0; trial < config.trials_per_structure;
         ++trial) {
      const std::uint64_t trigger = 1 + rng.below(total_refs);
      const std::uint64_t offset = rng.below(info.size_bytes);
      const auto bit = static_cast<std::uint8_t>(rng.below(8));
      const InjectionOutcome outcome =
          kernel.run_injected(*id, trigger, offset, bit);
      ++stats.trials;
      stats.injected += outcome.injected ? 1 : 0;
      stats.corrupted += outcome.corrupted ? 1 : 0;
    }
    results.push_back(stats);
  }
  return results;
}

double rank_correlation(const std::vector<double>& a,
                        const std::vector<double>& b) {
  DVF_CHECK_MSG(a.size() == b.size(), "rank correlation needs equal sizes");
  const std::size_t n = a.size();
  if (n < 2) {
    return 1.0;
  }

  // Fractional ranks (ties get the average rank).
  const auto ranks_of = [n](const std::vector<double>& xs) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&xs](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) {
        ++j;
      }
      const double shared = 0.5 * static_cast<double>(i + j) + 1.0;
      for (std::size_t k = i; k <= j; ++k) {
        ranks[order[k]] = shared;
      }
      i = j + 1;
    }
    return ranks;
  };

  const std::vector<double> ra = ranks_of(a);
  const std::vector<double> rb = ranks_of(b);
  const double mean = (static_cast<double>(n) + 1.0) / 2.0;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    var_a += (ra[i] - mean) * (ra[i] - mean);
    var_b += (rb[i] - mean) * (rb[i] - mean);
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return 0.0;  // a constant ranking carries no order information
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace dvf::kernels
