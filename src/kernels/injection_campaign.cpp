#include "dvf/kernels/injection_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/kernels/campaign_journal.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/parallel/parallel_for.hpp"

namespace dvf::kernels {

namespace {

/// A structure that both the model spec and the kernel's registry know:
/// the campaign's unit of work. `spec_index` feeds the RNG stream, so it is
/// the structure's position in the model spec, stable even when other
/// structures are skipped.
struct CampaignTarget {
  std::string name;
  std::uint64_t spec_index = 0;
  std::uint64_t size_bytes = 0;
};

/// Integer-only accumulator (the string name lives in CampaignTarget);
/// per-slot copies are merged with order-independent sums.
struct Tally {
  std::uint64_t trials = 0;
  std::uint64_t injected = 0;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due_exception = 0;
  std::uint64_t due_hang = 0;
  std::uint64_t due_invalid = 0;

  void count(TrialOutcome outcome, bool was_injected) noexcept {
    ++trials;
    injected += was_injected ? 1 : 0;
    switch (outcome) {
      case TrialOutcome::kMasked:
        ++masked;
        break;
      case TrialOutcome::kSdc:
        ++sdc;
        break;
      case TrialOutcome::kDueException:
        ++due_exception;
        break;
      case TrialOutcome::kDueHang:
        ++due_hang;
        break;
      case TrialOutcome::kDueInvalid:
        ++due_invalid;
        break;
    }
  }

  void merge(const Tally& other) noexcept {
    trials += other.trials;
    injected += other.injected;
    masked += other.masked;
    sdc += other.sdc;
    due_exception += other.due_exception;
    due_hang += other.due_hang;
    due_invalid += other.due_invalid;
  }
};

/// One scheduled (structure, trial) pair of the current batch.
struct WorkItem {
  std::uint64_t target = 0;
  std::uint64_t trial = 0;
};

/// Campaign outcome-class counters, named after the taxonomy columns so the
/// metrics block of a run equals its reported taxonomy counts exactly.
/// Journal-replayed trials count too: the tallies include them.
struct CampaignCounters {
  obs::Counter trials = obs::counter("campaign.trials");
  obs::Counter injected = obs::counter("campaign.injected");
  obs::Counter masked = obs::counter("campaign.masked");
  obs::Counter sdc = obs::counter("campaign.sdc");
  obs::Counter due_exception = obs::counter("campaign.due_exception");
  obs::Counter due_hang = obs::counter("campaign.due_hang");
  obs::Counter due_invalid = obs::counter("campaign.due_invalid");
  obs::Counter replayed = obs::counter("campaign.journal_replayed");
  obs::Counter journal_errors = obs::counter("campaign.journal_errors");
  obs::Histogram flush_ns = obs::histogram("campaign.journal_flush_ns");

  void count(TrialOutcome outcome, bool was_injected) const noexcept {
    trials.add();
    if (was_injected) {
      injected.add();
    }
    switch (outcome) {
      case TrialOutcome::kMasked:
        masked.add();
        break;
      case TrialOutcome::kSdc:
        sdc.add();
        break;
      case TrialOutcome::kDueException:
        due_exception.add();
        break;
      case TrialOutcome::kDueHang:
        due_hang.add();
        break;
      case TrialOutcome::kDueInvalid:
        due_invalid.add();
        break;
    }
  }
};

CampaignJournalHeader make_header(const std::string& kernel_name,
                                  const CampaignConfig& config,
                                  const std::vector<CampaignTarget>& targets) {
  CampaignJournalHeader header;
  header.kernel = kernel_name;
  header.seed = config.seed;
  header.trials_per_structure = config.trials_per_structure;
  header.hang_factor = config.hang_factor;
  header.ci_width = config.ci_width;
  header.batch_trials = config.batch_trials;
  for (const CampaignTarget& target : targets) {
    header.targets.push_back({target.spec_index, target.name});
  }
  return header;
}

}  // namespace

double StructureInjectionStats::sdc_ci_half_width() const noexcept {
  return math::wilson_half_width(sdc, injected);
}

std::vector<StructureInjectionStats> run_injection_campaign(
    KernelCase& kernel, const CampaignConfig& config) {
  DVF_CHECK_MSG(config.trials_per_structure >= 1,
                "campaign needs at least one trial per structure");
  DVF_CHECK_MSG(config.hang_factor >= 0.0 &&
                    std::isfinite(config.hang_factor),
                "hang factor must be finite and non-negative");
  DVF_CHECK_MSG(config.ci_width >= 0.0 && config.ci_width < 1.0,
                "CI half-width target must be in [0, 1)");
  DVF_CHECK_MSG(config.journal_path.empty() ? !config.resume : true,
                "resume needs a journal path");

  const ModelSpec spec = kernel.model_spec();
  const std::uint64_t total_refs = kernel.total_references();
  DVF_CHECK_MSG(total_refs > 0, "kernel issued no references");

  // Hang budget: a trial may issue at most hang_factor × the golden run's
  // references (never less than the golden count itself, so the trigger —
  // drawn in [1, total_refs] — always fits inside the budget).
  const std::uint64_t budget =
      config.hang_factor == 0.0
          ? 0
          : std::max(total_refs,
                     static_cast<std::uint64_t>(std::ceil(
                         config.hang_factor *
                         static_cast<double>(total_refs))));

  std::vector<CampaignTarget> targets;
  for (std::uint64_t s = 0; s < spec.structures.size(); ++s) {
    const DataStructureSpec& ds = spec.structures[s];
    const auto id = kernel.registry().find(ds.name);
    if (id.has_value()) {
      // Fault sites span the registered (allocated) footprint, which is the
      // byte range run_injected accepts; the spec size may differ.
      targets.push_back({ds.name, s, kernel.registry().info(*id).size_bytes});
    }
  }
  const std::uint64_t trials = config.trials_per_structure;
  const std::uint64_t total_trials = targets.size() * trials;
  if (total_trials == 0) {
    return {};
  }

  // Journal: replay map for resume, writer for new lines. Journaled trials
  // are spent tally-only; missing trials run and are appended.
  std::unordered_map<std::uint64_t, CampaignJournalEntry> replay;
  std::optional<CampaignJournalWriter> journal;
  // Campaign results are a pure function of (seed, structure, trial), so a
  // lost journal never changes a statistic — only crash-resumability. An
  // environment fault opening/truncating/writing the journal therefore
  // degrades the run to journal-less operation with one warning instead of
  // aborting a fleet of trials mid-flight. A resume header mismatch still
  // throws: that is a configuration error, not an environment fault.
  std::atomic<bool> journal_warned{false};
  const auto warn_journal = [&journal_warned,
                             &config](const std::string& why) {
    if (!journal_warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "dvf: warning: campaign journal '%s' disabled: %s; "
                   "continuing without checkpointing\n",
                   config.journal_path.c_str(), why.c_str());
    }
  };
  const CampaignJournalHeader header =
      make_header(kernel.name(), config, targets);
  if (!config.journal_path.empty()) {
    if (config.resume) {
      CampaignJournalContents contents =
          read_campaign_journal(config.journal_path);
      if (!(contents.header == header)) {
        throw Error(
            "campaign journal '" + config.journal_path +
            "' was written by a different campaign (kernel/seed/trials/"
            "hang_factor/ci_width/batch/targets mismatch); refusing to "
            "resume");
      }
      replay.reserve(contents.entries.size());
      for (const CampaignJournalEntry& entry : contents.entries) {
        replay[entry.target * trials + entry.trial] = entry;
      }
      try {
        journal.emplace(config.journal_path, contents.valid_bytes);
      } catch (const Error& error) {
        warn_journal(error.what());
      }
    } else {
      try {
        journal.emplace(config.journal_path, header);
      } catch (const Error& error) {
        warn_journal(error.what());
      }
    }
  }

  // One kernel instance per execution slot. Slot 0 reuses the caller's
  // kernel; a pool never gets more slots than there are trials.
  parallel::ThreadPool pool(static_cast<unsigned>(
      std::min<std::uint64_t>(parallel::resolve_thread_count(config.threads),
                              total_trials)));
  std::vector<std::unique_ptr<KernelCase>> clones;
  std::vector<KernelCase*> instances(pool.concurrency(), &kernel);
  for (unsigned slot = 1; slot < pool.concurrency(); ++slot) {
    clones.push_back(kernel.clone());
    instances[slot] = clones.back().get();
  }
  // Per-instance registry ids (clones register structures in the same order,
  // but resolve by name to stay robust to future kernels).
  std::vector<std::vector<DsId>> ids(instances.size());
  for (std::size_t slot = 0; slot < instances.size(); ++slot) {
    for (const CampaignTarget& target : targets) {
      const auto id = instances[slot]->registry().find(target.name);
      DVF_CHECK_MSG(id.has_value(),
                    "kernel clone lost structure '" + target.name + "'");
      ids[slot].push_back(*id);
    }
  }

  // Batched schedule. With adaptive stopping off the whole campaign is one
  // batch; with it on, `batch_trials` trials per structure run between
  // stopping decisions. Decisions read only merged tallies at batch
  // boundaries — deterministic state — so the scheduled trial set (and
  // therefore every statistic) is identical for every thread count, and for
  // resumed vs uninterrupted runs.
  const std::uint64_t batch =
      config.ci_width == 0.0 ? trials
                             : std::max<std::uint64_t>(1, config.batch_trials);
  const obs::ScopedSpan campaign_span("campaign.run");
  std::vector<std::uint64_t> done(targets.size(), 0);
  std::vector<bool> stopped(targets.size(), false);
  std::vector<bool> early(targets.size(), false);
  std::vector<Tally> totals(targets.size());

  while (true) {
    std::vector<WorkItem> work;
    for (std::uint64_t t_index = 0; t_index < targets.size(); ++t_index) {
      if (stopped[t_index]) {
        continue;
      }
      const std::uint64_t end =
          std::min(done[t_index] + batch, trials);
      for (std::uint64_t trial = done[t_index]; trial < end; ++trial) {
        work.push_back({t_index, trial});
      }
    }
    if (work.empty()) {
      break;
    }

    // tallies[slot][target]; merged per target after the parallel region.
    std::vector<std::vector<Tally>> tallies(
        instances.size(), std::vector<Tally>(targets.size()));
    const bool observed = obs::enabled();
    const obs::ScopedSpan batch_span("campaign.batch");
    parallel::parallel_for(
        pool, work.size(),
        [&](std::uint64_t task, unsigned slot) {
          const WorkItem& item = work[static_cast<std::size_t>(task)];
          const CampaignTarget& target =
              targets[static_cast<std::size_t>(item.target)];

          TrialOutcome classification = TrialOutcome::kMasked;
          bool injected = false;
          bool replayed = false;
          const auto journaled = replay.find(item.target * trials + item.trial);
          if (journaled != replay.end()) {
            classification = journaled->second.outcome;
            injected = journaled->second.injected;
            replayed = true;
          } else {
            Xoshiro256 rng =
                stream_rng(config.seed, target.spec_index, item.trial);
            const std::uint64_t trigger = 1 + rng.below(total_refs);
            const std::uint64_t offset = rng.below(target.size_bytes);
            const auto bit = static_cast<std::uint8_t>(rng.below(8));
            const InjectionOutcome outcome = instances[slot]->run_injected(
                ids[slot][static_cast<std::size_t>(item.target)], trigger,
                offset, bit, budget);
            classification = outcome.classification;
            injected = outcome.injected;
            if (journal.has_value() && !journal->failed()) {
              Result<void> written = [&] {
                if (observed) {
                  const std::uint64_t flush_start = obs::now_ns();
                  Result<void> io = journal->record(
                      {item.target, item.trial, classification, injected});
                  static const CampaignCounters counters;
                  counters.flush_ns.record(obs::now_ns() - flush_start);
                  return io;
                }
                return journal->record(
                    {item.target, item.trial, classification, injected});
              }();
              if (!written.ok()) {
                // The writer has latched dead; the campaign carries on
                // journal-less (results are unaffected, see above).
                if (observed) {
                  static const CampaignCounters counters;
                  counters.journal_errors.add();
                }
                warn_journal(written.error().describe());
              }
            }
          }
          if (observed) {
            static const CampaignCounters counters;
            counters.count(classification, injected);
            if (replayed) {
              counters.replayed.add();
            }
          }
          tallies[slot][static_cast<std::size_t>(item.target)].count(
              classification, injected);
        });

    for (std::size_t t_index = 0; t_index < targets.size(); ++t_index) {
      if (stopped[t_index]) {
        continue;
      }
      for (const std::vector<Tally>& slot_tallies : tallies) {
        totals[t_index].merge(slot_tallies[t_index]);
      }
      done[t_index] = std::min(done[t_index] + batch, trials);
      if (done[t_index] >= trials) {
        stopped[t_index] = true;
      } else if (config.ci_width > 0.0 &&
                 math::wilson_half_width(totals[t_index].sdc,
                                         totals[t_index].injected) <
                     config.ci_width) {
        stopped[t_index] = true;
        early[t_index] = true;
      }
    }
  }

  std::vector<StructureInjectionStats> results(targets.size());
  for (std::size_t t_index = 0; t_index < targets.size(); ++t_index) {
    StructureInjectionStats& stats = results[t_index];
    const Tally& tally = totals[t_index];
    stats.structure = targets[t_index].name;
    stats.trials = tally.trials;
    stats.injected = tally.injected;
    stats.masked = tally.masked;
    stats.sdc = tally.sdc;
    stats.due_exception = tally.due_exception;
    stats.due_hang = tally.due_hang;
    stats.due_invalid = tally.due_invalid;
    stats.corrupted =
        tally.sdc + tally.due_exception + tally.due_hang + tally.due_invalid;
    stats.early_stopped = early[t_index];
  }
  return results;
}

double rank_correlation(const std::vector<double>& a,
                        const std::vector<double>& b) {
  DVF_CHECK_MSG(a.size() == b.size(), "rank correlation needs equal sizes");
  const std::size_t n = a.size();
  if (n < 2) {
    return 1.0;
  }

  // Fractional ranks (ties get the average rank).
  const auto ranks_of = [n](const std::vector<double>& xs) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&xs](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) {
        ++j;
      }
      const double shared = 0.5 * static_cast<double>(i + j) + 1.0;
      for (std::size_t k = i; k <= j; ++k) {
        ranks[order[k]] = shared;
      }
      i = j + 1;
    }
    return ranks;
  };

  const std::vector<double> ra = ranks_of(a);
  const std::vector<double> rb = ranks_of(b);
  const double mean = (static_cast<double>(n) + 1.0) / 2.0;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    var_a += (ra[i] - mean) * (ra[i] - mean);
    var_b += (rb[i] - mean) * (rb[i] - mean);
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return 0.0;  // a constant ranking carries no order information
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace dvf::kernels
