#include "dvf/kernels/injection_campaign.hpp"

#include <algorithm>
#include <numeric>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/parallel/parallel_for.hpp"

namespace dvf::kernels {

namespace {

/// A structure that both the model spec and the kernel's registry know:
/// the campaign's unit of work. `spec_index` feeds the RNG stream, so it is
/// the structure's position in the model spec, stable even when other
/// structures are skipped.
struct CampaignTarget {
  std::string name;
  std::uint64_t spec_index = 0;
  std::uint64_t size_bytes = 0;
};

/// Integer-only accumulator (the string name lives in CampaignTarget);
/// per-slot copies are merged with order-independent sums.
struct Tally {
  std::uint64_t trials = 0;
  std::uint64_t injected = 0;
  std::uint64_t corrupted = 0;
};

}  // namespace

std::vector<StructureInjectionStats> run_injection_campaign(
    KernelCase& kernel, const CampaignConfig& config) {
  DVF_CHECK_MSG(config.trials_per_structure >= 1,
                "campaign needs at least one trial per structure");

  const ModelSpec spec = kernel.model_spec();
  const std::uint64_t total_refs = kernel.total_references();
  DVF_CHECK_MSG(total_refs > 0, "kernel issued no references");

  std::vector<CampaignTarget> targets;
  for (std::uint64_t s = 0; s < spec.structures.size(); ++s) {
    const DataStructureSpec& ds = spec.structures[s];
    const auto id = kernel.registry().find(ds.name);
    if (id.has_value()) {
      // Fault sites span the registered (allocated) footprint, which is the
      // byte range run_injected accepts; the spec size may differ.
      targets.push_back({ds.name, s, kernel.registry().info(*id).size_bytes});
    }
  }
  const std::uint64_t trials = config.trials_per_structure;
  const std::uint64_t total_trials = targets.size() * trials;
  if (total_trials == 0) {
    return {};
  }

  // One kernel instance per execution slot. Slot 0 reuses the caller's
  // kernel; a pool never gets more slots than there are trials.
  parallel::ThreadPool pool(static_cast<unsigned>(
      std::min<std::uint64_t>(parallel::resolve_thread_count(config.threads),
                              total_trials)));
  std::vector<std::unique_ptr<KernelCase>> clones;
  std::vector<KernelCase*> instances(pool.concurrency(), &kernel);
  for (unsigned slot = 1; slot < pool.concurrency(); ++slot) {
    clones.push_back(kernel.clone());
    instances[slot] = clones.back().get();
  }
  // Per-instance registry ids (clones register structures in the same order,
  // but resolve by name to stay robust to future kernels).
  std::vector<std::vector<DsId>> ids(instances.size());
  for (std::size_t slot = 0; slot < instances.size(); ++slot) {
    for (const CampaignTarget& target : targets) {
      const auto id = instances[slot]->registry().find(target.name);
      DVF_CHECK_MSG(id.has_value(),
                    "kernel clone lost structure '" + target.name + "'");
      ids[slot].push_back(*id);
    }
  }

  // tallies[slot][target]; merged per target after the parallel region.
  std::vector<std::vector<Tally>> tallies(
      instances.size(), std::vector<Tally>(targets.size()));
  parallel::parallel_for(
      pool, total_trials,
      [&](std::uint64_t task, unsigned slot) {
        const std::size_t t_index = static_cast<std::size_t>(task / trials);
        const std::uint64_t trial = task % trials;
        const CampaignTarget& target = targets[t_index];
        Xoshiro256 rng = stream_rng(config.seed, target.spec_index, trial);
        const std::uint64_t trigger = 1 + rng.below(total_refs);
        const std::uint64_t offset = rng.below(target.size_bytes);
        const auto bit = static_cast<std::uint8_t>(rng.below(8));
        const InjectionOutcome outcome = instances[slot]->run_injected(
            ids[slot][t_index], trigger, offset, bit);
        Tally& tally = tallies[slot][t_index];
        ++tally.trials;
        tally.injected += outcome.injected ? 1 : 0;
        tally.corrupted += outcome.corrupted ? 1 : 0;
      });

  std::vector<StructureInjectionStats> results(targets.size());
  for (std::size_t t_index = 0; t_index < targets.size(); ++t_index) {
    StructureInjectionStats& stats = results[t_index];
    stats.structure = targets[t_index].name;
    for (const std::vector<Tally>& slot_tallies : tallies) {
      stats.trials += slot_tallies[t_index].trials;
      stats.injected += slot_tallies[t_index].injected;
      stats.corrupted += slot_tallies[t_index].corrupted;
    }
  }
  return results;
}

double rank_correlation(const std::vector<double>& a,
                        const std::vector<double>& b) {
  DVF_CHECK_MSG(a.size() == b.size(), "rank correlation needs equal sizes");
  const std::size_t n = a.size();
  if (n < 2) {
    return 1.0;
  }

  // Fractional ranks (ties get the average rank).
  const auto ranks_of = [n](const std::vector<double>& xs) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&xs](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) {
        ++j;
      }
      const double shared = 0.5 * static_cast<double>(i + j) + 1.0;
      for (std::size_t k = i; k <= j; ++k) {
        ranks[order[k]] = shared;
      }
      i = j + 1;
    }
    return ranks;
  };

  const std::vector<double> ra = ranks_of(a);
  const std::vector<double> rb = ranks_of(b);
  const double mean = (static_cast<double>(n) + 1.0) / 2.0;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    var_a += (ra[i] - mean) * (ra[i] - mean);
    var_b += (rb[i] - mean) * (rb[i] - mean);
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return 0.0;  // a constant ranking carries no order information
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace dvf::kernels
