#include "dvf/kernels/montecarlo.hpp"

#include <algorithm>
#include <functional>

#include "dvf/common/error.hpp"

namespace dvf::kernels {

namespace {

std::vector<double> sorted_fractions(const std::vector<std::uint64_t>& counts,
                                     std::uint64_t iterations) {
  std::vector<double> fractions;
  fractions.reserve(counts.size());
  for (const std::uint64_t c : counts) {
    fractions.push_back(static_cast<double>(c) /
                        static_cast<double>(iterations));
  }
  std::sort(fractions.begin(), fractions.end(), std::greater<>());
  return fractions;
}

}  // namespace

MonteCarlo::MonteCarlo(const Config& config)
    : config_(config), grid_(config.grid_points), xs_(config.xs_entries) {
  DVF_CHECK_MSG(config.grid_points >= 4, "MC: need at least 4 grid points");
  DVF_CHECK_MSG(config.xs_entries >= 1, "MC: need at least one XS entry");
  DVF_CHECK_MSG(config.lookups >= 1, "MC: need at least one lookup");

  // Sorted unionized grid over [0, 1) with deterministic cross-section rows.
  Xoshiro256 rng(config_.seed);
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    grid_[i].energy = static_cast<double>(i) / static_cast<double>(grid_.size());
    grid_[i].xs_index = static_cast<std::uint32_t>(rng.below(config_.xs_entries));
  }
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    for (double& v : xs_[i].xs) {
      v = rng.uniform();
    }
  }

  grid_id_ = registry_.register_structure("G", grid_.data(), grid_.size_bytes(),
                                          sizeof(GridPoint));
  xs_id_ = registry_.register_structure("E", xs_.data(), xs_.size_bytes(),
                                        sizeof(XsEntry));
}

ModelSpec MonteCarlo::model_spec() {
  if (lookups_done_ == 0) {
    // k comes from profiling (paper §III-C); profile with a null recorder.
    NullRecorder null;
    run(null);
  }

  const double sg = static_cast<double>(grid_.size_bytes());
  const double se = static_cast<double>(xs_.size_bytes());

  ModelSpec spec;
  spec.name = "MC";
  {
    DataStructureSpec ds;
    ds.name = "G";
    ds.size_bytes = grid_.size_bytes();
    RandomSpec r;
    r.element_count = config_.grid_points;
    r.element_bytes = sizeof(GridPoint);
    r.visits_per_iteration = average_grid_visits();
    r.iterations = config_.lookups;
    r.cache_ratio = sg / (sg + se);  // the paper's size-proportional split
    // IRM extension: bisection touches the top levels of the implicit tree
    // on every lookup; those stay cached.
    r.sorted_visit_fractions = sorted_fractions(grid_visit_counts_,
                                                config_.lookups);
    ds.patterns.emplace_back(std::move(r));
    spec.structures.push_back(std::move(ds));
  }
  {
    DataStructureSpec ds;
    ds.name = "E";
    ds.size_bytes = xs_.size_bytes();
    RandomSpec r;
    r.element_count = config_.xs_entries;
    r.element_bytes = sizeof(XsEntry);
    r.visits_per_iteration = average_xs_visits();
    r.iterations = config_.lookups;
    r.cache_ratio = se / (sg + se);
    r.sorted_visit_fractions = sorted_fractions(xs_visit_counts_,
                                                config_.lookups);
    ds.patterns.emplace_back(std::move(r));
    spec.structures.push_back(std::move(ds));
  }
  return spec;
}

}  // namespace dvf::kernels
