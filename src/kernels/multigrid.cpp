#include "dvf/kernels/multigrid.hpp"

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf::kernels {

namespace {
bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

MultiGrid::MultiGrid(const Config& config) : config_(config) {
  DVF_CHECK_MSG(is_power_of_two(config.dim), "MG: dim must be a power of two");
  DVF_CHECK_MSG(config.levels >= 1, "MG: need at least one level");
  DVF_CHECK_MSG(config.dim >> (config.levels - 1) >= 4,
                "MG: coarsest grid must be at least 4^3");
  DVF_CHECK_MSG(config.vcycles >= 1, "MG: need at least one V-cycle");

  u_.reserve(config.levels);
  rhs_.reserve(config.levels);
  res_.reserve(config.levels);
  for (std::size_t l = 0; l < config.levels; ++l) {
    const std::uint64_t n = edge(l);
    u_.emplace_back(cells(n));
    rhs_.emplace_back(cells(n));
    res_.emplace_back(cells(n));
  }

  // Deterministic zero-mean rhs noise on the finest level.
  Xoshiro256 rng(config_.seed);
  for (std::size_t i = 0; i < rhs_[0].size(); ++i) {
    rhs_[0][i] = rng.uniform() - 0.5;
  }

  for (std::size_t l = 0; l < config.levels; ++l) {
    const std::string suffix = l == 0 ? "" : std::to_string(l);
    u_ids_.push_back(registry_.register_structure(
        l == 0 ? "R" : "R" + suffix, u_[l].data(), u_[l].size_bytes(),
        sizeof(double)));
    rhs_ids_.push_back(registry_.register_structure(
        "rhs" + std::to_string(l), rhs_[l].data(), rhs_[l].size_bytes(),
        sizeof(double)));
    res_ids_.push_back(registry_.register_structure(
        "res" + std::to_string(l), res_[l].data(), res_[l].size_bytes(),
        sizeof(double)));
  }
}

std::vector<std::uint64_t> MultiGrid::smoother_template() const {
  const std::uint64_t n = config_.dim;
  std::vector<std::uint64_t> indices;
  indices.reserve(static_cast<std::size_t>(5 * (n - 2) * (n - 2) * n));
  // The paper's MG template: four sequential starting references advancing
  // by one each iteration until the grid boundary — exactly the smoother's
  // reference order, plus the written center point.
  for (std::uint64_t i = 1; i + 1 < n; ++i) {
    for (std::uint64_t j = 1; j + 1 < n; ++j) {
      for (std::uint64_t k = 0; k < n; ++k) {
        indices.push_back(at(n, i, j - 1, k));
        indices.push_back(at(n, i, j + 1, k));
        indices.push_back(at(n, i - 1, j, k));
        indices.push_back(at(n, i + 1, j, k));
        indices.push_back(at(n, i, j, k));
      }
    }
  }
  return indices;
}

ModelSpec MultiGrid::model_spec() const {
  ModelSpec spec;
  spec.name = "MG";

  DataStructureSpec ds;
  ds.name = "R";
  ds.size_bytes = u_[0].size_bytes();

  // Finest-grid passes per V-cycle: pre- and post-smooth sweeps, the
  // residual pass (same stencil shape) and the prolongation correction
  // (approximated as one more sweep of the template).
  const std::uint64_t passes_per_cycle =
      config_.pre_smooth + config_.post_smooth + 2;

  TemplateSpec t;
  t.element_bytes = sizeof(double);
  t.element_indices = smoother_template();
  t.repetitions = passes_per_cycle * config_.vcycles;
  // The rhs and residual arrays stream alongside R and contend for the
  // cache; R's share is its footprint fraction of the three equally sized
  // finest-level arrays (paper: divide the cache among the concurrently
  // accessed structures by size).
  t.cache_ratio = 1.0 / 3.0;
  ds.patterns.emplace_back(std::move(t));
  spec.structures.push_back(std::move(ds));
  return spec;
}

}  // namespace dvf::kernels
