#include "dvf/kernels/nbody.hpp"

#include <algorithm>
#include <functional>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf::kernels {

BarnesHut::BarnesHut(const Config& config)
    : config_(config),
      tree_(config.bodies * 8 + 16),
      bodies_(config.bodies) {
  DVF_CHECK_MSG(config.bodies >= 2, "NB: need at least two bodies");
  DVF_CHECK_MSG(config.theta > 0.0, "NB: theta must be positive");
  DVF_CHECK_MSG(config.steps >= 1, "NB: need at least one step");
  pool_capacity_ = tree_.size();
  cell_x_.resize(pool_capacity_);
  cell_y_.resize(pool_capacity_);

  // Plummer-ish clustered distribution in the unit square: clustering gives
  // deep subtrees and a realistic spread of per-body visit counts.
  Xoshiro256 rng(config_.seed);
  for (std::size_t b = 0; b < config_.bodies; ++b) {
    const double cluster = rng.uniform();
    const double cx = cluster < 0.5 ? 0.3 : 0.7;
    const double cy = cluster < 0.25 || cluster >= 0.75 ? 0.3 : 0.7;
    bodies_[b].x = static_cast<float>(
        std::clamp(cx + (rng.uniform() - 0.5) * 0.4, 0.0, 0.999));
    bodies_[b].y = static_cast<float>(
        std::clamp(cy + (rng.uniform() - 0.5) * 0.4, 0.0, 0.999));
    bodies_[b].mass = static_cast<float>(0.5 + rng.uniform());
  }

  tree_id_ = registry_.register_structure("T", tree_.data(), tree_.size_bytes(),
                                          sizeof(Node));
  bodies_id_ = registry_.register_structure("P", bodies_.data(),
                                            bodies_.size_bytes(),
                                            sizeof(Particle));
}

std::int32_t BarnesHut::allocate_node(float half_size) {
  DVF_CHECK_MSG(node_count_ < pool_capacity_, "NB: tree node pool exhausted");
  const auto idx = static_cast<std::int32_t>(node_count_++);
  tree_[static_cast<std::size_t>(idx)] = Node{};
  tree_[static_cast<std::size_t>(idx)].half_size = half_size;
  return idx;
}

void BarnesHut::build_tree_geometry() {
  node_count_ = 0;
  const std::int32_t root = allocate_node(0.5F);
  cell_x_[static_cast<std::size_t>(root)] = 0.5F;
  cell_y_[static_cast<std::size_t>(root)] = 0.5F;
}

ModelSpec BarnesHut::model_spec() {
  if (total_force_passes_ == 0) {
    // The model's k and iter parameters come from profiling (paper §III-C:
    // "they can be easily obtained by profiling the application").
    NullRecorder null;
    run(null);
  }

  ModelSpec spec;
  spec.name = "NB";

  {
    DataStructureSpec ds;
    ds.name = "T";
    ds.size_bytes = node_count_ * sizeof(Node);
    RandomSpec r;
    r.element_count = node_count_;
    r.element_bytes = sizeof(Node);
    r.visits_per_iteration = average_visits();
    r.iterations = config_.bodies * config_.steps;
    // The force pass touches P alongside T; split the cache by footprint
    // (the paper's rule for concurrently accessed structures).
    r.cache_ratio =
        static_cast<double>(ds.size_bytes) /
        static_cast<double>(ds.size_bytes + bodies_.size_bytes());
    // Popularity histogram (IRM extension): tree tops are visited by nearly
    // every body and stay cached; the uniform model misses that locality.
    r.sorted_visit_fractions.reserve(node_count_);
    const double iterations =
        static_cast<double>(config_.bodies * config_.steps);
    for (const std::uint64_t count : visit_counts_) {
      r.sorted_visit_fractions.push_back(static_cast<double>(count) /
                                         iterations);
    }
    std::sort(r.sorted_visit_fractions.begin(),
              r.sorted_visit_fractions.end(), std::greater<>());
    ds.patterns.emplace_back(std::move(r));
    spec.structures.push_back(std::move(ds));
  }
  {
    DataStructureSpec ds;
    ds.name = "P";
    ds.size_bytes = bodies_.size_bytes();
    // The build traverses P once (covered by the reuse estimate's initial
    // load); every force pass re-streams it against the tree's interference.
    ReuseSpec u;
    u.self_bytes = bodies_.size_bytes();
    u.other_bytes = node_count_ * sizeof(Node);
    u.reuse_rounds = config_.steps;
    u.occupancy = ReuseOccupancy::kContiguous;  // arrays map round-robin
    ds.patterns.emplace_back(u);
    spec.structures.push_back(std::move(ds));
  }
  return spec;
}

double BarnesHut::total_force() const {
  double sum = 0.0;
  for (std::size_t b = 0; b < config_.bodies; ++b) {
    sum += std::sqrt(static_cast<double>(bodies_[b].fx) * bodies_[b].fx +
                     static_cast<double>(bodies_[b].fy) * bodies_[b].fy);
  }
  return sum;
}

}  // namespace dvf::kernels
