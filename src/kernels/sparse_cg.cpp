#include "dvf/kernels/sparse_cg.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf::kernels {

SparseConjugateGradient::SparseConjugateGradient(const Config& config)
    : config_(config),
      x_(config.n),
      b_(config.n),
      r_(config.n),
      p_(config.n),
      ap_(config.n),
      exact_(config.n) {
  DVF_CHECK_MSG(config.n >= 4, "sparse CG: need at least 4 unknowns");
  DVF_CHECK_MSG(config.offdiag_per_row >= 1,
                "sparse CG: need at least one off-diagonal per row");
  const std::size_t n = config_.n;

  // Symmetric SPD sparse matrix: diagonal + ~offdiag_per_row symmetric
  // entries per row, skewed toward low column indices so the gather has a
  // non-uniform popularity profile (hub columns), as real meshes do.
  Xoshiro256 rng(config_.seed);
  std::vector<std::map<std::uint32_t, double>> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint64_t e = 0; e < config_.offdiag_per_row / 2 + 1; ++e) {
      // Quadratic skew: low-index "hub" columns attract most edges.
      const double u = rng.uniform();
      auto j = static_cast<std::size_t>(u * u * static_cast<double>(n));
      j = std::min(j, n - 1);
      if (j == i) {
        continue;
      }
      const double v = (rng.uniform() - 0.5) * 0.1;
      rows[i][static_cast<std::uint32_t>(j)] = v;
      rows[j][static_cast<std::uint32_t>(i)] = v;
    }
  }
  // Strict diagonal dominance keeps it SPD.
  for (std::size_t i = 0; i < n; ++i) {
    double off_sum = 0.0;
    for (const auto& [j, v] : rows[i]) {
      off_sum += std::fabs(v);
    }
    rows[i][static_cast<std::uint32_t>(i)] = off_sum + 1.0 + rng.uniform();
  }

  nnz_ = 0;
  for (const auto& row : rows) {
    nnz_ += row.size();
  }

  values_ = AlignedBuffer<double>(nnz_);
  col_idx_ = AlignedBuffer<std::int32_t>(nnz_);
  row_ptr_ = AlignedBuffer<std::int32_t>(n + 1);
  column_counts_.assign(n, 0);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    row_ptr_[i] = static_cast<std::int32_t>(cursor);
    for (const auto& [j, v] : rows[i]) {
      values_[cursor] = v;
      col_idx_[cursor] = static_cast<std::int32_t>(j);
      ++column_counts_[j];
      ++cursor;
    }
  }
  row_ptr_[n] = static_cast<std::int32_t>(cursor);

  // Known exact solution, b = A * exact.
  for (std::size_t i = 0; i < n; ++i) {
    exact_[i] = 1.0 + std::cos(static_cast<double>(i) * 0.1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::int32_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      s += values_[static_cast<std::size_t>(k)] *
           exact_[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    b_[i] = s;
  }

  val_id_ = registry_.register_structure("val", values_.data(),
                                         values_.size_bytes(), sizeof(double));
  col_id_ = registry_.register_structure("col", col_idx_.data(),
                                         col_idx_.size_bytes(),
                                         sizeof(std::int32_t));
  row_id_ = registry_.register_structure("row", row_ptr_.data(),
                                         row_ptr_.size_bytes(),
                                         sizeof(std::int32_t));
  x_id_ = registry_.register_structure("x", x_.data(), x_.size_bytes(),
                                       sizeof(double));
  r_id_ = registry_.register_structure("r", r_.data(), r_.size_bytes(),
                                       sizeof(double));
  p_id_ = registry_.register_structure("p", p_.data(), p_.size_bytes(),
                                       sizeof(double));
  ap_id_ = registry_.register_structure("Ap", ap_.data(), ap_.size_bytes(),
                                        sizeof(double));
}

ModelSpec SparseConjugateGradient::model_spec() const {
  const std::uint64_t n = config_.n;
  const std::uint64_t iters =
      iterations_run_ > 0 ? iterations_run_ : iteration_bound();
  const std::uint64_t vec_bytes = n * sizeof(double);

  ModelSpec spec;
  spec.name = "CGS";

  const auto reuse_of = [](std::uint64_t self, std::uint64_t other,
                           std::uint64_t rounds) {
    ReuseSpec u;
    u.self_bytes = self;
    u.other_bytes = other;
    u.reuse_rounds = rounds;
    u.occupancy = ReuseOccupancy::kContiguous;
    return u;
  };

  const std::uint64_t csr_bytes =
      nnz_ * (sizeof(double) + sizeof(std::int32_t));

  // val / col: one streaming traversal per SpMV against small interference.
  {
    DataStructureSpec ds;
    ds.name = "val";
    ds.size_bytes = nnz_ * sizeof(double);
    ds.patterns.emplace_back(reuse_of(ds.size_bytes,
                                      nnz_ * sizeof(std::int32_t) +
                                          6 * vec_bytes,
                                      iters - 1));
    spec.structures.push_back(std::move(ds));
  }
  {
    DataStructureSpec ds;
    ds.name = "col";
    ds.size_bytes = nnz_ * sizeof(std::int32_t);
    ds.patterns.emplace_back(reuse_of(ds.size_bytes,
                                      nnz_ * sizeof(double) + 6 * vec_bytes,
                                      iters - 1));
    spec.structures.push_back(std::move(ds));
  }
  {
    DataStructureSpec ds;
    ds.name = "row";
    ds.size_bytes = (n + 1) * sizeof(std::int32_t);
    ds.patterns.emplace_back(reuse_of(ds.size_bytes, csr_bytes, iters - 1));
    spec.structures.push_back(std::move(ds));
  }

  // p: the gather — random access with the column-popularity histogram
  // (hub columns stay cached), nnz visits per SpMV, plus its own share of
  // the cache against the streaming CSR arrays.
  {
    DataStructureSpec ds;
    ds.name = "p";
    ds.size_bytes = vec_bytes;
    RandomSpec g;
    g.element_count = n;
    g.element_bytes = sizeof(double);
    g.visits_per_iteration = static_cast<double>(nnz_) /
                             static_cast<double>(n);  // per row processed
    g.iterations = iters * n;  // one "iteration" per row of the SpMV
    g.cache_ratio = static_cast<double>(vec_bytes) /
                    static_cast<double>(vec_bytes + csr_bytes / n + 1);
    g.sorted_visit_fractions.reserve(n);
    // Per-row visit probability of column j ~ count_j / n rows.
    for (const std::uint64_t count : column_counts_) {
      g.sorted_visit_fractions.push_back(
          std::min(1.0, static_cast<double>(count) / static_cast<double>(n)));
    }
    std::sort(g.sorted_visit_fractions.begin(),
              g.sorted_visit_fractions.end(), std::greater<>());
    ds.patterns.emplace_back(std::move(g));
    spec.structures.push_back(std::move(ds));
  }

  spec.structures.push_back([&] {
    DataStructureSpec ds;
    ds.name = "x";
    ds.size_bytes = vec_bytes;
    ds.patterns.emplace_back(reuse_of(vec_bytes, csr_bytes, iters));
    return ds;
  }());
  spec.structures.push_back([&] {
    DataStructureSpec ds;
    ds.name = "r";
    ds.size_bytes = vec_bytes;
    // Two traversals per iteration (the residual update and the p-update
    // read), each after enough intervening traffic to evict it.
    ds.patterns.emplace_back(reuse_of(vec_bytes, csr_bytes, 2 * iters));
    return ds;
  }());
  return spec;
}

double SparseConjugateGradient::solution_error() const {
  double err = 0.0;
  for (std::size_t i = 0; i < config_.n; ++i) {
    err = std::max(err, std::fabs(x_[i] - exact_[i]));
  }
  return err;
}

}  // namespace dvf::kernels
