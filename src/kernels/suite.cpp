#include "dvf/kernels/suite.hpp"

#include "dvf/parallel/parallel_for.hpp"
#include "dvf/kernels/cg.hpp"
#include "dvf/kernels/fft.hpp"
#include "dvf/kernels/montecarlo.hpp"
#include "dvf/kernels/multigrid.hpp"
#include "dvf/kernels/nbody.hpp"
#include "dvf/kernels/sparse_cg.hpp"
#include "dvf/kernels/tiled_matmul.hpp"
#include "dvf/kernels/vm.hpp"

namespace dvf::kernels {

const char* to_string(TrialOutcome outcome) noexcept {
  switch (outcome) {
    case TrialOutcome::kMasked:
      return "masked";
    case TrialOutcome::kSdc:
      return "sdc";
    case TrialOutcome::kDueException:
      return "due_exception";
    case TrialOutcome::kDueHang:
      return "due_hang";
    case TrialOutcome::kDueInvalid:
      return "due_invalid";
  }
  return "unknown";
}

std::optional<TrialOutcome> trial_outcome_from_string(
    const std::string& label) noexcept {
  for (const TrialOutcome outcome :
       {TrialOutcome::kMasked, TrialOutcome::kSdc, TrialOutcome::kDueException,
        TrialOutcome::kDueHang, TrialOutcome::kDueInvalid}) {
    if (label == to_string(outcome)) {
      return outcome;
    }
  }
  return std::nullopt;
}

namespace {

template <typename K, typename Config>
std::unique_ptr<KernelCase> make_case(const char* name, const char* method,
                                      const Config& config) {
  return std::make_unique<KernelCaseAdapter<K>>(name, method, config);
}

}  // namespace

std::vector<std::unique_ptr<KernelCase>> make_verification_suite() {
  std::vector<std::unique_ptr<KernelCase>> suite;

  // Table V. VM: 10^3 integer array.
  VectorMultiply::Config vm;
  vm.iterations = 1000;
  suite.push_back(make_case<VectorMultiply>("VM", "Dense linear algebra", vm));

  // CG: 500x500 double matrix. The iteration cap keeps the trace-driven
  // verification affordable; the model uses the same iteration count.
  ConjugateGradient::Config cg;
  cg.n = 500;
  cg.max_iterations = 20;
  suite.push_back(make_case<ConjugateGradient>("CG", "Sparse linear algebra", cg));

  // NB: 1000 particles.
  BarnesHut::Config nb;
  nb.bodies = 1000;
  suite.push_back(make_case<BarnesHut>("NB", "N-body method", nb));

  // MG: problem class S (32^3 finest grid, 4 V-cycles).
  MultiGrid::Config mg;
  mg.dim = 32;
  mg.levels = 3;
  mg.vcycles = 4;
  suite.push_back(make_case<MultiGrid>("MG", "Structured grids", mg));

  // FT: the 1-D FFT segment of problem class S (2048-point transform — a
  // ~32 KiB working set, matching the paper's reported FT footprint).
  Fft1D::Config ft;
  ft.n = 2048;
  suite.push_back(make_case<Fft1D>("FT", "Spectral methods", ft));

  // MC: size = small, 10^3 lookups.
  MonteCarlo::Config mc;
  mc.lookups = 1000;
  suite.push_back(make_case<MonteCarlo>("MC", "Monte Carlo", mc));

  return suite;
}

std::vector<std::unique_ptr<KernelCase>> make_profiling_suite() {
  std::vector<std::unique_ptr<KernelCase>> suite;

  // Table VI. VM: 10^5 integer array.
  VectorMultiply::Config vm;
  vm.iterations = 100000;
  suite.push_back(make_case<VectorMultiply>("VM", "Dense linear algebra", vm));

  // CG: 800x800 double matrix, run to convergence.
  ConjugateGradient::Config cg;
  cg.n = 800;
  cg.max_iterations = 0;
  suite.push_back(make_case<ConjugateGradient>("CG", "Sparse linear algebra", cg));

  // NB: 6000 particles.
  BarnesHut::Config nb;
  nb.bodies = 6000;
  suite.push_back(make_case<BarnesHut>("NB", "N-body method", nb));

  // MG: problem class W (scaled to a 64^3 finest grid so the analytical
  // template stays laptop-evaluable; the working set still exceeds every
  // profiling cache, which is what the experiment probes).
  MultiGrid::Config mg;
  mg.dim = 64;
  mg.levels = 4;
  mg.vcycles = 4;
  suite.push_back(make_case<MultiGrid>("MG", "Structured grids", mg));

  // FT: problem class S (the paper reuses class S for profiling).
  Fft1D::Config ft;
  ft.n = 2048;
  suite.push_back(make_case<Fft1D>("FT", "Spectral methods", ft));

  // MC: size = small, 10^5 lookups.
  MonteCarlo::Config mc;
  mc.lookups = 100000;
  suite.push_back(make_case<MonteCarlo>("MC", "Monte Carlo", mc));

  return suite;
}

std::vector<std::unique_ptr<KernelCase>> make_extended_suite() {
  auto suite = make_verification_suite();

  SparseConjugateGradient::Config cgs;
  cgs.n = 2000;
  cgs.offdiag_per_row = 8;
  cgs.max_iterations = 20;
  suite.push_back(make_case<SparseConjugateGradient>(
      "CGS", "Sparse linear algebra (CSR)", cgs));

  TiledMatmul::Config gemm;
  gemm.n = 64;
  gemm.tile = 8;
  suite.push_back(
      make_case<TiledMatmul>("GEMM", "Dense linear algebra (blocked)", gemm));

  return suite;
}

std::vector<SuiteEvaluation> evaluate_suite(
    const std::vector<std::unique_ptr<KernelCase>>& suite,
    const DvfCalculator& calc, unsigned threads) {
  std::vector<SuiteEvaluation> results(suite.size());
  parallel::ThreadPool pool(
      std::min<unsigned>(parallel::resolve_thread_count(threads),
                         std::max<std::size_t>(1, suite.size())));
  parallel::parallel_for(pool, suite.size(), [&](std::uint64_t i) {
    KernelCase& kernel = *suite[i];
    SuiteEvaluation& out = results[i];
    out.kernel = kernel.name();
    out.method = kernel.method_class();
    out.exec_time_seconds = kernel.run_timed();
    ModelSpec spec = kernel.model_spec();
    spec.exec_time_seconds = out.exec_time_seconds;
    out.dvf = calc.for_model(spec);
  });
  return results;
}

}  // namespace dvf::kernels
