#include "dvf/kernels/tiled_matmul.hpp"

#include <cmath>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf::kernels {

TiledMatmul::TiledMatmul(const Config& config)
    : config_(config),
      a_(config.n * config.n),
      b_(config.n * config.n),
      c_(config.n * config.n),
      exact_(config.n * config.n) {
  DVF_CHECK_MSG(config.n >= 2, "tiled matmul: need at least a 2x2 matrix");
  DVF_CHECK_MSG(config.tile >= 1, "tiled matmul: tile edge must be >= 1");
  DVF_CHECK_MSG(config.tile <= config.n,
                "tiled matmul: tile edge exceeds the matrix order");
  DVF_CHECK_MSG(config.n % config.tile == 0,
                "tiled matmul: tile edge must divide the matrix order");
  const std::size_t n = config_.n;

  Xoshiro256 rng(config_.seed);
  for (std::size_t idx = 0; idx < n * n; ++idx) {
    a_[idx] = rng.uniform() - 0.5;
    b_[idx] = rng.uniform() - 0.5;
  }

  // Reference product via the naive nest, in the same per-element k order
  // the blocked nest uses, so a clean run reproduces it bit-for-bit.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        s += a_[i * n + k] * b_[k * n + j];
      }
      exact_[i * n + j] = s;
    }
  }

  a_id_ = registry_.register_structure("A", a_.data(), a_.size_bytes(),
                                       sizeof(double));
  b_id_ = registry_.register_structure("B", b_.data(), b_.size_bytes(),
                                       sizeof(double));
  c_id_ = registry_.register_structure("C", c_.data(), c_.size_bytes(),
                                       sizeof(double));
}

ModelSpec TiledMatmul::model_spec() const {
  const std::uint64_t n = config_.n;
  const std::uint64_t t = config_.tile;
  const std::uint64_t tiles_per_edge = n / t;
  const std::uint64_t matrix_bytes = n * n * sizeof(double);

  ModelSpec spec;
  spec.name = "GEMM";

  // Three equal matrices contend for the cache; each models its share.
  const double share = 1.0 / 3.0;

  const auto tiled_of = [&](std::uint64_t passes, std::uint64_t intra_reuse) {
    TiledSpec s;
    s.element_bytes = sizeof(double);
    s.rows = n;
    s.cols = n;
    s.tile_rows = t;
    s.tile_cols = t;
    s.passes = passes;
    s.intra_reuse = intra_reuse;
    s.cache_ratio = share;
    return s;
  };

  // A: the ii/kk tile grid covers the matrix exactly once (one pass); a
  // hot tile is re-read once per jj tile of the C row being produced.
  {
    DataStructureSpec ds;
    ds.name = "A";
    ds.size_bytes = matrix_bytes;
    ds.patterns.emplace_back(tiled_of(1, tiles_per_edge - 1));
    spec.structures.push_back(std::move(ds));
  }

  // B: fully re-swept for every ii tile row (n/t passes); within one
  // (kk, jj) visit the tile is read once per row of the C tile (t reads).
  {
    DataStructureSpec ds;
    ds.name = "B";
    ds.size_bytes = matrix_bytes;
    ds.patterns.emplace_back(tiled_of(tiles_per_edge, t - 1));
    spec.structures.push_back(std::move(ds));
  }

  // C: an initialization stream, then the accumulator tiles — each (ii, jj)
  // tile revisited once per kk step (n/t passes over the matrix), read once
  // per k within a visit (t reads; the paired stores hit the same lines).
  {
    DataStructureSpec ds;
    ds.name = "C";
    ds.size_bytes = matrix_bytes;
    StreamingSpec init;
    init.element_bytes = sizeof(double);
    init.element_count = n * n;
    init.stride_elements = 1;
    ds.patterns.emplace_back(init);
    ds.patterns.emplace_back(tiled_of(tiles_per_edge, t - 1));
    spec.structures.push_back(std::move(ds));
  }

  return spec;
}

double TiledMatmul::solution_error() const {
  double err = 0.0;
  for (std::size_t idx = 0; idx < config_.n * config_.n; ++idx) {
    err = std::max(err, std::fabs(c_[idx] - exact_[idx]));
  }
  return err;
}

}  // namespace dvf::kernels
