#include "dvf/kernels/vm.hpp"

#include "dvf/common/error.hpp"

namespace dvf::kernels {

VectorMultiply::VectorMultiply(const Config& config)
    : config_(config),
      a_(config.iterations * config.stride_a),
      b_(config.iterations * config.stride_b),
      c_(config.iterations * config.stride_c) {
  DVF_CHECK_MSG(config.iterations > 0, "VM: iteration count must be positive");
  DVF_CHECK_MSG(config.stride_a >= 1 && config.stride_b >= 1 &&
                    config.stride_c >= 1,
                "VM: strides must be at least 1");
  DVF_CHECK_MSG(config.repeats >= 1, "VM: repeats must be at least 1");

  // Deterministic non-trivial contents so tests can checksum the product.
  for (std::size_t i = 0; i < a_.size(); ++i) {
    a_[i] = static_cast<Element>(i % 7 + 1);
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    b_[i] = static_cast<Element>(i % 5 + 1);
  }

  a_id_ = registry_.register_structure("A", a_.data(), a_.size_bytes(),
                                       sizeof(Element));
  b_id_ = registry_.register_structure("B", b_.data(), b_.size_bytes(),
                                       sizeof(Element));
  c_id_ = registry_.register_structure("C", c_.data(), c_.size_bytes(),
                                       sizeof(Element));
}

ModelSpec VectorMultiply::model_spec() const {
  const auto stream = [this](std::uint64_t stride) {
    StreamingSpec s;
    s.element_bytes = sizeof(Element);
    s.element_count = config_.iterations * stride;
    s.stride_elements = stride;
    return s;
  };

  ModelSpec spec;
  spec.name = "VM";
  const auto add = [&](const char* name, std::uint64_t stride,
                       std::uint64_t phases_per_repeat) {
    DataStructureSpec ds;
    ds.name = name;
    ds.size_bytes = config_.iterations * stride * sizeof(Element);
    for (std::uint64_t r = 0; r < config_.repeats * phases_per_repeat; ++r) {
      ds.patterns.emplace_back(stream(stride));
    }
    spec.structures.push_back(std::move(ds));
  };
  add("A", config_.stride_a, 1);
  add("B", config_.stride_b, 1);
  // C is read and written each step; as a streaming phase that is still one
  // traversal of the footprint (the write hits the line the read loaded).
  add("C", config_.stride_c, 1);
  return spec;
}

void VectorMultiply::reset() {
  for (std::size_t i = 0; i < c_.size(); ++i) {
    c_[i] = 0;
  }
}

std::int64_t VectorMultiply::checksum() const {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < c_.size(); ++i) {
    sum += c_[i];
  }
  return sum;
}

}  // namespace dvf::kernels
