#include "dvf/machine/cache_config.hpp"

#include <utility>

#include "dvf/common/error.hpp"

namespace dvf {

namespace {
bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheConfig::CacheConfig(std::string name, std::uint32_t associativity,
                         std::uint32_t num_sets, std::uint32_t line_bytes)
    : name_(std::move(name)),
      associativity_(associativity),
      num_sets_(num_sets),
      line_bytes_(line_bytes) {
  DVF_CHECK_MSG(associativity_ > 0, "cache associativity must be positive");
  DVF_CHECK_MSG(num_sets_ > 0, "cache must have at least one set");
  DVF_CHECK_MSG(is_power_of_two(line_bytes_),
                "cache line length must be a power of two");
}

std::string CacheConfig::describe() const {
  return name_ + " (CA=" + std::to_string(associativity_) +
         ", NA=" + std::to_string(num_sets_) +
         ", CL=" + std::to_string(line_bytes_) +
         "B, Cc=" + std::to_string(capacity_bytes()) + "B)";
}

namespace caches {

CacheConfig small_verification() { return {"small-verification", 4, 64, 32}; }
CacheConfig large_verification() { return {"large-verification", 16, 4096, 64}; }
CacheConfig profiling_16kb() { return {"16KB", 2, 1024, 8}; }
CacheConfig profiling_128kb() { return {"128KB", 4, 2048, 16}; }
CacheConfig profiling_1mb() { return {"1MB", 6, 4096, 32}; }
CacheConfig profiling_8mb() { return {"8MB", 8, 8192, 64}; }

std::vector<CacheConfig> all_profiling() {
  return {profiling_16kb(), profiling_128kb(), profiling_1mb(),
          profiling_8mb()};
}

}  // namespace caches

}  // namespace dvf
