// Last-level-cache description used by both the analytical models and the
// trace-driven simulator (paper Table III / Table IV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dvf/common/units.hpp"

namespace dvf {

/// Geometry of a set-associative cache. Capacity is always derived:
/// Cc = CA * NA * CL. The paper's Table IV labels two profiling caches
/// ("1MB", "8MB") whose stated CA/NA/CL imply smaller capacities; we encode
/// the CA/NA/CL triples verbatim and keep the paper's labels as names — the
/// analytical and simulated sides both see the same derived capacity, so the
/// comparison stays consistent.
class CacheConfig {
 public:
  /// Throws InvalidArgumentError unless all fields are positive and the line
  /// length is a power of two (block math uses it as an address divisor).
  CacheConfig(std::string name, std::uint32_t associativity,
              std::uint32_t num_sets, std::uint32_t line_bytes);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// CA — ways per set.
  [[nodiscard]] std::uint32_t associativity() const noexcept { return associativity_; }
  /// NA — number of sets.
  [[nodiscard]] std::uint32_t num_sets() const noexcept { return num_sets_; }
  /// CL — line length in bytes.
  [[nodiscard]] std::uint32_t line_bytes() const noexcept { return line_bytes_; }
  /// Cc — total capacity in bytes.
  [[nodiscard]] Byte capacity_bytes() const noexcept {
    return static_cast<Byte>(associativity_) * num_sets_ * line_bytes_;
  }
  /// Total number of cache blocks (CA * NA).
  [[nodiscard]] std::uint64_t total_blocks() const noexcept {
    return static_cast<std::uint64_t>(associativity_) * num_sets_;
  }

  /// Set index of a byte address.
  [[nodiscard]] std::uint64_t set_of(std::uint64_t address) const noexcept {
    return (address / line_bytes_) % num_sets_;
  }
  /// Block (line) number of a byte address.
  [[nodiscard]] std::uint64_t block_of(std::uint64_t address) const noexcept {
    return address / line_bytes_;
  }

  [[nodiscard]] std::string describe() const;

 private:
  std::string name_;
  std::uint32_t associativity_;
  std::uint32_t num_sets_;
  std::uint32_t line_bytes_;
};

/// The paper's named cache configurations (Table IV).
namespace caches {
/// Verification: 4-way, 64 sets, 32 B lines — 8 KiB.
[[nodiscard]] CacheConfig small_verification();
/// Verification: 16-way, 4096 sets, 64 B lines — 4 MiB.
[[nodiscard]] CacheConfig large_verification();
/// Profiling: 2-way, 1024 sets, 8 B lines — 16 KiB.
[[nodiscard]] CacheConfig profiling_16kb();
/// Profiling: 4-way, 2048 sets, 16 B lines — 128 KiB.
[[nodiscard]] CacheConfig profiling_128kb();
/// Profiling: 6-way, 4096 sets, 32 B lines (paper label "1MB").
[[nodiscard]] CacheConfig profiling_1mb();
/// Profiling: 8-way, 8192 sets, 64 B lines (paper label "8MB").
[[nodiscard]] CacheConfig profiling_8mb();
/// The four profiling caches in Table IV order.
[[nodiscard]] std::vector<CacheConfig> all_profiling();
}  // namespace caches

}  // namespace dvf
