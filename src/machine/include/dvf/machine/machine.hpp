// A machine model: the composition the DVF calculator consumes.
#pragma once

#include <string>
#include <utility>

#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/memory_model.hpp"

namespace dvf {

/// The abstract machine the resilience models evaluate against: a last-level
/// cache (which shapes N_ha) and a main-memory failure model (which shapes
/// N_error). Mirrors the paper's scope — main memory only; other components
/// (register file, NIC) would slot in as further fields.
struct Machine {
  std::string name;
  CacheConfig llc;
  MemoryModel memory;

  Machine(std::string machine_name, CacheConfig cache, MemoryModel mem)
      : name(std::move(machine_name)),
        llc(std::move(cache)),
        memory(mem) {}

  /// Paper default: unprotected DRAM behind the given LLC.
  static Machine with_cache(CacheConfig cache) {
    std::string n = "machine-" + cache.name();
    return {std::move(n), std::move(cache), MemoryModel::with_ecc(EccScheme::kNone)};
  }
};

}  // namespace dvf
