// Main-memory failure model: raw FIT rates and the ECC schemes of the
// paper's Table VII, plus the protection-coverage model used for the
// Fig. 7 performance/resilience trade-off.
#pragma once

#include <string>

namespace dvf {

/// ECC protection schemes evaluated in §V-B (Table VII).
enum class EccScheme {
  kNone,      ///< unprotected DRAM
  kSecDed,    ///< single-error-correct / double-error-detect
  kChipkill,  ///< chipkill-correct
};

/// FIT rate (failures / 1e9 hours / Mbit) for a scheme — Table VII values.
[[nodiscard]] double fit_rate(EccScheme scheme) noexcept;

/// Human-readable scheme name for reports.
[[nodiscard]] std::string to_string(EccScheme scheme);

/// Parses "none" / "secded" / "chipkill" (case-sensitive, as the DSL emits).
/// Throws InvalidArgumentError on anything else.
[[nodiscard]] EccScheme ecc_from_string(const std::string& text);

/// Memory failure model attached to a machine. `fit` may be any positive
/// rate, allowing the DSL to model hypothetical devices; the presets mirror
/// Table VII.
class MemoryModel {
 public:
  explicit MemoryModel(double fit);
  static MemoryModel with_ecc(EccScheme scheme) {
    return MemoryModel(fit_rate(scheme));
  }

  [[nodiscard]] double fit() const noexcept { return fit_; }

 private:
  double fit_;
};

/// A machine, as the models see it: one LLC plus a memory failure model.
struct Machine;

}  // namespace dvf
