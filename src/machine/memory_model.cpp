#include "dvf/machine/memory_model.hpp"

#include "dvf/common/error.hpp"

namespace dvf {

double fit_rate(EccScheme scheme) noexcept {
  // Table VII: error rate with ECC in place, FIT / Mbit.
  switch (scheme) {
    case EccScheme::kNone:
      return 5000.0;
    case EccScheme::kSecDed:
      return 1300.0;
    case EccScheme::kChipkill:
      return 0.02;
  }
  return 5000.0;  // unreachable; keeps -Wreturn-type quiet
}

std::string to_string(EccScheme scheme) {
  switch (scheme) {
    case EccScheme::kNone:
      return "none";
    case EccScheme::kSecDed:
      return "secded";
    case EccScheme::kChipkill:
      return "chipkill";
  }
  return "none";
}

EccScheme ecc_from_string(const std::string& text) {
  if (text == "none") {
    return EccScheme::kNone;
  }
  if (text == "secded") {
    return EccScheme::kSecDed;
  }
  if (text == "chipkill") {
    return EccScheme::kChipkill;
  }
  throw InvalidArgumentError("unknown ECC scheme: '" + text +
                             "' (expected none|secded|chipkill)");
}

MemoryModel::MemoryModel(double fit) : fit_(fit) {
  DVF_CHECK_MSG(fit > 0.0, "FIT rate must be positive");
}

}  // namespace dvf
