// Observability layer: thread-aware scoped spans plus named counters,
// gauges and histograms, all behind one global enable switch.
//
// Design rules (docs/observability.md):
//  - **Off means a branch.** Every hook first reads one relaxed atomic
//    flag; when the layer is disabled no clock is read, no shard is
//    allocated and no memory is touched beyond that load. The cache
//    simulator, the DSL front end and the campaign engine are instrumented
//    at call granularity (never per memory reference), so the disabled
//    path costs ≤ 2% of BENCH_cachesim throughput (pinned by
//    bench/obs_overhead and bench/cachesim_throughput).
//  - **Metrics are sharded per thread and lock-free.** A counter increment
//    or histogram observation is one relaxed atomic add in a per-thread
//    shard; shards are only summed at report time (snapshot_metrics).
//    Gauges are low-frequency last-write-wins cells, one atomic store.
//  - **Spans nest.** ScopedSpan is RAII; each span records its own id, its
//    parent's id and its nesting depth (1 = top level) on the recording
//    thread, so the exported Chrome trace (dvf/obs/trace_export.hpp)
//    reconstructs the call tree exactly.
//  - **Names are string literals.** Span and metric names must outlive the
//    process (the registry stores `const char*` for spans and interns
//    metric names once at registration).
//
// This library sits directly above dvf_common in the layer map
// (docs/architecture.md): every other module may depend on it, it depends
// on nothing but the standard library and dvf_report (for the summary
// table).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dvf::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when the observability layer records anything. The single branch
/// every hook is gated on.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on or off process-wide. Metric registrations survive
/// either way; only recording is gated.
void set_enabled(bool on) noexcept;

/// Zeroes every metric value and drops every recorded span. Registered
/// metric handles stay valid (registration is permanent); the span id
/// counter restarts. Intended for tests and long-lived embedders.
void reset();

/// Drops every recorded span but keeps all metric values and the span id
/// counter. Long-lived processes (the `dvfc serve` daemon) call this
/// periodically so span storage stays bounded while counters keep
/// accumulating across the process lifetime.
void drop_spans();

/// Nanoseconds since the process-wide observability epoch (fixed on first
/// use; steady clock).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Small dense id of the calling thread (assigned on first recording use;
/// the main thread is usually 0). Exported as the Chrome-trace tid.
[[nodiscard]] unsigned thread_id();

/// Names the calling thread in the exported trace ("pool-worker-3"). No-op
/// while disabled.
void set_thread_name(std::string name);

// ---------------------------------------------------------------------------
// Metrics. Handles are cheap value types; register once (cold path, takes a
// lock), then record through the handle (lock-free).

class Counter {
 public:
  Counter() = default;
  /// Adds `n`; one relaxed atomic add in the calling thread's shard.
  void add(std::uint64_t n = 1) const noexcept;

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = UINT32_MAX;
};

class Gauge {
 public:
  Gauge() = default;
  /// Stores the instantaneous value (last write process-wide wins).
  void set(double value) const noexcept;

 private:
  friend Gauge gauge(std::string_view name);
  explicit Gauge(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = UINT32_MAX;
};

/// Power-of-two histogram: bucket 0 holds the value 0 and bucket i ≥ 1
/// holds values in [2^(i-1), 2^i - 1] — i.e. bucket_of(v) = bit_width(v).
/// The boundaries are fixed by construction (tests pin them), so shards
/// merge by plain bucket-wise addition.
class Histogram {
 public:
  static constexpr std::uint32_t kBuckets = 65;  ///< bit_width range [0,64]

  Histogram() = default;
  void record(std::uint64_t value) const noexcept;

  /// The bucket a value lands in: std::bit_width(value).
  [[nodiscard]] static std::uint32_t bucket_of(std::uint64_t value) noexcept;
  /// Inclusive upper bound of a bucket (0, 1, 3, 7, ..., UINT64_MAX).
  [[nodiscard]] static std::uint64_t bucket_upper_bound(
      std::uint32_t bucket) noexcept;

 private:
  friend Histogram histogram(std::string_view name);
  explicit Histogram(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = UINT32_MAX;
};

/// Registers (or finds) the named metric. Idempotent: the same name always
/// yields a handle to the same slot. Throws dvf::Error when the fixed slot
/// capacity is exhausted.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name);

// ---------------------------------------------------------------------------
// Spans.

/// RAII scoped span. Constructing while enabled opens a span on the calling
/// thread; destruction closes and records it. `name` must be a string
/// literal (or otherwise outlive the process).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// One completed span as recorded.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t id = 0;      ///< unique per process run
  std::uint64_t parent = 0;  ///< id of the enclosing span; 0 = top level
  std::uint32_t depth = 0;   ///< 1 = top level
  std::uint32_t tid = 0;     ///< recording thread (obs::thread_id)
};

// ---------------------------------------------------------------------------
// Reporting.

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;  ///< total observations
  std::uint64_t sum = 0;    ///< sum of observed values
  /// Non-empty buckets as (inclusive upper bound, count), ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Aggregated view over every shard, names sorted alphabetically.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Every completed span so far, ordered by start time.
[[nodiscard]] std::vector<SpanRecord> snapshot_spans();

/// Names of the recording threads, indexed by tid ("" when unnamed).
[[nodiscard]] std::vector<std::string> thread_names();

/// The snapshot as one line of JSON:
/// {"counters":{...},"gauges":{...},"histograms":{"n":{"count":..,"sum":..,
/// "buckets":[{"le":..,"count":..},...]}}}
[[nodiscard]] std::string render_metrics_json(const MetricsSnapshot& snapshot);

/// Human-readable end-of-run summary: counters, gauges, histogram
/// quantile-ish bucket lines, and per-name span aggregates (count, total
/// and self time).
[[nodiscard]] std::string render_summary(
    const MetricsSnapshot& snapshot, const std::vector<SpanRecord>& spans);

}  // namespace dvf::obs
