// Chrome trace-event export for the observability layer: serializes the
// recorded spans (plus final counter samples) into the JSON Trace Event
// Format that chrome://tracing and Perfetto load directly.
//
// Schema (docs/observability.md): one top-level object with
//   displayTimeUnit  "ns"
//   traceEvents      array of events
// where every span becomes a complete ("ph":"X") event with ts/dur in
// fractional microseconds and args {"id","parent","depth"}, each counter a
// final counter ("ph":"C") sample, and process/thread names metadata
// ("ph":"M") events.
#pragma once

#include <string>
#include <vector>

#include "dvf/obs/obs.hpp"

namespace dvf::obs {

/// Renders spans + metrics into a Chrome trace-event JSON document.
[[nodiscard]] std::string render_chrome_trace(
    const std::vector<SpanRecord>& spans, const MetricsSnapshot& metrics,
    const std::vector<std::string>& thread_names,
    const std::string& process_name = "dvf");

/// Snapshots the registry and writes the trace to `path`. Throws dvf::Error
/// when the file cannot be written.
void write_chrome_trace(const std::string& path,
                        const std::string& process_name = "dvf");

}  // namespace dvf::obs
