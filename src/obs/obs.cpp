#include "dvf/obs/obs.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "dvf/common/error.hpp"
#include "dvf/common/failpoint.hpp"
#include "dvf/report/table.hpp"

namespace dvf::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

constexpr std::uint32_t kMaxCounters = 256;
constexpr std::uint32_t kMaxGauges = 64;
constexpr std::uint32_t kMaxHistograms = 64;

/// Per-thread metric shard. Only the owning thread writes the atomic cells
/// (relaxed adds); aggregation reads them concurrently, which is exactly
/// what the atomics are for. The span vector is guarded by a mutex that is
/// uncontended in steady state (the owner appends, snapshots read rarely).
struct Shard {
  explicit Shard(unsigned thread_id) : tid(thread_id) {}

  const unsigned tid;
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::array<std::atomic<std::uint64_t>, Histogram::kBuckets>,
             kMaxHistograms>
      hist_buckets{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_sums{};

  /// Open-span stack (ids). Owner-thread only; never read by snapshots.
  std::vector<std::uint64_t> open;

  std::mutex spans_mutex;
  std::vector<SpanRecord> spans;  ///< guarded by spans_mutex
  std::string name;               ///< guarded by spans_mutex
};

struct Registry {
  std::atomic<std::uint64_t> next_span_id{1};

  std::mutex mutex;  ///< guards registration state below
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  std::array<std::atomic<double>, kMaxGauges> gauge_cells{};
  std::array<std::atomic<bool>, kMaxGauges> gauge_set{};
  std::vector<std::unique_ptr<Shard>> shards;
};

/// Leaky singleton: worker threads (e.g. the global thread pool's) may
/// record past static destruction, so the registry is never destroyed.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

thread_local Shard* t_shard = nullptr;

Shard& shard() {
  if (t_shard == nullptr) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.shards.push_back(
        std::make_unique<Shard>(static_cast<unsigned>(reg.shards.size())));
    t_shard = reg.shards.back().get();
  }
  return *t_shard;
}

std::uint32_t register_name(std::vector<std::string>& names,
                            std::string_view name, std::uint32_t capacity,
                            const char* kind) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      return i;
    }
  }
  if (names.size() >= capacity) {
    throw Error(std::string("obs: ") + kind + " slot capacity (" +
                std::to_string(capacity) + ") exhausted registering '" +
                std::string(name) + "'");
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(12);
  out << value;
  return out.str();
}

}  // namespace

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

unsigned thread_id() { return shard().tid; }

void set_thread_name(std::string name) {
  if (!enabled()) {
    return;
  }
  Shard& sh = shard();
  const std::lock_guard<std::mutex> lock(sh.spans_mutex);
  sh.name = std::move(name);
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& sh : reg.shards) {
    for (auto& cell : sh->counters) {
      cell.store(0, std::memory_order_relaxed);
    }
    for (auto& buckets : sh->hist_buckets) {
      for (auto& cell : buckets) {
        cell.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& cell : sh->hist_sums) {
      cell.store(0, std::memory_order_relaxed);
    }
    const std::lock_guard<std::mutex> span_lock(sh->spans_mutex);
    sh->spans.clear();
  }
  for (auto& cell : reg.gauge_set) {
    cell.store(false, std::memory_order_relaxed);
  }
  reg.next_span_id.store(1, std::memory_order_relaxed);
}

void drop_spans() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& sh : reg.shards) {
    const std::lock_guard<std::mutex> span_lock(sh->spans_mutex);
    sh->spans.clear();
    sh->spans.shrink_to_fit();  // bound the daemon's steady-state footprint
  }
}

// --------------------------------------------------------------------------
// Metric handles.

Counter counter(std::string_view name) {
  return Counter(register_name(registry().counter_names, name, kMaxCounters,
                               "counter"));
}

Gauge gauge(std::string_view name) {
  return Gauge(
      register_name(registry().gauge_names, name, kMaxGauges, "gauge"));
}

Histogram histogram(std::string_view name) {
  return Histogram(register_name(registry().hist_names, name, kMaxHistograms,
                                 "histogram"));
}

void Counter::add(std::uint64_t n) const noexcept {
  if (!enabled() || slot_ == UINT32_MAX) {
    return;
  }
  shard().counters[slot_].fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double value) const noexcept {
  if (!enabled() || slot_ == UINT32_MAX) {
    return;
  }
  Registry& reg = registry();
  reg.gauge_cells[slot_].store(value, std::memory_order_relaxed);
  reg.gauge_set[slot_].store(true, std::memory_order_relaxed);
}

std::uint32_t Histogram::bucket_of(std::uint64_t value) noexcept {
  return static_cast<std::uint32_t>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_upper_bound(std::uint32_t bucket) noexcept {
  if (bucket == 0) {
    return 0;
  }
  if (bucket >= 64) {
    return UINT64_MAX;
  }
  return (std::uint64_t{1} << bucket) - 1;
}

void Histogram::record(std::uint64_t value) const noexcept {
  if (!enabled() || slot_ == UINT32_MAX) {
    return;
  }
  Shard& sh = shard();
  sh.hist_buckets[slot_][bucket_of(value)].fetch_add(
      1, std::memory_order_relaxed);
  sh.hist_sums[slot_].fetch_add(value, std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// Spans.

ScopedSpan::ScopedSpan(const char* name) noexcept {
  if (!enabled()) {
    return;
  }
  Shard& sh = shard();
  id_ = registry().next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = sh.open.empty() ? 0 : sh.open.back();
  sh.open.push_back(id_);
  depth_ = static_cast<std::uint32_t>(sh.open.size());
  name_ = name;
  start_ns_ = now_ns();
  active_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) {
    return;
  }
  const std::uint64_t end = now_ns();
  Shard& sh = shard();
  sh.open.pop_back();
  const std::lock_guard<std::mutex> lock(sh.spans_mutex);
  sh.spans.push_back({name_, start_ns_, end, id_, parent_, depth_, sh.tid});
}

// --------------------------------------------------------------------------
// Snapshots and rendering.

MetricsSnapshot snapshot_metrics() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);

  MetricsSnapshot snapshot;
  for (std::uint32_t i = 0; i < reg.counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& sh : reg.shards) {
      total += sh->counters[i].load(std::memory_order_relaxed);
    }
    snapshot.counters.emplace_back(reg.counter_names[i], total);
  }
  for (std::uint32_t i = 0; i < reg.gauge_names.size(); ++i) {
    if (reg.gauge_set[i].load(std::memory_order_relaxed)) {
      snapshot.gauges.emplace_back(
          reg.gauge_names[i],
          reg.gauge_cells[i].load(std::memory_order_relaxed));
    }
  }
  for (std::uint32_t i = 0; i < reg.hist_names.size(); ++i) {
    HistogramSnapshot hist;
    hist.name = reg.hist_names[i];
    std::array<std::uint64_t, Histogram::kBuckets> merged{};
    for (const auto& sh : reg.shards) {
      for (std::uint32_t b = 0; b < Histogram::kBuckets; ++b) {
        merged[b] += sh->hist_buckets[i][b].load(std::memory_order_relaxed);
      }
      hist.sum += sh->hist_sums[i].load(std::memory_order_relaxed);
    }
    for (std::uint32_t b = 0; b < Histogram::kBuckets; ++b) {
      if (merged[b] != 0) {
        hist.buckets.emplace_back(Histogram::bucket_upper_bound(b),
                                  merged[b]);
        hist.count += merged[b];
      }
    }
    snapshot.histograms.push_back(std::move(hist));
  }

  // Failpoint hit counters ride along under a reserved prefix, so an active
  // injection schedule is visible wherever metrics are: the serve metrics
  // op, --metrics[=json], and the Chrome trace's counter samples.
  for (const failpoint::HitCount& fp : failpoint::hit_counts()) {
    snapshot.counters.emplace_back("failpoint." + fp.name + ".hits", fp.hits);
    snapshot.counters.emplace_back("failpoint." + fp.name + ".fired",
                                   fp.fired);
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snapshot;
}

std::vector<SpanRecord> snapshot_spans() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<SpanRecord> all;
  for (const auto& sh : reg.shards) {
    const std::lock_guard<std::mutex> span_lock(sh->spans_mutex);
    all.insert(all.end(), sh->spans.begin(), sh->spans.end());
  }
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return all;
}

std::vector<std::string> thread_names() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names(reg.shards.size());
  for (const auto& sh : reg.shards) {
    const std::lock_guard<std::mutex> span_lock(sh->spans_mutex);
    names[sh->tid] = sh->name;
  }
  return names;
}

std::string render_metrics_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "" : ", ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "" : ", ";
    first = false;
    append_json_string(out, name);
    out += ": " + format_double(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    out += first ? "" : ", ";
    first = false;
    append_json_string(out, hist.name);
    out += ": {\"count\": " + std::to_string(hist.count) +
           ", \"sum\": " + std::to_string(hist.sum) + ", \"buckets\": [";
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      out += b == 0 ? "" : ", ";
      out += "{\"le\": " + std::to_string(hist.buckets[b].first) +
             ", \"count\": " + std::to_string(hist.buckets[b].second) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string render_summary(const MetricsSnapshot& snapshot,
                           const std::vector<SpanRecord>& spans) {
  std::ostringstream out;

  if (!spans.empty()) {
    // Per-name aggregates; self time subtracts the directly nested spans.
    std::unordered_map<std::uint64_t, std::uint64_t> child_ns;
    for (const SpanRecord& span : spans) {
      if (span.parent != 0) {
        child_ns[span.parent] += span.end_ns - span.start_ns;
      }
    }
    struct Agg {
      std::uint64_t count = 0;
      std::uint64_t total_ns = 0;
      std::uint64_t self_ns = 0;
    };
    std::map<std::string, Agg> by_name;
    for (const SpanRecord& span : spans) {
      Agg& agg = by_name[span.name];
      const std::uint64_t dur = span.end_ns - span.start_ns;
      const auto nested = child_ns.find(span.id);
      ++agg.count;
      agg.total_ns += dur;
      agg.self_ns += dur - std::min(
          dur, nested == child_ns.end() ? 0 : nested->second);
    }
    Table table({"span", "count", "total_ms", "self_ms"});
    for (const auto& [name, agg] : by_name) {
      table.add_row({name, std::to_string(agg.count),
                     num(static_cast<double>(agg.total_ns) / 1e6, 4),
                     num(static_cast<double>(agg.self_ns) / 1e6, 4)});
    }
    out << "spans (" << spans.size() << " recorded)\n" << table.to_text();
  }

  if (!snapshot.counters.empty()) {
    Table table({"counter", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      table.add_row({name, std::to_string(value)});
    }
    out << "counters\n" << table.to_text();
  }

  if (!snapshot.gauges.empty()) {
    Table table({"gauge", "value"});
    for (const auto& [name, value] : snapshot.gauges) {
      table.add_row({name, num(value)});
    }
    out << "gauges\n" << table.to_text();
  }

  if (!snapshot.histograms.empty()) {
    Table table({"histogram", "count", "mean", "p_max_le"});
    for (const HistogramSnapshot& hist : snapshot.histograms) {
      const double mean =
          hist.count == 0
              ? 0.0
              : static_cast<double>(hist.sum) / static_cast<double>(hist.count);
      const std::uint64_t max_le =
          hist.buckets.empty() ? 0 : hist.buckets.back().first;
      table.add_row({hist.name, std::to_string(hist.count), num(mean),
                     std::to_string(max_le)});
    }
    out << "histograms\n" << table.to_text();
  }

  return out.str();
}

}  // namespace dvf::obs
