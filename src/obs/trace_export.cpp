#include "dvf/obs/trace_export.hpp"

#include <cstdio>

#include "dvf/common/error.hpp"
#include "dvf/common/failpoint.hpp"
#include "dvf/common/robust_io.hpp"

namespace dvf::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// ts/dur are microseconds in the trace-event format; keep nanosecond
/// precision as a fixed three-decimal fraction.
std::string micros(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

}  // namespace

std::string render_chrome_trace(const std::vector<SpanRecord>& spans,
                                const MetricsSnapshot& metrics,
                                const std::vector<std::string>& thread_names,
                                const std::string& process_name) {
  std::string out = "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& event) {
    out += first ? "  " : ",\n  ";
    first = false;
    out += event;
  };

  {
    std::string meta =
        "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, "
        "\"args\": {\"name\": ";
    append_escaped(meta, process_name);
    meta += "}}";
    emit(meta);
  }
  for (std::size_t tid = 0; tid < thread_names.size(); ++tid) {
    if (thread_names[tid].empty() && tid != 0) {
      continue;
    }
    std::string meta = "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                       "\"tid\": " + std::to_string(tid) + ", \"args\": "
                       "{\"name\": ";
    append_escaped(meta,
                   thread_names[tid].empty() ? "main" : thread_names[tid]);
    meta += "}}";
    emit(meta);
  }

  std::uint64_t last_ns = 0;
  for (const SpanRecord& span : spans) {
    last_ns = std::max(last_ns, span.end_ns);
    std::string event = "{\"ph\": \"X\", \"name\": ";
    append_escaped(event, span.name);
    event += ", \"cat\": \"dvf\", \"pid\": 1, \"tid\": " +
             std::to_string(span.tid) + ", \"ts\": " + micros(span.start_ns) +
             ", \"dur\": " + micros(span.end_ns - span.start_ns) +
             ", \"args\": {\"id\": " + std::to_string(span.id) +
             ", \"parent\": " + std::to_string(span.parent) +
             ", \"depth\": " + std::to_string(span.depth) + "}}";
    emit(event);
  }

  // Final counter samples, so the totals are visible on the trace timeline.
  for (const auto& [name, value] : metrics.counters) {
    std::string event = "{\"ph\": \"C\", \"name\": ";
    append_escaped(event, name);
    event += ", \"pid\": 1, \"tid\": 0, \"ts\": " + micros(last_ns) +
             ", \"args\": {\"value\": " + std::to_string(value) + "}}";
    emit(event);
  }

  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::string& process_name) {
  const std::string rendered = render_chrome_trace(
      snapshot_spans(), snapshot_metrics(), thread_names(), process_name);
  if (auto fp = DVF_FAILPOINT("obs.trace.write")) {
    throw Error(io::errno_message(
        "obs: error writing trace file " + path + " (injected)",
        fp.error_code));
  }
  // Atomic write-temp-then-rename: an export interrupted by a crash or a
  // full disk leaves either the old artifact or the complete new one.
  auto written = io::write_file_atomic(path, rendered);
  if (!written.ok()) {
    throw Error("obs: error writing trace file: " +
                written.error().describe());
  }
}

}  // namespace dvf::obs
