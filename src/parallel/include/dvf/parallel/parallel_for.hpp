// parallel_for / parallel_reduce on top of ThreadPool.
//
// Determinism contract: both helpers produce results that depend only on
// the index space and the grain — never on the thread count or on which
// thread ran which chunk. parallel_reduce achieves this by reducing fixed,
// grain-sized chunk partials in chunk order, so even non-associative
// combines (floating-point sums) are bit-identical across thread counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "dvf/parallel/thread_pool.hpp"

namespace dvf::parallel {

/// Runs body(index) — or body(index, slot) — for every index in
/// [0, count) on `pool`. Order across threads is unspecified; with a
/// 1-slot pool the indices run in ascending order on the caller.
template <typename Body>
void parallel_for(ThreadPool& pool, std::uint64_t count, Body&& body,
                  std::uint64_t grain = 1) {
  const std::function<void(std::uint64_t, unsigned)> wrapped =
      [&body](std::uint64_t index, unsigned slot) {
        if constexpr (std::is_invocable_v<Body&, std::uint64_t, unsigned>) {
          body(index, slot);
        } else {
          body(index);
        }
      };
  pool.for_each(count, grain, wrapped);
}

/// Maps every index in [0, count) through `map` and folds the results with
/// `combine`, starting from `identity` (which must be the combine's neutral
/// element). Chunks of `grain` indices are folded serially and the chunk
/// partials are folded in ascending chunk order, so the result is
/// bit-identical for any thread count as long as `grain` is unchanged.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::uint64_t count,
                                T identity, Map&& map, Combine&& combine,
                                std::uint64_t grain = 64) {
  if (count == 0) {
    return identity;
  }
  if (grain == 0) {
    grain = 1;
  }
  const std::uint64_t chunks = (count + grain - 1) / grain;
  std::vector<T> partials(static_cast<std::size_t>(chunks), identity);
  parallel_for(
      pool, chunks,
      [&](std::uint64_t chunk) {
        const std::uint64_t begin = chunk * grain;
        const std::uint64_t end = std::min(begin + grain, count);
        T acc = identity;
        for (std::uint64_t index = begin; index < end; ++index) {
          acc = combine(std::move(acc), map(index));
        }
        partials[static_cast<std::size_t>(chunk)] = std::move(acc);
      },
      /*grain=*/1);
  T result = std::move(partials.front());
  for (std::size_t chunk = 1; chunk < partials.size(); ++chunk) {
    result = combine(std::move(result), std::move(partials[chunk]));
  }
  return result;
}

}  // namespace dvf::parallel
