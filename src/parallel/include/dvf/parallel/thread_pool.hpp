// Reusable parallel-execution layer: a persistent thread pool with chunked
// self-scheduling (work-stealing-ish dynamic load balance without per-task
// allocation) plus deterministic parallel_for / parallel_reduce helpers.
//
// Design rules the rest of the codebase relies on:
//  - The calling thread always participates as slot 0, so ThreadPool(1)
//    spawns no threads and degenerates to a plain serial loop — the serial
//    reference order IS the 1-slot schedule.
//  - Work is identified by index, never by thread: any state a task derives
//    (RNG streams, output slots) must come from the index, which is what
//    makes results bit-identical regardless of how many threads run them.
//  - `slot` arguments index per-worker scratch (e.g. per-thread kernel
//    instances); slots never exceed concurrency() and no two tasks share a
//    slot concurrently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dvf::parallel {

/// Worker count used when a caller passes `threads == 0`: the DVF_THREADS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (minimum 1).
[[nodiscard]] unsigned default_thread_count();

/// Resolves a user-supplied thread count: 0 → default_thread_count().
[[nodiscard]] inline unsigned resolve_thread_count(unsigned threads) {
  return threads == 0 ? default_thread_count() : threads;
}

class ThreadPool {
 public:
  /// A pool with `threads` execution slots (0 → default_thread_count()).
  /// Slot 0 is the calling thread, so `threads - 1` workers are spawned.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution slots (worker threads + the calling thread).
  [[nodiscard]] unsigned concurrency() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs body(index, slot) for every index in [0, count), distributing
  /// `grain`-sized chunks to whichever slot is free. Blocks until all
  /// indices ran; rethrows the first task exception. Concurrent calls from
  /// different threads serialize against each other; calling for_each on
  /// the SAME pool from inside one of its own bodies deadlocks (use a
  /// second pool for nested parallelism).
  void for_each(std::uint64_t count, std::uint64_t grain,
                const std::function<void(std::uint64_t index, unsigned slot)>&
                    body);

  /// Shared process-wide pool sized by default_thread_count() on first use.
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop(unsigned slot);
  void run_chunks(unsigned slot);

  std::vector<std::thread> workers_;

  std::mutex run_mutex_;  ///< serializes whole for_each invocations
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::uint64_t generation_ = 0;  ///< bumped per for_each to wake workers
  unsigned busy_ = 0;             ///< workers still inside the current job
  bool shutdown_ = false;

  // Current job (valid while a for_each is in flight).
  const std::function<void(std::uint64_t, unsigned)>* body_ = nullptr;
  std::uint64_t count_ = 0;
  std::uint64_t grain_ = 1;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> cancelled_{false};
  std::exception_ptr first_error_;
};

}  // namespace dvf::parallel
