#include "dvf/parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <system_error>

#include "dvf/common/failpoint.hpp"
#include "dvf/obs/obs.hpp"

namespace dvf::parallel {

unsigned default_thread_count() {
  if (const char* env = std::getenv("DVF_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<unsigned>(parsed);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned slots = resolve_thread_count(threads);
  workers_.reserve(slots - 1);
  for (unsigned slot = 1; slot < slots; ++slot) {
    // Spawn failure (EAGAIN under thread-limit pressure, or the pool.spawn
    // failpoint) degrades the pool to the workers that did start — slot 0 is
    // always the caller, so the pool still makes progress — instead of
    // propagating std::system_error out of a constructor mid-fleet.
    try {
      if (DVF_FAILPOINT("pool.spawn")) {
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "injected thread-spawn failure");
      }
      workers_.emplace_back([this, slot] { worker_loop(slot); });
    } catch (const std::system_error& error) {
      std::fprintf(stderr,
                   "dvf: warning: thread pool degraded to %u of %u slots "
                   "(%s)\n",
                   slot, slots, error.what());
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(unsigned slot) {
  std::uint64_t seen_generation = 0;
  bool named = false;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
    }
    if (obs::enabled() && !named) {
      obs::set_thread_name("pool-worker-" + std::to_string(slot));
      named = true;
    }
    {
      const obs::ScopedSpan span("pool.worker");
      run_chunks(slot);
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --busy_;
    }
    work_done_.notify_one();
  }
}

void ThreadPool::run_chunks(unsigned slot) {
  for (;;) {
    const std::uint64_t begin = next_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= count_ || cancelled_.load(std::memory_order_relaxed)) {
      return;
    }
    const std::uint64_t end = std::min(begin + grain_, count_);
    try {
      for (std::uint64_t index = begin; index < end; ++index) {
        (*body_)(index, slot);
      }
    } catch (...) {
      cancelled_.store(true, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
      return;
    }
  }
}

void ThreadPool::for_each(
    std::uint64_t count, std::uint64_t grain,
    const std::function<void(std::uint64_t, unsigned)>& body) {
  if (count == 0) {
    return;
  }
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  const obs::ScopedSpan job_span("pool.for_each");
  if (obs::enabled()) {
    static const obs::Counter jobs = obs::counter("pool.jobs");
    static const obs::Gauge depth = obs::gauge("pool.queue_depth");
    static const obs::Gauge slots = obs::gauge("pool.slots");
    jobs.add();
    depth.set(static_cast<double>(count));
    slots.set(static_cast<double>(concurrency()));
  }
  grain_ = std::max<std::uint64_t>(1, grain);
  count_ = count;
  body_ = &body;
  next_.store(0, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    busy_ = static_cast<unsigned>(workers_.size());
  }
  work_ready_.notify_all();

  run_chunks(/*slot=*/0);  // the caller participates

  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return busy_ == 0; });
  }
  body_ = nullptr;
  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
}

}  // namespace dvf::parallel
