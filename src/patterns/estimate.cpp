#include "dvf/patterns/estimate.hpp"

#include <variant>

#include "dvf/common/math.hpp"

namespace dvf {

char pattern_letter(const PatternSpec& spec) noexcept {
  return std::visit(
      [](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, StreamingSpec>) {
          return 's';
        } else if constexpr (std::is_same_v<T, RandomSpec>) {
          return 'r';
        } else if constexpr (std::is_same_v<T, TemplateSpec>) {
          return 't';
        } else {
          return 'u';
        }
      },
      spec);
}

double estimate_accesses(const PatternSpec& spec, const CacheConfig& cache) {
  return std::visit(
      [&cache](const auto& s) -> double {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, StreamingSpec>) {
          return estimate_streaming(s, cache);
        } else if constexpr (std::is_same_v<T, RandomSpec>) {
          return estimate_random(s, cache);
        } else if constexpr (std::is_same_v<T, TemplateSpec>) {
          return estimate_template(s, cache);
        } else {
          return estimate_reuse(s, cache);
        }
      },
      spec);
}

double estimate_accesses(std::span<const PatternSpec> phases,
                         const CacheConfig& cache) {
  math::KahanSum sum;
  for (const PatternSpec& phase : phases) {
    sum.add(estimate_accesses(phase, cache));
  }
  return sum.value();
}

}  // namespace dvf
