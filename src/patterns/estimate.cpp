#include "dvf/patterns/estimate.hpp"

#include <new>
#include <string>
#include <variant>

#include "dvf/common/math.hpp"

namespace dvf {

char pattern_letter(const PatternSpec& spec) noexcept {
  return std::visit(
      [](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, StreamingSpec>) {
          return 's';
        } else if constexpr (std::is_same_v<T, RandomSpec>) {
          return 'r';
        } else if constexpr (std::is_same_v<T, TemplateSpec>) {
          return 't';
        } else if constexpr (std::is_same_v<T, TiledSpec>) {
          return 'b';
        } else {
          return 'u';
        }
      },
      spec);
}

Result<double> try_estimate_accesses(const PatternSpec& spec,
                                     const CacheConfig& cache,
                                     EvalBudget* budget) {
  try {
    return std::visit(
        [&cache, budget](const auto& s) -> Result<double> {
          using T = std::decay_t<decltype(s)>;
          if constexpr (std::is_same_v<T, StreamingSpec>) {
            return try_estimate_streaming(s, cache, budget);
          } else if constexpr (std::is_same_v<T, RandomSpec>) {
            return try_estimate_random(s, cache, budget);
          } else if constexpr (std::is_same_v<T, TemplateSpec>) {
            return try_estimate_template(s, cache, budget);
          } else if constexpr (std::is_same_v<T, TiledSpec>) {
            return try_estimate_tiled(s, cache, budget);
          } else {
            return try_estimate_reuse(s, cache, budget);
          }
        },
        spec);
  } catch (const std::bad_alloc&) {
    // The expansion budget bounds planned allocations; anything that still
    // exhausts memory is a resource failure, not a crash.
    return EvalError{ErrorKind::kResourceLimit,
                     "allocation failed while evaluating pattern '" +
                         std::string(1, pattern_letter(spec)) + "'"};
  }
}

Result<double> try_estimate_accesses(std::span<const PatternSpec> phases,
                                     const CacheConfig& cache,
                                     EvalBudget* budget) {
  math::KahanSum sum;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    auto phase_result = try_estimate_accesses(phases[i], cache, budget);
    if (!phase_result.ok()) {
      EvalError err = std::move(phase_result).error();
      err.message = "phase " + std::to_string(i) + " (pattern '" +
                    std::string(1, pattern_letter(phases[i])) + "'): " +
                    err.message;
      return err;
    }
    sum.add(*phase_result);
  }
  return finite_or_error(sum.value(), "composed pattern estimate");
}

double estimate_accesses(const PatternSpec& spec, const CacheConfig& cache) {
  return try_estimate_accesses(spec, cache).value_or_throw();
}

double estimate_accesses(std::span<const PatternSpec> phases,
                         const CacheConfig& cache) {
  return try_estimate_accesses(phases, cache).value_or_throw();
}

}  // namespace dvf
