// Pattern dispatch: one entry point for estimating main-memory accesses of
// any access-pattern spec, and of a composition of specs.
#pragma once

#include <span>

#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/random.hpp"
#include "dvf/patterns/reuse.hpp"
#include "dvf/patterns/specs.hpp"
#include "dvf/patterns/streaming.hpp"
#include "dvf/patterns/template_access.hpp"
#include "dvf/patterns/tiled.hpp"

namespace dvf {

/// Total dispatch: estimated main-memory accesses of one pattern phase as a
/// Result. Classified EvalError instead of an exception on invalid specs,
/// overflow, non-finite intermediates, budget exhaustion, or deadline
/// expiry; allocation failure inside an evaluator is classified as
/// resource_limit. `budget` may be null (process-default limits apply).
[[nodiscard]] Result<double> try_estimate_accesses(const PatternSpec& spec,
                                                   const CacheConfig& cache,
                                                   EvalBudget* budget = nullptr);

/// Total composition: Kahan-sums the phases' estimates, propagating the
/// first phase error (annotated with the phase index).
[[nodiscard]] Result<double> try_estimate_accesses(
    std::span<const PatternSpec> phases, const CacheConfig& cache,
    EvalBudget* budget = nullptr);

/// Estimated main-memory accesses of one pattern phase.
[[nodiscard]] double estimate_accesses(const PatternSpec& spec,
                                       const CacheConfig& cache);

/// A data structure whose behaviour is a composition of pattern phases
/// accumulates the phases' estimates (CGPMAC composability).
[[nodiscard]] double estimate_accesses(std::span<const PatternSpec> phases,
                                       const CacheConfig& cache);

}  // namespace dvf
