// Random-access main-memory model (§III-C, Eqs. 5–7).
#pragma once

#include <span>

#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/specs.hpp"

namespace dvf {

/// Expected number of the k visited elements NOT resident in a cache holding
/// m of the N elements, X_E (Eq. 6): sum over the hypergeometric pmf of
/// Eq. 5. Exposed for unit tests and the DSL's diagnostics.
[[nodiscard]] double expected_missing_elements(std::uint64_t element_count,
                                               std::uint64_t cached_elements,
                                               std::uint64_t visits);

/// IRM extension: expected misses per iteration under LRU for a profiled
/// popularity histogram (sorted or not — only the multiset matters), with
/// `cached_elements` element slots, via Che's characteristic-time
/// approximation. Used instead of Eq. 6 when a RandomSpec carries
/// sorted_visit_fractions.
[[nodiscard]] double expected_misses_lru_irm(
    std::span<const double> visit_fractions, std::uint64_t cached_elements);

/// Estimated main-memory accesses: compulsory footprint load plus
/// B_reload = min(B_elm, B_out) per iteration (Eq. 7).
/// Throws InvalidArgumentError on non-positive sizes or cache_ratio
/// outside (0, 1].
[[nodiscard]] double estimate_random(const RandomSpec& spec,
                                     const CacheConfig& cache);

}  // namespace dvf
