// Random-access main-memory model (§III-C, Eqs. 5–7).
#pragma once

#include <span>

#include "dvf/common/budget.hpp"
#include "dvf/common/result.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/specs.hpp"

namespace dvf {

/// Expected number of the k visited elements NOT resident in a cache holding
/// m of the N elements, X_E (Eq. 6): sum over the hypergeometric pmf of
/// Eq. 5. Exposed for unit tests and the DSL's diagnostics.
[[nodiscard]] double expected_missing_elements(std::uint64_t element_count,
                                               std::uint64_t cached_elements,
                                               std::uint64_t visits);

/// IRM extension: expected misses per iteration under LRU for a profiled
/// popularity histogram (sorted or not — only the multiset matters), with
/// `cached_elements` element slots, via Che's characteristic-time
/// approximation. Used instead of Eq. 6 when a RandomSpec carries
/// sorted_visit_fractions.
[[nodiscard]] double expected_misses_lru_irm(
    std::span<const double> visit_fractions, std::uint64_t cached_elements);

/// Total form of estimate_random: classified EvalError instead of throwing.
/// domain_error for invalid specs (including non-finite k or histogram
/// entries), overflow when the population exceeds the checked-combinatorics
/// range, resource_limit when the Eq. 6 support is larger than the budget
/// allows, deadline_exceeded when the budget's wall clock expires mid-sum.
/// `budget` may be null (process-default limits apply).
[[nodiscard]] Result<double> try_estimate_random(const RandomSpec& spec,
                                                 const CacheConfig& cache,
                                                 EvalBudget* budget = nullptr);

/// Estimated main-memory accesses: compulsory footprint load plus
/// B_reload = min(B_elm, B_out) per iteration (Eq. 7).
/// Throws InvalidArgumentError on non-positive sizes or cache_ratio
/// outside (0, 1] (thin wrapper over try_estimate_random).
[[nodiscard]] double estimate_random(const RandomSpec& spec,
                                     const CacheConfig& cache);

}  // namespace dvf
