// Data-reuse main-memory model (§III-C "Data Reuse Pattern", Eqs. 8–15).
//
// Blocks are thrown into associative sets as Bernoulli trials; the model
// derives the distribution of how many blocks of the target structure
// survive in a set after interference, and from it the expected number of
// blocks that must be refetched on each reuse.
#pragma once

#include <vector>

#include "dvf/common/budget.hpp"
#include "dvf/common/result.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/specs.hpp"

namespace dvf {

/// Eq. 8 (with the Bernoulli binomial coefficient the paper's typesetting
/// dropped): distribution of the number of blocks a structure of
/// `total_blocks` blocks leaves in ONE cache set when it uses the cache
/// exclusively. Index = occupancy 0..CA; the top bin absorbs the
/// P(X >= CA) tail because a set cannot hold more than CA blocks.
[[nodiscard]] std::vector<double> set_occupancy_distribution(
    std::uint64_t total_blocks, const CacheConfig& cache);

/// Contiguous-array variant (ReuseOccupancy::kContiguous): blocks map
/// round-robin onto sets, so the occupancy is floor(F/NA) in some sets and
/// ceil(F/NA) in the rest — a deterministic two-point distribution (capped
/// at the associativity).
[[nodiscard]] std::vector<double> set_occupancy_contiguous(
    std::uint64_t total_blocks, const CacheConfig& cache);

/// Eq. 9 / Eq. 15: expectation of an occupancy distribution.
[[nodiscard]] double expected_occupancy(const std::vector<double>& dist);

/// Distribution of R_A — blocks of the target surviving in one set after
/// interference — combining Eqs. 8 and 10–14 under the chosen scenario and
/// occupancy model.
[[nodiscard]] std::vector<double> survivor_distribution(
    std::uint64_t self_blocks, std::uint64_t other_blocks,
    const CacheConfig& cache, ReuseScenario scenario,
    ReuseOccupancy occupancy = ReuseOccupancy::kBernoulli);

/// Total form of estimate_reuse: classified EvalError instead of throwing.
/// domain_error for invalid specs, overflow when the combined footprint
/// wraps or exceeds the checked-combinatorics range, resource_limit when
/// the associativity makes the Eq. 13/14 double loop larger than the budget
/// allows, deadline_exceeded on wall-clock expiry mid-convolution.
/// `budget` may be null (process-default limits apply).
[[nodiscard]] Result<double> try_estimate_reuse(const ReuseSpec& spec,
                                                const CacheConfig& cache,
                                                EvalBudget* budget = nullptr);

/// Estimated main-memory accesses: initial footprint load (F_A blocks) plus,
/// per reuse round, the expected refetch F_A − N_A·E(R_A) (clamped at 0).
/// Thin wrapper over try_estimate_reuse; throws InvalidArgumentError on an
/// empty target footprint.
[[nodiscard]] double estimate_reuse(const ReuseSpec& spec,
                                    const CacheConfig& cache);

}  // namespace dvf
