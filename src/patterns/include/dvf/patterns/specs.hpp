// Parameter records for the CGPMAC access-pattern classes: the paper's four
// (§III-C) plus the tiled/blocked extension for loop-nest kernels.
//
// A data structure's access behaviour is a composition of these specs; the
// DVF engine sums the estimated main-memory accesses over the composition
// (the paper's modular "composition of these four classes").
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

namespace dvf {

/// Streaming access (§III-C "Streaming Access Pattern"): a sequential
/// traversal with a fixed stride. Parameters mirror the Aspen program of the
/// VM example: (element size, element count, stride in elements).
struct StreamingSpec {
  std::uint32_t element_bytes = 8;
  std::uint64_t element_count = 0;
  std::uint64_t stride_elements = 1;

  /// D — total footprint in bytes.
  [[nodiscard]] std::uint64_t footprint_bytes() const noexcept {
    return element_count * element_bytes;
  }
  /// S — stride in bytes.
  [[nodiscard]] std::uint64_t stride_bytes() const noexcept {
    return stride_elements * element_bytes;
  }
};

/// Random access (§III-C "Random Access Pattern"): `iterations` rounds, each
/// visiting `visits_per_iteration` (k) distinct elements of an N-element
/// structure that owns a `cache_ratio` (r) share of the LLC. Mirrors the
/// Barnes–Hut Aspen program parameters (N, E, k, iter, r).
///
/// Extension beyond the paper: `sorted_visit_fractions` optionally carries a
/// profiled popularity histogram — entry i is the fraction of iterations
/// that visit the i-th most popular element (sorted descending). When
/// present, the estimator uses the independent-reference model (the cache
/// retains the hottest elements; misses are the visit mass beyond the
/// cacheable prefix), which captures the hot-top-of-tree locality of
/// Barnes–Hut descents and binary searches that the paper's uniform
/// hypergeometric model (Eqs. 5–6) cannot. Leave empty for the paper model.
struct RandomSpec {
  std::uint64_t element_count = 0;        ///< N
  std::uint32_t element_bytes = 8;        ///< E
  double visits_per_iteration = 1.0;      ///< k
  std::uint64_t iterations = 0;           ///< iter
  double cache_ratio = 1.0;               ///< r in (0, 1]
  std::vector<double> sorted_visit_fractions;  ///< optional IRM histogram
};

/// How the template model measures the gap between two uses of a block.
enum class DistanceKind {
  /// Distinct blocks touched in between (LRU stack distance) — matches the
  /// LRU verification simulator and is the default.
  kStack,
  /// Raw reference count in between — the literal two-step wording of the
  /// paper; kept for the ablation study.
  kRaw,
};

/// Template-based access (§III-C): an explicit element-index reference
/// string (already expanded from the DSL's start:step:end template syntax).
/// `repetitions` replays the same string back-to-back — iterative kernels
/// (multigrid sweeps, FFT passes) repeat one sweep template many times, and
/// replaying through the analyzer is far cheaper than materializing it.
struct TemplateSpec {
  std::uint32_t element_bytes = 8;
  std::vector<std::uint64_t> element_indices;
  std::uint64_t repetitions = 1;
  double cache_ratio = 1.0;  ///< share of the cache available to the structure
  DistanceKind distance = DistanceKind::kStack;
};

/// Interference scenario for the reuse model (the paper's two post-load
/// scenarios, Eqs. 11 and 12).
enum class ReuseScenario {
  /// Eq. 11: the target was just touched, so LRU evicts interferer blocks
  /// first; deterministic survivor count. Default.
  kLruProtects,
  /// Eq. 12: any resident block is equally likely to be evicted
  /// (hypergeometric survivors).
  kUniformEviction,
  /// Equal-weight mixture of the two scenarios (the paper combines both).
  kBlend,
};

/// How blocks of a structure distribute over the cache's associative sets.
enum class ReuseOccupancy {
  /// Eq. 8: Bernoulli trials (the paper's model, after Thiébaut–Stone) —
  /// right for pointer-chased or randomly placed data.
  kBernoulli,
  /// Contiguous arrays map round-robin onto sets, so per-set occupancy is
  /// deterministically floor/ceil of F/NA. Extension beyond the paper;
  /// removes the spurious tail evictions Bernoulli predicts for arrays.
  kContiguous,
};

/// Data-reuse access (§III-C "Data Reuse Pattern", Eqs. 8–15): the target
/// structure is loaded, then re-read `reuse_rounds` times while an
/// aggregated interferer (all other live structures, size `other_bytes`)
/// competes for the same sets.
struct ReuseSpec {
  std::uint64_t self_bytes = 0;    ///< footprint of the target structure
  std::uint64_t other_bytes = 0;   ///< combined footprint of interferers (B)
  std::uint64_t reuse_rounds = 1;  ///< number of re-traversals after the load
  ReuseScenario scenario = ReuseScenario::kLruProtects;
  ReuseOccupancy occupancy = ReuseOccupancy::kBernoulli;
};

/// Tiled/blocked access (extension beyond the paper): a row-major
/// `rows × cols` matrix traversed tile by tile, the loop-nest shape of
/// blocked GEMM and convolution kernels. Each of `passes` full sweeps
/// visits every `tile_rows × tile_cols` tile once; while a tile is hot it
/// is re-read `intra_reuse` extra times (the reuse a blocked inner loop
/// buys). Whether those re-reads hit depends on whether one tile fits the
/// structure's `cache_ratio` share of the LLC; whether later passes hit
/// depends on whether the whole footprint does.
struct TiledSpec {
  std::uint32_t element_bytes = 8;  ///< E
  std::uint64_t rows = 0;           ///< matrix rows (R)
  std::uint64_t cols = 0;           ///< matrix columns (C)
  std::uint64_t tile_rows = 1;      ///< tile height (TR)
  std::uint64_t tile_cols = 1;      ///< tile width (TC)
  std::uint64_t intra_reuse = 0;    ///< Q — extra re-reads of a hot tile
  std::uint64_t passes = 1;         ///< P — full sweeps over the tile grid
  double cache_ratio = 1.0;         ///< r in (0, 1]
};

/// One access-pattern phase of a data structure.
using PatternSpec =
    std::variant<StreamingSpec, RandomSpec, TemplateSpec, ReuseSpec,
                 TiledSpec>;

/// Pattern-class letter as used in the paper's Aspen programs
/// (s = streaming, r = random, t = template, u = reuse, b = tiled/blocked).
[[nodiscard]] char pattern_letter(const PatternSpec& spec) noexcept;

}  // namespace dvf
