// Streaming-access main-memory model (§III-C, Eqs. 3–4 and the three cases).
#pragma once

#include "dvf/common/budget.hpp"
#include "dvf/common/result.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/specs.hpp"

namespace dvf {

/// Probability that an element straddles one more cache line than its
/// aligned placement would need: p = ((E-1) mod CL) / CL (Eq. 3).
[[nodiscard]] double misalignment_probability(std::uint32_t element_bytes,
                                              std::uint32_t line_bytes);

/// Expected main-memory accesses per element reference, A_E (Eq. 4).
[[nodiscard]] double expected_accesses_per_element(std::uint32_t element_bytes,
                                                   std::uint32_t line_bytes);

/// Total form of estimate_streaming: returns a classified EvalError instead
/// of throwing — domain_error for invalid specs, overflow when the footprint
/// or stride would wrap 64 bits, non_finite if the estimate degenerates.
/// `budget` may be null (process-default limits apply).
[[nodiscard]] Result<double> try_estimate_streaming(
    const StreamingSpec& spec, const CacheConfig& cache,
    EvalBudget* budget = nullptr);

/// Estimated number of main-memory accesses for one streaming traversal.
/// All accesses are compulsory misses; the three cases follow the ordering
/// of CL, E and S (§III-C). Throws InvalidArgumentError on a zero-element
/// spec or zero stride (thin wrapper over try_estimate_streaming).
[[nodiscard]] double estimate_streaming(const StreamingSpec& spec,
                                        const CacheConfig& cache);

}  // namespace dvf
