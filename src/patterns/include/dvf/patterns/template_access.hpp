// Template-based access model (§III-C "Template-Based Access Pattern").
//
// The user-supplied template is an element-index reference string; elements
// map to cache blocks, and the paper's two-step algorithm counts one
// main-memory access for each first use of a block plus one for each reuse
// whose distance exceeds the available cache capacity.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "dvf/common/budget.hpp"
#include "dvf/common/result.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/specs.hpp"

namespace dvf {

/// Online LRU stack-distance computation over a block reference string.
/// For each reference, observe() yields the number of DISTINCT blocks
/// touched since that block's previous use, or kColdMiss for a first use.
/// O(log n) per reference via a Fenwick tree over reference positions.
class ReuseDistanceAnalyzer {
 public:
  static constexpr std::uint64_t kColdMiss = ~std::uint64_t{0};

  /// `expected_references`: reserve hint (the full string length).
  explicit ReuseDistanceAnalyzer(std::size_t expected_references = 0);

  /// Feeds the next reference; returns its stack distance (kColdMiss for the
  /// first touch of the block).
  std::uint64_t observe(std::uint64_t block);

  /// Number of distinct blocks seen so far.
  [[nodiscard]] std::size_t distinct_blocks() const noexcept {
    return last_position_.size();
  }

 private:
  void bit_add(std::size_t pos, std::int64_t delta);
  [[nodiscard]] std::int64_t bit_prefix_sum(std::size_t pos) const;
  void ensure_capacity(std::size_t pos);

  std::vector<std::int64_t> tree_;  // Fenwick: 1 at each block's latest use
  std::unordered_map<std::uint64_t, std::uint64_t> last_position_;  // block -> pos+1
  std::size_t position_ = 0;
};

/// Converts the template's element indices to a cache-block reference string
/// (structure assumed block-aligned at offset 0).
[[nodiscard]] std::vector<std::uint64_t> blocks_from_elements(
    std::span<const std::uint64_t> element_indices, std::uint32_t element_bytes,
    std::uint32_t line_bytes);

/// Total form of estimate_template: classified EvalError instead of
/// throwing. domain_error for invalid specs, overflow when an element index
/// times the element size wraps 64-bit byte addressing, resource_limit when
/// the materialized block string (expansion) or the replayed reference count
/// (references) exceeds the budget, deadline_exceeded on wall-clock expiry
/// mid-replay. `budget` may be null (process-default limits apply).
[[nodiscard]] Result<double> try_estimate_template(const TemplateSpec& spec,
                                                   const CacheConfig& cache,
                                                   EvalBudget* budget = nullptr);

/// The two-step counting algorithm. Returns the estimated number of
/// main-memory accesses for the reference string under a cache with
/// `cache_ratio * total_blocks` blocks available to this structure.
/// Thin wrapper over try_estimate_template.
[[nodiscard]] double estimate_template(const TemplateSpec& spec,
                                       const CacheConfig& cache);

}  // namespace dvf
