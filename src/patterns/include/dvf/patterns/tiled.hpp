// Tiled/blocked-access main-memory model (extension beyond the paper): the
// loop-nest shape of blocked GEMM and convolution kernels, with N_ha derived
// from the tile geometry and the footprint/cache-share ratio.
#pragma once

#include "dvf/common/budget.hpp"
#include "dvf/common/result.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/specs.hpp"

namespace dvf {

/// Total form of estimate_tiled: returns a classified EvalError instead of
/// throwing — domain_error for invalid specs (zero dims, degenerate tile,
/// ratio outside (0, 1]), overflow when the footprint or tile size would
/// wrap 64 bits, non_finite if the estimate degenerates. `budget` may be
/// null (process-default limits apply).
[[nodiscard]] Result<double> try_estimate_tiled(const TiledSpec& spec,
                                                const CacheConfig& cache,
                                                EvalBudget* budget = nullptr);

/// Estimated main-memory accesses for a tiled traversal. One sweep touches
/// `sweep_lines` cache lines (every line of the footprint, counted tile
/// segment by tile segment); which sweeps miss depends on where the
/// geometry sits relative to the structure's cache share:
///
///   footprint <= share            N_ha = sweep_lines           (all hot)
///   tile <= share < footprint     N_ha = P * sweep_lines       (Q hits)
///   share < tile                  N_ha = P * (1+Q) * sweep_lines
///
/// Throws InvalidArgumentError on a degenerate spec (thin wrapper over
/// try_estimate_tiled).
[[nodiscard]] double estimate_tiled(const TiledSpec& spec,
                                    const CacheConfig& cache);

}  // namespace dvf
