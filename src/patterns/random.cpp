#include "dvf/patterns/random.hpp"

#include <algorithm>
#include <span>
#include <cmath>
#include <utility>
#include <vector>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"

namespace dvf {

double expected_missing_elements(std::uint64_t element_count,
                                 std::uint64_t cached_elements,
                                 std::uint64_t visits) {
  const auto n = static_cast<std::int64_t>(element_count);
  const auto m = static_cast<std::int64_t>(cached_elements);
  const auto k = static_cast<std::int64_t>(visits);
  if (k <= 0 || n <= 0) {
    return 0.0;
  }
  if (m >= n) {
    return 0.0;  // everything fits: no element can be missing
  }
  // Eq. 6: X_E = sum_{x=1}^{min(N-m, k)} x * P(X = x), where X = k minus the
  // number of visited elements found among the m cached ones, so
  // P(X = x) = Hypergeometric(total=N, marked=k, draws=m) at (k - x) (Eq. 5).
  const std::int64_t x_max = std::min<std::int64_t>(n - m, k);
  math::KahanSum sum;
  for (std::int64_t x = 1; x <= x_max; ++x) {
    const double p = math::hypergeometric_pmf(n, k, m, k - x);
    sum.add(static_cast<double>(x) * p);
  }
  return sum.value();
}

double expected_misses_lru_irm(std::span<const double> visit_fractions,
                               std::uint64_t cached_elements) {
  if (cached_elements == 0) {
    math::KahanSum all;
    for (const double f : visit_fractions) {
      all.add(f);
    }
    return all.value();
  }
  if (cached_elements >= visit_fractions.size()) {
    return 0.0;
  }

  // Profiled histograms are dominated by repeated values (bisection levels,
  // tree levels, cold tails), so run-length compress before the root
  // search: the bisection then costs O(distinct) instead of O(N) per probe.
  // Kernel-produced histograms arrive sorted (either direction), in which
  // case compression is a single pass without the sort.
  std::vector<std::pair<double, double>> runs;  // (fraction, multiplicity)
  {
    const bool ascending = std::is_sorted(visit_fractions.begin(),
                                          visit_fractions.end());
    const bool descending = ascending ||
        std::is_sorted(visit_fractions.rbegin(), visit_fractions.rend());
    std::vector<double> scratch;
    std::span<const double> ordered = visit_fractions;
    if (!ascending && !descending) {
      scratch.assign(visit_fractions.begin(), visit_fractions.end());
      std::sort(scratch.begin(), scratch.end());
      ordered = scratch;
    }
    for (std::size_t i = 0; i < ordered.size();) {
      std::size_t j = i;
      while (j < ordered.size() && ordered[j] == ordered[i]) {
        ++j;
      }
      runs.emplace_back(std::clamp(ordered[i], 0.0, 1.0),
                        static_cast<double>(j - i));
      i = j;
    }
  }

  // Che's characteristic-time approximation of LRU under the independent
  // reference model: an element with per-iteration visit probability f is
  // resident with probability 1 - (1-f)^Tc, where Tc (in iterations) solves
  //   sum_i [1 - (1-f_i)^Tc] = m.
  // Expected misses per iteration are then sum_i f_i (1-f_i)^Tc.
  const double m = static_cast<double>(cached_elements);
  const auto occupancy = [&runs](double tc) {
    math::KahanSum occ;
    for (const auto& [f, count] : runs) {
      occ.add(count * (1.0 - std::pow(1.0 - f, tc)));
    }
    return occ.value();
  };

  double lo = 0.0;
  double hi = 1.0;
  while (occupancy(hi) < m && hi < 1e15) {
    hi *= 2.0;
  }
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (occupancy(mid) < m ? lo : hi) = mid;
  }
  const double tc = 0.5 * (lo + hi);

  math::KahanSum misses;
  for (const auto& [f, count] : runs) {
    misses.add(count * f * std::pow(1.0 - f, tc));
  }
  return misses.value();
}

namespace {

/// Budgeted Eq. 6 sum: the same series as expected_missing_elements, but the
/// support size is charged against the budget (an adversarial spec can make
/// it ~2^62 terms) and the wall clock is observed between chunks.
Result<double> try_expected_missing_elements(std::int64_t n, std::int64_t m,
                                             std::int64_t k,
                                             EvalBudget& budget) {
  if (k <= 0 || n <= 0 || m >= n) {
    return 0.0;
  }
  const std::int64_t x_max = std::min<std::int64_t>(n - m, k);
  DVF_TRY_CHECK(budget.charge_references(static_cast<std::uint64_t>(x_max)));
  math::KahanSum sum;
  for (std::int64_t x = 1; x <= x_max; ++x) {
    DVF_TRY_ASSIGN(p, math::checked_hypergeometric_pmf(n, k, m, k - x));
    sum.add(static_cast<double>(x) * p);
    if ((x & 0xFFFF) == 0) {
      DVF_TRY_CHECK(budget.check_deadline());
    }
  }
  return finite_or_error(sum.value(), "expected missing elements (Eq. 6)");
}

}  // namespace

Result<double> try_estimate_random(const RandomSpec& spec,
                                   const CacheConfig& cache,
                                   EvalBudget* budget_in) {
  EvalBudget& budget = budget_or_default(budget_in);
  DVF_EVAL_REQUIRE(spec.element_count > 0, "random: element count must be > 0");
  DVF_EVAL_REQUIRE(spec.element_bytes > 0, "random: element size must be > 0");
  DVF_EVAL_REQUIRE(spec.cache_ratio > 0.0 && spec.cache_ratio <= 1.0,
                   "random: cache ratio must be in (0, 1]");
  if (!std::isfinite(spec.visits_per_iteration)) {
    return EvalError{ErrorKind::kNonFinite,
                     "random: k (visits per iteration) is not finite"};
  }
  DVF_EVAL_REQUIRE(spec.visits_per_iteration >= 0.0,
                   "random: k must be non-negative");
  DVF_TRY_CHECK(budget.check_deadline());

  const double e = spec.element_bytes;
  const double n = static_cast<double>(spec.element_count);
  const double cl = cache.line_bytes();
  const double footprint = e * n;
  const double cache_share = static_cast<double>(cache.capacity_bytes()) *
                             spec.cache_ratio;
  const double footprint_blocks =
      std::ceil(footprint / cl);  // ceil(E*N / CL): compulsory load

  // Case 1: the structure's share of the cache holds every element —
  // compulsory misses only.
  if (footprint <= cache_share) {
    return footprint_blocks;
  }

  // Case 2 (Eqs. 5–7): per iteration, X_E of the k visited elements are
  // expected to be out of cache and must be reloaded.
  const auto m = static_cast<std::uint64_t>(cache_share / e);  // cached elements
  double xe;
  if (!spec.sorted_visit_fractions.empty()) {
    for (std::size_t i = 0; i < spec.sorted_visit_fractions.size(); ++i) {
      const double f = spec.sorted_visit_fractions[i];
      if (!std::isfinite(f)) {
        return EvalError{ErrorKind::kNonFinite,
                         "random: visit fraction " + std::to_string(i) +
                             " is not finite"};
      }
      // A fraction outside [0, 1] is not a probability; the zero-residency
      // path of the IRM estimator sums the raw histogram, so a negative
      // entry would surface as a negative miss count.
      DVF_EVAL_REQUIRE(f >= 0.0 && f <= 1.0,
                       "random: visit fraction " + std::to_string(i) +
                           " must be in [0, 1]");
    }
    // Bisection cost: ~260 occupancy probes, each a pass over the
    // run-length-compressed histogram (bounded by its raw size).
    DVF_TRY_CHECK(budget.charge_references(
        math::saturating_mul(spec.sorted_visit_fractions.size(), 260)));
    xe = expected_misses_lru_irm(spec.sorted_visit_fractions, m);
  } else {
    if (spec.element_count >
        static_cast<std::uint64_t>(math::kMaxCombinatoricPopulation)) {
      return EvalError{
          ErrorKind::kOverflow,
          "random: population " + std::to_string(spec.element_count) +
              " exceeds the checked-combinatorics limit " +
              std::to_string(math::kMaxCombinatoricPopulation)};
    }
    // llround is undefined for values outside the target range; the
    // population guard above bounds the useful k, so anything beyond it is
    // clamped (the Eq. 6 support caps at n - m anyway).
    const double k_clamped =
        std::min(spec.visits_per_iteration,
                 static_cast<double>(math::kMaxCombinatoricPopulation));
    const auto k = static_cast<std::int64_t>(std::llround(k_clamped));
    // Clamp m to the population before the signed cast: m can reach 2^64 / E
    // for huge caches, and Eq. 6 only cares whether m >= n anyway.
    const auto m_clamped = static_cast<std::int64_t>(
        std::min<std::uint64_t>(m, spec.element_count));
    DVF_TRY_ASSIGN(missing, try_expected_missing_elements(
                                static_cast<std::int64_t>(spec.element_count),
                                m_clamped, k, budget));
    xe = missing;
  }

  // B_elm: blocks needed to bring the missing elements in. When an element
  // spans multiple lines each miss costs ceil(E/CL) blocks; otherwise at
  // most one block per missing element.
  const double blocks_per_element = cl < e ? std::ceil(e / cl) : 1.0;
  const double b_elm = blocks_per_element * xe;

  // B_out: blocks of the structure that are not resident — an upper bound on
  // what one iteration can possibly reload.
  const double resident_blocks = static_cast<double>(cache.total_blocks()) *
                                 spec.cache_ratio;
  const double b_out = std::max(0.0, footprint / cl - resident_blocks);

  const double b_reload = std::min(b_elm, b_out);  // Eq. 7
  return finite_or_error(
      footprint_blocks + b_reload * static_cast<double>(spec.iterations),
      "random estimate (Eq. 7)");
}

double estimate_random(const RandomSpec& spec, const CacheConfig& cache) {
  return try_estimate_random(spec, cache).value_or_throw();
}

}  // namespace dvf
