#include "dvf/patterns/reuse.hpp"

#include <algorithm>
#include <cmath>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"

namespace dvf {

std::vector<double> set_occupancy_distribution(std::uint64_t total_blocks,
                                               const CacheConfig& cache) {
  const auto ca = static_cast<std::int64_t>(cache.associativity());
  const double p = 1.0 / static_cast<double>(cache.num_sets());
  const auto f = static_cast<std::int64_t>(total_blocks);

  std::vector<double> dist(static_cast<std::size_t>(ca) + 1, 0.0);
  for (std::int64_t x = 0; x < ca; ++x) {
    dist[static_cast<std::size_t>(x)] = math::binomial_pmf(f, x, p);
  }
  // Eq. 8, second branch: occupancy saturates at the associativity, so the
  // top bin takes the whole upper tail P(X >= CA).
  dist[static_cast<std::size_t>(ca)] = math::binomial_tail(f, ca, p);
  return dist;
}

double expected_occupancy(const std::vector<double>& dist) {
  math::KahanSum sum;
  for (std::size_t r = 1; r < dist.size(); ++r) {
    sum.add(static_cast<double>(r) * dist[r]);
  }
  return sum.value();
}

namespace {

/// Eq. 11 — scenario 1: the target structure A was just accessed, so under
/// LRU the interferer B first evicts non-A blocks; A loses blocks only when
/// the combined demand overflows the set.
/// Returns P(R_A = r | X_A = x, X_B = y) as a dense vector over r = 0..CA.
std::vector<double> survivors_lru(std::int64_t x, std::int64_t y,
                                  std::int64_t ca) {
  std::vector<double> dist(static_cast<std::size_t>(ca) + 1, 0.0);
  const std::int64_t r = (x + y <= ca) ? x : std::max<std::int64_t>(ca - y, 0);
  dist[static_cast<std::size_t>(r)] = 1.0;
  return dist;
}

/// Eq. 12 — scenario 2: A and B loaded concurrently; each of the I resident
/// blocks is equally likely to be displaced by the y interferer insertions.
/// Survivors of A follow a hypergeometric law; the paper's C(x, x-r) *
/// C(I-x, y-x+r) / C(I, y) is Hypergeometric(total=I, marked=x, draws=y) at
/// (x - r) evictions of A blocks.
std::vector<double> survivors_uniform(std::int64_t x, std::int64_t y,
                                      std::int64_t ca,
                                      std::int64_t combined_expected) {
  std::vector<double> dist(static_cast<std::size_t>(ca) + 1, 0.0);
  const std::int64_t total = std::max<std::int64_t>(combined_expected, x);
  math::KahanSum norm;
  for (std::int64_t r = 0; r <= x && r <= ca; ++r) {
    const double p = math::hypergeometric_pmf(total, x, y, x - r);
    dist[static_cast<std::size_t>(r)] = p;
    norm.add(p);
  }
  // Outside the hypergeometric support (e.g. y > I - x forces extra
  // evictions) mass can be lost; renormalize so the conditional stays a pmf.
  const double z = norm.value();
  if (z > 0.0) {
    for (double& p : dist) {
      p /= z;
    }
  } else {
    dist[0] = 1.0;  // everything evicted
  }
  return dist;
}

}  // namespace

std::vector<double> set_occupancy_contiguous(std::uint64_t total_blocks,
                                             const CacheConfig& cache) {
  const auto ca = static_cast<std::size_t>(cache.associativity());
  const std::uint64_t na = cache.num_sets();
  std::vector<double> dist(ca + 1, 0.0);

  const std::uint64_t floor_occ = total_blocks / na;
  const std::uint64_t remainder = total_blocks % na;
  const auto low = static_cast<std::size_t>(std::min<std::uint64_t>(floor_occ, ca));
  const auto high =
      static_cast<std::size_t>(std::min<std::uint64_t>(floor_occ + 1, ca));
  const double frac = static_cast<double>(remainder) / static_cast<double>(na);
  dist[low] += 1.0 - frac;
  dist[high] += frac;
  return dist;
}

namespace {

/// Budgeted core of survivor_distribution. The (CA+1)^2 convolution with
/// O(CA) work per cell is charged up front — an adversarial associativity
/// turns it into a cube of the associativity — and the wall clock is
/// observed once per row.
Result<std::vector<double>> try_survivor_distribution(
    std::uint64_t self_blocks, std::uint64_t other_blocks,
    const CacheConfig& cache, ReuseScenario scenario, ReuseOccupancy occupancy,
    EvalBudget& budget) {
  const auto ca = static_cast<std::int64_t>(cache.associativity());
  const auto ca_plus_1 = static_cast<std::uint64_t>(ca) + 1;
  DVF_TRY_CHECK(budget.charge_references(
      math::saturating_mul(math::saturating_mul(ca_plus_1, ca_plus_1),
                           ca_plus_1)));
  if (self_blocks > ~std::uint64_t{0} - other_blocks) {
    return EvalError{ErrorKind::kOverflow,
                     "reuse: combined footprint overflows 64 bits"};
  }
  const std::uint64_t combined_blocks = self_blocks + other_blocks;
  if (occupancy == ReuseOccupancy::kBernoulli &&
      combined_blocks >
          static_cast<std::uint64_t>(math::kMaxCombinatoricPopulation)) {
    return EvalError{
        ErrorKind::kOverflow,
        "reuse: combined footprint of " + std::to_string(combined_blocks) +
            " blocks exceeds the checked-combinatorics limit " +
            std::to_string(math::kMaxCombinatoricPopulation)};
  }

  const auto occupancy_of = [&](std::uint64_t blocks) {
    return occupancy == ReuseOccupancy::kContiguous
               ? set_occupancy_contiguous(blocks, cache)
               : set_occupancy_distribution(blocks, cache);
  };

  const std::vector<double> pa = occupancy_of(self_blocks);
  const std::vector<double> pb = occupancy_of(other_blocks);

  // Scenario 2 views A and B as one combined structure when computing how
  // many resident blocks an eviction can strike (the paper's I).
  const std::vector<double> combined = occupancy_of(combined_blocks);
  const auto combined_expected =
      static_cast<std::int64_t>(std::llround(expected_occupancy(combined)));

  std::vector<double> result(static_cast<std::size_t>(ca) + 1, 0.0);
  for (std::int64_t x = 0; x <= ca; ++x) {
    DVF_TRY_CHECK(budget.check_deadline());
    for (std::int64_t y = 0; y <= ca; ++y) {
      const double weight = pa[static_cast<std::size_t>(x)] *
                            pb[static_cast<std::size_t>(y)];  // Eq. 13
      if (weight == 0.0) {
        continue;
      }
      std::vector<double> conditional;
      switch (scenario) {
        case ReuseScenario::kLruProtects:
          conditional = survivors_lru(x, y, ca);
          break;
        case ReuseScenario::kUniformEviction:
          conditional = survivors_uniform(x, y, ca, combined_expected);
          break;
        case ReuseScenario::kBlend: {
          const std::vector<double> a = survivors_lru(x, y, ca);
          const std::vector<double> b =
              survivors_uniform(x, y, ca, combined_expected);
          conditional.resize(a.size());
          for (std::size_t i = 0; i < a.size(); ++i) {
            conditional[i] = 0.5 * (a[i] + b[i]);
          }
          break;
        }
      }
      for (std::size_t r = 0; r < result.size(); ++r) {
        result[r] += weight * conditional[r];  // Eq. 14
      }
    }
  }
  return result;
}

}  // namespace

std::vector<double> survivor_distribution(std::uint64_t self_blocks,
                                          std::uint64_t other_blocks,
                                          const CacheConfig& cache,
                                          ReuseScenario scenario,
                                          ReuseOccupancy occupancy) {
  return try_survivor_distribution(self_blocks, other_blocks, cache, scenario,
                                   occupancy,
                                   EvalBudget::process_default())
      .value_or_throw();
}

Result<double> try_estimate_reuse(const ReuseSpec& spec,
                                  const CacheConfig& cache,
                                  EvalBudget* budget_in) {
  EvalBudget& budget = budget_or_default(budget_in);
  DVF_EVAL_REQUIRE(spec.self_bytes > 0, "reuse: target footprint must be > 0");
  DVF_TRY_CHECK(budget.check_deadline());

  const std::uint64_t cl = cache.line_bytes();
  const std::uint64_t fa = math::ceil_div(spec.self_bytes, cl);
  const std::uint64_t fb = math::ceil_div(spec.other_bytes, cl);

  DVF_TRY_ASSIGN(dist,
                 try_survivor_distribution(fa, fb, cache, spec.scenario,
                                           spec.occupancy, budget));
  const double expected_resident =
      static_cast<double>(cache.num_sets()) * expected_occupancy(dist);

  // A set cannot retain more blocks of A than A has, so cap before
  // subtracting; then each reuse round refetches the remainder.
  const double resident = std::min(expected_resident, static_cast<double>(fa));
  const double refetch_per_round = static_cast<double>(fa) - resident;
  return finite_or_error(
      static_cast<double>(fa) +
          refetch_per_round * static_cast<double>(spec.reuse_rounds),
      "reuse estimate (Eq. 15)");
}

double estimate_reuse(const ReuseSpec& spec, const CacheConfig& cache) {
  return try_estimate_reuse(spec, cache).value_or_throw();
}

}  // namespace dvf
