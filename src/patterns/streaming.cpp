#include "dvf/patterns/streaming.hpp"

#include <cmath>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"

namespace dvf {

double misalignment_probability(std::uint32_t element_bytes,
                                std::uint32_t line_bytes) {
  DVF_CHECK(element_bytes > 0);
  DVF_CHECK(line_bytes > 0);
  // Eq. 3: assuming every byte offset within a line is equally likely to
  // hold the element's first byte, the element spills into one extra line
  // with probability ((E-1) mod CL) / CL.
  return static_cast<double>((element_bytes - 1) % line_bytes) /
         static_cast<double>(line_bytes);
}

double expected_accesses_per_element(std::uint32_t element_bytes,
                                     std::uint32_t line_bytes) {
  // Eq. 4: A_E = floor(E/CL) + p.
  const double p = misalignment_probability(element_bytes, line_bytes);
  return std::floor(static_cast<double>(element_bytes) / line_bytes) + p;
}

Result<double> try_estimate_streaming(const StreamingSpec& spec,
                                      const CacheConfig& cache,
                                      EvalBudget* budget) {
  DVF_EVAL_REQUIRE(spec.element_count > 0,
                   "streaming: element count must be > 0");
  DVF_EVAL_REQUIRE(spec.element_bytes > 0,
                   "streaming: element size must be > 0");
  DVF_EVAL_REQUIRE(spec.stride_elements >= 1,
                   "streaming: stride must be at least one element");
  DVF_TRY_CHECK(budget_or_default(budget).check_deadline());

  const std::uint64_t cl = cache.line_bytes();
  const std::uint64_t e = spec.element_bytes;
  // footprint_bytes()/stride_bytes() multiply two user-controlled 64-bit
  // quantities; a wrapped product would silently model a tiny structure.
  constexpr std::uint64_t kU64Max = ~std::uint64_t{0};
  if (spec.element_count > kU64Max / spec.element_bytes) {
    return EvalError{ErrorKind::kOverflow,
                     "streaming: footprint (element_count * element_bytes) "
                     "overflows 64 bits"};
  }
  if (spec.stride_elements > kU64Max / spec.element_bytes) {
    return EvalError{ErrorKind::kOverflow,
                     "streaming: stride in bytes overflows 64 bits"};
  }
  const std::uint64_t s = spec.stride_bytes();
  const std::uint64_t d = spec.footprint_bytes();
  const double p = misalignment_probability(spec.element_bytes, cache.line_bytes());

  // Case 1: CL <= E. Each reference needs floor(E/CL) lines plus possibly
  // one more when out of alignment.
  if (cl <= e) {
    if (s > e) {
      const double ae = expected_accesses_per_element(spec.element_bytes,
                                                      cache.line_bytes());
      return finite_or_error(static_cast<double>(math::ceil_div(d, s)) * ae,
                             "streaming estimate");
    }
    // Contiguous traversal (S == E): every line of the footprint is loaded
    // exactly once.
    return static_cast<double>(math::ceil_div(d, cl));
  }

  // Case 2: E < CL <= S. No line serves two referenced elements; each
  // reference costs 1 line, or 2 when the element straddles a boundary.
  if (cl <= s) {
    return finite_or_error(
        static_cast<double>(math::ceil_div(d, s)) * (1.0 + p),
        "streaming estimate");
  }

  // Case 3: S < CL. Strided or not, every line of the footprint is touched.
  return static_cast<double>(math::ceil_div(d, cl));
}

double estimate_streaming(const StreamingSpec& spec, const CacheConfig& cache) {
  return try_estimate_streaming(spec, cache).value_or_throw();
}

}  // namespace dvf
