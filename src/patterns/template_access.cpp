#include "dvf/patterns/template_access.hpp"

#include <algorithm>
#include <cmath>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"

namespace dvf {

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(std::size_t expected_references) {
  // Cap the eager allocation; longer strings grow by rebuild, which stays
  // O(log) amortized because capacity doubles.
  constexpr std::size_t kMaxEager = std::size_t{1} << 20;
  tree_.assign(std::min(expected_references + 2, kMaxEager), 0);
  last_position_.reserve(std::min(expected_references / 4 + 16, kMaxEager));
}

void ReuseDistanceAnalyzer::ensure_capacity(std::size_t pos) {
  if (pos + 1 < tree_.size()) {
    return;
  }
  // Stack distance only depends on the ORDER of the latest-use markers, so
  // when positions outrun the tree we renumber the markers densely
  // (compaction) instead of letting the tree grow with the stream length.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> markers;  // (pos, block)
  markers.reserve(last_position_.size());
  for (const auto& [block, pos_plus_one] : last_position_) {
    markers.emplace_back(pos_plus_one - 1, block);
  }
  std::sort(markers.begin(), markers.end());

  // Grow only when the markers genuinely need more room.
  const std::size_t needed = markers.size() + 2;
  if (needed * 2 > tree_.size()) {
    tree_.assign(std::max(2 * tree_.size(), needed * 2), 0);
  } else {
    std::fill(tree_.begin(), tree_.end(), 0);
  }
  std::uint64_t next = 0;
  for (const auto& [old_pos, block] : markers) {
    (void)old_pos;
    last_position_[block] = next + 1;
    bit_add(static_cast<std::size_t>(next), +1);
    ++next;
  }
  position_ = next;
}

void ReuseDistanceAnalyzer::bit_add(std::size_t pos, std::int64_t delta) {
  // Fenwick trees are 1-indexed.
  for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
    tree_[i] += delta;
  }
}

std::int64_t ReuseDistanceAnalyzer::bit_prefix_sum(std::size_t pos) const {
  std::int64_t sum = 0;
  for (std::size_t i = std::min(pos + 1, tree_.size() - 1); i > 0;
       i -= i & (~i + 1)) {
    sum += tree_[i];
  }
  return sum;
}

std::uint64_t ReuseDistanceAnalyzer::observe(std::uint64_t block) {
  ensure_capacity(position_);

  std::uint64_t distance = kColdMiss;
  auto [it, inserted] = last_position_.try_emplace(block, 0);
  if (!inserted) {
    const std::size_t prev = static_cast<std::size_t>(it->second) - 1;
    // Distinct blocks whose LATEST use lies strictly between prev and now.
    // The marker at `prev` itself is the block's own last use, so subtract
    // prefix(prev) which includes it, then the in-between marker count is
    // the stack distance.
    const std::int64_t markers_upto_now =
        position_ > 0 ? bit_prefix_sum(position_ - 1) : 0;
    const std::int64_t markers_upto_prev = bit_prefix_sum(prev);
    distance = static_cast<std::uint64_t>(markers_upto_now - markers_upto_prev);
    bit_add(prev, -1);
  }
  bit_add(position_, +1);
  it->second = position_ + 1;
  ++position_;
  return distance;
}

std::vector<std::uint64_t> blocks_from_elements(
    std::span<const std::uint64_t> element_indices, std::uint32_t element_bytes,
    std::uint32_t line_bytes) {
  DVF_CHECK(element_bytes > 0);
  DVF_CHECK(line_bytes > 0);
  std::vector<std::uint64_t> blocks;
  blocks.reserve(element_indices.size());
  for (const std::uint64_t idx : element_indices) {
    blocks.push_back(idx * element_bytes / line_bytes);
    // Elements larger than a line touch every covered block.
    const std::uint64_t last_block =
        (idx * element_bytes + element_bytes - 1) / line_bytes;
    for (std::uint64_t b = blocks.back() + 1; b <= last_block; ++b) {
      blocks.push_back(b);
    }
  }
  return blocks;
}

Result<double> try_estimate_template(const TemplateSpec& spec,
                                     const CacheConfig& cache,
                                     EvalBudget* budget_in) {
  EvalBudget& budget = budget_or_default(budget_in);
  DVF_EVAL_REQUIRE(!spec.element_indices.empty(),
                   "template: reference string must not be empty");
  DVF_EVAL_REQUIRE(spec.element_bytes > 0,
                   "template: element size must be > 0");
  DVF_EVAL_REQUIRE(spec.cache_ratio > 0.0 && spec.cache_ratio <= 1.0,
                   "template: cache ratio must be in (0, 1]");
  DVF_EVAL_REQUIRE(spec.repetitions >= 1, "template: repetitions must be >= 1");
  DVF_TRY_CHECK(budget.check_deadline());

  const std::uint64_t e = spec.element_bytes;
  const std::uint64_t cl = cache.line_bytes();
  // The last byte of element idx lives at idx*E + E - 1; past this bound the
  // byte address wraps and blocks_from_elements would spin over a garbage
  // block range.
  const std::uint64_t max_index = (~std::uint64_t{0} - (e - 1)) / e;
  for (std::size_t i = 0; i < spec.element_indices.size(); ++i) {
    if (spec.element_indices[i] > max_index) {
      return EvalError{ErrorKind::kOverflow,
                       "template: element index " +
                           std::to_string(spec.element_indices[i]) +
                           " at position " + std::to_string(i) +
                           " overflows 64-bit byte addressing"};
    }
  }
  // Worst-case materialized block string: each element covers at most
  // E/CL + 1 blocks. Charged as expansion before anything is allocated.
  DVF_TRY_CHECK(budget.charge_expansion(
      math::saturating_mul(spec.element_indices.size(), e / cl + 1)));

  const std::vector<std::uint64_t> blocks = blocks_from_elements(
      spec.element_indices, spec.element_bytes, cache.line_bytes());
  const auto capacity_blocks = static_cast<std::uint64_t>(
      static_cast<double>(cache.total_blocks()) * spec.cache_ratio);

  // The replay visits blocks.size() * repetitions positions.
  DVF_TRY_CHECK(budget.charge_references(
      math::saturating_mul(blocks.size(), spec.repetitions)));

  std::uint64_t accesses = 0;
  std::uint64_t observed = 0;
  if (spec.distance == DistanceKind::kStack) {
    ReuseDistanceAnalyzer analyzer(blocks.size());
    for (std::uint64_t rep = 0; rep < spec.repetitions; ++rep) {
      for (const std::uint64_t b : blocks) {
        if ((++observed & 0xFFFF) == 0) {
          DVF_TRY_CHECK(budget.check_deadline());
        }
        const std::uint64_t d = analyzer.observe(b);
        // Step 1: first appearance always loads the block. Step 2: a reuse
        // misses when more distinct blocks than the cache holds intervened.
        if (d == ReuseDistanceAnalyzer::kColdMiss || d >= capacity_blocks) {
          ++accesses;
        }
      }
    }
  } else {
    // Literal reading of the paper: raw reference distance between
    // appearances (ablation variant).
    std::unordered_map<std::uint64_t, std::uint64_t> last;
    last.reserve(blocks.size() / 4 + 16);
    std::uint64_t t = 0;
    for (std::uint64_t rep = 0; rep < spec.repetitions; ++rep) {
      for (const std::uint64_t block : blocks) {
        if ((++observed & 0xFFFF) == 0) {
          DVF_TRY_CHECK(budget.check_deadline());
        }
        auto [it, inserted] = last.try_emplace(block, t);
        if (inserted) {
          ++accesses;
        } else {
          if (t - it->second > capacity_blocks) {
            ++accesses;
          }
          it->second = t;
        }
        ++t;
      }
    }
  }
  return static_cast<double>(accesses);
}

double estimate_template(const TemplateSpec& spec, const CacheConfig& cache) {
  return try_estimate_template(spec, cache).value_or_throw();
}

}  // namespace dvf
