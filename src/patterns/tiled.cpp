#include "dvf/patterns/tiled.hpp"

#include <algorithm>

#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"

namespace dvf {

Result<double> try_estimate_tiled(const TiledSpec& spec,
                                  const CacheConfig& cache,
                                  EvalBudget* budget_in) {
  DVF_EVAL_REQUIRE(spec.rows > 0 && spec.cols > 0,
                   "tiled: matrix must have at least one row and column");
  DVF_EVAL_REQUIRE(spec.element_bytes > 0, "tiled: element size must be > 0");
  DVF_EVAL_REQUIRE(spec.tile_rows >= 1 && spec.tile_cols >= 1,
                   "tiled: tile dimensions must be at least 1");
  DVF_EVAL_REQUIRE(spec.passes >= 1, "tiled: passes must be at least 1");
  DVF_EVAL_REQUIRE(spec.cache_ratio > 0.0 && spec.cache_ratio <= 1.0,
                   "tiled: cache ratio must lie in (0, 1]");
  EvalBudget& budget = budget_or_default(budget_in);
  DVF_TRY_CHECK(budget.check_deadline());
  DVF_TRY_CHECK(budget.charge_references(1));  // closed form: O(1)

  // A tile wider or taller than the matrix degenerates to the matrix edge
  // (lint flags it as DVF-W112; the evaluator just clamps).
  const std::uint64_t tr = std::min(spec.tile_rows, spec.rows);
  const std::uint64_t tc = std::min(spec.tile_cols, spec.cols);

  const std::uint64_t e = spec.element_bytes;
  const std::uint64_t cl = cache.line_bytes();
  constexpr std::uint64_t kU64Max = ~std::uint64_t{0};
  // Footprint D = rows * cols * E and tile footprint tr * tc * E multiply
  // user-controlled 64-bit quantities; a wrapped product would silently
  // model a tiny structure.
  if (spec.cols > kU64Max / e) {
    return EvalError{ErrorKind::kOverflow,
                     "tiled: row size (cols * element_bytes) overflows "
                     "64 bits"};
  }
  const std::uint64_t row_bytes = spec.cols * e;
  if (spec.rows > kU64Max / row_bytes) {
    return EvalError{ErrorKind::kOverflow,
                     "tiled: footprint (rows * cols * element_bytes) "
                     "overflows 64 bits"};
  }
  const std::uint64_t footprint = spec.rows * row_bytes;
  if (tr > kU64Max / tc || tr * tc > kU64Max / e) {
    return EvalError{ErrorKind::kOverflow,
                     "tiled: tile footprint (tile_rows * tile_cols * "
                     "element_bytes) overflows 64 bits"};
  }
  const std::uint64_t tile_bytes = tr * tc * e;

  // Lines one sweep touches: within each matrix row, every tile contributes
  // a contiguous tc-element segment (plus a narrower remainder segment when
  // tc does not divide cols), and a segment of w bytes spans ceil(w / CL)
  // lines. Summed over all `rows` matrix rows. Tile height only shapes the
  // *visit order* (and the tile footprint below), not the line count.
  const std::uint64_t full_tiles = spec.cols / tc;
  const std::uint64_t rem_cols = spec.cols % tc;
  const double lines_per_row =
      static_cast<double>(full_tiles) *
          static_cast<double>(math::ceil_div(tc * e, cl)) +
      (rem_cols > 0
           ? static_cast<double>(math::ceil_div(rem_cols * e, cl))
           : 0.0);
  const double sweep_lines = static_cast<double>(spec.rows) * lines_per_row;

  const double share =
      static_cast<double>(cache.capacity_bytes()) * spec.cache_ratio;

  // Case 1: the whole footprint fits the structure's share — only the cold
  // sweep misses; every later pass and intra-tile re-read hits.
  if (static_cast<double>(footprint) <= share) {
    return finite_or_error(sweep_lines, "tiled estimate");
  }

  const double passes = static_cast<double>(spec.passes);
  // Case 2: a tile fits but the footprint does not — intra-tile re-reads
  // hit while the tile is hot, but each pass refetches the whole footprint.
  if (static_cast<double>(tile_bytes) <= share) {
    return finite_or_error(passes * sweep_lines, "tiled estimate");
  }

  // Case 3: not even one tile fits its share — every traversal of every
  // tile misses, including the intra-tile re-reads.
  const double traversals = passes * (1.0 + static_cast<double>(spec.intra_reuse));
  return finite_or_error(traversals * sweep_lines, "tiled estimate");
}

double estimate_tiled(const TiledSpec& spec, const CacheConfig& cache) {
  return try_estimate_tiled(spec, cache).value_or_throw();
}

}  // namespace dvf
