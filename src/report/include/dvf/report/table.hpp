// Fixed-width table / CSV emission for the benchmark harness and examples.
// Every figure-regenerating binary prints its series through this, so the
// output format is uniform and machine-harvestable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dvf {

/// A rectangular table with a header row. Cells are strings; numeric helpers
/// format through format_significant.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; throws InvalidArgumentError if the width differs from the
  /// header's.
  Table& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Pretty fixed-width rendering with a rule under the header.
  [[nodiscard]] std::string to_text() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  [[nodiscard]] std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Numeric cell helper: significant-digit formatting.
[[nodiscard]] std::string num(double value, int digits = 5);

/// Section banner used by the bench binaries ("=== Figure 5(b): ... ===").
[[nodiscard]] std::string banner(const std::string& title);

/// When the DVF_CSV_DIR environment variable is set, writes the table as
/// `<dir>/<name>.csv` (for plotting pipelines) and returns true; otherwise
/// does nothing. Every figure bench calls this after printing.
bool maybe_export_csv(const std::string& name, const Table& table);

}  // namespace dvf
