#include "dvf/report/table.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "dvf/common/error.hpp"
#include "dvf/common/string_util.hpp"

namespace dvf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DVF_CHECK_MSG(!headers_.empty(), "a table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  DVF_CHECK_MSG(cells.size() == headers_.size(),
                "row width does not match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  DVF_CHECK_MSG(i < rows_.size(), "table row index out of range");
  return rows_[i];
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        out << "  ";
      }
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) {
    emit_row(r);
  }
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        out << ',';
      }
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) {
    emit(r);
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_text();
}

std::string num(double value, int digits) {
  return format_significant(value, digits);
}

std::string banner(const std::string& title) {
  return "\n=== " + title + " ===\n";
}

bool maybe_export_csv(const std::string& name, const Table& table) {
  const char* dir = std::getenv("DVF_CSV_DIR");
  if (dir == nullptr || *dir == '\0') {
    return false;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot write CSV to " + path);
  }
  out << table.to_csv();
  return true;
}

}  // namespace dvf
