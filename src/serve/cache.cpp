#include "dvf/serve/cache.hpp"

#include <utility>

namespace dvf::serve {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

CompiledModelCache::CompiledModelCache(std::size_t capacity)
    : capacity_(capacity) {}

void CompiledModelCache::touch(Slot& slot) {
  lru_.splice(lru_.begin(), lru_, slot.lru_pos);
}

std::shared_ptr<const CompiledEntry> CompiledModelCache::find_source(
    std::string_view source) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const std::uint64_t fingerprint = fnv1a64(source);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end() || it->second.entry->source != source) {
    // A fingerprint collision with different bytes is a miss, never a
    // wrong answer.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  touch(it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

std::shared_ptr<const CompiledEntry> CompiledModelCache::find_hash(
    std::uint64_t canonical_hash) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto hash_it = hash_to_fingerprint_.find(canonical_hash);
  if (hash_it == hash_to_fingerprint_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const auto it = by_fingerprint_.find(hash_it->second);
  if (it == by_fingerprint_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  touch(it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

std::shared_ptr<const CompiledEntry> CompiledModelCache::insert(
    std::shared_ptr<CompiledEntry> entry) {
  if (capacity_ == 0) {
    return entry;  // caching disabled: hand the caller its own entry back
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = by_fingerprint_.find(entry->source_fingerprint);
      it != by_fingerprint_.end()) {
    // A concurrent request compiled the same source first; keep theirs so
    // both requests share one entry.
    touch(it->second);
    return it->second.entry;
  }
  while (by_fingerprint_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = by_fingerprint_.find(victim);
    if (it != by_fingerprint_.end()) {
      const auto hash_it =
          hash_to_fingerprint_.find(it->second.entry->canonical_hash);
      if (hash_it != hash_to_fingerprint_.end() &&
          hash_it->second == victim) {
        hash_to_fingerprint_.erase(hash_it);
      }
      by_fingerprint_.erase(it);
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(entry->source_fingerprint);
  // Two distinct sources can share one canonical hash (the hash identifies
  // programs up to DVF-equivalence); the newest insertion owns the hash key.
  hash_to_fingerprint_[entry->canonical_hash] = entry->source_fingerprint;
  by_fingerprint_[entry->source_fingerprint] =
      Slot{entry, lru_.begin()};
  return entry;
}

std::size_t CompiledModelCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_fingerprint_.size();
}

}  // namespace dvf::serve
