#include "dvf/serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <vector>

#include "dvf/analysis/ir.hpp"
#include "dvf/common/error.hpp"
#include "dvf/common/failpoint.hpp"
#include "dvf/common/result.hpp"
#include "dvf/dsl/analyzer.hpp"
#include "dvf/dsl/diagnostics.hpp"
#include "dvf/dsl/parser.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/obs/obs.hpp"

namespace dvf::serve {

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Registers a request's budget for Engine::cancel_in_flight while the
/// request evaluates.
class InFlightGuard {
 public:
  InFlightGuard(std::mutex& mutex, std::unordered_set<EvalBudget*>& set,
                EvalBudget* budget)
      : mutex_(mutex), set_(set), budget_(budget) {
    const std::lock_guard<std::mutex> lock(mutex_);
    set_.insert(budget_);
  }
  ~InFlightGuard() {
    const std::lock_guard<std::mutex> lock(mutex_);
    set_.erase(budget_);
  }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::mutex& mutex_;
  std::unordered_set<EvalBudget*>& set_;
  EvalBudget* budget_;
};

std::string diagnostic_message(const dsl::Diagnostic& diagnostic) {
  std::string out = diagnostic.code;
  if (diagnostic.span.line > 0) {
    out += " at " + std::to_string(diagnostic.span.line) + ":" +
           std::to_string(diagnostic.span.column);
  }
  out += ": " + diagnostic.message;
  return out;
}

void append_structure(std::string& out, const StructureDvf& s) {
  out += "{\"name\":";
  out += json_escape_string(s.name);
  out += ",\"size_bytes\":";
  out += json_number(s.size_bytes);
  out += ",\"n_ha\":";
  out += json_number(s.n_ha);
  out += ",\"n_error\":";
  out += json_number(s.n_error);
  out += ",\"dvf\":";
  out += json_number(s.dvf);
  out += "}";
}

void append_result(std::string& out, const ApplicationDvf& app) {
  out += "{\"model\":";
  out += json_escape_string(app.model_name);
  out += ",\"machine\":";
  out += json_escape_string(app.machine_name);
  out += ",\"exec_time_s\":";
  out += json_number(app.exec_time_seconds);
  out += ",\"total\":";
  out += json_number(app.total);
  out += ",\"structures\":[";
  for (std::size_t i = 0; i < app.structures.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    append_structure(out, app.structures[i]);
  }
  out += "]}";
}

}  // namespace

Engine::Engine(EngineConfig config)
    : config_(config), cache_(config.cache_capacity) {}

std::size_t Engine::in_flight() const {
  const std::lock_guard<std::mutex> lock(in_flight_mutex_);
  return in_flight_.size();
}

void Engine::begin_drain(double grace_s) {
  const double clamped = std::max(grace_s, 0.001);
  drain_deadline_ns_.store(
      steady_ns() + static_cast<std::uint64_t>(clamped * 1e9),
      std::memory_order_relaxed);
}

void Engine::cancel_in_flight() {
  const std::lock_guard<std::mutex> lock(in_flight_mutex_);
  for (EvalBudget* budget : in_flight_) {
    budget->cancel();
  }
}

double Engine::effective_deadline_s(double requested) const {
  double deadline = requested > 0.0 ? requested : config_.default_deadline_s;
  if (config_.max_deadline_s > 0.0) {
    deadline = std::min(deadline, config_.max_deadline_s);
  }
  const std::uint64_t drain_end =
      drain_deadline_ns_.load(std::memory_order_relaxed);
  if (drain_end != 0) {
    const std::uint64_t now = steady_ns();
    const double remaining =
        now >= drain_end ? 0.0 : static_cast<double>(drain_end - now) * 1e-9;
    // 0 would mean "no deadline" to EvalLimits; the caller treats <= 0 as
    // "drain window exhausted" and fails fast instead.
    deadline = std::min(deadline, remaining);
  }
  return deadline;
}

std::string Engine::handle_line(std::string_view line) {
  if (line.find_first_not_of(" \t\r\n") == std::string_view::npos) {
    return {};
  }
  try {
    const obs::ScopedSpan span("serve.request");
    const std::uint64_t handled =
        requests_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config_.span_drop_interval != 0 &&
        handled % config_.span_drop_interval == 0) {
      obs::drop_spans();
    }

    if (line.size() > config_.max_request_bytes) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return error_response(
          "null", wire::kTooLarge,
          "request of " + std::to_string(line.size()) +
              " bytes exceeds the limit of " +
              std::to_string(config_.max_request_bytes) + " bytes");
    }

    const RequestParse parsed = parse_request(line);
    if (!parsed.ok) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      obs::counter("serve.error." + parsed.kind).add();
      return error_response(parsed.id_json, parsed.kind, parsed.message);
    }
    const EvalRequest& request = parsed.request;

    if (request.op == "ping") {
      ok_.fetch_add(1, std::memory_order_relaxed);
      return "{\"id\":" + request.id_json + ",\"ok\":true,\"op\":\"ping\"}";
    }
    if (request.op == "metrics") {
      ok_.fetch_add(1, std::memory_order_relaxed);
      return handle_metrics(request);
    }
    return handle_eval(request);
  } catch (const std::exception& e) {
    // A bug, not a client mistake — but the daemon answers and survives.
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response("null", wire::kInternal, e.what());
  } catch (...) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response("null", wire::kInternal, "unknown exception");
  }
}

std::string Engine::stats_json() const {
  std::string out = "{\"requests\":";
  out += std::to_string(requests_handled());
  out += ",\"ok\":";
  out += std::to_string(responses_ok());
  out += ",\"errors\":";
  out += std::to_string(responses_error());
  out += ",\"in_flight\":";
  out += std::to_string(in_flight());
  out += ",\"draining\":";
  out += drain_deadline_ns_.load(std::memory_order_relaxed) != 0 ? "true"
                                                                 : "false";
  out += ",\"cache\":{\"capacity\":";
  out += std::to_string(cache_.capacity());
  out += ",\"size\":";
  out += std::to_string(cache_.size());
  out += ",\"hits\":";
  out += std::to_string(cache_.hits());
  out += ",\"misses\":";
  out += std::to_string(cache_.misses());
  out += ",\"evictions\":";
  out += std::to_string(cache_.evictions());
  out += "}}";
  return out;
}

std::string Engine::handle_metrics(const EvalRequest& request) {
  std::string out = "{\"id\":" + request.id_json +
                    ",\"ok\":true,\"op\":\"metrics\",\"serve\":";
  out += stats_json();
  out += ",\"metrics\":";
  out += obs::render_metrics_json(obs::snapshot_metrics());
  out += "}";
  return out;
}

std::shared_ptr<const CompiledEntry> Engine::compile_source(
    const EvalRequest& request, std::string& error_out) {
  dsl::Program ast;
  try {
    ast = dsl::parse(request.source);
  } catch (const ParseError& e) {
    error_out = error_response(
        request.id_json, wire::kModelError,
        std::string(e.code() != nullptr ? e.code() : dsl::codes::kSyntax) +
            std::string(": ") + e.what());
    return nullptr;
  }
  dsl::DiagnosticEngine diags;
  auto entry = std::make_shared<CompiledEntry>();
  entry->program = dsl::analyze(ast, diags);
  if (const dsl::Diagnostic* first = diags.first_error()) {
    error_out = error_response(request.id_json, wire::kModelError,
                               diagnostic_message(*first));
    return nullptr;
  }
  entry->source = request.source;
  entry->source_fingerprint = fnv1a64(request.source);
  entry->canonical_hash =
      analysis::canonical_hash(entry->program.machines, entry->program.models);
  return cache_.insert(std::move(entry));
}

std::string Engine::handle_eval(const EvalRequest& request) {
  std::shared_ptr<const CompiledEntry> entry;
  bool cache_hit = true;
  if (request.hash.has_value() && request.source.empty()) {
    entry = cache_.find_hash(*request.hash);
    if (entry == nullptr) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      obs::counter("serve.error.unknown_hash").add();
      return error_response(
          request.id_json, wire::kUnknownHash,
          "canonical hash " + hash_hex(*request.hash) +
              " is not resident in the compiled-model cache; resend the "
              "request with 'source'");
    }
  } else {
    entry = cache_.find_source(request.source);
    if (entry == nullptr) {
      cache_hit = false;
      std::string error;
      entry = compile_source(request, error);
      if (entry == nullptr) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("serve.error.model_error").add();
        return error;
      }
    }
  }
  obs::counter(cache_hit ? "serve.cache.hit" : "serve.cache.miss").add();
  const dsl::CompiledProgram& program = entry->program;

  // Resolve the machine set: a named machine must exist; an unnamed request
  // against a machine-less program falls back to the paper-default LLC.
  std::vector<const Machine*> machines;
  std::optional<Machine> fallback;
  if (!request.machine.empty()) {
    for (const Machine& m : program.machines) {
      if (m.name == request.machine) {
        machines.push_back(&m);
      }
    }
    if (machines.empty()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return error_response(
          request.id_json, wire::kBadRequest,
          "program declares no machine named '" + request.machine + "'");
    }
  } else if (!program.machines.empty()) {
    for (const Machine& m : program.machines) {
      machines.push_back(&m);
    }
  } else {
    fallback = Machine::with_cache(caches::profiling_8mb());
    machines.push_back(&*fallback);
  }

  std::vector<const ModelSpec*> models;
  for (const ModelSpec& m : program.models) {
    if (request.model.empty() || m.name == request.model) {
      models.push_back(&m);
    }
  }
  if (models.empty()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(
        request.id_json, wire::kBadRequest,
        request.model.empty()
            ? std::string("program declares no models")
            : "program declares no model named '" + request.model + "'");
  }

  // Request-scoped admission control: this request's evaluation charges its
  // own budget with its own deadline; nothing leaks into the next request.
  const double deadline_s = effective_deadline_s(request.deadline_s);
  if (deadline_s <= 0.0) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.error.deadline_exceeded").add();
    return error_response(request.id_json, to_string(ErrorKind::kDeadlineExceeded),
                          "daemon is draining; the grace window has expired");
  }
  EvalLimits limits;
  limits.max_references = config_.max_references;
  limits.max_expansion = config_.max_expansion;
  limits.wall_seconds = deadline_s;
  EvalBudget budget(limits);
  const InFlightGuard guard(in_flight_mutex_, in_flight_, &budget);

  const std::uint64_t eval_start = steady_ns();
  std::string results = "[";
  bool first = true;
  try {
    // The `eval.alloc` failpoint (action badalloc) lands here, where a real
    // allocation failure during evaluation would surface.
    if (DVF_FAILPOINT("eval.alloc")) {
      throw std::bad_alloc();
    }
    for (const Machine* machine : machines) {
      DvfCalculator calculator(*machine);
      calculator.set_budget(&budget);
      for (const ModelSpec* model : models) {
        Result<ApplicationDvf> result =
            request.exec_time_s.has_value()
                ? calculator.try_for_model(*model, *request.exec_time_s)
                : calculator.try_for_model(*model);
        if (!result.ok()) {
          const EvalError& error = result.error();
          errors_.fetch_add(1, std::memory_order_relaxed);
          obs::counter(std::string("serve.error.") + to_string(error.kind))
              .add();
          return error_response(request.id_json, to_string(error.kind),
                                "model '" + model->name + "' on machine '" +
                                    machine->name + "': " + error.message);
        }
        if (!first) {
          results += ",";
        }
        first = false;
        append_result(results, result.value());
      }
    }
  } catch (const std::bad_alloc&) {
    // Allocation pressure sheds this one request with a classified error;
    // it must never take the daemon (or its peer requests) down.
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.error.resource_limit").add();
    return error_response(
        request.id_json, to_string(ErrorKind::kResourceLimit),
        "evaluation ran out of memory; the request was shed");
  }
  results += "]";
  const std::uint64_t eval_us = (steady_ns() - eval_start) / 1000;

  ok_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("serve.eval.ok").add();
  obs::histogram("serve.eval_us").record(eval_us);

  std::string out = "{\"id\":" + request.id_json +
                    ",\"ok\":true,\"op\":\"eval\",\"cache\":";
  out += cache_hit ? "\"hit\"" : "\"miss\"";
  out += ",\"hash\":";
  out += json_escape_string(hash_hex(entry->canonical_hash));
  out += ",\"eval_us\":";
  out += std::to_string(eval_us);
  out += ",\"results\":";
  out += results;
  out += "}";
  return out;
}

}  // namespace dvf::serve
