// The daemon's compiled-model cache: a bounded, thread-safe LRU over
// compiled programs, keyed on PR 7's canonical model hash.
//
// Two indexes reach the same entries:
//
//   - a **source fingerprint** index (FNV-1a over the raw source bytes,
//     verified against the stored source on hit so a fingerprint collision
//     can never serve the wrong program). This is what lets repeat traffic
//     skip lex/parse/analyze entirely — the front end never runs on a hit,
//     which tests pin by asserting no dsl.* spans appear on the hit path.
//   - the **canonical hash** index (dvf::analysis::canonical_hash, the
//     stable content hash docs/analysis.md guarantees). Clients that saved
//     the hash from an earlier response can send hash-only requests and
//     skip shipping the source at all.
//
// Both indexes always point at the same Entry, so the canonical hash a
// response reports is the entry's identity. Entries are shared_ptr-held:
// an eviction never invalidates a request that is mid-evaluation on the
// evicted program. Only successful compiles are cached — a failing source
// re-compiles every time (its diagnostics are cheap and negative entries
// would let an adversary evict real traffic with garbage).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "dvf/dsl/analyzer.hpp"

namespace dvf::serve {

/// 64-bit FNV-1a over raw bytes — the source-fingerprint function.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// One cached compile: the lowered program plus its canonical hash.
struct CompiledEntry {
  std::string source;            ///< exact source bytes (collision guard)
  dsl::CompiledProgram program;  ///< machines + models, ready to evaluate
  std::uint64_t canonical_hash = 0;
  std::uint64_t source_fingerprint = 0;
};

class CompiledModelCache {
 public:
  /// `capacity` entries; 0 disables caching (every lookup misses, nothing
  /// is stored).
  explicit CompiledModelCache(std::size_t capacity);

  /// Looks up by source bytes. A hit refreshes LRU order and counts in
  /// hits(); a miss returns nullptr (the caller compiles and insert()s).
  [[nodiscard]] std::shared_ptr<const CompiledEntry> find_source(
      std::string_view source);

  /// Looks up by canonical hash (hash-only requests). Also LRU-refreshing.
  [[nodiscard]] std::shared_ptr<const CompiledEntry> find_hash(
      std::uint64_t canonical_hash);

  /// Inserts a freshly compiled entry, evicting the least-recently-used
  /// entry beyond capacity. If an entry with the same fingerprint was
  /// inserted concurrently, the existing one wins (and is returned).
  std::shared_ptr<const CompiledEntry> insert(
      std::shared_ptr<CompiledEntry> entry);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// Counters are relaxed atomics so a metrics scrape never blocks on (or
  /// races with) the request path.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::shared_ptr<CompiledEntry> entry;
    std::list<std::uint64_t>::iterator lru_pos;  ///< into lru_, by fingerprint
  };

  void touch(Slot& slot);  // move to MRU; lock held

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Fingerprint → slot. The canonical-hash index aliases the same entries.
  std::unordered_map<std::uint64_t, Slot> by_fingerprint_;
  std::unordered_map<std::uint64_t, std::uint64_t> hash_to_fingerprint_;
  std::list<std::uint64_t> lru_;  ///< front = most recent, back = victim
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace dvf::serve
