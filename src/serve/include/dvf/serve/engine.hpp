// The serve engine: one NDJSON request line in, one response line out.
//
// Engine is the transport-agnostic core of `dvfc serve` — the Unix-socket
// and stdio transports, the tests, the fuzz target and the latency bench
// all drive exactly this class, so every robustness property is provable
// in-process:
//
//   - **Total.** handle_line never throws and never returns garbage: every
//     input maps to a well-formed response with either a result or a typed
//     error (protocol.hpp's taxonomy). A defensive catch-all converts any
//     unexpected exception into an `internal` error response.
//   - **Request-scoped state.** Each request evaluates under its own
//     EvalBudget with its own deadline; no global mutates between requests
//     beyond the (lock-guarded) compiled-model cache and (atomic) counters,
//     so one failing or adversarial request cannot poison another.
//   - **Cache hits skip the front end.** Repeat sources hit the
//     CompiledModelCache and never run lex/parse/analyze (no dsl.* spans
//     on the hit path — pinned in tests/test_serve.cpp).
//   - **Drainable.** begin_drain(grace) caps every subsequent request's
//     deadline by the remaining grace window; cancel_in_flight() flips the
//     budgets of currently evaluating requests so they return
//     deadline_exceeded at their next charge point.
//   - **Bounded observability.** Spans are dropped every
//     span_drop_interval requests so a long-lived daemon's span storage
//     cannot grow without bound (metrics keep accumulating).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

#include "dvf/common/budget.hpp"
#include "dvf/serve/cache.hpp"
#include "dvf/serve/protocol.hpp"

namespace dvf::serve {

struct EngineConfig {
  std::size_t cache_capacity = 256;      ///< compiled-model LRU entries
  std::size_t max_request_bytes = std::size_t{1} << 20;  ///< per frame
  double default_deadline_s = 10.0;      ///< when a request names none
  double max_deadline_s = 60.0;          ///< requests clamp to this
  /// Per-request EvalBudget caps (admission control against expansion
  /// bombs and reference-storm specs); defaults match EvalLimits.
  std::uint64_t max_references = EvalLimits{}.max_references;
  std::uint64_t max_expansion = EvalLimits{}.max_expansion;
  /// Drop recorded spans every N requests (0 = never). Keeps a long-lived
  /// daemon's span storage bounded; metrics are unaffected.
  std::size_t span_drop_interval = 4096;
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  /// Handles one request frame. Returns the response line (no trailing
  /// newline), or "" for an all-whitespace frame (transports skip blank
  /// lines silently). Never throws. Thread-safe: workers call this
  /// concurrently.
  [[nodiscard]] std::string handle_line(std::string_view line);

  /// Starts the drain window: every request handled from now on gets its
  /// deadline capped by the remaining `grace_s`. Once the window expires,
  /// new requests fail immediately with deadline_exceeded.
  void begin_drain(double grace_s);

  /// Cancels the budgets of all currently evaluating requests; each
  /// returns a classified deadline_exceeded at its next charge point.
  void cancel_in_flight();

  [[nodiscard]] const CompiledModelCache& cache() const noexcept {
    return cache_;
  }
  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t responses_ok() const noexcept {
    return ok_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t responses_error() const noexcept {
    return errors_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t in_flight() const;

  /// The one-line serve-stats JSON object embedded in metrics responses
  /// and the periodic metrics dump.
  [[nodiscard]] std::string stats_json() const;

 private:
  std::string handle_eval(const EvalRequest& request);
  std::string handle_metrics(const EvalRequest& request);

  /// Compiles `source` (or fails with a typed error already formatted into
  /// `error_out`). On success the entry is cached.
  std::shared_ptr<const CompiledEntry> compile_source(
      const EvalRequest& request, std::string& error_out);

  /// Wall-clock budget for one request: the request's deadline (clamped to
  /// max_deadline_s, defaulted to default_deadline_s) further capped by
  /// the remaining drain window.
  [[nodiscard]] double effective_deadline_s(double requested) const;

  EngineConfig config_;
  CompiledModelCache cache_;

  mutable std::mutex in_flight_mutex_;
  std::unordered_set<EvalBudget*> in_flight_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  /// Steady-clock ns of the drain window's end; 0 = not draining.
  std::atomic<std::uint64_t> drain_deadline_ns_{0};
};

}  // namespace dvf::serve
