// A small, total JSON decoder for the serve wire protocol.
//
// The daemon's first line of defense: every request frame a client sends —
// truncated, mutated, adversarial — goes through parse_json before anything
// else looks at it, so the decoder must be total. It never throws, never
// recurses past an explicit depth cap (a "[[[[..." bomb degrades into a
// typed error, not a stack overflow), and its memory use is linear in the
// input, which the transport has already bounded (max_request_bytes).
//
// Scope: full RFC 8259 input syntax (objects, arrays, strings with escapes
// and \uXXXX, numbers, true/false/null). Numbers decode to double — the
// protocol carries no integers that need more than 53 bits (budgets clamp).
// Duplicate object keys keep the LAST occurrence, documented in
// docs/serve.md. Encoding helpers cover the response side: every string the
// daemon emits goes through json_escape_string, and doubles render through
// json_number (finite shortest round-trip; non-finite never escapes the
// evaluators' totality layer, but the encoder still maps it to null rather
// than emitting bare `inf`).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dvf::serve {

/// One decoded JSON value. A tagged aggregate rather than a variant so the
/// decoder can build it without exceptions and consumers can pattern-match
/// with plain field access.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered members; duplicate keys keep the last occurrence
  /// (find() honors that by scanning from the back).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }

  /// Member lookup on an object (last occurrence wins); nullptr when the
  /// key is absent or this is not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
};

/// Outcome of parse_json. On failure `error` describes the first problem
/// and `offset` is the byte position it was detected at.
struct JsonParsed {
  bool ok = false;
  JsonValue value;
  std::string error;
  std::size_t offset = 0;
};

/// Decodes exactly one JSON document from `text` (leading/trailing ASCII
/// whitespace allowed, anything else after the document is an error).
/// Total: never throws, never overflows the stack (containers deeper than
/// `max_depth` fail with a typed error).
[[nodiscard]] JsonParsed parse_json(std::string_view text,
                                    std::size_t max_depth = 64);

/// `text` as a quoted JSON string literal (escapes ", \, control chars).
[[nodiscard]] std::string json_escape_string(std::string_view text);

/// A double as a JSON number token (17 significant digits, round-trip
/// exact). Non-finite values — which the evaluation layer never lets
/// escape — encode as null so the wire never carries a bare inf/nan token.
[[nodiscard]] std::string json_number(double value);

}  // namespace dvf::serve
