// The serve wire protocol: newline-delimited JSON requests and responses
// (docs/serve.md). One request per line, one response line per request;
// responses may arrive out of order relative to submission, so clients
// correlate by the echoed `id`.
//
// Every failure a request can provoke maps onto a *typed* wire error. The
// kinds extend dvf::ErrorKind's evaluation taxonomy (domain_error /
// overflow / non_finite / resource_limit / deadline_exceeded) with the
// transport- and service-level failure modes a daemon adds:
//
//   parse_error   the frame is not a JSON object (decoder error attached)
//   bad_request   valid JSON, invalid request (missing/ill-typed fields,
//                 unknown op, unknown model/machine name)
//   too_large     the frame exceeds max_request_bytes (the transport sheds
//                 it without buffering or parsing the rest)
//   model_error   the DSL source failed to compile; the first diagnostic
//                 (stable DVF-Exxx code + span) is attached
//   unknown_hash  a hash-only request named a canonical hash the compiled-
//                 model cache does not currently hold
//   overloaded    admission control shed the request (queue full); the
//                 response carries a retry_after_ms hint
//   internal      anything else — a bug, never expected in steady state
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dvf/serve/json.hpp"

namespace dvf::serve {

/// Service-level wire error kinds (evaluation failures reuse
/// dvf::to_string(ErrorKind) directly).
namespace wire {
inline constexpr const char* kParseError = "parse_error";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kTooLarge = "too_large";
inline constexpr const char* kModelError = "model_error";
inline constexpr const char* kUnknownHash = "unknown_hash";
inline constexpr const char* kOverloaded = "overloaded";
inline constexpr const char* kInternal = "internal";
}  // namespace wire

/// One decoded evaluation request. String fields left empty / optionals
/// disengaged mean "not supplied".
struct EvalRequest {
  /// The client's `id`, re-serialized (string, number or null only). Echoed
  /// verbatim in the response; "null" when absent.
  std::string id_json = "null";
  std::string op = "eval";  ///< "eval" | "ping" | "metrics"
  std::string source;       ///< DSL text (eval; exclusive with `hash`)
  std::optional<std::uint64_t> hash;  ///< canonical model hash (cache key)
  std::string model;        ///< evaluate only this model (default: all)
  std::string machine;      ///< evaluate only on this machine (default: all)
  double deadline_s = 0.0;  ///< 0 = server default; clamped to server max
  std::optional<double> exec_time_s;  ///< override the model's `time`
};

/// Outcome of decoding one request line. When !ok, `kind`/`message` are the
/// typed wire error to respond with and `id_json` is the request id as far
/// as it could be recovered (so even a rejected request's response
/// correlates when the id itself parsed).
struct RequestParse {
  bool ok = false;
  EvalRequest request;
  std::string kind;
  std::string message;
  std::string id_json = "null";
};

/// Decodes one NDJSON frame into an EvalRequest. Total: any input yields
/// either ok or a typed (kind, message). Unknown object members are
/// ignored for forward compatibility.
[[nodiscard]] RequestParse parse_request(std::string_view line);

/// "0x%016x" — the canonical-hash rendering shared with `dvfc analyze`.
[[nodiscard]] std::string hash_hex(std::uint64_t hash);

/// Parses "0x..." / bare-hex into a canonical hash value.
[[nodiscard]] std::optional<std::uint64_t> parse_hash_hex(
    std::string_view text);

/// {"id":<id>,"ok":false,"error":{"kind":...,"message":...}} with an
/// optional retry_after_ms hint (emitted when >= 0).
[[nodiscard]] std::string error_response(std::string_view id_json,
                                         std::string_view kind,
                                         std::string_view message,
                                         long retry_after_ms = -1);

}  // namespace dvf::serve
