// The `dvfc serve` transport layer: Unix-domain socket (or stdio pipe)
// acceptors feeding a bounded job queue drained by worker threads, each job
// one Engine::handle_line call.
//
// Robustness contract (docs/serve.md):
//
//   - **Bounded everything.** The job queue holds at most queue_capacity
//     frames; when it is full the reader sheds the frame immediately with
//     an `overloaded` response carrying a retry_after_ms hint — it never
//     blocks the socket and never buffers unboundedly. Connections beyond
//     max_connections are answered with `overloaded` and closed. Frames
//     longer than max_request_bytes are discarded as they stream in (the
//     reader keeps no more than the limit in memory) and answered with
//     `too_large`.
//   - **Misbehaving clients cost one connection.** A client that
//     disconnects mid-request, writes garbage, or stops reading its
//     responses only ever affects its own connection (writes are
//     EPIPE-tolerant, SIGPIPE is suppressed).
//   - **Graceful drain.** request_stop() (wired to SIGTERM/SIGINT) stops
//     accepting, lets queued and in-flight requests finish under their own
//     deadlines capped by drain_grace_s, cancels whatever is still running
//     after the grace window, flushes a final metrics dump and returns 0.
//
// stdio mode (socket_path empty) runs the same queue/worker/drain machinery
// over fd 0 → fd 1, which is what the CLI tests, the chaos harness and CI
// smoke use; responses are serialized by a write mutex so concurrent
// workers never interleave lines.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "dvf/serve/engine.hpp"

namespace dvf::serve {

struct ServerConfig {
  EngineConfig engine;
  /// Unix-domain socket path; empty = stdio mode (read fd 0, write fd 1).
  std::string socket_path;
  unsigned workers = 2;
  std::size_t queue_capacity = 64;    ///< pending frames before shedding
  std::size_t max_connections = 64;   ///< concurrent client connections
  long retry_after_ms = 100;          ///< hint attached to shed responses
  double drain_grace_s = 5.0;         ///< in-flight allowance after stop
  /// Period of the metrics dump to stderr (one JSON line); 0 disables.
  double metrics_interval_s = 0.0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs until request_stop(). Returns 0 on a clean drain, 1 when the
  /// transport could not start (socket path unusable). Blocks the caller.
  int run();

  /// Initiates graceful drain; safe from any thread (the signal watcher).
  /// Idempotent.
  void request_stop();

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  /// Frames shed by admission control (queue full / too many connections).
  [[nodiscard]] std::uint64_t shed_count() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }

 private:
  friend struct ServerImpl;
  /// One JSON line with serve stats + obs metrics to stderr (the periodic
  /// dump and the final drain flush).
  void dump_metrics_line();

  ServerConfig config_;
  Engine engine_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> shed_{0};
  int stop_pipe_[2] = {-1, -1};  ///< wakes poll() when request_stop fires
};

}  // namespace dvf::serve
