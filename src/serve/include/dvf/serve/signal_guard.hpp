// Async-signal-safe SIGINT/SIGTERM handling via the self-pipe trick.
//
// A signal handler may only touch async-signal-safe primitives, which rules
// out flushing observability sinks or draining a server directly from the
// handler. SignalGuard installs handlers that write the signal number to a
// pipe; a single watcher thread reads the pipe and runs the registered
// callback in ordinary thread context, where everything is allowed.
//
// Two consumers share this path (the ISSUE's satellite 1 and the daemon):
//
//   - `dvfc` wraps every command in a SignalGuard that flushes --trace /
//     --metrics output before exiting, so a Ctrl-C mid-campaign no longer
//     loses the observability data collected so far.
//   - `dvfc serve` swaps in a drain callback: the first signal starts a
//     graceful drain (stop accepting, finish in-flight), a second signal
//     force-exits.
//
// Guards nest: constructing one saves the previous callback and the
// destructor restores it, so the serve command can temporarily override the
// CLI-level flush handler and hand it back on return.
#pragma once

#include <functional>

namespace dvf::serve {

class SignalGuard {
 public:
  /// Installs SIGINT/SIGTERM handlers (first guard process-wide) and makes
  /// `callback(signo)` the current handler action. The callback runs on a
  /// dedicated watcher thread — never in signal context — so it may
  /// allocate, lock and perform I/O. It should be idempotent: signals can
  /// arrive repeatedly.
  explicit SignalGuard(std::function<void(int)> callback);

  /// Restores the previously registered callback (or none).
  ~SignalGuard();

  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  /// Signals received since the process-wide handlers were installed.
  /// Monotonic; lets a drain loop detect "second signal while draining".
  [[nodiscard]] static unsigned long long signals_seen() noexcept;
};

}  // namespace dvf::serve
