#include "dvf/serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dvf::serve {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (auto it = object.rbegin(); it != object.rend(); ++it) {
    if (it->first == key) {
      return &it->second;
    }
  }
  return nullptr;
}

namespace {

/// Recursive-descent decoder over a bounded input. Depth is charged on
/// every container so adversarial nesting fails fast; every failure path
/// records the byte offset it was detected at.
class Decoder {
 public:
  Decoder(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonParsed run() {
    JsonParsed parsed;
    skip_whitespace();
    if (!parse_value(parsed.value, 0)) {
      parsed.error = error_;
      parsed.offset = error_offset_;
      return parsed;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      parsed.error = "trailing characters after JSON document";
      parsed.offset = pos_;
      return parsed;
    }
    parsed.ok = true;
    return parsed;
  }

 private:
  bool fail(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message);
      error_offset_ = pos_;
    }
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (at_end()) {
      return fail("unexpected end of input");
    }
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    if (depth >= max_depth_) {
      return fail("nesting exceeds depth limit");
    }
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') {
        return fail("expected object key string");
      }
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_whitespace();
      if (at_end() || peek() != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_whitespace();
      JsonValue member;
      if (!parse_value(member, depth + 1)) {
        return false;
      }
      out.object.emplace_back(std::move(key), std::move(member));
      skip_whitespace();
      if (at_end()) {
        return fail("unterminated object");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    if (depth >= max_depth_) {
      return fail("nesting exceeds depth limit");
    }
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      JsonValue element;
      if (!parse_value(element, depth + 1)) {
        return false;
      }
      out.array.push_back(std::move(element));
      skip_whitespace();
      if (at_end()) {
        return fail("unterminated array");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) {
      return fail("truncated \\u escape");
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape digit");
      }
      out = out * 16 + digit;
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening '"'
    while (true) {
      if (at_end()) {
        return fail("unterminated string");
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (at_end()) {
        return fail("truncated escape sequence");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) {
            return false;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate in \\u escape");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) {
              return false;
            }
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape sequence");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') {
      ++pos_;
    }
    if (at_end() || peek() < '0' || peek() > '9') {
      return fail("invalid value");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
      }
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digit required after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) {
        ++pos_;
      }
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digit required in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (end != token.data() + token.size() ||
        (ec != std::errc() && ec != std::errc::result_out_of_range)) {
      return fail("malformed number");
    }
    // result_out_of_range: from_chars already saturated to ±inf / ±0; keep
    // the saturated value (consumers validate finiteness where it matters).
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return true;
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  std::string error_;
  std::size_t error_offset_ = 0;
};

}  // namespace

JsonParsed parse_json(std::string_view text, std::size_t max_depth) {
  return Decoder(text, max_depth).run();
}

std::string json_escape_string(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[40];
  const std::size_t len = static_cast<std::size_t>(
      std::snprintf(buf, sizeof buf, "%.17g", value));
  return std::string(buf, len);
}

}  // namespace dvf::serve
