#include "dvf/serve/protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dvf::serve {

namespace {

RequestParse reject(std::string id_json, const char* kind,
                    std::string message) {
  RequestParse parse;
  parse.kind = kind;
  parse.message = std::move(message);
  parse.id_json = std::move(id_json);
  return parse;
}

/// Re-serializes a request id. Only scalars make sense as correlation
/// keys; anything else is rejected so a response's id is always one token.
std::optional<std::string> id_to_json(const JsonValue& id) {
  switch (id.kind) {
    case JsonValue::Kind::kNull:
      return std::string("null");
    case JsonValue::Kind::kString:
      return json_escape_string(id.string);
    case JsonValue::Kind::kNumber:
      if (!std::isfinite(id.number)) {
        return std::nullopt;
      }
      return json_number(id.number);
    default:
      return std::nullopt;
  }
}

}  // namespace

std::string hash_hex(std::uint64_t hash) {
  char text[19] = {};
  std::snprintf(text, sizeof text, "0x%016llx",
                static_cast<unsigned long long>(hash));
  return text;
}

std::optional<std::uint64_t> parse_hash_hex(std::string_view text) {
  if (text.rfind("0x", 0) == 0 || text.rfind("0X", 0) == 0) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > 16) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc() || end != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

RequestParse parse_request(std::string_view line) {
  const JsonParsed parsed = parse_json(line);
  if (!parsed.ok) {
    return reject("null", wire::kParseError,
                  parsed.error + " (at byte " +
                      std::to_string(parsed.offset) + ")");
  }
  if (!parsed.value.is_object()) {
    return reject("null", wire::kBadRequest,
                  "request frame must be a JSON object");
  }

  // Recover the id first so every later rejection still correlates.
  std::string id_json = "null";
  if (const JsonValue* id = parsed.value.find("id")) {
    auto serialized = id_to_json(*id);
    if (!serialized.has_value()) {
      return reject("null", wire::kBadRequest,
                    "'id' must be a string, finite number or null");
    }
    id_json = std::move(*serialized);
  }

  EvalRequest request;
  request.id_json = id_json;

  if (const JsonValue* op = parsed.value.find("op")) {
    if (!op->is_string()) {
      return reject(id_json, wire::kBadRequest, "'op' must be a string");
    }
    request.op = op->string;
  }
  if (request.op != "eval" && request.op != "ping" &&
      request.op != "metrics") {
    return reject(id_json, wire::kBadRequest,
                  "unknown op '" + request.op +
                      "' (expected eval, ping or metrics)");
  }

  if (const JsonValue* source = parsed.value.find("source")) {
    if (!source->is_string()) {
      return reject(id_json, wire::kBadRequest, "'source' must be a string");
    }
    request.source = source->string;
  }
  if (const JsonValue* hash = parsed.value.find("hash")) {
    if (!hash->is_string()) {
      return reject(id_json, wire::kBadRequest,
                    "'hash' must be a string like \"0x1234...\"");
    }
    request.hash = parse_hash_hex(hash->string);
    if (!request.hash.has_value()) {
      return reject(id_json, wire::kBadRequest,
                    "'hash' is not a 64-bit hex hash: '" + hash->string +
                        "'");
    }
  }
  if (const JsonValue* model = parsed.value.find("model")) {
    if (!model->is_string()) {
      return reject(id_json, wire::kBadRequest, "'model' must be a string");
    }
    request.model = model->string;
  }
  if (const JsonValue* machine = parsed.value.find("machine")) {
    if (!machine->is_string()) {
      return reject(id_json, wire::kBadRequest, "'machine' must be a string");
    }
    request.machine = machine->string;
  }
  if (const JsonValue* deadline = parsed.value.find("deadline_s")) {
    if (!deadline->is_number() || !std::isfinite(deadline->number) ||
        deadline->number <= 0.0) {
      return reject(id_json, wire::kBadRequest,
                    "'deadline_s' must be a positive finite number");
    }
    request.deadline_s = deadline->number;
  }
  if (const JsonValue* time = parsed.value.find("exec_time_s")) {
    if (!time->is_number() || !std::isfinite(time->number) ||
        time->number < 0.0) {
      return reject(id_json, wire::kBadRequest,
                    "'exec_time_s' must be a non-negative finite number");
    }
    request.exec_time_s = time->number;
  }

  if (request.op == "eval" && request.source.empty() &&
      !request.hash.has_value()) {
    return reject(id_json, wire::kBadRequest,
                  "eval requires 'source' (DSL text) or 'hash' (a canonical "
                  "hash previously returned by this daemon)");
  }

  RequestParse parse;
  parse.ok = true;
  parse.request = std::move(request);
  parse.id_json = std::move(id_json);
  return parse;
}

std::string error_response(std::string_view id_json, std::string_view kind,
                           std::string_view message, long retry_after_ms) {
  std::string out = "{\"id\":";
  out += id_json;
  out += ",\"ok\":false,\"error\":{\"kind\":";
  out += json_escape_string(kind);
  out += ",\"message\":";
  out += json_escape_string(message);
  if (retry_after_ms >= 0) {
    out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
  }
  out += "}}";
  return out;
}

}  // namespace dvf::serve
