#include "dvf/serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "dvf/common/failpoint.hpp"
#include "dvf/common/robust_io.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/serve/protocol.hpp"

namespace dvf::serve {

namespace {

constexpr int kPollMs = 100;  ///< stop-flag latency bound for readers

/// One response channel. write_line serializes whole lines under a mutex so
/// concurrent workers never interleave; a client that stopped reading (or
/// disconnected) flips the sink dead and every later write is a cheap no-op.
class Sink {
 public:
  /// Does not own `fd` when `owns` is false (stdio mode's fd 1).
  Sink(int fd, bool owns) : fd_(fd), owns_(owns) {}
  ~Sink() {
    if (owns_ && fd_ >= 0) {
      close(fd_);
    }
  }
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  void write_line(std::string_view line) {
    if (line.empty()) {
      return;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (dead_) {
      return;
    }
    std::string frame(line);
    frame += '\n';
    std::size_t sent = 0;
    // EINTR retries are bounded (io::kMaxEintrRetries): an interrupt storm
    // degrades to a dead sink — this client's problem only — instead of a
    // worker spinning forever while holding the sink mutex.
    int eintr_budget = io::kMaxEintrRetries;
    while (sent < frame.size()) {
      if (auto fp = DVF_FAILPOINT("serve.write")) {
        if (fp.kind == failpoint::ActionKind::kEintr) {
          if (eintr_budget-- > 0) {
            continue;  // injected EINTR: exercises the bounded retry path
          }
          dead_ = true;
          return;
        }
        if (fp.kind == failpoint::ActionKind::kShortWrite) {
          // Injected partial write: push one byte through and loop, which
          // exercises the full-write continuation under real syscalls.
          const ssize_t one = write(fd_, frame.data() + sent, 1);
          if (one > 0) {
            sent += static_cast<std::size_t>(one);
            continue;
          }
          dead_ = true;
          return;
        }
        dead_ = true;  // injected EPIPE/ECONNRESET: connection sheds
        return;
      }
      const ssize_t n = write(fd_, frame.data() + sent, frame.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR && eintr_budget-- > 0) {
        continue;
      }
      dead_ = true;  // EPIPE, ECONNRESET, ... — the client's problem only
      return;
    }
  }

 private:
  const int fd_;
  const bool owns_;
  std::mutex mutex_;
  bool dead_ = false;
};

struct Job {
  std::string line;
  std::shared_ptr<Sink> sink;
};

/// Fixed-capacity MPMC queue. try_push never blocks (admission control
/// sheds instead); pop blocks until a job or close-and-empty.
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  bool try_push(Job job) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || jobs_.size() >= capacity_) {
        return false;
      }
      jobs_.push_back(std::move(job));
    }
    ready_.notify_one();
    return true;
  }

  bool pop(Job& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
    if (jobs_.empty()) {
      return false;
    }
    out = std::move(jobs_.front());
    jobs_.pop_front();
    return true;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Job> jobs_;
  bool closed_ = false;
};

/// Reads newline-delimited frames from `fd`, enforcing the frame-size limit
/// as bytes stream in: an overlong frame is discarded (never buffered past
/// the limit) and reported through on_oversize once. Polls so the stop flag
/// is honored within kPollMs. Returns on EOF, error or stop.
template <typename OnLine, typename OnOversize>
void read_frames(int fd, std::size_t max_bytes,
                 const std::atomic<bool>& stop, OnLine on_line,
                 OnOversize on_oversize) {
  std::string current;
  bool discarding = false;
  char chunk[4096];
  while (!stop.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, kPollMs);
    if (ready < 0 && errno != EINTR) {
      return;
    }
    if (ready <= 0) {
      continue;
    }
    if (auto fp = DVF_FAILPOINT("serve.read")) {
      if (fp.kind == failpoint::ActionKind::kEintr) {
        continue;  // injected EINTR: retry via the poll loop
      }
      return;  // injected ECONNRESET/EIO: the connection ends, daemon lives
    }
    const ssize_t n = read(fd, chunk, sizeof chunk);
    if (n == 0) {
      if (!current.empty() && !discarding) {
        on_line(current);  // final unterminated frame
      }
      return;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) {
        continue;
      }
      return;
    }
    std::size_t begin = 0;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] != '\n') {
        continue;
      }
      if (discarding) {
        discarding = false;
      } else {
        current.append(chunk + begin, chunk + i);
        on_line(current);
      }
      current.clear();
      begin = static_cast<std::size_t>(i) + 1;
    }
    if (!discarding) {
      current.append(chunk + begin, chunk + static_cast<std::size_t>(n));
      if (current.size() > max_bytes) {
        on_oversize(current.size());
        current.clear();
        current.shrink_to_fit();
        discarding = true;
      }
    }
  }
}

int make_listen_socket(const std::string& path, std::string& error) {
  struct sockaddr_un addr = {};
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + path;
    return -1;
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  unlink(path.c_str());  // replace a stale socket from a crashed run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    error = "bind " + path + ": " + std::strerror(errno);
    close(fd);
    return -1;
  }
  if (listen(fd, 64) != 0) {
    error = "listen " + path + ": " + std::strerror(errno);
    close(fd);
    unlink(path.c_str());
    return -1;
  }
  return fd;
}

}  // namespace

/// State shared with detached reader threads. shared_ptr-held so a reader
/// finishing a hair after run() returns never touches freed memory.
struct ServerImpl {
  explicit ServerImpl(Server& server)
      : config(server.config_),
        engine(server.engine_),
        stop(server.stop_),
        shed(server.shed_),
        queue(server.config_.queue_capacity) {}

  const ServerConfig& config;
  Engine& engine;
  std::atomic<bool>& stop;
  std::atomic<std::uint64_t>& shed;
  BoundedQueue queue;

  std::mutex readers_mutex;
  std::condition_variable readers_done;
  std::size_t active_readers = 0;

  void shed_frame(Sink& sink) {
    shed.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.shed").add();
    sink.write_line(error_response(
        "null", wire::kOverloaded,
        "request queue is full; retry after the hinted delay",
        config.retry_after_ms));
  }

  /// One connection's read loop: frame → queue (or shed), oversize → typed
  /// error. The final frames of a connection still get responses: the sink
  /// outlives the reader via the queued jobs' shared_ptr.
  void serve_connection(const std::shared_ptr<Sink>& sink, int read_fd) {
    read_frames(
        read_fd, config.engine.max_request_bytes, stop,
        [&](const std::string& line) {
          if (line.find_first_not_of(" \t\r") == std::string::npos) {
            return;
          }
          if (!queue.try_push(Job{line, sink})) {
            shed_frame(*sink);
          }
        },
        [&](std::size_t size) {
          sink->write_line(error_response(
              "null", wire::kTooLarge,
              "request of at least " + std::to_string(size) +
                  " bytes exceeds the limit of " +
                  std::to_string(config.engine.max_request_bytes) +
                  " bytes"));
        });
  }

  void reader_started() {
    const std::lock_guard<std::mutex> lock(readers_mutex);
    ++active_readers;
  }

  void reader_finished() {
    {
      const std::lock_guard<std::mutex> lock(readers_mutex);
      --active_readers;
    }
    readers_done.notify_all();
  }

  void wait_for_readers() {
    std::unique_lock<std::mutex> lock(readers_mutex);
    readers_done.wait(lock, [&] { return active_readers == 0; });
  }

  std::size_t reader_count() {
    const std::lock_guard<std::mutex> lock(readers_mutex);
    return active_readers;
  }
};

Server::Server(ServerConfig config)
    : config_(std::move(config)), engine_(config_.engine) {
  if (pipe(stop_pipe_) != 0) {
    stop_pipe_[0] = stop_pipe_[1] = -1;
  }
}

Server::~Server() {
  for (const int fd : stop_pipe_) {
    if (fd >= 0) {
      close(fd);
    }
  }
}

void Server::request_stop() {
  if (stop_.exchange(true)) {
    return;
  }
  if (stop_pipe_[1] >= 0) {
    const unsigned char byte = 1;
    [[maybe_unused]] const ssize_t n = write(stop_pipe_[1], &byte, 1);
  }
}

int Server::run() {
  std::signal(SIGPIPE, SIG_IGN);  // a gone client must not kill the daemon

  auto impl = std::make_shared<ServerImpl>(*this);

  // Workers: drain the queue through the engine. They keep running during
  // drain until the queue is closed and empty.
  std::vector<std::thread> workers;
  const unsigned worker_count = config_.workers == 0 ? 1 : config_.workers;
  std::atomic<unsigned> workers_busy{0};
  for (unsigned i = 0; i < worker_count; ++i) {
    workers.emplace_back([impl, &workers_busy] {
      obs::set_thread_name("serve-worker");
      while (true) {
        // Scoped per iteration: the job's sink reference must drop before
        // the worker blocks in pop() again, or an idle worker would hold a
        // finished connection's fd open and its client would never see EOF.
        Job job;
        if (!impl->queue.pop(job)) {
          break;
        }
        workers_busy.fetch_add(1, std::memory_order_relaxed);
        const std::string response = impl->engine.handle_line(job.line);
        job.sink->write_line(response);
        workers_busy.fetch_sub(1, std::memory_order_relaxed);
      }
    });
  }

  // Periodic metrics dump (one JSON line to stderr) doubles as the span
  // garbage collector for very long runs.
  std::thread metrics_thread;
  std::mutex metrics_mutex;
  std::condition_variable metrics_wake;
  if (config_.metrics_interval_s > 0.0) {
    metrics_thread = std::thread([this, &metrics_mutex, &metrics_wake] {
      const auto interval = std::chrono::duration<double>(
          config_.metrics_interval_s);
      std::unique_lock<std::mutex> lock(metrics_mutex);
      while (!metrics_wake.wait_for(lock, interval, [this] {
        return stop_.load(std::memory_order_relaxed);
      })) {
        dump_metrics_line();
        obs::drop_spans();
      }
    });
  }

  int exit_code = 0;
  if (config_.socket_path.empty()) {
    // stdio mode: fd 0 is the one connection; EOF initiates drain.
    auto sink = std::make_shared<Sink>(STDOUT_FILENO, /*owns=*/false);
    impl->reader_started();
    impl->serve_connection(sink, STDIN_FILENO);
    impl->reader_finished();
    request_stop();
  } else {
    std::string error;
    const int listen_fd = make_listen_socket(config_.socket_path, error);
    if (listen_fd < 0) {
      std::fprintf(stderr, "dvfc serve: %s\n", error.c_str());
      stop_.store(true, std::memory_order_relaxed);
      exit_code = 1;
    } else {
      while (!stop_.load(std::memory_order_relaxed)) {
        struct pollfd pfds[2] = {{listen_fd, POLLIN, 0},
                                 {stop_pipe_[0], POLLIN, 0}};
        const int ready = poll(pfds, stop_pipe_[0] >= 0 ? 2 : 1, kPollMs);
        if (ready < 0 && errno != EINTR) {
          break;
        }
        if (ready <= 0 || (pfds[0].revents & POLLIN) == 0) {
          continue;
        }
        if (DVF_FAILPOINT("serve.accept")) {
          continue;  // injected EINTR/ECONNABORTED/EMFILE: accept loop lives
        }
        const int conn_fd = accept(listen_fd, nullptr, nullptr);
        if (conn_fd < 0) {
          continue;
        }
        auto sink = std::make_shared<Sink>(conn_fd, /*owns=*/true);
        if (impl->reader_count() >= config_.max_connections) {
          shed_.fetch_add(1, std::memory_order_relaxed);
          obs::counter("serve.shed").add();
          sink->write_line(error_response(
              "null", wire::kOverloaded,
              "connection limit reached; retry after the hinted delay",
              config_.retry_after_ms));
          continue;  // sink destructor closes the connection
        }
        impl->reader_started();
        std::thread([impl, sink, conn_fd] {
          obs::set_thread_name("serve-reader");
          impl->serve_connection(sink, conn_fd);
          impl->reader_finished();
        }).detach();
      }
      close(listen_fd);
      unlink(config_.socket_path.c_str());
    }
  }

  // Drain: no new frames arrive (listener closed / stdin at EOF; readers
  // notice the stop flag within kPollMs). Queued and in-flight requests
  // finish under their own deadlines capped by the remaining grace window;
  // whatever still runs when the window closes is cancelled and returns
  // deadline_exceeded.
  engine_.begin_drain(config_.drain_grace_s);
  impl->wait_for_readers();
  impl->queue.close();
  const auto grace_end =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.drain_grace_s));
  while (workers_busy.load(std::memory_order_relaxed) != 0 &&
         std::chrono::steady_clock::now() < grace_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  engine_.cancel_in_flight();
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (metrics_thread.joinable()) {
    metrics_wake.notify_all();
    metrics_thread.join();
  }
  dump_metrics_line();
  return exit_code;
}

void Server::dump_metrics_line() {
  std::string line = "{\"serve\":" + engine_.stats_json() + ",\"shed\":" +
                     std::to_string(shed_count()) + ",\"metrics\":" +
                     obs::render_metrics_json(obs::snapshot_metrics()) + "}";
  line += '\n';
  if (auto fp = DVF_FAILPOINT("serve.metrics.write")) {
    std::fprintf(stderr,
                 "dvfc serve: warning: metrics dump failed (injected, "
                 "errno %d); continuing\n",
                 fp.error_code);
    return;
  }
  // The dump is diagnostics, not the wire protocol: a full stderr pipe must
  // degrade to a dropped line, never block or kill the daemon — so the write
  // goes through the bounded-retry fd path instead of unchecked stdio.
  std::fflush(stderr);
  auto written = io::write_all_fd(STDERR_FILENO, line.data(), line.size());
  (void)written;  // best-effort: a dead stderr only loses diagnostics
}

}  // namespace dvf::serve
