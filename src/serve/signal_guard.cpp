#include "dvf/serve/signal_guard.hpp"

#include <cerrno>
#include <csignal>
#include <unistd.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dvf::serve {

namespace {

// Process-wide signal plumbing. The pipe and the watcher thread are
// installed once (first SignalGuard) and live until process exit: POSIX
// offers no safe way to tear down a signal handler racing with delivery,
// and a parked watcher thread costs nothing.
int g_pipe_write_fd = -1;
std::atomic<unsigned long long> g_signals_seen{0};

std::mutex g_stack_mutex;
std::vector<std::function<void(int)>>& callback_stack() {
  static std::vector<std::function<void(int)>> stack;
  return stack;
}

extern "C" void on_signal(int signo) {
  // Async-signal-safe only: one write. If the pipe is full the byte is
  // dropped — the watcher is already awake and signals_seen still advances.
  g_signals_seen.fetch_add(1, std::memory_order_relaxed);
  const unsigned char byte = static_cast<unsigned char>(signo);
  [[maybe_unused]] const ssize_t n = write(g_pipe_write_fd, &byte, 1);
}

void watcher_loop(int read_fd) {
  for (;;) {
    unsigned char byte = 0;
    const ssize_t n = read(read_fd, &byte, 1);
    if (n == 1) {
      std::function<void(int)> callback;
      {
        const std::lock_guard<std::mutex> lock(g_stack_mutex);
        if (!callback_stack().empty()) {
          callback = callback_stack().back();
        }
      }
      if (callback) {
        callback(static_cast<int>(byte));
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return;  // pipe closed — process is exiting
  }
}

void install_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    int fds[2] = {-1, -1};
    if (pipe(fds) != 0) {
      return;  // degrade: signals keep their default disposition
    }
    g_pipe_write_fd = fds[1];
    std::thread(watcher_loop, fds[0]).detach();
    struct sigaction action = {};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
  });
}

}  // namespace

SignalGuard::SignalGuard(std::function<void(int)> callback) {
  install_once();
  const std::lock_guard<std::mutex> lock(g_stack_mutex);
  callback_stack().push_back(std::move(callback));
}

SignalGuard::~SignalGuard() {
  const std::lock_guard<std::mutex> lock(g_stack_mutex);
  if (!callback_stack().empty()) {
    callback_stack().pop_back();
  }
}

unsigned long long SignalGuard::signals_seen() noexcept {
  return g_signals_seen.load(std::memory_order_relaxed);
}

}  // namespace dvf::serve
