// Cache-line/page aligned storage for kernel data structures.
//
// Aligned bases make the trace-driven simulation deterministic (set indices
// do not depend on where the allocator happened to place a vector) and match
// the analytical models' assumption that a structure starts on a block
// boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>

#include "dvf/common/error.hpp"

namespace dvf {

/// Fixed-size, over-aligned, zero-initialized array of trivially copyable T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "kernel data structures hold plain values");

 public:
  static constexpr std::size_t kAlignment = 4096;  // page: aligns every cache line

  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : count_(count) {
    DVF_CHECK_MSG(count > 0, "AlignedBuffer size must be positive");
    data_.reset(static_cast<T*>(
        ::operator new[](count * sizeof(T), std::align_val_t{kAlignment})));
    std::uninitialized_value_construct_n(data_.get(), count_);
  }

  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t size_bytes() const noexcept {
    return count_ * sizeof(T);
  }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_.get(), count_}; }
  [[nodiscard]] std::span<const T> span() const noexcept { return {data_.get(), count_}; }

  /// Byte address of element `i`, as recorders see it.
  [[nodiscard]] std::uint64_t address_of(std::size_t i) const noexcept {
    return reinterpret_cast<std::uintptr_t>(data_.get() + i);
  }

 private:
  struct Deleter {
    void operator()(T* p) const noexcept {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };
  std::unique_ptr<T[], Deleter> data_;
  std::size_t count_ = 0;
};

}  // namespace dvf
