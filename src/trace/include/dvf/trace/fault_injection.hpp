// Fault injection at the memory-reference level — the statistical baseline
// methodology the paper compares DVF against (§VI: "the statistical-based
// fault injection technique injects random faults into application
// states... researchers have to perform a large amount of fault injection
// operations, which is prohibitively expensive").
//
// A FaultInjectingRecorder rides along a kernel run, counts references, and
// at the chosen trigger reference flips one bit of the target structure's
// live memory — emulating a DRAM upset striking mid-execution. The campaign
// driver (kernels/injection_campaign) repeats this to estimate per-structure
// corruption probabilities, the ground truth DVF approximates analytically.
#pragma once

#include <cstdint>

#include "dvf/common/error.hpp"
#include "dvf/trace/recorder.hpp"

namespace dvf {

/// Thrown by FaultInjectingRecorder when a run exceeds its reference
/// budget — the "hang" detector for campaigns over kernels whose control
/// flow (iteration counts, convergence loops) depends on the flipped data.
/// The campaign driver catches it per trial and classifies the trial as a
/// hang-class interruption instead of letting one runaway run stall the
/// whole campaign.
class ReferenceBudgetExceeded : public Error {
 public:
  explicit ReferenceBudgetExceeded(std::uint64_t budget)
      : Error("fault-injection run exceeded its reference budget of " +
              std::to_string(budget)) {}
};

/// One fault to inject: flip `bit` of the byte at `target_byte` once the
/// run's `trigger_reference`-th reference (1-based, loads and stores both
/// count) has been issued. A non-zero `reference_budget` bounds the run:
/// the recorder throws ReferenceBudgetExceeded at the first reference past
/// the budget (0 = unlimited).
struct FaultSpec {
  std::uint64_t trigger_reference = 1;
  std::uint8_t* target_byte = nullptr;
  std::uint8_t bit = 0;
  std::uint64_t reference_budget = 0;
};

/// Recorder that injects the fault and otherwise observes silently.
class FaultInjectingRecorder {
 public:
  explicit FaultInjectingRecorder(const FaultSpec& fault) : fault_(fault) {
    DVF_CHECK_MSG(fault.target_byte != nullptr, "fault needs a target byte");
    DVF_CHECK_MSG(fault.bit < 8, "bit index must be 0..7");
    DVF_CHECK_MSG(fault.trigger_reference >= 1,
                  "trigger reference is 1-based");
    DVF_CHECK_MSG(fault.reference_budget == 0 ||
                      fault.reference_budget >= fault.trigger_reference,
                  "reference budget would expire before the trigger");
  }

  void on_load(DsId, std::uint64_t, std::uint32_t) { tick(); }
  void on_store(DsId, std::uint64_t, std::uint32_t) { tick(); }

  /// Whether the flip happened (false when the run ended early).
  [[nodiscard]] bool injected() const noexcept { return injected_; }
  /// References seen so far.
  [[nodiscard]] std::uint64_t references() const noexcept { return count_; }
  /// The byte value before the flip (valid once injected()).
  [[nodiscard]] std::uint8_t original_value() const noexcept {
    return original_;
  }

  /// Undoes the flip (used by campaigns to restore read-only inputs after
  /// the trial; structures rewritten by the kernel's own reset/run do not
  /// care).
  void restore() const noexcept {
    if (injected_) {
      *fault_.target_byte = original_;
    }
  }

 private:
  void tick() {
    if (++count_ == fault_.trigger_reference) {
      original_ = *fault_.target_byte;
      *fault_.target_byte =
          static_cast<std::uint8_t>(original_ ^ (1u << fault_.bit));
      injected_ = true;
    }
    if (fault_.reference_budget != 0 && count_ > fault_.reference_budget) {
      // The caller unwinds mid-run; restore() stays valid because the
      // flip (if any) already happened and original_ is recorded.
      throw ReferenceBudgetExceeded(fault_.reference_budget);
    }
  }

  FaultSpec fault_;
  std::uint64_t count_ = 0;
  std::uint8_t original_ = 0;
  bool injected_ = false;
};
static_assert(RecorderLike<FaultInjectingRecorder>);

}  // namespace dvf
