// Memory-reference instrumentation.
//
// The paper collected per-data-structure memory references with a Pin tool;
// here every kernel is compiled against a recorder that receives the same
// logical stream: (data structure, byte address, width, read/write). Kernels
// are templates over the recorder type so that the untraced configuration
// (NullRecorder) compiles to nothing and timing runs measure the bare kernel.
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

namespace dvf {

/// Identifier of a registered data structure (index into a registry).
using DsId = std::uint32_t;

/// Sentinel for "not attributable" accesses (scratch, loop temporaries).
inline constexpr DsId kNoDs = ~DsId{0};

/// A recorder receives one call per logical load/store a kernel performs on
/// a registered data structure.
template <typename R>
concept RecorderLike = requires(R r, DsId ds, std::uint64_t addr, std::uint32_t bytes) {
  { r.on_load(ds, addr, bytes) };
  { r.on_store(ds, addr, bytes) };
};

/// Zero-cost recorder for untraced (timing) runs.
struct NullRecorder {
  void on_load(DsId, std::uint64_t, std::uint32_t) const noexcept {}
  void on_store(DsId, std::uint64_t, std::uint32_t) const noexcept {}
};
static_assert(RecorderLike<NullRecorder>);

/// Per-structure load/store tallies, independent of any cache.
class CountingRecorder {
 public:
  void on_load(DsId ds, std::uint64_t, std::uint32_t) { bump(ds).loads++; }
  void on_store(DsId ds, std::uint64_t, std::uint32_t) { bump(ds).stores++; }

  struct Counts {
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    [[nodiscard]] std::uint64_t total() const noexcept { return loads + stores; }
  };

  /// Counts for `ds`; zeros if the structure never appeared.
  [[nodiscard]] Counts counts(DsId ds) const {
    return ds < counts_.size() ? counts_[ds] : Counts{};
  }
  [[nodiscard]] std::uint64_t total_references() const {
    std::uint64_t t = 0;
    for (const auto& c : counts_) {
      t += c.total();
    }
    return t;
  }

 private:
  Counts& bump(DsId ds) {
    if (ds >= counts_.size()) {
      counts_.resize(ds + 1);
    }
    return counts_[ds];
  }
  std::vector<Counts> counts_;
};
static_assert(RecorderLike<CountingRecorder>);

/// One recorded reference, for buffered traces.
struct MemoryRecord {
  std::uint64_t address;
  std::uint32_t size;
  DsId ds;
  bool is_write;
  friend bool operator==(const MemoryRecord&, const MemoryRecord&) = default;
};

/// Buffers the full reference stream (verification-size workloads only).
class TraceBuffer {
 public:
  void on_load(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    records_.push_back({addr, bytes, ds, false});
  }
  void on_store(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    records_.push_back({addr, bytes, ds, true});
  }
  [[nodiscard]] const std::vector<MemoryRecord>& records() const noexcept {
    return records_;
  }
  void clear() noexcept { records_.clear(); }

 private:
  std::vector<MemoryRecord> records_;
};
static_assert(RecorderLike<TraceBuffer>);

/// Fans one reference stream out to two recorders (e.g. count + simulate).
template <RecorderLike A, RecorderLike B>
class TeeRecorder {
 public:
  TeeRecorder(A& a, B& b) : a_(&a), b_(&b) {}
  void on_load(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    a_->on_load(ds, addr, bytes);
    b_->on_load(ds, addr, bytes);
  }
  void on_store(DsId ds, std::uint64_t addr, std::uint32_t bytes) {
    a_->on_store(ds, addr, bytes);
    b_->on_store(ds, addr, bytes);
  }

 private:
  A* a_;
  B* b_;
};

}  // namespace dvf
