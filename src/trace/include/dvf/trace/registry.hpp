// Registry of the data structures a kernel exposes to the resilience
// analysis: name, base address, extent and element size. Provides address →
// structure attribution for trace post-processing and the footprint sizes
// (S_d) the DVF calculation needs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dvf/trace/recorder.hpp"

namespace dvf {

/// Metadata of one registered structure.
struct DataStructureInfo {
  std::string name;
  std::uint64_t base_address = 0;
  std::uint64_t size_bytes = 0;
  std::uint32_t element_bytes = 0;

  [[nodiscard]] std::uint64_t element_count() const noexcept {
    return element_bytes == 0 ? 0 : size_bytes / element_bytes;
  }
  [[nodiscard]] bool contains(std::uint64_t address) const noexcept {
    return address >= base_address && address < base_address + size_bytes;
  }
};

/// Append-only registry. Ids are dense indices in registration order, so
/// recorders can use them as vector indices.
class DataStructureRegistry {
 public:
  /// Registers a structure; throws InvalidArgumentError on empty name,
  /// zero size, zero/odd element size that does not divide the size, or a
  /// duplicate name.
  DsId register_structure(std::string name, const void* base,
                          std::uint64_t size_bytes, std::uint32_t element_bytes);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const DataStructureInfo& info(DsId id) const;
  [[nodiscard]] std::optional<DsId> find(const std::string& name) const;
  /// Attribution by address (linear scan — registries hold a handful of
  /// structures). Returns kNoDs when no structure contains the address.
  [[nodiscard]] DsId attribute(std::uint64_t address) const noexcept;

  [[nodiscard]] auto begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() const noexcept { return entries_.end(); }

 private:
  std::vector<DataStructureInfo> entries_;
};

}  // namespace dvf
