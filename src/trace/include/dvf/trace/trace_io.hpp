// Trace serialization: persist a kernel's memory-reference stream together
// with its data-structure table, and replay it later against any cache
// configuration (dvfc trace / dvfc replay). This decouples the expensive
// part of a verification study (generating references) from the cheap part
// (simulating caches), the same split the paper's Pin-based flow used.
//
// Two wire formats:
//
//   v1 — flat native-endian records (magic "DVFT", u32 version 1, structure
//        table, u64 record count, then 17 bytes per record). Still read for
//        compatibility, with the documented caveat that a v1 trace is only
//        readable on a machine of the producer's endianness.
//   v2 — explicitly little-endian with byte-order conversion on read, so
//        traces are portable across hosts. Records are delta-encoded
//        (zigzag varint address deltas, size/ds elided when repeated,
//        constant-stride runs collapsed) and framed into self-contained
//        chunks, which is what lets dvf::TraceReader stream multi-GB traces
//        without materializing them. Wire details: src/trace/wire_format.hpp.
//
// read_trace() auto-detects the version. write_trace() defaults to v2.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "dvf/trace/recorder.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf {

/// Wire format selector for write_trace (read_trace auto-detects).
enum class TraceFormat : std::uint32_t {
  kV1 = 1,  ///< flat native-endian records (legacy, non-portable)
  kV2 = 2,  ///< little-endian, delta-encoded, chunked (default)
};

/// A deserialized trace: the structure table plus the reference stream.
struct TraceFile {
  std::vector<DataStructureInfo> structures;
  std::vector<MemoryRecord> records;
};

/// Serializes a trace. Throws Error on I/O failure.
void write_trace(std::ostream& out,
                 std::span<const DataStructureInfo> structures,
                 std::span<const MemoryRecord> records,
                 TraceFormat format = TraceFormat::kV2);
void write_trace(std::ostream& out, const DataStructureRegistry& registry,
                 const std::vector<MemoryRecord>& records,
                 TraceFormat format = TraceFormat::kV2);
void write_trace_file(const std::string& path,
                      const DataStructureRegistry& registry,
                      const std::vector<MemoryRecord>& records,
                      TraceFormat format = TraceFormat::kV2);

/// Deserializes a trace of either version into memory. Throws Error on
/// malformed input (bad magic, unsupported version, truncated stream,
/// out-of-range structure ids). For streams too large to materialize, use
/// dvf::TraceReader (dvf/trace/trace_reader.hpp) instead.
[[nodiscard]] TraceFile read_trace(std::istream& in);
[[nodiscard]] TraceFile read_trace_file(const std::string& path);

}  // namespace dvf
