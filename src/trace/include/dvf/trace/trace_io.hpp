// Trace serialization: persist a kernel's memory-reference stream together
// with its data-structure table, and replay it later against any cache
// configuration (dvfc trace / dvfc replay). This decouples the expensive
// part of a verification study (generating references) from the cheap part
// (simulating caches), the same split the paper's Pin-based flow used.
//
// Format (native-endian binary):
//   magic "DVFT", u32 version,
//   u32 structure count, then per structure:
//     u32 name length, name bytes, u64 base address, u64 size, u32 elem size
//   u64 record count, then per record:
//     u64 address, u32 size, u32 ds id, u8 is_write
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dvf/trace/recorder.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf {

/// A deserialized trace: the structure table plus the reference stream.
struct TraceFile {
  std::vector<DataStructureInfo> structures;
  std::vector<MemoryRecord> records;
};

/// Serializes a trace. Throws Error on I/O failure.
void write_trace(std::ostream& out, const DataStructureRegistry& registry,
                 const std::vector<MemoryRecord>& records);
void write_trace_file(const std::string& path,
                      const DataStructureRegistry& registry,
                      const std::vector<MemoryRecord>& records);

/// Deserializes a trace. Throws Error on malformed input (bad magic,
/// unsupported version, truncated stream, out-of-range structure ids).
[[nodiscard]] TraceFile read_trace(std::istream& in);
[[nodiscard]] TraceFile read_trace_file(const std::string& path);

}  // namespace dvf
