// Chunked streaming trace reader: replays multi-gigabyte reference streams
// without materializing a std::vector<MemoryRecord> of the whole trace.
//
// The reader parses the header (structure table, total record count) at
// construction, then hands out decoded records one chunk at a time:
//
//   TraceReader reader(path);
//   sim.reserve_structures(reader.structures().size());
//   while (!reader.done()) {
//     sim.replay(reader.next_chunk());
//   }
//
// Both trace format versions stream: v2 is chunked on the wire (each chunk
// decodes standalone — see src/trace/wire_format.hpp), v1's flat record
// array is sliced into chunks of the same nominal size on read. The spans
// returned by next_chunk() alias an internal buffer and are invalidated by
// the next call.
//
// All header fields are treated as untrusted: structure-name lengths, chunk
// record counts and payload sizes are capped, so a corrupt or truncated
// stream raises dvf::Error before it can drive an unbounded allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dvf/trace/recorder.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf {

class TraceReader {
 public:
  /// Reads the header from `in`; the stream must outlive the reader.
  /// Throws Error on malformed input.
  explicit TraceReader(std::istream& in);
  /// Opens `path` and reads the header. Throws Error if the file cannot be
  /// opened or the header is malformed.
  explicit TraceReader(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] const std::vector<DataStructureInfo>& structures()
      const noexcept {
    return structures_;
  }
  /// Wire format version of the stream (1 or 2).
  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint64_t total_records() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t records_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] bool done() const noexcept { return delivered_ == total_; }

  /// Decodes and returns the next chunk of records; empty once every record
  /// has been delivered. The span aliases an internal buffer that the next
  /// call overwrites. Throws Error on truncation or corruption.
  [[nodiscard]] std::span<const MemoryRecord> next_chunk();

 private:
  void read_header();
  void read_exact(char* dst, std::size_t bytes);
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  void next_chunk_v1();
  void next_chunk_v2();

  std::unique_ptr<std::ifstream> owned_;  ///< set by the path constructor
  std::istream* in_ = nullptr;
  std::vector<DataStructureInfo> structures_;
  std::uint32_t version_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t delivered_ = 0;
  std::vector<char> scratch_;          ///< raw chunk payload
  std::vector<MemoryRecord> buffer_;   ///< decoded records handed out
};

}  // namespace dvf
