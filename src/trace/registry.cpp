#include "dvf/trace/registry.hpp"

#include <utility>

#include "dvf/common/error.hpp"

namespace dvf {

DsId DataStructureRegistry::register_structure(std::string name, const void* base,
                                               std::uint64_t size_bytes,
                                               std::uint32_t element_bytes) {
  DVF_CHECK_MSG(!name.empty(), "data structure name must not be empty");
  DVF_CHECK_MSG(size_bytes > 0, "data structure size must be positive");
  DVF_CHECK_MSG(element_bytes > 0, "element size must be positive");
  DVF_CHECK_MSG(size_bytes % element_bytes == 0,
                "element size must divide total size");
  DVF_CHECK_MSG(!find(name).has_value(),
                "duplicate data structure name: " + name);

  DataStructureInfo info;
  info.name = std::move(name);
  info.base_address = reinterpret_cast<std::uintptr_t>(base);
  info.size_bytes = size_bytes;
  info.element_bytes = element_bytes;
  entries_.push_back(std::move(info));
  return static_cast<DsId>(entries_.size() - 1);
}

const DataStructureInfo& DataStructureRegistry::info(DsId id) const {
  DVF_CHECK_MSG(id < entries_.size(), "data structure id out of range");
  return entries_[id];
}

std::optional<DsId> DataStructureRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) {
      return static_cast<DsId>(i);
    }
  }
  return std::nullopt;
}

DsId DataStructureRegistry::attribute(std::uint64_t address) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].contains(address)) {
      return static_cast<DsId>(i);
    }
  }
  return kNoDs;
}

}  // namespace dvf
